// report_gen: render a SearchTracer JSONL trace (plus an optional BenchReport
// JSON) into a self-contained HTML session report — inline CSS and SVG, no
// scripts — with the convergence curve, the per-lane evaluation timeline and
// per-strategy cache statistics. CI runs it over the bench-smoke artifacts so
// every run uploads a browsable convergence report.
//
//   report_gen --trace TRACE_x.jsonl [--bench BENCH_x.json]
//              [--out report.html] [--title "..."]
//
// A second mode merges distributed-tracing span logs from several processes
// (a server's --trace-out plus each harmony_worker's) into one Chrome
// trace-viewer JSON, one pid per input file, timestamps aligned on each
// file's wall-clock anchor — load the result at chrome://tracing or
// https://ui.perfetto.dev and follow one request across processes by the
// trace id in each slice's args:
//
//   report_gen --merge spans_server.jsonl spans_worker*.jsonl [--out t.json]
//
// With no --out, the document goes to stdout. Exit status: 0 on success,
// 1 on unusable input (unreadable trace, or zero parseable events/spans).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/report_html.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace <trace.jsonl> [--bench <bench.json>] "
               "[--out <report.html>] [--title <title>]\n"
               "       %s --merge <spans.jsonl>... [--out <trace.json>]\n",
               argv0, argv0);
  return 1;
}

/// Strip directories from a path for the per-process label in the merge.
std::string base_name(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

int run_merge(const std::vector<std::string>& span_paths,
              const std::string& out_path) {
  std::vector<std::pair<std::string, std::vector<harmony::obs::MergedSpan>>>
      inputs;
  std::size_t total = 0;
  for (const auto& path : span_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read spans: %s\n", path.c_str());
      return 1;
    }
    std::size_t skipped = 0;
    auto spans = harmony::obs::load_span_jsonl(in, &skipped);
    if (skipped > 0) {
      std::fprintf(stderr, "warning: skipped %zu unparseable line(s) in %s\n",
                   skipped, path.c_str());
    }
    total += spans.size();
    inputs.emplace_back(base_name(path), std::move(spans));
  }
  if (total == 0) {
    std::fprintf(stderr, "no spans in any input\n");
    return 1;
  }
  if (out_path.empty()) {
    harmony::obs::write_merged_chrome_trace(std::cout, inputs);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  harmony::obs::write_merged_chrome_trace(out, inputs);
  std::fprintf(stderr, "wrote %s (%zu spans from %zu file(s))\n",
               out_path.c_str(), total, inputs.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string bench_path;
  std::string out_path;
  bool merge = false;
  std::vector<std::string> span_paths;
  harmony::obs::HtmlReportOptions opts;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace") == 0) {
      const char* v = need_value("--trace");
      if (v == nullptr) return usage(argv[0]);
      trace_path = v;
    } else if (std::strcmp(argv[i], "--bench") == 0) {
      const char* v = need_value("--bench");
      if (v == nullptr) return usage(argv[0]);
      bench_path = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = need_value("--out");
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (std::strcmp(argv[i], "--title") == 0) {
      const char* v = need_value("--title");
      if (v == nullptr) return usage(argv[0]);
      opts.title = v;
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      merge = true;
    } else if (merge && argv[i][0] != '-') {
      span_paths.emplace_back(argv[i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (merge) {
    if (span_paths.empty()) return usage(argv[0]);
    return run_merge(span_paths, out_path);
  }
  if (trace_path.empty()) return usage(argv[0]);

  std::ifstream trace_in(trace_path);
  if (!trace_in) {
    std::fprintf(stderr, "cannot read trace: %s\n", trace_path.c_str());
    return 1;
  }
  std::size_t skipped = 0;
  const auto events = harmony::obs::load_trace_jsonl(trace_in, &skipped);
  if (skipped > 0) {
    std::fprintf(stderr, "warning: skipped %zu unparseable trace line(s)\n",
                 skipped);
  }
  if (events.empty()) {
    std::fprintf(stderr, "no usable events in %s\n", trace_path.c_str());
    return 1;
  }

  std::optional<harmony::obs::BenchReport> bench;
  if (!bench_path.empty()) {
    bench = harmony::obs::BenchReport::load(bench_path);
    if (!bench) {
      std::fprintf(stderr, "warning: could not load bench report %s\n",
                   bench_path.c_str());
    } else if (opts.title == harmony::obs::HtmlReportOptions{}.title) {
      opts.title = "Session report: " + bench->name;
    }
  }

  if (out_path.empty()) {
    harmony::obs::write_html_report(std::cout, events,
                                    bench ? &*bench : nullptr, opts);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  harmony::obs::write_html_report(out, events, bench ? &*bench : nullptr, opts);
  std::fprintf(stderr, "wrote %s (%zu events)\n", out_path.c_str(),
               events.size());
  return 0;
}
