// harmony_worker: a remote evaluation worker for the fleet protocol.
//
// Connects to a tuning server (with retry, so workers may be launched before
// the server binds), ATTACHes with a substrate name and a pipeline capacity,
// then serves pushed WORK lines: decode the candidate against the substrate's
// parameter space, run its short-run model, answer RESULT. One process = one
// worker; launch several to scale the fleet (see README "Distributed
// evaluation fleet").
//
//   harmony_worker --port P [--substrate synthetic|pop|gs2|petsc]
//                  [--name N] [--capacity C] [--steps S] [--spin-us U]
//                  [--max-evals M] [--heartbeat-ms H] [--trace-out FILE]
//
// --trace-out records a "worker.eval" span for every WORK line that carried
// a wire trace token and writes them as span JSONL on exit; feed the file to
// report_gen --merge together with the server's span log to see one request
// end to end.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "fleet/substrates.hpp"
#include "fleet/worker_client.hpp"
#include "obs/trace.hpp"

namespace fleet = harmony::fleet;

namespace {

int usage(const char* argv0) {
  std::string names;
  for (const auto& n : fleet::substrate_names()) {
    if (!names.empty()) names += "|";
    names += n;
  }
  std::printf(
      "usage: %s --port P [--substrate %s]\n"
      "          [--name N] [--capacity C] [--steps S] [--spin-us U]\n"
      "          [--max-evals M] [--heartbeat-ms H] [--trace-out FILE]\n\n"
      "Evaluation worker for a harmony tuning server: ATTACHes with the\n"
      "chosen substrate and serves WORK pushes until the server hangs up\n"
      "(or M evaluations are done). --spin-us adds a busy-wait per\n"
      "evaluation to model real run cost; --name defaults to the substrate\n"
      "(the server only dispatches to workers whose name matches its\n"
      "dispatcher's substrate filter, when one is set). --heartbeat-ms sets\n"
      "the idle PING cadence (default 500, 0 disables heartbeats).\n"
      "--trace-out FILE writes span JSONL for trace-token WORK lines on\n"
      "exit (merge with the server's spans via report_gen --merge).\n",
      argv0, names.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::string substrate = "synthetic";
  std::string name;
  int capacity = 2;
  int steps = 0;  // 0 = substrate default
  int spin_us = 0;
  long long max_evals = 0;
  int heartbeat_ms = -1;  // -1 = keep the WorkerClientOptions default
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--port" && (v = next()) != nullptr) {
      port = std::atoi(v);
    } else if (arg == "--substrate" && (v = next()) != nullptr) {
      substrate = v;
    } else if (arg == "--name" && (v = next()) != nullptr) {
      name = v;
    } else if (arg == "--capacity" && (v = next()) != nullptr) {
      capacity = std::atoi(v);
    } else if (arg == "--steps" && (v = next()) != nullptr) {
      steps = std::atoi(v);
    } else if (arg == "--spin-us" && (v = next()) != nullptr) {
      spin_us = std::atoi(v);
    } else if (arg == "--max-evals" && (v = next()) != nullptr) {
      max_evals = std::atoll(v);
    } else if (arg == "--heartbeat-ms" && (v = next()) != nullptr) {
      heartbeat_ms = std::atoi(v);
      if (heartbeat_ms < 0) return usage(argv[0]);
    } else if (arg == "--trace-out" && (v = next()) != nullptr) {
      trace_out = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (port <= 0) return usage(argv[0]);

  const auto sub = fleet::make_substrate(substrate, spin_us);
  if (!sub) {
    std::fprintf(stderr, "error: unknown substrate '%s'\n", substrate.c_str());
    return usage(argv[0]);
  }

  fleet::WorkerClientOptions opts;
  opts.name = name.empty() ? sub->name : name;
  opts.capacity = capacity > 0 ? capacity : 1;
  if (max_evals > 0) opts.max_evals = static_cast<std::uint64_t>(max_evals);
  if (heartbeat_ms >= 0) opts.heartbeat = std::chrono::milliseconds(heartbeat_ms);

  harmony::obs::SearchTracer tracer;
  if (!trace_out.empty()) opts.tracer = &tracer;

  fleet::WorkerClient worker(opts);
  const int run_steps = steps > 0 ? steps : sub->steps;
  std::printf("harmony_worker: substrate=%s capacity=%d -> port %d\n",
              sub->name.c_str(), opts.capacity, port);
  const bool ok = worker.run(port, sub->space, sub->run, run_steps);
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (out) {
      tracer.write_jsonl(out);
      std::printf("harmony_worker: wrote %zu span(s) to %s\n",
                  tracer.span_count(), trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
    }
  }
  std::printf("harmony_worker: done, %llu evals (%s)\n",
              static_cast<unsigned long long>(worker.evals()),
              ok ? "served" : worker.last_error().c_str());
  return ok ? 0 : 1;
}
