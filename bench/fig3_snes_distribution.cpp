// Regenerates paper Fig. 3 and the Section IV SNES results: tuning the
// computation distribution of the nonlinear driven-cavity solve.
//
//  (a) 2,500 grid points on 4 homogeneous Pentium4 nodes — the even default
//      is already right, tuning confirms it;
//  (b) the same problem on a heterogeneous 2xPentiumII + 2xPentium4 cluster
//      — tuning shifts grid rows onto the fast nodes;
//  (c) 40,000 points on 32 nodes (search space O(10^36)) — paper reports an
//      11.5% improvement over the default even partitioning.
//
// SNES work counts come from a real Newton-Krylov solve of the cavity
// problem; the distribution is then priced on the simulated machine.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <numeric>

#include "core/harmony.hpp"
#include "minipetsc/minipetsc.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipetsc;
using harmony::Config;

namespace {

SnesWork real_snes_work() {
  CavityProblem cavity;
  cavity.nx = 9;
  cavity.ny = 9;
  cavity.reynolds = 10.0;
  Vec state = cavity.initial_guess();
  SnesOptions opts;
  opts.max_iterations = 40;
  opts.ksp.max_iterations = 3000;
  const auto res = newton_solve(cavity.residual(), state, opts);
  SnesWork work;
  work.newton_iterations = res.iterations;
  work.total_ksp_iterations = res.total_ksp_iterations;
  work.residual_evaluations = res.residual_evaluations;
  return work;
}

struct CaseResult {
  double t_default;
  double t_tuned;
  int iterations;
  std::vector<int> tuned_points;
};

CaseResult tune_distribution(int nx, int ny, int nranks,
                             const simcluster::Machine& machine,
                             const SnesWork& work, int budget) {
  // Production-grade stencil cost per grid point (the 9x9 pilot solve only
  // pins iteration counts; per-point work is the full application's).
  CostModel cost;
  cost.flops_per_grid_point = 800.0;
  const auto time_of = [&](const Da2D& da) {
    return simulate_snes(machine, da, work, cost).total_s;
  };
  const auto even = Da2D::even_strips(nx, ny, nranks);
  const double t_default = time_of(even);

  // Dependent-variable handling per the paper's [12]: the raw ordered cuts
  // are dependent variables, and ranks with identical CPUs should receive
  // identical shares — so the tunables are one work weight per CPU class
  // (for <= 8 ranks, one per rank). This is what collapses the O(10^36) raw
  // space into something a simplex explores in ~100 evaluations.
  std::vector<int> class_of(static_cast<std::size_t>(nranks));
  std::vector<double> class_speed;
  for (int r = 0; r < nranks; ++r) {
    if (nranks <= 8) {
      class_of[static_cast<std::size_t>(r)] = r;
      class_speed.push_back(machine.rank_speed(r));
      continue;
    }
    const double s = machine.rank_speed(r);
    auto it = std::find(class_speed.begin(), class_speed.end(), s);
    if (it == class_speed.end()) {
      class_speed.push_back(s);
      it = class_speed.end() - 1;
    }
    class_of[static_cast<std::size_t>(r)] =
        static_cast<int>(it - class_speed.begin());
  }
  const int nclasses = static_cast<int>(class_speed.size());

  harmony::ParamSpace space;
  for (int i = 0; i < nclasses; ++i) {
    std::string name = "w";
    name += std::to_string(i);
    space.add(harmony::Parameter::Integer(name, 1, 200));
  }
  Config start = space.default_config();
  for (int i = 0; i < nclasses; ++i) {
    std::string name = "w";
    name += std::to_string(i);
    space.set(start, name, std::int64_t{100});
  }
  const auto to_da = [&](const Config& c) {
    std::vector<double> share(static_cast<std::size_t>(nranks));
    double total = 0;
    for (int r = 0; r < nranks; ++r) {
      share[static_cast<std::size_t>(r)] = static_cast<double>(
          std::get<std::int64_t>(c.values[static_cast<std::size_t>(
              class_of[static_cast<std::size_t>(r)])]));
      total += share[static_cast<std::size_t>(r)];
    }
    std::vector<int> cuts;
    double cum = 0;
    for (int i = 0; i < nranks - 1; ++i) {
      cum += share[static_cast<std::size_t>(i)];
      int cut = static_cast<int>(std::lround(ny * cum / total));
      const int lo = cuts.empty() ? 1 : cuts.back() + 1;
      cut = std::clamp(cut, lo, ny - (nranks - 1 - i));
      cuts.push_back(cut);
    }
    return Da2D::from_cuts(nx, ny, cuts);
  };

  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 4;
  harmony::NelderMead nm(space, nm_opts, start);
  harmony::TunerOptions topts;
  topts.max_iterations = budget;
  topts.max_proposals = budget * 64;
  harmony::Tuner tuner(space, topts);
  const auto result = tuner.run(nm, [&](const Config& c) {
    harmony::EvaluationResult r;
    r.objective = time_of(to_da(c));
    return r;
  });

  CaseResult out;
  out.t_default = t_default;
  out.t_tuned = result.best_result.objective;
  out.iterations = result.iterations;
  out.tuned_points = to_da(*result.best).points_per_rank();
  return out;
}

void print_case(const char* title, const CaseResult& r) {
  std::printf("%s\n", title);
  harmony::TextTable t({"configuration", "sim. time (ms)", "improvement"});
  t.add_row({"default (even strips)", harmony::fmt(1e3 * r.t_default, 3), "-"});
  t.add_row({"tuned distribution", harmony::fmt(1e3 * r.t_tuned, 3),
             harmony::percent_improvement(r.t_default, r.t_tuned)});
  t.print(std::cout);
  std::printf("  tuned grid points per rank:");
  for (const int p : r.tuned_points) std::printf(" %d", p);
  std::printf("\n  tuning cost: %d distinct runs\n\n", r.iterations);
}

}  // namespace

int main() {
  std::printf("== Fig. 3 / Section IV: SNES computation distribution ==\n\n");
  const SnesWork work = real_snes_work();
  std::printf("real cavity solve: %d Newton steps, %d Krylov iterations, "
              "%d residual evaluations\n\n",
              work.newton_iterations, work.total_ksp_iterations,
              work.residual_evaluations);

  print_case("(a) 2,500 points, 4 homogeneous Pentium4 nodes",
             tune_distribution(50, 50, 4, simcluster::presets::pentium4_quad(),
                               work, 120));
  print_case("(b) 2,500 points, heterogeneous 2xPII + 2xP4 (paper Fig. 3b)",
             tune_distribution(50, 50, 4, simcluster::presets::pentium_hetero(),
                               work, 120));
  print_case("(c) 40,000 points, 32 mixed-generation CPUs (paper: 11.5%, "
             "space O(10^36))",
             tune_distribution(200, 200, 32,
                               simcluster::presets::cluster32_hetero(), work,
                               8000));
  return 0;
}
