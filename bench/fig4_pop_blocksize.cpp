// Regenerates paper Fig. 4: POP block-size tuning on 480 processors across
// six node topologies. For each topology the harness tunes the block size
// with off-line short runs and prints the tuned-vs-default pair the figure
// plots, plus the best block size found (the figure's x-axis annotations).
//
// Paper's headline: no single block size is good for all topologies; tuning
// the block size alone reduces execution time by up to 15%. Our simulated
// machine reproduces the *shape* (topology-dependent optimum, default
// suboptimal everywhere) with a smaller magnitude — see EXPERIMENTS.md.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/harmony.hpp"
#include "minipop/minipop.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipop;
using harmony::Config;

int main() {
  std::printf("== Fig. 4: POP block size vs node topology (480 CPUs) ==\n\n");
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto pspace = make_param_space(32);
  const auto mult = evaluate_multipliers(pspace, default_config(pspace));
  const BlockShape default_shape{180, 100};

  harmony::TextTable table({"topology", "tuned block", "tuned (s/step)",
                            "default 180x100 (s/step)", "improvement"});
  double worst_bar = 0.0;
  struct Row {
    std::string topo;
    double tuned;
    double def;
  };
  std::vector<Row> rows;

  const int topologies[][2] = {{30, 16}, {48, 10}, {60, 8},
                               {80, 6},  {120, 4}, {240, 2}};
  harmony::obs::BenchReport report;
  report.name = "fig4_pop_blocksize";
  harmony::obs::SearchTracer tracer;  // per-evaluation trace for report_gen
  double total_tuned = 0.0;
  double total_default = 0.0;
  const auto bench_start = std::chrono::steady_clock::now();
  for (const auto& t : topologies) {
    const int nodes = t[0];
    const int ppn = t[1];
    const auto machine = simcluster::presets::nersc_sp3(nodes, ppn);

    const double t_default =
        model.step_time(machine, ppn, default_shape, mult).total_s;

    harmony::ParamSpace space;
    space.add(harmony::Parameter::Integer("block_x", 30, 720, 6));
    space.add(harmony::Parameter::Integer("block_y", 24, 600, 4));
    Config start = space.default_config();
    space.set(start, "block_x", std::int64_t{180});
    space.set(start, "block_y", std::int64_t{100});

    harmony::CoordinateDescent search(space, start, 10, /*line_samples=*/40);
    harmony::TunerOptions topts;
    topts.max_iterations = 400;
    topts.max_proposals = 40000;
    topts.tracer = &tracer;
    harmony::Tuner tuner(space, topts);
    const auto result = tuner.run(search, [&](const Config& c) {
      const BlockShape shape{static_cast<int>(space.get_int(c, "block_x")),
                             static_cast<int>(space.get_int(c, "block_y"))};
      harmony::EvaluationResult r;
      r.objective = model.step_time(machine, ppn, shape, mult).total_s;
      return r;
    });

    const double t_tuned = result.best_result.objective;
    const std::string topo =
        std::to_string(nodes) + "x" + std::to_string(ppn);
    const std::string block =
        std::to_string(space.get_int(*result.best, "block_x")) + "x" +
        std::to_string(space.get_int(*result.best, "block_y"));
    table.add_row({topo, block, harmony::fmt(t_tuned, 4),
                   harmony::fmt(t_default, 4),
                   harmony::percent_improvement(t_default, t_tuned)});
    rows.push_back({topo + " (" + block + ")", t_tuned, t_default});
    worst_bar = std::max(worst_bar, t_default);

    if (!report.best_config.empty()) report.best_config += "; ";
    report.best_config += topo + ":" + block;
    report.evaluations += result.iterations;
    report.evals_to_best =
        std::max(report.evals_to_best, tuner.history().evals_to_best());
    total_tuned += t_tuned;
    total_default += t_default;
  }
  table.print(std::cout);

  report.best_value = total_tuned;  // summed tuned s/step over all topologies
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  report.speedup = total_default / total_tuned;
  report.metrics["total_default_s"] = total_default;
  if (const auto path = report.write_file(harmony::obs::bench_out_dir())) {
    std::printf("wrote %s\n", path->c_str());
  }
  // JSONL evaluation trace alongside the report — tools/report_gen turns the
  // pair into a self-contained HTML convergence report.
  const std::string trace_path =
      harmony::obs::bench_out_dir() + "/TRACE_fig4_pop_blocksize.jsonl";
  if (std::ofstream tf(trace_path); tf) {
    tracer.write_jsonl(tf);
    std::printf("wrote %s (%zu events)\n", trace_path.c_str(), tracer.size());
  }

  std::printf("\nexecution-time bars (first=tuned, second=default), as in the figure:\n");
  for (const auto& row : rows) {
    std::printf("  %-18s %s\n", row.topo.c_str(),
                harmony::bar(row.tuned, worst_bar, 44).c_str());
    std::printf("  %-18s %s\n", "", harmony::bar(row.def, worst_bar, 44).c_str());
  }
  return 0;
}
