// server_fleet: scaling curve for the distributed evaluation fleet.
//
// For each worker count in 1..--workers, stands up a fresh tuning server
// with a fleet Dispatcher, attaches that many evaluation workers, and drives
// a fixed random-search workload over the synthetic substrate through
// WorkerEvalBackend (cache disabled, so every proposal crosses the wire).
// Each evaluation sleeps --spin-us microseconds on the worker — the wall-clock
// wait on an "application short run" — so the curve measures how well the
// dispatcher overlaps remote runs, not just protocol overhead.
//
// Workers come in two flavours:
//  * default       — in-process WorkerClient threads (same wire protocol over
//                    loopback; what the test suite and bench_gate use);
//  * --worker-bin  — fork/exec one harmony_worker process per worker (what a
//                    real deployment runs; the CI bench-smoke job uses this).
//
// Results go to stdout and BENCH_server_fleet.json (ah-bench-report/1):
// evals/s per worker count, per-evaluation dispatch latency quantiles
// (p50/p95/p99 of WORK-dispatch to RESULT, from the dispatcher's HDR
// histogram) at the maximum worker count, plus the headline
// `evals_per_s_ratio` (max-workers over 1-worker throughput) that bench_gate
// tracks against a checked-in baseline.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/server.hpp"
#include "engine/batch_strategy.hpp"
#include "fleet/dispatcher.hpp"
#include "fleet/substrates.hpp"
#include "fleet/worker_backend.hpp"
#include "fleet/worker_client.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"

namespace fleet = harmony::fleet;
namespace obs = harmony::obs;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  int workers = 4;       // curve runs 1..workers
  int capacity = 2;      // WORK lines pipelined per worker
  int evals = 256;       // distinct evaluations per point on the curve
  int spin_us = 2000;    // per-evaluation simulated short-run cost
  int reps = 3;          // keep the best evals/s of this many runs
  bool serve = false;    // one search against externally attached workers
  int port = 0;          // fixed listen port for --serve (0 = ephemeral)
  std::string worker_bin;  // fork/exec this binary instead of threads
  std::string out_dir = obs::bench_out_dir();
  // Request tracing (off unless --trace-out is given): dispatcher
  // head-sample rate, dispatcher span JSONL path, per-worker span file
  // prefix for subprocess workers, and the tracer every in-process span
  // lands in (set by main, points at a stack-local SearchTracer).
  double trace_sample = 0.0;
  std::string trace_out;
  std::string worker_trace_out;
  obs::SearchTracer* tracer = nullptr;
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PointResult {
  double evals_per_s = 0.0;
  double p50_ms = 0.0;  ///< dispatch-to-RESULT latency quantiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// One curve point: server + dispatcher + `nworkers` workers, one search.
/// evals_per_s is 0 on failure. `rep` only disambiguates the per-worker
/// span files — every (point, rep, worker) triple gets its own shard.
PointResult run_point(const Options& opt, const fleet::Substrate& sub,
                      int nworkers, int rep) {
  fleet::DispatcherOptions dopts;
  dopts.substrate = sub.name;
  dopts.tracer = opt.tracer;
  dopts.trace_sample = opt.tracer != nullptr ? opt.trace_sample : 0.0;
  fleet::Dispatcher dispatcher(sub.space, dopts);

  harmony::ServerOptions sopts;
  sopts.fleet = &dispatcher;
  harmony::TuningServer server(sopts);
  PointResult point;
  if (!server.start()) {
    std::fprintf(stderr, "error: server failed to start\n");
    return point;
  }

  // Launch the workers: harmony_worker subprocesses when --worker-bin was
  // given, otherwise in-process WorkerClient threads on the same protocol.
  std::vector<pid_t> pids;
  std::vector<std::unique_ptr<fleet::WorkerClient>> clients;
  std::vector<std::thread> threads;
  if (!opt.worker_bin.empty()) {
    for (int w = 0; w < nworkers; ++w) {
      // argv built before fork: the server's reactor threads are already
      // running, so the child must not allocate between fork and exec.
      std::vector<std::string> args;
      args.push_back(opt.worker_bin);
      args.push_back("--port");
      args.push_back(std::to_string(server.port()));
      args.push_back("--substrate");
      args.push_back(sub.name);
      args.push_back("--capacity");
      args.push_back(std::to_string(opt.capacity));
      args.push_back("--spin-us");
      args.push_back(std::to_string(opt.spin_us));
      if (!opt.worker_trace_out.empty()) {
        args.push_back("--trace-out");
        args.push_back(opt.worker_trace_out + ".n" + std::to_string(nworkers) +
                       "r" + std::to_string(rep) + ".w" + std::to_string(w) +
                       ".jsonl");
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::execv(opt.worker_bin.c_str(), argv.data());
        std::_Exit(127);  // exec failed
      }
      if (pid > 0) pids.push_back(pid);
    }
  } else {
    for (int w = 0; w < nworkers; ++w) {
      fleet::WorkerClientOptions wopts;
      wopts.name = sub.name;
      wopts.capacity = opt.capacity;
      wopts.tracer = opt.tracer;  // in-process: spans share the one tracer
      clients.push_back(std::make_unique<fleet::WorkerClient>(wopts));
    }
    const int port = server.port();
    for (auto& c : clients) {
      fleet::WorkerClient* wc = c.get();
      threads.emplace_back([wc, &sub, port] {
        (void)wc->run(port, sub.space, sub.run, sub.steps);
      });
    }
  }

  if (dispatcher.wait_for_workers(static_cast<std::size_t>(nworkers),
                                  std::chrono::milliseconds(5000))) {
    fleet::WorkerBackendOptions bopts;
    bopts.use_cache = false;
    fleet::WorkerEvalBackend backend(dispatcher, sub.space, bopts);

    harmony::ControllerLimits limits;
    limits.max_evaluations = opt.evals;
    limits.max_proposals = opt.evals * 8;
    harmony::SearchController controller(sub.space, limits);
    harmony::engine::BatchRandomSearch strategy(sub.space, opt.evals * 8,
                                                /*seed=*/7);
    const auto t0 = Clock::now();
    const auto result = controller.run(strategy, backend);
    const double wall = seconds_since(t0);
    if (wall > 0.0) {
      point.evals_per_s = static_cast<double>(result.evaluations) / wall;
    }
    const auto& lat = dispatcher.eval_latency();
    point.p50_ms = lat.quantile(0.50) * 1e3;
    point.p95_ms = lat.quantile(0.95) * 1e3;
    point.p99_ms = lat.quantile(0.99) * 1e3;
  } else {
    std::fprintf(stderr, "error: only %zu/%d workers attached\n",
                 dispatcher.worker_count(), nworkers);
  }

  dispatcher.shutdown();
  server.stop();  // drops worker connections; they exit their serve loops
  for (auto& t : threads) t.join();
  for (const pid_t pid : pids) {
    int status = 0;
    (void)::waitpid(pid, &status, 0);
  }
  return point;
}

/// --serve: a single search on a fixed port, workers attached externally
/// (e.g. `harmony_worker --port P` from other terminals or hosts).
int serve_mode(const Options& opt, const fleet::Substrate& sub) {
  fleet::DispatcherOptions dopts;
  dopts.substrate = sub.name;
  fleet::Dispatcher dispatcher(sub.space, dopts);

  harmony::ServerOptions sopts;
  sopts.port = opt.port;
  sopts.fleet = &dispatcher;
  harmony::TuningServer server(sopts);
  if (!server.start()) {
    std::fprintf(stderr, "error: server failed to start on port %d\n", opt.port);
    return 1;
  }
  std::printf(
      "fleet server listening on 127.0.0.1:%d; waiting for %d worker%s\n"
      "  attach with: harmony_worker --port %d\n",
      server.port(), opt.workers, opt.workers == 1 ? "" : "s", server.port());

  int rc = 1;
  if (dispatcher.wait_for_workers(static_cast<std::size_t>(opt.workers),
                                  std::chrono::seconds(120))) {
    fleet::WorkerBackendOptions bopts;
    bopts.use_cache = false;
    fleet::WorkerEvalBackend backend(dispatcher, sub.space, bopts);

    harmony::ControllerLimits limits;
    limits.max_evaluations = opt.evals;
    limits.max_proposals = opt.evals * 8;
    harmony::SearchController controller(sub.space, limits);
    harmony::engine::BatchRandomSearch strategy(sub.space, opt.evals * 8,
                                                /*seed=*/7);
    const auto t0 = Clock::now();
    const auto result = controller.run(strategy, backend);
    const double wall = seconds_since(t0);
    std::printf("%d evals across %zu worker(s) in %.2f s (%.0f evals/s)\n",
                result.evaluations, dispatcher.worker_count(), wall,
                wall > 0.0 ? static_cast<double>(result.evaluations) / wall
                           : 0.0);
    if (result.best.has_value()) {
      std::printf("best %s = %.6g\n", sub.space.format(*result.best).c_str(),
                  result.best_objective);
    }
    rc = 0;
  } else {
    std::fprintf(stderr, "error: only %zu/%d workers attached within 120 s\n",
                 dispatcher.worker_count(), opt.workers);
  }
  dispatcher.shutdown();
  server.stop();  // drops worker connections; they exit their serve loops
  return rc;
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--workers N] [--capacity C] [--evals M] [--spin-us U]\n"
      "          [--reps R] [--worker-bin PATH] [--out DIR]\n"
      "          [--trace-sample F] [--trace-out FILE]\n"
      "          [--worker-trace-out PREFIX] [--serve [--port P]]\n\n"
      "Measures fleet throughput: a random search of M distinct evaluations\n"
      "over the synthetic substrate, repeated for every worker count in\n"
      "1..N. Writes BENCH_server_fleet.json into --out. With --worker-bin,\n"
      "workers are harmony_worker subprocesses; otherwise in-process\n"
      "threads. With --serve, runs one search on a fixed port and waits for\n"
      "N workers to attach externally (no report is written).\n\n"
      "--trace-out FILE enables dispatcher request tracing (head-sampled at\n"
      "--trace-sample, default 0.05) and writes span JSONL to FILE.\n"
      "--worker-trace-out PREFIX makes each harmony_worker subprocess write\n"
      "its own spans to PREFIX.n<point>r<rep>.w<worker>.jsonl; merge the\n"
      "shards with\n"
      "  report_gen --merge FILE PREFIX.*.jsonl --out trace.json\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--workers" && (v = next()) != nullptr) {
      opt.workers = std::max(1, std::atoi(v));
    } else if (arg == "--capacity" && (v = next()) != nullptr) {
      opt.capacity = std::max(1, std::atoi(v));
    } else if (arg == "--evals" && (v = next()) != nullptr) {
      opt.evals = std::max(1, std::atoi(v));
    } else if (arg == "--spin-us" && (v = next()) != nullptr) {
      opt.spin_us = std::max(0, std::atoi(v));
    } else if (arg == "--reps" && (v = next()) != nullptr) {
      opt.reps = std::max(1, std::atoi(v));
    } else if (arg == "--worker-bin" && (v = next()) != nullptr) {
      opt.worker_bin = v;
    } else if (arg == "--out" && (v = next()) != nullptr) {
      opt.out_dir = v;
    } else if (arg == "--trace-sample" && (v = next()) != nullptr) {
      opt.trace_sample = std::atof(v);
    } else if (arg == "--trace-out" && (v = next()) != nullptr) {
      opt.trace_out = v;
    } else if (arg == "--worker-trace-out" && (v = next()) != nullptr) {
      opt.worker_trace_out = v;
    } else if (arg == "--serve") {
      opt.serve = true;
    } else if (arg == "--port" && (v = next()) != nullptr) {
      opt.port = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }

  obs::SearchTracer tracer;
  if (!opt.trace_out.empty()) {
    opt.tracer = &tracer;
    if (opt.trace_sample <= 0.0) opt.trace_sample = 0.05;
  }

  const auto sub = fleet::make_substrate("synthetic", opt.spin_us);
  if (!sub) return 2;
  if (opt.serve) return serve_mode(opt, *sub);

  std::printf("== server_fleet: %d evals x 1..%d workers (capacity %d, "
              "spin %d us, %s workers) ==\n",
              opt.evals, opt.workers, opt.capacity, opt.spin_us,
              opt.worker_bin.empty() ? "in-process" : "subprocess");

  obs::BenchReport report;
  report.name = "server_fleet";
  std::vector<double> curve;
  PointResult top;  // best rep at the maximum worker count
  const auto curve_t0 = Clock::now();
  for (int n = 1; n <= opt.workers; ++n) {
    PointResult best;
    for (int rep = 0; rep < opt.reps; ++rep) {
      const auto point = run_point(opt, *sub, n, rep);
      if (point.evals_per_s > best.evals_per_s) best = point;
    }
    curve.push_back(best.evals_per_s);
    std::printf("%d worker%s: %.0f evals/s (eval p50 %.2f ms, p99 %.2f ms)\n",
                n, n == 1 ? " " : "s", best.evals_per_s, best.p50_ms,
                best.p99_ms);
    report.metrics["evals_per_s_" + std::to_string(n)] = best.evals_per_s;
    if (n == opt.workers) top = best;
  }

  const double ratio = curve.front() > 0.0 ? curve.back() / curve.front() : 0.0;
  std::printf("scaling (%d workers / 1 worker): %.2fx\n", opt.workers, ratio);

  report.evaluations = opt.evals * opt.workers * opt.reps;
  report.wall_s = seconds_since(curve_t0);
  report.speedup = ratio;
  report.metrics["evals_per_s_ratio"] = ratio;
  report.metrics["workers"] = opt.workers;
  report.metrics["capacity"] = opt.capacity;
  report.metrics["evals"] = opt.evals;
  report.metrics["spin_us"] = opt.spin_us;
  report.metrics["eval_p50_ms"] = top.p50_ms;
  report.metrics["eval_p95_ms"] = top.p95_ms;
  report.metrics["eval_p99_ms"] = top.p99_ms;
  report.metrics["subprocess"] = opt.worker_bin.empty() ? 0.0 : 1.0;
  if (const auto path = report.write_file(opt.out_dir)) {
    std::printf("wrote %s\n", path->c_str());
  } else {
    std::fprintf(stderr, "error: could not write report into '%s'\n",
                 opt.out_dir.c_str());
    return 2;
  }

  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::fprintf(stderr, "error: could not write spans into '%s'\n",
                   opt.trace_out.c_str());
      return 2;
    }
    tracer.write_jsonl(out);
    std::printf("wrote %s (%zu span(s))\n", opt.trace_out.c_str(),
                tracer.span_count());
  }
  return 0;
}
