// Ablation: what does the Nelder-Mead simplex kernel buy over the other
// search strategies at equal evaluation budget? (Design-choice study
// motivated by Sections II and VII — "Active Harmony searches for a good
// configuration intelligently to reduce the tuning time".)
//
// Three tuning problems from the paper's case studies, each limited to the
// same number of distinct evaluations per strategy.

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/harmony.hpp"
#include "minigs2/minigs2.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

using harmony::Config;

namespace {

struct Problem {
  std::string name;
  harmony::ParamSpace space;
  Config start;
  harmony::Evaluator evaluate;
};

Problem pop_params_problem() {
  Problem p;
  p.name = "POP parameters (21-dim)";
  static const minipop::PopGrid grid = minipop::PopGrid::production();
  static const minipop::PopModel model(grid);
  static const auto machine = simcluster::presets::hockney(8, 4);
  p.space = minipop::make_param_space(32);
  p.start = minipop::default_config(p.space);
  const auto space_copy = p.space;
  p.evaluate = [space_copy](const Config& c) {
    harmony::EvaluationResult r;
    r.objective = model
                      .step_time(machine, 4, {180, 100},
                                 minipop::evaluate_multipliers(space_copy, c))
                      .total_s;
    return r;
  };
  return p;
}

Problem gs2_resolution_problem() {
  Problem p;
  p.name = "GS2 resolution+nodes (3-dim)";
  static const minigs2::Gs2Model model;
  p.space.add(harmony::Parameter::Integer("negrid", 8, 16));
  p.space.add(harmony::Parameter::Integer("ntheta", 16, 32, 2));
  p.space.add(harmony::Parameter::Integer("nodes", 1, 64));
  p.start = p.space.default_config();
  p.space.set(p.start, "negrid", std::int64_t{16});
  p.space.set(p.start, "ntheta", std::int64_t{26});
  p.space.set(p.start, "nodes", std::int64_t{32});
  const auto space_copy = p.space;
  p.evaluate = [space_copy](const Config& c) {
    minigs2::Resolution res;
    res.negrid = static_cast<int>(space_copy.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space_copy.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space_copy.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    harmony::EvaluationResult r;
    r.objective = model.run_time(machine, 2 * nodes, res,
                                 minigs2::Layout("lxyes"),
                                 minigs2::CollisionModel::None, 100);
    return r;
  };
  return p;
}

Problem gs2_layout_problem() {
  Problem p;
  p.name = "GS2 layout (120 choices)";
  static const minigs2::Gs2Model model;
  static const auto machine = simcluster::presets::seaborg(8, 16);
  std::vector<std::string> names;
  for (const auto& l : minigs2::Layout::all()) names.push_back(l.order());
  p.space.add(harmony::Parameter::Enum("layout", names));
  p.start = p.space.default_config();
  p.space.set(p.start, "layout", std::string("lxyes"));
  p.evaluate = [](const Config& c) {
    minigs2::Resolution res;
    res.ntheta = 26;
    res.negrid = 16;
    harmony::EvaluationResult r;
    r.objective =
        model.run_time(machine, 128, res,
                       minigs2::Layout(std::get<std::string>(c.values[0])),
                       minigs2::CollisionModel::None, 10);
    return r;
  };
  return p;
}

/// Budget-scaled options per registry name. Every strategy the registry
/// offers competes; the list never needs editing when one is added.
harmony::StrategyOptions options_for(const std::string& name, int budget) {
  if (name == "nelder-mead") {
    return {{"max_restarts", "4"}, {"max_stall", std::to_string(2 * budget)}};
  }
  if (name == "random") {
    return {{"samples", std::to_string(budget * 4)}, {"seed", "5"}};
  }
  if (name == "annealing") {
    return {{"max_evaluations", std::to_string(budget * 4)}};
  }
  if (name == "coordinate-descent") return {{"max_sweeps", "50"}};
  if (name == "systematic") return {{"samples_per_dim", "4"}};
  return {};  // exhaustive and anything new run with their defaults
}

double run_strategy(const Problem& p, const std::string& name, int budget) {
  auto strat = harmony::StrategyRegistry::make(name, p.space,
                                               options_for(name, budget),
                                               p.start);
  harmony::TunerOptions topts;
  topts.max_iterations = budget;
  topts.max_proposals = budget * 64;
  harmony::Tuner tuner(p.space, topts);
  const auto result = tuner.run(*strat, p.evaluate);
  return result.best ? result.best_result.objective
                     : std::numeric_limits<double>::infinity();
}

}  // namespace

int main() {
  std::printf("== Ablation: search strategies at equal evaluation budget ==\n\n");
  const int budget = 60;

  for (auto problem_fn :
       {pop_params_problem, gs2_resolution_problem, gs2_layout_problem}) {
    const Problem p = problem_fn();
    const double t_default = p.evaluate(p.start).objective;
    std::printf("%s (default %.4f, budget %d evaluations)\n", p.name.c_str(),
                t_default, budget);
    harmony::TextTable t({"strategy", "best found", "improvement"});
    for (const auto& name : harmony::StrategyRegistry::names()) {
      try {
        const double best = run_strategy(p, name, budget);
        t.add_row({name, harmony::fmt(best, 4),
                   harmony::percent_improvement(t_default, best)});
      } catch (const std::exception& e) {
        // e.g. exhaustive on a space larger than its point cap.
        t.add_row({name, "skipped", e.what()});
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
