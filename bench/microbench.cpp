// Micro-benchmarks (google-benchmark) for the performance-critical pieces
// of the library itself: the tuning kernel's propose/report cycle, the real
// numerical kernels, the simulated-machine models, and the wire protocol.

#include <benchmark/benchmark.h>
#include <sys/socket.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "core/harmony.hpp"
#include "core/net.hpp"
#include "engine/eval_cache.hpp"
#include "minigs2/minigs2.hpp"
#include "minipetsc/minipetsc.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

namespace {

void BM_NelderMeadCycle(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  harmony::ParamSpace space;
  for (std::size_t i = 0; i < dims; ++i) {
    std::string name = "p";
    name += std::to_string(i);
    space.add(harmony::Parameter::Integer(name, 0, 1000));
  }
  harmony::NelderMeadOptions opts;
  opts.max_restarts = 1000000;  // never stop during the benchmark
  harmony::NelderMead nm(space, opts);
  for (auto _ : state) {
    auto proposal = nm.propose();
    if (!proposal) break;
    harmony::EvaluationResult r;
    double v = 0;
    for (const auto& val : proposal->values) {
      const double x = static_cast<double>(std::get<std::int64_t>(val));
      v += (x - 500) * (x - 500);
    }
    r.objective = v;
    nm.report(*proposal, r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NelderMeadCycle)->Arg(2)->Arg(8)->Arg(32);

void BM_EvalCacheLookup(benchmark::State& state) {
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("a", 0, 1000));
  space.add(harmony::Parameter::Integer("b", 0, 1000));
  harmony::EvalCache cache(space);
  harmony::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    cache.store(space.random_config(rng), harmony::EvaluationResult{});
  }
  const auto probe = space.random_config(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(probe));
  }
}
BENCHMARK(BM_EvalCacheLookup);

// Shared space for the eval hot-path cases: the paper's Fig. 6 GS2 space.
harmony::ParamSpace hotpath_space() {
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("negrid", 4, 16));
  space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
  space.add(harmony::Parameter::Integer("nodes", 1, 64));
  return space;
}

// Index-space key derivation alone (scratch reuse: no allocation).
void BM_PointKeyDerive(benchmark::State& state) {
  const auto space = hotpath_space();
  harmony::Rng rng(5);
  std::vector<harmony::Config> configs;
  for (int i = 0; i < 256; ++i) configs.push_back(space.random_config(rng));
  harmony::PointKey key;
  std::size_t i = 0;
  for (auto _ : state) {
    key.assign(space, configs[i++ & 255]);
    benchmark::DoNotOptimize(key.hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointKeyDerive);

// The string key the index space replaced, for comparison.
void BM_StringKeyDerive(benchmark::State& state) {
  const auto space = hotpath_space();
  harmony::Rng rng(5);
  std::vector<harmony::Config> configs;
  for (int i = 0; i < 256; ++i) configs.push_back(space.random_config(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.key(configs[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StringKeyDerive);

// Full lookup+store cycle on the flat PointKey cache (the EvalCache hot
// path): one store and repeated lookups per lattice point.
void BM_FlatCacheLookupStore(benchmark::State& state) {
  const auto space = hotpath_space();
  harmony::Rng rng(7);
  std::vector<harmony::Config> configs;
  for (int i = 0; i < 512; ++i) configs.push_back(space.random_config(rng));
  harmony::EvalCache cache(space);
  harmony::PointKey key;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& c = configs[i++ & 511];
    key.assign(space, c);
    if (cache.lookup(key) == nullptr) {
      cache.store(key, harmony::EvaluationResult{});
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatCacheLookupStore);

// The representation this PR replaced: unordered_map<string, result> keyed
// by ParamSpace::key. Kept as the comparison baseline for the gate.
void BM_StringKeyedCacheLookupStore(benchmark::State& state) {
  const auto space = hotpath_space();
  harmony::Rng rng(7);
  std::vector<harmony::Config> configs;
  for (int i = 0; i < 512; ++i) configs.push_back(space.random_config(rng));
  std::unordered_map<std::string, harmony::EvaluationResult> cache;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& c = configs[i++ & 511];
    const std::string key = space.key(c);
    if (cache.find(key) == cache.end()) {
      cache.emplace(key, harmony::EvaluationResult{});
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StringKeyedCacheLookupStore);

// Single-threaded hit path through the concurrent cache: derive + shard pick
// + probe, with the hash computed once at derivation.
void BM_ConcurrentEvalCacheHit(benchmark::State& state) {
  const auto space = hotpath_space();
  harmony::engine::ConcurrentEvalCache cache(space);
  harmony::Rng rng(9);
  std::vector<harmony::Config> configs;
  for (int i = 0; i < 256; ++i) {
    configs.push_back(space.random_config(rng));
    cache.insert(configs.back(), harmony::EvaluationResult{});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(configs[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentEvalCacheHit);

void BM_SpMV(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto A = minipetsc::laplacian2d(n, n);
  minipetsc::Vec x(static_cast<std::size_t>(n) * n, 1.0);
  minipetsc::Vec y;
  for (auto _ : state) {
    A.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * A.nnz());
}
BENCHMARK(BM_SpMV)->Arg(64)->Arg(128)->Arg(256);

void BM_CgSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto A = minipetsc::laplacian2d(n, n);
  const minipetsc::PcJacobi pc(A);
  minipetsc::Vec b(static_cast<std::size_t>(n) * n, 1.0);
  for (auto _ : state) {
    minipetsc::Vec x;
    const auto res = minipetsc::cg_solve(A, b, x, pc);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_CgSolve)->Arg(16)->Arg(32)->Arg(64);

void BM_CavityResidual(benchmark::State& state) {
  minipetsc::CavityProblem p;
  p.nx = 33;
  p.ny = 33;
  const auto F = p.residual();
  const minipetsc::Vec x = p.initial_guess();
  minipetsc::Vec f;
  for (auto _ : state) {
    F(x, f);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * p.nx * p.ny);
}
BENCHMARK(BM_CavityResidual);

void BM_PopBlockDecomposition(benchmark::State& state) {
  const minipop::PopGrid grid = minipop::PopGrid::production();
  for (auto _ : state) {
    const minipop::BlockDecomposition d(grid, {180, 100}, 480);
    benchmark::DoNotOptimize(d.ocean_blocks());
  }
}
BENCHMARK(BM_PopBlockDecomposition);

void BM_PopStepModel(benchmark::State& state) {
  const minipop::PopGrid grid = minipop::PopGrid::production();
  const minipop::PopModel model(grid);
  const auto machine = simcluster::presets::nersc_sp3(60, 8);
  const auto space = minipop::make_param_space(32);
  const auto mult =
      minipop::evaluate_multipliers(space, minipop::default_config(space));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.step_time(machine, 8, {180, 100}, mult).total_s);
  }
}
BENCHMARK(BM_PopStepModel);

void BM_Gs2StepModel(benchmark::State& state) {
  const minigs2::Gs2Model model;
  const auto machine = simcluster::presets::seaborg(8, 16);
  minigs2::Resolution res;
  res.ntheta = 26;
  res.negrid = 16;
  const minigs2::Layout layout("yxles");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model
            .step_time(machine, 128, res, layout, minigs2::CollisionModel::None)
            .step_s);
  }
}
BENCHMARK(BM_Gs2StepModel);

void BM_ProtocolRoundtrip(benchmark::State& state) {
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("n", 1, 64));
  space.add(harmony::Parameter::Real("alpha", 0.0, 2.0));
  space.add(harmony::Parameter::Enum("layout", {"lxyes", "yxles"}));
  const auto config = space.default_config();
  for (auto _ : state) {
    const auto line = harmony::proto::encode_config(space, config);
    const auto msg = harmony::proto::parse_line("CONFIG " + line);
    benchmark::DoNotOptimize(harmony::proto::decode_config(space, msg->args));
  }
}
BENCHMARK(BM_ProtocolRoundtrip);

// The zero-copy variant of the same round trip: append-into-buffer encode,
// MessageView tokenize, string_view decode. Steady state allocates nothing.
void BM_ProtocolRoundtripView(benchmark::State& state) {
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("n", 1, 64));
  space.add(harmony::Parameter::Real("alpha", 0.0, 2.0));
  space.add(harmony::Parameter::Enum("layout", {"lxyes", "yxles"}));
  const auto config = space.default_config();
  std::string line;
  harmony::proto::MessageView msg;
  for (auto _ : state) {
    line.assign("CONFIG ");
    harmony::proto::encode_config(space, config, line);
    benchmark::DoNotOptimize(harmony::proto::parse_line(line, msg));
    benchmark::DoNotOptimize(harmony::proto::decode_config(space, msg));
  }
}
BENCHMARK(BM_ProtocolRoundtripView);

void BM_ProtocolEncodeConfigAppend(benchmark::State& state) {
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("n", 1, 64));
  space.add(harmony::Parameter::Real("alpha", 0.0, 2.0));
  space.add(harmony::Parameter::Enum("layout", {"lxyes", "yxles"}));
  const auto config = space.default_config();
  std::string out;
  for (auto _ : state) {
    out.clear();
    harmony::proto::encode_config(space, config, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ProtocolEncodeConfigAppend);

void BM_ProtocolParseLineView(benchmark::State& state) {
  const std::string line = "REPORT+FETCH 3.14159 extra fields to tokenize";
  harmony::proto::MessageView msg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harmony::proto::parse_line(line, msg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolParseLineView);

// LineReader batch tokenization over a real (unix-domain) socket: one write
// of `batch` lines, then read_line(out) pulls them back out of the buffer.
// Items processed = lines, so the per-line cost is directly visible.
void BM_LineReaderTokenize(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    state.SkipWithError("socketpair failed");
    return;
  }
  harmony::net::Socket writer(fds[0]);
  harmony::net::Socket reader_sock(fds[1]);
  harmony::net::LineReader reader(reader_sock);
  std::string payload;
  for (int i = 0; i < batch; ++i) {
    payload += "REPORT+FETCH 1.25 trailing-field\n";
  }
  std::string line;
  for (auto _ : state) {
    if (!writer.send_all(payload)) {
      state.SkipWithError("send failed");
      return;
    }
    for (int i = 0; i < batch; ++i) {
      if (!reader.read_line(line)) {
        state.SkipWithError("read_line failed");
        return;
      }
      benchmark::DoNotOptimize(line.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LineReaderTokenize)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
