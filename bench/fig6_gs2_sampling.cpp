// Regenerates paper Fig. 6: the performance distribution of the GS2
// configuration space, obtained by systematic sampling (~10^4 of the ~10^5
// configurations), against which the Active Harmony result is placed.
// Paper's findings: only a small fraction (<2%) of configurations run in
// under 200 seconds; the Harmony result lands within the top 5% while
// evaluating a tiny fraction of the space.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/harmony.hpp"
#include "minigs2/minigs2.hpp"
#include "obs/bench_report.hpp"
#include "simcluster/simcluster.hpp"

using namespace minigs2;
using harmony::Config;

int main() {
  std::printf("== Fig. 6: GS2 performance distribution via systematic sampling ==\n\n");
  const Gs2Model model;

  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("negrid", 4, 16));
  space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
  space.add(harmony::Parameter::Integer("nodes", 1, 64));
  std::printf("full lattice: %.0f configurations (x 120 layouts ~ O(10^5) raw)\n",
              space.total_points());

  const auto evaluate = [&](const Config& c) {
    Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    harmony::EvaluationResult r;
    r.objective = model.run_time(machine, 2 * nodes, res, Layout("lxyes"),
                                 CollisionModel::None, 1000);
    return r;
  };

  // Systematic sampling of the whole space (all 13 x 12 x 64 = 9,984 points
  // here — the space is small enough to sweep densely).
  harmony::SystematicSampler sampler(space, std::vector<int>{13, 12, 64});
  harmony::TunerOptions sopts;
  sopts.max_iterations = 20000;
  sopts.max_proposals = 40000;
  harmony::Tuner sample_tuner(space, sopts);
  const auto sampled_result = sample_tuner.run(sampler, evaluate);
  std::vector<double> times;
  for (const auto& e : sample_tuner.history().entries()) {
    if (!e.cached && e.result.valid) times.push_back(e.result.objective);
  }
  std::printf("systematically sampled %zu configurations\n\n", times.size());

  // Histogram of the distribution (the figure's bars).
  std::sort(times.begin(), times.end());
  const double lo = times.front();
  const double hi = times.back();
  const int buckets = 12;
  std::vector<int> counts(buckets, 0);
  for (const double t : times) {
    const int b = std::min(buckets - 1,
                           static_cast<int>(buckets * (t - lo) / (hi - lo)));
    ++counts[static_cast<std::size_t>(b)];
  }
  std::printf("performance distribution (execution time buckets):\n");
  const int max_count = *std::max_element(counts.begin(), counts.end());
  for (int b = 0; b < buckets; ++b) {
    const double left = lo + (hi - lo) * b / buckets;
    const double right = lo + (hi - lo) * (b + 1) / buckets;
    std::printf("  %7.1f-%-7.1f s |%s %d\n", left, right,
                harmony::bar(counts[static_cast<std::size_t>(b)], max_count, 40)
                    .c_str(),
                counts[static_cast<std::size_t>(b)]);
  }

  const double best_sampled = times.front();
  const auto below200 = static_cast<double>(
      std::lower_bound(times.begin(), times.end(), 200.0) - times.begin());
  std::printf("\nbest sampled configuration: %s = %.1f s\n",
              space.format(*sampled_result.best).c_str(), best_sampled);
  std::printf("configurations under 200 s: %.1f%% (paper: <2%%)\n",
              100.0 * below200 / static_cast<double>(times.size()));

  // Active Harmony search with a small budget.
  Config start = space.default_config();
  space.set(start, "negrid", std::int64_t{16});
  space.set(start, "ntheta", std::int64_t{26});
  space.set(start, "nodes", std::int64_t{32});
  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 8;
  harmony::NelderMead nm(space, nm_opts, start);
  harmony::TunerOptions hopts;
  hopts.max_iterations = 90;
  harmony::Tuner tuner(space, hopts);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = tuner.run(nm, evaluate);
  const double search_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto rank = static_cast<double>(
      std::lower_bound(times.begin(), times.end(), result.best_result.objective) -
      times.begin());
  std::printf("\nActive Harmony found %s = %.1f s in %d evaluations\n",
              space.format(*result.best).c_str(), result.best_result.objective,
              result.iterations);
  std::printf("that is within the top %.1f%% of the sampled distribution "
              "(paper: top 5%%)\n",
              100.0 * rank / static_cast<double>(times.size()));

  harmony::obs::BenchReport report;
  report.name = "fig6_gs2_sampling";
  report.best_config = space.format(*result.best);
  report.best_value = result.best_result.objective;
  report.evaluations = result.iterations;
  report.evals_to_best = tuner.history().evals_to_best();
  report.wall_s = search_wall_s;
  // How close the budgeted search got to the densely sampled optimum.
  report.speedup = best_sampled / result.best_result.objective;
  report.metrics["best_sampled_s"] = best_sampled;
  report.metrics["rank_pct"] = 100.0 * rank / static_cast<double>(times.size());
  if (const auto path = report.write_file(harmony::obs::bench_out_dir())) {
    std::printf("wrote %s\n", path->c_str());
  }
  return 0;
}
