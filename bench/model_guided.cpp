// Model-guided two-stage search on the paper's Fig. 6 GS2 space: how many
// real evaluations each search needs to land in the top 5% of the
// performance distribution.
//
// Three contenders over the same 13 x 12 x 64 lattice and objective:
//
//  1. the 368-point systematic sweep (the paper's sampling baseline),
//  2. plain GeneticSearch on a 92-evaluation budget (25% of the sweep),
//  3. GeneticSearch behind SurrogateEvalBackend on the same budget — each
//     population is pre-ranked by a k-NN model and only the predicted-best
//     plus one exploration candidate are measured for real.
//
// Writes BENCH_model_guided.json with evals-to-top-5% per contender. The
// gate-tracked copy of this workload lives in bench_gate (gate_model_guided).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/harmony.hpp"
#include "engine/engine.hpp"
#include "minigs2/minigs2.hpp"
#include "obs/bench_report.hpp"
#include "simcluster/simcluster.hpp"

using harmony::Config;
using Clock = std::chrono::steady_clock;

namespace {

/// Distinct evaluations spent before the first one at or under `threshold`
/// (0 = never got there).
int evals_to_threshold(const harmony::History& h, double threshold) {
  int distinct = 0;
  for (const auto& e : h.entries()) {
    if (!e.cached) ++distinct;
    if (!e.cached && e.result.valid && e.result.objective <= threshold) {
      return distinct;
    }
  }
  return 0;
}

}  // namespace

int main() {
  std::printf("== model-guided two-stage search vs the Fig. 6 sweep ==\n\n");
  const minigs2::Gs2Model model;
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("negrid", 4, 16));
  space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
  space.add(harmony::Parameter::Integer("nodes", 1, 64));

  const harmony::Evaluator evaluate = [&](const Config& c) {
    minigs2::Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    harmony::EvaluationResult r;
    r.objective = model.run_time(machine, 2 * nodes, res,
                                 minigs2::Layout("lxyes"),
                                 minigs2::CollisionModel::None, 1000);
    return r;
  };

  // ---- contender 1: the 368-point systematic sweep -------------------------
  harmony::SystematicSampler sweep(space, std::vector<int>{4, 4, 23});
  harmony::TunerOptions sweep_opts;
  sweep_opts.max_iterations = 368;
  sweep_opts.max_proposals = 4000;
  harmony::Tuner sweep_tuner(space, sweep_opts);
  const auto sweep_out = sweep_tuner.run(sweep, evaluate);

  std::vector<double> times;
  for (const auto& e : sweep_tuner.history().entries()) {
    if (!e.cached && e.result.valid) times.push_back(e.result.objective);
  }
  std::sort(times.begin(), times.end());
  const double top5 =
      times[static_cast<std::size_t>(0.05 * static_cast<double>(times.size()))];
  const int sweep_to_top5 = evals_to_threshold(sweep_tuner.history(), top5);
  std::printf("sweep:        %zu evals, best %.1f s, top-5%% threshold %.1f s, "
              "%d evals to top-5%%\n",
              times.size(), sweep_out.best_result.objective, top5,
              sweep_to_top5);

  // ---- contenders 2 and 3: GA alone, GA behind the surrogate ---------------
  const auto make_ga = [&] {
    harmony::GeneticOptions g;
    g.population = 16;
    g.generations = 100;  // budget-limited, not generation-limited
    g.mutation = 0.25;
    g.seed = 6;
    return harmony::GeneticSearch(space, g);
  };
  constexpr int kBudget = 92;  // 25% of the sweep

  auto ga_plain = make_ga();
  harmony::SerialEvalBackend plain_backend(evaluate);
  harmony::EvalCache plain_cache(space);
  harmony::ControllerLimits limits;
  limits.max_evaluations = kBudget;
  limits.max_proposals = 100000;
  harmony::SearchController plain(space, limits, {}, nullptr, &plain_cache);
  const auto plain_out = plain.run(
      static_cast<harmony::BatchSearchStrategy&>(ga_plain), plain_backend);
  const int plain_to_top5 = evals_to_threshold(plain.history(), top5);
  std::printf("GA:           %d evals, best %.1f s, %d evals to top-5%%\n",
              plain_out.evaluations, plain_out.best_objective, plain_to_top5);

  auto ga_guided = make_ga();
  harmony::engine::KnnSurrogate knn(space, {});
  harmony::SerialEvalBackend real_backend(evaluate);
  harmony::engine::SurrogateBackendOptions sopts;
  sopts.top_k = 4;
  sopts.rank_window = 16;
  harmony::engine::SurrogateEvalBackend guided_backend(real_backend, knn, sopts);
  harmony::EvalCache guided_cache(space);
  harmony::SearchController guided(space, limits, {}, nullptr, &guided_cache);
  const auto t0 = Clock::now();
  const auto guided_out = guided.run(
      static_cast<harmony::BatchSearchStrategy&>(ga_guided), guided_backend);
  const double guided_wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const int guided_to_top5 = evals_to_threshold(guided.history(), top5);
  std::printf("GA+surrogate: %d evals, best %.1f s, %d evals to top-5%% "
              "(%zu forwarded, %zu model-answered)\n",
              guided_out.evaluations, guided_out.best_objective,
              guided_to_top5, guided_backend.forwarded(),
              guided_backend.skipped());

  std::printf("\nGA+surrogate best vs sweep best: %.3fx (<= 1.05 wanted) at "
              "%.0f%% of the sweep budget\n",
              guided_out.best_objective / sweep_out.best_result.objective,
              100.0 * guided_out.evaluations /
                  static_cast<double>(times.size()));

  harmony::obs::BenchReport report;
  report.name = "model_guided";
  report.best_config = space.format(*guided_out.best);
  report.best_value = guided_out.best_objective;
  report.evaluations = guided_out.evaluations;
  report.evals_to_best = guided.history().evals_to_best();
  report.wall_s = guided_wall_s;
  report.speedup = guided_out.best_objective > 0.0
                       ? sweep_out.best_result.objective / guided_out.best_objective
                       : 0.0;
  report.metrics["top5_threshold_s"] = top5;
  report.metrics["sweep_best_s"] = sweep_out.best_result.objective;
  report.metrics["sweep_evals_to_top5"] = sweep_to_top5;
  report.metrics["ga_evals_to_top5"] = plain_to_top5;
  report.metrics["ga_best_s"] = plain_out.best_objective;
  report.metrics["guided_evals_to_top5"] = guided_to_top5;
  report.metrics["surrogate_forwarded"] =
      static_cast<double>(guided_backend.forwarded());
  report.metrics["surrogate_skipped"] =
      static_cast<double>(guided_backend.skipped());
  if (const auto path = report.write_file(harmony::obs::bench_out_dir())) {
    std::printf("wrote %s\n", path->c_str());
  }
  return 0;
}
