// Wall-clock speedup of the parallel evaluation engine over the serial
// off-line driver, on the two searches the paper spends the most runs on:
//
//  * the Fig. 6 GS2 systematic-sampling sweep (the paper's whole-space
//    sample; here the 368-point 4 x 4 x 23 plan) driven by the native
//    BatchSystematicSampler, and
//  * the Fig. 4 POP block-size search driven by the speculative Nelder-Mead.
//
// Every short run holds its worker for a small fixed wall-clock latency
// (standing in for the launch + warm-up + measure latency a real
// representative short run costs on the cluster; the simulated cluster
// seconds remain the objective). The serial driver pays that latency 368
// times in a row; the engine overlaps it across the pool, which is exactly
// the headroom a real tuning service has, since short runs execute on the
// cluster's nodes, not the tuning host.
//
// Pass criteria checked at exit (non-zero on failure):
//  * every pool size reports the identical best configuration, and
//  * pool size 8 is at least 3x faster than the serial driver on the sweep.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/harmony.hpp"
#include "engine/engine.hpp"
#include "minigs2/minigs2.hpp"
#include "minipop/minipop.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "simcluster/simcluster.hpp"

using harmony::Config;
using Clock = std::chrono::steady_clock;

namespace {

constexpr auto kShortRunLatency = std::chrono::milliseconds(2);

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  std::printf("== parallel_speedup: engine wall-clock vs the serial driver ==\n");

  bool ok = true;

  // ---- Fig. 6 sweep: 368-point systematic sample of the GS2 space ----
  {
    std::printf("\n-- Fig. 6 GS2 sweep: 368-point systematic sample (4x4x23) --\n");
    const minigs2::Gs2Model model;
    harmony::ParamSpace space;
    space.add(harmony::Parameter::Integer("negrid", 4, 16));
    space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
    space.add(harmony::Parameter::Integer("nodes", 1, 64));
    const std::vector<int> plan{4, 4, 23};  // 368 evenly spaced points

    const auto short_run = [&](const Config& c, int steps) {
      minigs2::Resolution res;
      res.negrid = static_cast<int>(space.get_int(c, "negrid"));
      res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
      const int nodes = static_cast<int>(space.get_int(c, "nodes"));
      const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
      harmony::ShortRunResult r;
      r.measured_s = model.run_time(machine, 2 * nodes, res,
                                    minigs2::Layout("lxyes"),
                                    minigs2::CollisionModel::None, steps);
      r.warmup_s = 0.2 * r.measured_s;
      std::this_thread::sleep_for(kShortRunLatency);  // cluster-side latency
      return r;
    };

    harmony::OfflineOptions serial_opts;
    serial_opts.max_runs = 368;
    const auto t0 = Clock::now();
    harmony::OfflineDriver serial_driver(space, serial_opts);
    harmony::SystematicSampler serial_sweep(space, plan);
    const auto serial_result = serial_driver.tune(serial_sweep, short_run);
    const double serial_wall = seconds_since(t0);
    const std::string serial_best = space.format(*serial_result.best);
    std::printf("serial: %d runs, best %s = %.1f s (wall %.2f s)\n",
                serial_result.runs, serial_best.c_str(),
                serial_result.best_measured_s, serial_wall);

    harmony::TextTable table(
        {"pool", "runs", "wall (s)", "speedup", "best config", "best (s)"});
    double wall8 = serial_wall;
    int runs8 = serial_result.runs;
    harmony::obs::SearchTracer tracer;  // attached to the pool-8 run
    for (const int pool : {1, 2, 4, 8}) {
      harmony::engine::ParallelOfflineOptions opts;
      opts.max_runs = 368;
      opts.pool_size = pool;
      opts.max_batch = 4 * pool;
      if (pool == 8) opts.tracer = &tracer;
      const auto t1 = Clock::now();
      harmony::engine::ParallelOfflineDriver driver(space, opts);
      harmony::engine::BatchSystematicSampler sweep(space, plan);
      const auto result = driver.tune(sweep, short_run);
      const double wall = seconds_since(t1);
      if (pool == 8) {
        wall8 = wall;
        runs8 = result.runs;
      }
      const std::string best = space.format(*result.best);
      table.add_row({std::to_string(pool), std::to_string(result.runs),
                     harmony::fmt(wall), harmony::speedup(serial_wall, wall),
                     best, harmony::fmt(result.best_measured_s, 1)});
      if (best != serial_best) {
        std::printf("ERROR: pool %d best %s != serial best %s\n", pool,
                    best.c_str(), serial_best.c_str());
        ok = false;
      }
    }
    table.print(std::cout);
    const double sweep_speedup = serial_wall / wall8;
    std::printf("pool 8 speedup on the sweep: %.2fx (required >= 3x)\n",
                sweep_speedup);
    if (sweep_speedup < 3.0) ok = false;

    // Export the pool-8 search trace (one lane per pool worker) for
    // chrome://tracing, plus the machine-readable report for CI artifacts.
    const std::string out_dir = harmony::obs::bench_out_dir();
    const std::string trace_path = out_dir + "/trace_parallel_speedup.json";
    std::ofstream trace_os(trace_path);
    if (trace_os) {
      tracer.write_chrome_trace(trace_os);
      std::printf("wrote %s (%zu events across %zu worker lanes)\n",
                  trace_path.c_str(), tracer.size(), tracer.lanes());
    }

    harmony::obs::BenchReport report;
    report.name = "parallel_speedup_gs2_sweep";
    report.best_config = serial_best;
    report.best_value = serial_result.best_measured_s;
    report.evaluations = runs8;
    report.evals_to_best = serial_driver.history().evals_to_best();
    report.wall_s = wall8;
    report.speedup = sweep_speedup;
    report.metrics["serial_wall_s"] = serial_wall;
    report.metrics["trace_lanes"] = static_cast<double>(tracer.lanes());
    if (const auto path = report.write_file(out_dir)) {
      std::printf("wrote %s\n", path->c_str());
    }
  }

  // ---- Fig. 4 search: POP block size via speculative Nelder-Mead ----
  {
    std::printf("\n-- Fig. 4 POP block-size search: speculative Nelder-Mead --\n");
    const minipop::PopGrid grid = minipop::PopGrid::production();
    const minipop::PopModel model(grid);
    const auto pspace = minipop::make_param_space(32);
    const auto mult =
        minipop::evaluate_multipliers(pspace, minipop::default_config(pspace));
    const auto machine = simcluster::presets::nersc_sp3(30, 16);

    harmony::ParamSpace space;
    space.add(harmony::Parameter::Integer("block_x", 30, 720, 6));
    space.add(harmony::Parameter::Integer("block_y", 24, 600, 4));
    Config start = space.default_config();
    space.set(start, "block_x", std::int64_t{180});
    space.set(start, "block_y", std::int64_t{100});

    const auto short_run = [&](const Config& c, int) {
      const minipop::BlockShape shape{
          static_cast<int>(space.get_int(c, "block_x")),
          static_cast<int>(space.get_int(c, "block_y"))};
      harmony::ShortRunResult r;
      r.measured_s = model.step_time(machine, 16, shape, mult).total_s;
      std::this_thread::sleep_for(kShortRunLatency);
      return r;
    };

    harmony::NelderMeadOptions nm_opts;
    nm_opts.max_restarts = 2;

    harmony::OfflineOptions serial_opts;
    serial_opts.max_runs = 400;
    const auto t0 = Clock::now();
    harmony::OfflineDriver serial_driver(space, serial_opts);
    harmony::NelderMead serial_nm(space, nm_opts, start);
    const auto serial_result = serial_driver.tune(serial_nm, short_run);
    const double serial_wall = seconds_since(t0);
    const std::string serial_best = space.format(*serial_result.best);
    std::printf("serial: %d runs, best %s = %.4f s/step (wall %.2f s)\n",
                serial_result.runs, serial_best.c_str(),
                serial_result.best_measured_s, serial_wall);

    harmony::TextTable table(
        {"pool", "runs", "wall (s)", "speedup", "best config"});
    double wall8 = serial_wall;
    int runs8 = serial_result.runs;
    for (const int pool : {1, 2, 4, 8}) {
      harmony::engine::ParallelOfflineOptions opts;
      opts.max_runs = 400;
      opts.pool_size = pool;
      const auto t1 = Clock::now();
      harmony::engine::ParallelOfflineDriver driver(space, opts);
      harmony::engine::SpeculativeNelderMead spec(space, nm_opts, start);
      const auto result = driver.tune(spec, short_run);
      const double wall = seconds_since(t1);
      if (pool == 8) {
        wall8 = wall;
        runs8 = result.runs;
      }
      table.add_row({std::to_string(pool), std::to_string(result.runs),
                     harmony::fmt(wall), harmony::speedup(serial_wall, wall),
                     space.format(*result.best)});
      if (space.format(*result.best) != serial_best) {
        std::printf("ERROR: pool %d best diverged from serial\n", pool);
        ok = false;
      }
    }
    table.print(std::cout);
    std::printf("(speculation evaluates reflection/expansion/contractions "
                "concurrently;\n speedup is bounded by the simplex's ~2 "
                "useful points per iteration)\n");

    harmony::obs::BenchReport report;
    report.name = "parallel_speedup_pop_nm";
    report.best_config = serial_best;
    report.best_value = serial_result.best_measured_s;
    report.evaluations = runs8;
    report.evals_to_best = serial_driver.history().evals_to_best();
    report.wall_s = wall8;
    report.speedup = serial_wall / wall8;
    report.metrics["serial_wall_s"] = serial_wall;
    if (const auto path =
            report.write_file(harmony::obs::bench_out_dir())) {
      std::printf("wrote %s\n", path->c_str());
    }
  }

  if (!ok) {
    std::printf("\nFAILED: see errors above\n");
    return 1;
  }
  std::printf("\nall pool sizes reproduced the serial best configurations\n");
  return 0;
}
