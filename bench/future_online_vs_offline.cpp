// The paper's future-work experiment (Section IX): "apply Active Harmony to
// scientific programs with parameters that can be changed during runtime.
// The experiment will compare the results when tuning the parameters
// on-line and off-line separately."
//
// Target: the POP runtime parameters on Hockney (32 CPUs). All of them are
// namelist values POP reads at startup — but several (the mixing and
// interpolation choices) could be switched between steps. We compare:
//
//   on-line  — one continuous run; every tuning iteration costs exactly one
//              simulated time step at the candidate configuration;
//   off-line — one representative short run (10 steps) per iteration, plus
//              the restart and warm-up overhead the paper bills.
//
// Both use the same Nelder-Mead kernel and the same budget of distinct
// configurations.

#include <cstdio>
#include <iostream>

#include "core/harmony.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipop;
using harmony::Config;

int main() {
  std::printf("== Future work (Section IX): on-line vs off-line tuning ==\n\n");
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto machine = simcluster::presets::hockney(8, 4);
  const auto space = make_param_space(32);
  const auto start = default_config(space);
  const double t_default =
      model.step_time(machine, 4, {180, 100},
                      evaluate_multipliers(space, start))
          .total_s;

  const int budget = 80;

  // --- on-line: Session drives the running application ------------------
  double online_best = 0.0;
  double online_cost = 0.0;
  int online_steps = 0;
  {
    harmony::Session session("pop-online");
    // Bind every parameter through the Session API.
    session.add_int("num_iotasks", 1, 32);
    for (const auto& spec : parameter_table()) {
      session.add_enum(spec.name, spec.choices);
    }
    harmony::NelderMeadOptions opts;
    opts.max_restarts = 4;
    opts.max_stall = 2 * budget;
    session.set_nelder_mead_options(opts);

    while (session.fetch() && online_steps < budget) {
      // One tuning iteration = one simulated time step under the candidate.
      const double step =
          model.step_time(machine, 4, {180, 100},
                          evaluate_multipliers(space, session.current()))
              .total_s;
      online_cost += step;  // tuning happens inside the production run
      ++online_steps;
      session.report(step);
    }
    online_best = session.best_performance();
  }

  // --- off-line: representative short runs -----------------------------
  harmony::OfflineOptions oopts;
  oopts.short_run_steps = 10;
  oopts.max_runs = budget;
  oopts.restart_overhead_s = 30.0;  // batch-queue relaunch
  harmony::OfflineDriver driver(space, oopts);
  // Same kernel as the on-line session, built through the one registry path.
  const auto nm = harmony::StrategyRegistry::make(
      "nelder-mead", space,
      {{"max_restarts", "4"}, {"max_stall", std::to_string(2 * budget)}}, start);
  const auto offline = driver.tune(*nm, [&](const Config& c, int steps) {
    harmony::ShortRunResult r;
    r.measured_s = steps * model.step_time(machine, 4, {180, 100},
                                           evaluate_multipliers(space, c))
                               .total_s;
    r.warmup_s = 0.2 * r.measured_s;
    return r;
  });

  harmony::TextTable t({"mode", "best step time (s)", "improvement",
                        "total tuning cost (s)", "iterations"});
  t.add_row({"default (no tuning)", harmony::fmt(t_default, 4), "-", "0", "-"});
  t.add_row({"on-line", harmony::fmt(online_best, 4),
             harmony::percent_improvement(t_default, online_best),
             harmony::fmt(online_cost, 1), std::to_string(online_steps)});
  t.add_row({"off-line", harmony::fmt(offline.best_measured_s / 10.0, 4),
             harmony::percent_improvement(t_default,
                                          offline.best_measured_s / 10.0),
             harmony::fmt(offline.total_tuning_cost_s, 1),
             std::to_string(offline.runs)});
  t.print(std::cout);

  std::printf("\nboth modes find comparable configurations; the off-line bill "
              "is dominated\nby restart/warm-up overhead (%.0f s of restarts "
              "alone), which is the paper's\nrationale for preferring on-line "
              "tuning whenever a parameter can be changed\nduring the run "
              "(Section VII).\n",
              30.0 * offline.runs);
  return 0;
}
