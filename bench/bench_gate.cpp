// bench_gate: the CI benchmark regression gate.
//
// Runs two small, fully deterministic tuning workloads (a GS2 systematic
// sweep through the parallel engine and a POP Nelder-Mead search through the
// serial driver) plus a gate-sized tuning-server load test, writes one
// BENCH_<name>.json report per workload, and compares the fresh results
// against checked-in baselines:
//
//  * evaluations-to-best — how many distinct short runs the search needed
//    before it first reached its final best objective. Deterministic: a
//    change here means the search behaviour itself changed.
//  * wall-clock ratio — workload wall time divided by the wall time of a
//    fixed in-process calibration loop measured in the same run. Comparing
//    ratios instead of raw seconds makes the baselines roughly
//    machine-independent; each evaluation also performs a fixed amount of
//    arithmetic so host-wide slowdowns cancel out of the ratio.
//  * evals/sec ratio — for the server workload only: event-loop+pipelined
//    throughput over legacy+blocking throughput (bench/server_load.hpp).
//    Machine-portable for the same reason ratios are above; it must not
//    drop below its baseline by more than --speedup-tol.
//  * p99/p50 latency ratio — for the latency workload only: tail over median
//    per-request latency of the pipelined server under gate-sized load. A
//    ratio (not raw milliseconds) so the check survives host speed
//    differences; it must not exceed its baseline by more than
//    --latency-tol (a new lock, a quantile scan on the request path, or a
//    stalled reactor widens the tail long before it moves the median).
//
// Exits nonzero when either metric regresses past its tolerance (default
// 20%, per --evals-tol / --wall-tol) or when the best objective itself gets
// worse. `--update` rewrites the baselines instead of comparing.
//
// AH_GATE_SLOWDOWN_US=<n> injects an n-microsecond busy spin into every
// evaluation — a deliberate slowdown used by the test suite to prove the
// gate actually trips.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/harmony.hpp"
#include "core/server.hpp"
#include "engine/engine.hpp"
#include "fleet/dispatcher.hpp"
#include "fleet/substrates.hpp"
#include "fleet/worker_backend.hpp"
#include "fleet/worker_client.hpp"
#include "minigs2/minigs2.hpp"
#include "minipop/minipop.hpp"
#include "obs/bench_report.hpp"
#include "server_load.hpp"
#include "simcluster/simcluster.hpp"

using harmony::Config;
namespace obs = harmony::obs;
using Clock = std::chrono::steady_clock;

namespace {

struct GateOptions {
  std::string baselines_dir;  // required unless --update writes them
  std::string out_dir = obs::bench_out_dir();
  std::string only;  // run a single workload by report name
  bool update = false;
  double evals_tol = 0.20;
  double wall_tol = 0.20;
  double speedup_tol = 0.50;  // allowed drop in the server evals/s ratio
  double latency_tol = 1.00;  // allowed growth in the server p99/p50 ratio
  int reps = 3;  // wall time is the min over this many repetitions
};

int g_slowdown_us = 0;  // from AH_GATE_SLOWDOWN_US

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fixed-iteration dependent arithmetic chain. Used both as the per-eval
/// workload and (with a larger count) as the calibration loop, so the
/// wall-clock ratio is dominated by work that scales identically on any host.
double spin_work(std::uint64_t iters) {
  double x = 1.0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = x * 1.0000000931322575 + 1e-9;  // dependent chain: not vectorizable
  }
  return x;
}
volatile double g_spin_sink = 0.0;

void per_eval_work() {
  g_spin_sink = spin_work(400'000);
  if (g_slowdown_us > 0) {
    const auto until = Clock::now() + std::chrono::microseconds(g_slowdown_us);
    while (Clock::now() < until) {
    }
  }
}

/// Wall time of the calibration loop (min over 3 measurements).
double calibrate() {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = Clock::now();
    g_spin_sink = spin_work(20'000'000);
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

// ---- workload 1: GS2 systematic sweep through the parallel engine ---------

obs::BenchReport run_gate_gs2_sweep(int reps) {
  const minigs2::Gs2Model model;
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("negrid", 4, 16));
  space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
  space.add(harmony::Parameter::Integer("nodes", 1, 64));
  const std::vector<int> plan{4, 4, 23};  // 368 evenly spaced points

  const auto short_run = [&](const Config& c, int steps) {
    minigs2::Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    harmony::ShortRunResult r;
    r.measured_s = model.run_time(machine, 2 * nodes, res,
                                  minigs2::Layout("lxyes"),
                                  minigs2::CollisionModel::None, steps);
    per_eval_work();
    return r;
  };

  obs::BenchReport report;
  report.name = "gate_gs2_sweep";
  double wall = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    harmony::engine::ParallelOfflineOptions opts;
    opts.max_runs = 368;
    opts.pool_size = 4;
    opts.max_batch = 16;
    harmony::engine::ParallelOfflineDriver driver(space, opts);
    harmony::engine::BatchSystematicSampler sweep(space, plan);
    const auto t0 = Clock::now();
    const auto result = driver.tune(sweep, short_run);
    wall = std::min(wall, seconds_since(t0));
    report.best_config = space.format(*result.best);
    report.best_value = result.best_measured_s;
    report.evaluations = result.runs;
    report.evals_to_best = driver.history().evals_to_best();
    report.metrics["cache_hits"] =
        static_cast<double>(result.cache_hits + result.cache_coalesced);
    report.metrics["batches"] = result.batches;
  }
  report.wall_s = wall;
  return report;
}

// ---- workload 2: POP block-size Nelder-Mead through the serial driver -----

obs::BenchReport run_gate_pop_nm(int reps) {
  const minipop::PopGrid grid = minipop::PopGrid::production();
  const minipop::PopModel model(grid);
  const auto pspace = minipop::make_param_space(32);
  const auto mult =
      minipop::evaluate_multipliers(pspace, minipop::default_config(pspace));
  const auto machine = simcluster::presets::nersc_sp3(30, 16);

  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("block_x", 30, 720, 6));
  space.add(harmony::Parameter::Integer("block_y", 24, 600, 4));
  Config start = space.default_config();
  space.set(start, "block_x", std::int64_t{180});
  space.set(start, "block_y", std::int64_t{100});

  const auto short_run = [&](const Config& c, int) {
    const minipop::BlockShape shape{
        static_cast<int>(space.get_int(c, "block_x")),
        static_cast<int>(space.get_int(c, "block_y"))};
    harmony::ShortRunResult r;
    r.measured_s = model.step_time(machine, 16, shape, mult).total_s;
    per_eval_work();
    return r;
  };

  obs::BenchReport report;
  report.name = "gate_pop_nm";
  double wall = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    harmony::OfflineOptions opts;
    opts.max_runs = 400;
    harmony::OfflineDriver driver(space, opts);
    harmony::NelderMeadOptions nm_opts;
    nm_opts.max_restarts = 2;
    harmony::NelderMead nm(space, nm_opts, start);
    const auto t0 = Clock::now();
    const auto result = driver.tune(nm, short_run);
    wall = std::min(wall, seconds_since(t0));
    report.best_config = space.format(*result.best);
    report.best_value = result.best_measured_s;
    report.evaluations = result.runs;
    report.evals_to_best = driver.history().evals_to_best();
    report.metrics["cache_hits"] =
        static_cast<double>(driver.history().cached_count());
  }
  report.wall_s = wall;
  return report;
}

// ---- workload 3: model-guided GA+surrogate on the Fig. 6 space ------------

obs::BenchReport run_gate_model_guided(int reps) {
  const minigs2::Gs2Model model;
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("negrid", 4, 16));
  space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
  space.add(harmony::Parameter::Integer("nodes", 1, 64));

  const auto objective = [&](const Config& c) {
    minigs2::Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    return model.run_time(machine, 2 * nodes, res, minigs2::Layout("lxyes"),
                          minigs2::CollisionModel::None, 1000);
  };

  // Untimed reference pass: the 368-point sweep fixes the top-5% threshold
  // the guided search is gated against (deterministic, so computed once).
  harmony::SystematicSampler sweep(space, std::vector<int>{4, 4, 23});
  harmony::TunerOptions sweep_opts;
  sweep_opts.max_iterations = 368;
  sweep_opts.max_proposals = 4000;
  harmony::Tuner sweep_tuner(space, sweep_opts);
  const harmony::Evaluator plain_eval = [&](const Config& c) {
    harmony::EvaluationResult r;
    r.objective = objective(c);
    return r;
  };
  const auto sweep_out = sweep_tuner.run(sweep, plain_eval);
  std::vector<double> times;
  for (const auto& e : sweep_tuner.history().entries()) {
    if (!e.cached && e.result.valid) times.push_back(e.result.objective);
  }
  std::sort(times.begin(), times.end());
  const double top5 =
      times[static_cast<std::size_t>(0.05 * static_cast<double>(times.size()))];

  const harmony::Evaluator timed_eval = [&](const Config& c) {
    harmony::EvaluationResult r;
    r.objective = objective(c);
    per_eval_work();
    return r;
  };

  obs::BenchReport report;
  report.name = "gate_model_guided";
  double wall = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    harmony::GeneticOptions g;
    g.population = 16;
    g.generations = 100;  // budget-limited, not generation-limited
    g.mutation = 0.25;
    g.seed = 6;
    harmony::GeneticSearch ga(space, g);
    harmony::engine::KnnSurrogate knn(space, {});
    harmony::SerialEvalBackend real_backend(timed_eval);
    harmony::engine::SurrogateBackendOptions sopts;
    sopts.top_k = 4;
    sopts.rank_window = 16;
    harmony::engine::SurrogateEvalBackend backend(real_backend, knn, sopts);
    harmony::EvalCache cache(space);
    harmony::ControllerLimits limits;
    limits.max_evaluations = 92;  // 25% of the sweep
    limits.max_proposals = 100000;
    harmony::SearchController controller(space, limits, {}, nullptr, &cache);
    const auto t0 = Clock::now();
    const auto result = controller.run(
        static_cast<harmony::BatchSearchStrategy&>(ga), backend);
    wall = std::min(wall, seconds_since(t0));

    report.best_config = space.format(*result.best);
    report.best_value = result.best_objective;
    report.evaluations = result.evaluations;
    report.evals_to_best = controller.history().evals_to_best();
    int distinct = 0;
    int to_top5 = 0;
    for (const auto& e : controller.history().entries()) {
      if (!e.cached) ++distinct;
      if (!e.cached && e.result.valid && e.result.objective <= top5) {
        to_top5 = distinct;
        break;
      }
    }
    report.metrics["evals_to_top5"] = to_top5;
    report.metrics["top5_threshold_s"] = top5;
    report.metrics["sweep_best_s"] = sweep_out.best_result.objective;
    report.metrics["surrogate_forwarded"] =
        static_cast<double>(backend.forwarded());
    report.metrics["surrogate_skipped"] =
        static_cast<double>(backend.skipped());
  }
  report.wall_s = wall;
  return report;
}

// ---- workload 4: tuning-server throughput ratio ---------------------------

obs::BenchReport run_gate_server_throughput(int reps) {
  harmony::bench::LoadOptions load;
  load.clients = 16;
  load.evals = 100;
  load.window = 8;
  load.reactors = 2;
  const auto epoll = harmony::bench::best_of(reps, [&] {
    return harmony::bench::run_load(harmony::ServerThreading::kEventLoop,
                                    /*pipelined=*/true, load);
  });
  const auto legacy = harmony::bench::best_of(reps, [&] {
    return harmony::bench::run_load(harmony::ServerThreading::kLegacy,
                                    /*pipelined=*/false, load);
  });

  obs::BenchReport report;
  report.name = "gate_server_throughput";
  report.evaluations = static_cast<int>(epoll.evals + legacy.evals);
  report.wall_s = epoll.wall_s + legacy.wall_s;
  report.speedup = legacy.evals_per_s() > 0.0
                       ? epoll.evals_per_s() / legacy.evals_per_s()
                       : 0.0;
  report.metrics["evals_per_s_ratio"] = report.speedup;
  report.metrics["epoll_evals_per_s"] = epoll.evals_per_s();
  report.metrics["legacy_evals_per_s"] = legacy.evals_per_s();
  report.metrics["epoll_p99_ms"] = epoll.p99_ms;
  report.metrics["legacy_p99_ms"] = legacy.p99_ms;
  return report;
}

// ---- workload 5: tuning-server tail latency -------------------------------

obs::BenchReport run_gate_server_latency(int reps) {
  harmony::bench::LoadOptions load;
  load.clients = 16;
  load.evals = 100;
  load.window = 8;
  load.reactors = 2;
  // Best run by throughput: the quietest rep, so its tail is protocol cost,
  // not scheduler noise.
  const auto best = harmony::bench::best_of(reps, [&] {
    return harmony::bench::run_load(harmony::ServerThreading::kEventLoop,
                                    /*pipelined=*/true, load);
  });

  obs::BenchReport report;
  report.name = "gate_server_latency";
  report.evaluations = static_cast<int>(best.evals);
  report.wall_s = best.wall_s;
  report.metrics["p50_ms"] = best.p50_ms;
  report.metrics["p95_ms"] = best.p95_ms;
  report.metrics["p99_ms"] = best.p99_ms;
  report.metrics["p99_p50_ratio"] =
      best.p50_ms > 0.0 ? best.p99_ms / best.p50_ms : 0.0;
  report.metrics["evals_per_s"] = best.evals_per_s();
  return report;
}

// ---- workload 6: 1k-session multi-tenant storm -----------------------------

obs::BenchReport run_gate_server_sessions(int reps) {
  harmony::bench::StormOptions storm;
  storm.sessions = 1024;        // >= 1k concurrently live sessions
  storm.total_sessions = 1536;  // ~50% churn on top
  storm.evals = 8;              // short searches — admission-heavy load
  storm.batch = 4;
  storm.window = 2;
  storm.reactors = 2;
  storm.drivers = 2;
  storm.tenants = 4;
  storm.slow_every = 50;  // every 50th session is a deliberate slow reader
  const auto best = harmony::bench::best_of(
      reps, [&] { return harmony::bench::run_storm(storm); });

  obs::BenchReport report;
  report.name = "gate_server_sessions";
  report.evaluations = static_cast<int>(best.evals);
  report.wall_s = best.wall_s;
  report.metrics["sessions_total"] = best.sessions_completed;
  report.metrics["p50_ms"] = best.p50_ms;
  report.metrics["p99_ms"] = best.p99_ms;
  report.metrics["p99_p50_ratio"] =
      best.p50_ms > 0.0 ? best.p99_ms / best.p50_ms : 0.0;
  report.metrics["evals_per_s"] = best.evals_per_s();
  report.metrics["sessions_per_s"] = best.sessions_per_s();
  return report;
}

// ---- workload 7: evaluation-fleet scaling ratio ---------------------------

/// One fleet run: server + dispatcher + `nworkers` in-process WorkerClient
/// threads, a gate-sized random search over the synthetic substrate (cache
/// off, so every evaluation crosses the wire). Returns evals/s.
double run_fleet_point(int nworkers, int evals) {
  // 2 ms of simulated run cost per evaluation (a sleep on the worker): the
  // 4-worker/1-worker ratio then measures dispatch overlap, portably across
  // host core counts.
  const auto sub = harmony::fleet::make_substrate("synthetic", /*spin_us=*/2000);
  // Every remote run performs the gate's fixed per-evaluation work (and the
  // injected slowdown), same as the serial workloads.
  const harmony::ShortRunFn run = [&sub](const Config& c, int steps) {
    const auto r = sub->run(c, steps);
    per_eval_work();
    return r;
  };

  harmony::fleet::Dispatcher dispatcher(sub->space);
  harmony::ServerOptions sopts;
  sopts.fleet = &dispatcher;
  harmony::TuningServer server(sopts);
  if (!server.start()) return 0.0;

  std::vector<std::unique_ptr<harmony::fleet::WorkerClient>> clients;
  std::vector<std::thread> threads;
  const int port = server.port();
  for (int w = 0; w < nworkers; ++w) {
    harmony::fleet::WorkerClientOptions wopts;
    wopts.capacity = 2;
    clients.push_back(std::make_unique<harmony::fleet::WorkerClient>(wopts));
    harmony::fleet::WorkerClient* wc = clients.back().get();
    threads.emplace_back(
        [wc, &sub, &run, port] { (void)wc->run(port, sub->space, run, 1); });
  }

  double evals_per_s = 0.0;
  if (dispatcher.wait_for_workers(static_cast<std::size_t>(nworkers),
                                  std::chrono::milliseconds(5000))) {
    harmony::fleet::WorkerBackendOptions bopts;
    bopts.use_cache = false;
    harmony::fleet::WorkerEvalBackend backend(dispatcher, sub->space, bopts);
    harmony::ControllerLimits limits;
    limits.max_evaluations = evals;
    limits.max_proposals = evals * 8;
    harmony::SearchController controller(sub->space, limits);
    harmony::engine::BatchRandomSearch strategy(sub->space, evals * 8,
                                                /*seed=*/7);
    const auto t0 = Clock::now();
    const auto result = controller.run(strategy, backend);
    const double wall = seconds_since(t0);
    if (wall > 0.0) evals_per_s = result.evaluations / wall;
  }

  dispatcher.shutdown();
  server.stop();
  for (auto& t : threads) t.join();
  return evals_per_s;
}

obs::BenchReport run_gate_server_fleet(int reps) {
  constexpr int kEvals = 128;
  constexpr int kWorkers = 4;
  double one = 0.0;
  double four = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    // Both sides of the ratio measured back to back within a rep, so a host
    // slowdown hits both or drops the rep.
    const double o = run_fleet_point(1, kEvals);
    const double f = run_fleet_point(kWorkers, kEvals);
    if (o > one) {
      one = o;
      four = f;
    }
  }

  obs::BenchReport report;
  report.name = "gate_server_fleet";
  report.evaluations = 2 * kEvals * reps;
  report.speedup = one > 0.0 ? four / one : 0.0;
  report.metrics["evals_per_s_ratio"] = report.speedup;
  report.metrics["fleet_1w_evals_per_s"] = one;
  report.metrics["fleet_4w_evals_per_s"] = four;
  return report;
}

// ---- workload 8: eval hot path — index-space vs string-keyed caching ------

/// The string key the index space replaced, reproduced exactly: one
/// ostringstream per key and one per value (the pre-PointKey
/// ParamSpace::key + to_string(Value) implementations). The gate compares
/// representations, so the baseline must be the representation the search
/// core actually used, not today's append-based string renderer (which is
/// itself measured separately below).
std::string legacy_key(const Config& c) {
  std::ostringstream os;
  for (std::size_t i = 0; i < c.values.size(); ++i) {
    if (i != 0) os << '|';
    std::ostringstream vs;
    if (std::holds_alternative<std::int64_t>(c.values[i])) {
      vs << std::get<std::int64_t>(c.values[i]);
    } else if (std::holds_alternative<double>(c.values[i])) {
      vs << std::get<double>(c.values[i]);
    } else {
      vs << std::get<std::string>(c.values[i]);
    }
    os << vs.str();
  }
  return os.str();
}

/// Measures the controller-side cache hot path in isolation on the Fig. 6
/// GS2 space: derive a key for each candidate, probe the cache, store on
/// miss. Two implementations of the same access pattern run back to back —
/// the index-space PointKey path the search core uses now, and the
/// string-keyed unordered_map it replaced — and the gated number is their
/// throughput ratio (machine-portable for the same reason the other ratios
/// are: both sides run on the same host in the same process).
obs::BenchReport run_gate_eval_hotpath(int reps) {
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("negrid", 4, 16));
  space.add(harmony::Parameter::Integer("ntheta", 10, 32, 2));
  space.add(harmony::Parameter::Integer("nodes", 1, 64));
  harmony::Rng rng(42);
  std::vector<Config> configs;
  for (int i = 0; i < 368; ++i) configs.push_back(space.random_config(rng));
  constexpr int kPasses = 200;  // first pass stores, the rest hit
  const double ops =
      static_cast<double>(configs.size()) * static_cast<double>(kPasses);

  double string_s = 1e300;
  double fast_string_s = 1e300;
  double point_s = 1e300;
  double derive_s = 1e300;
  std::size_t hit_sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    {
      std::unordered_map<std::string, harmony::EvaluationResult> table;
      const auto t0 = Clock::now();
      for (int p = 0; p < kPasses; ++p) {
        for (const auto& c : configs) {
          std::string k = legacy_key(c);
          auto it = table.find(k);
          if (it == table.end()) {
            table.emplace(std::move(k), harmony::EvaluationResult{});
          } else {
            ++hit_sink;
          }
        }
      }
      string_s = std::min(string_s, seconds_since(t0));
    }
    {
      // Same table, today's append-based ParamSpace::key — isolates how much
      // of the uplift the string renderer rewrite alone accounts for.
      std::unordered_map<std::string, harmony::EvaluationResult> table;
      const auto t0 = Clock::now();
      for (int p = 0; p < kPasses; ++p) {
        for (const auto& c : configs) {
          std::string k = space.key(c);
          auto it = table.find(k);
          if (it == table.end()) {
            table.emplace(std::move(k), harmony::EvaluationResult{});
          } else {
            ++hit_sink;
          }
        }
      }
      fast_string_s = std::min(fast_string_s, seconds_since(t0));
    }
    {
      harmony::EvalCache cache(space);
      harmony::PointKey key;
      const auto t0 = Clock::now();
      for (int p = 0; p < kPasses; ++p) {
        for (const auto& c : configs) {
          key.assign(space, c);
          if (cache.lookup(key) == nullptr) {
            cache.store(key, harmony::EvaluationResult{});
          } else {
            ++hit_sink;
          }
        }
      }
      point_s = std::min(point_s, seconds_since(t0));
    }
    {
      harmony::PointKey key;
      std::size_t h = 0;
      const auto t0 = Clock::now();
      for (int p = 0; p < kPasses; ++p) {
        for (const auto& c : configs) {
          key.assign(space, c);
          h ^= key.hash();
        }
      }
      derive_s = std::min(derive_s, seconds_since(t0));
      hit_sink ^= h;
    }
  }

  obs::BenchReport report;
  report.name = "gate_eval_hotpath";
  report.evaluations = static_cast<int>(ops);
  report.wall_s = string_s + fast_string_s + point_s + derive_s;
  report.speedup = point_s > 0.0 ? string_s / point_s : 0.0;
  report.metrics["evals_per_s_ratio"] = report.speedup;
  report.metrics["pointkey_mops"] = point_s > 0.0 ? ops / point_s / 1e6 : 0.0;
  report.metrics["stringkey_mops"] =
      string_s > 0.0 ? ops / string_s / 1e6 : 0.0;
  report.metrics["stringkey_fastrender_mops"] =
      fast_string_s > 0.0 ? ops / fast_string_s / 1e6 : 0.0;
  report.metrics["key_derive_mops"] =
      derive_s > 0.0 ? ops / derive_s / 1e6 : 0.0;
  report.metrics["hit_sink"] = static_cast<double>(hit_sink % 1024);
  return report;
}

// ---- gate ------------------------------------------------------------------

struct CheckRow {
  std::string label;
  double baseline;
  double current;
  double limit;  // current must stay <= limit
  bool ok;
};

/// Compare one fresh report against its baseline; append rows; return ok.
bool check_report(const obs::BenchReport& fresh, const obs::BenchReport& base,
                  const GateOptions& gate, std::vector<CheckRow>& rows) {
  bool ok = true;
  const auto add = [&](const std::string& label, double baseline, double current,
                       double limit) {
    const bool row_ok = current <= limit;
    rows.push_back({fresh.name + "." + label, baseline, current, limit, row_ok});
    ok = ok && row_ok;
  };
  // The session-storm workload gates three numbers at >= 1k concurrent
  // sessions: the p99/p50 tail ratio (ceiling), the calibration-normalized
  // wall ratio — the machine-portable form of evals/s, since the evaluation
  // count is fixed — (ceiling), and a completeness floor on sessions served
  // (a shed or wedged slot must not pass silently).
  if (fresh.metrics.count("sessions_total") != 0) {
    bool all_ok = true;
    const auto ceiling = [&](const char* key, const char* label, double tol) {
      const double b = base.metrics.count(key) ? base.metrics.at(key) : 0.0;
      const double f = fresh.metrics.at(key);
      const double limit = b * (1.0 + tol);
      const bool row_ok = f <= limit;
      rows.push_back({fresh.name + "." + label, b, f, limit, row_ok});
      all_ok = all_ok && row_ok;
    };
    ceiling("p99_p50_ratio", "p99_p50_max", gate.latency_tol);
    ceiling("wall_ratio", "wall_ratio", gate.wall_tol);
    const double base_sessions = base.metrics.count("sessions_total")
                                     ? base.metrics.at("sessions_total")
                                     : 0.0;
    const double fresh_sessions = fresh.metrics.at("sessions_total");
    const double min_sessions = 0.98 * base_sessions;  // tiny flake headroom
    const bool sessions_ok = fresh_sessions >= min_sessions;
    rows.push_back({fresh.name + ".sessions_min", base_sessions, fresh_sessions,
                    min_sessions, sessions_ok});
    return all_ok && sessions_ok;
  }
  // The latency workload tracks one number: the p99/p50 ratio, checked as a
  // ceiling (lower is better). Raw milliseconds would gate the host, not the
  // code.
  if (fresh.metrics.count("p99_p50_ratio") != 0) {
    const double base_ratio = base.metrics.count("p99_p50_ratio")
                                  ? base.metrics.at("p99_p50_ratio")
                                  : 0.0;
    const double fresh_ratio = fresh.metrics.at("p99_p50_ratio");
    const double max_ratio = base_ratio * (1.0 + gate.latency_tol);
    const bool row_ok = fresh_ratio <= max_ratio;
    rows.push_back({fresh.name + ".p99_p50_max", base_ratio, fresh_ratio,
                    max_ratio, row_ok});
    return row_ok;
  }
  // Throughput workloads carry no search trajectory; the single tracked
  // number is the evals/s ratio, checked as a floor (higher is better). The
  // wall/evals rows would only measure scheduler noise there.
  if (fresh.metrics.count("evals_per_s_ratio") != 0) {
    const double base_ratio = base.metrics.count("evals_per_s_ratio")
                                  ? base.metrics.at("evals_per_s_ratio")
                                  : 0.0;
    const double fresh_ratio = fresh.metrics.at("evals_per_s_ratio");
    const double min_ratio = base_ratio * (1.0 - gate.speedup_tol);
    const bool row_ok = fresh_ratio >= min_ratio;
#ifndef NDEBUG
    // The hot-path ratio compares two in-process loops whose relative cost
    // shifts under -O0 + assertions (the flat cache asserts its
    // single-threaded contract in Debug); its baseline is recorded from an
    // optimized build, so in Debug the row is informational only.
    if (fresh.name == "gate_eval_hotpath") {
      rows.push_back({fresh.name + ".evals_ratio_info", base_ratio,
                      fresh_ratio, min_ratio, true});
      return true;
    }
#endif
    rows.push_back({fresh.name + ".evals_ratio_min", base_ratio, fresh_ratio,
                    min_ratio, row_ok});
    return row_ok;
  }
  add("evals_to_best", static_cast<double>(base.evals_to_best),
      static_cast<double>(fresh.evals_to_best),
      static_cast<double>(base.evals_to_best) * (1.0 + gate.evals_tol));
  // Model-guided workload: evaluations until the search first entered the
  // top 5% of the sweep distribution must not regress either. 0 means it
  // never got there — gate that as worse than any baseline.
  if (fresh.metrics.count("evals_to_top5") != 0) {
    const double base_top5 = base.metrics.count("evals_to_top5")
                                 ? base.metrics.at("evals_to_top5")
                                 : 0.0;
    const double fresh_top5 = fresh.metrics.at("evals_to_top5") > 0.0
                                  ? fresh.metrics.at("evals_to_top5")
                                  : 1e9;
    add("evals_to_top5", base_top5, fresh_top5,
        base_top5 * (1.0 + gate.evals_tol));
  }
  const double base_ratio = base.metrics.count("wall_ratio")
                                ? base.metrics.at("wall_ratio")
                                : 0.0;
  const double fresh_ratio = fresh.metrics.at("wall_ratio");
  add("wall_ratio", base_ratio, fresh_ratio, base_ratio * (1.0 + gate.wall_tol));
  // The searches are deterministic: the tuned objective must not get worse.
  add("best_value", base.best_value, fresh.best_value,
      base.best_value * 1.0001 + 1e-12);
  if (fresh.best_config != base.best_config) {
    std::printf("note: %s best config changed: '%s' -> '%s'\n",
                fresh.name.c_str(), base.best_config.c_str(),
                fresh.best_config.c_str());
  }
  return ok;
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--baselines DIR] [--out DIR] [--update] [--only NAME]\n"
      "          [--evals-tol F] [--wall-tol F] [--speedup-tol F]\n"
      "          [--latency-tol F] [--runs N]\n\n"
      "Runs the gate workloads, writes BENCH_<name>.json into --out, and\n"
      "compares against the baselines in --baselines (exit 1 on regression).\n"
      "--update rewrites the baselines from the fresh run instead; --only\n"
      "restricts the run (and the comparison/update) to one workload.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  GateOptions gate;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--baselines") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.baselines_dir = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.out_dir = v;
    } else if (arg == "--update") {
      gate.update = true;
    } else if (arg == "--evals-tol") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.evals_tol = std::atof(v);
    } else if (arg == "--wall-tol") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.wall_tol = std::atof(v);
    } else if (arg == "--speedup-tol") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.speedup_tol = std::atof(v);
    } else if (arg == "--latency-tol") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.latency_tol = std::atof(v);
    } else if (arg == "--runs") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.reps = std::max(1, std::atoi(v));
    } else if (arg == "--only") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      gate.only = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (gate.baselines_dir.empty()) {
    std::printf("error: --baselines DIR is required\n");
    return usage(argv[0]);
  }
  if (const char* env = std::getenv("AH_GATE_SLOWDOWN_US")) {
    g_slowdown_us = std::atoi(env);
    if (g_slowdown_us > 0) {
      std::printf("injecting %d us of slowdown per evaluation "
                  "(AH_GATE_SLOWDOWN_US)\n",
                  g_slowdown_us);
    }
  }

  std::printf("== bench_gate: benchmark regression gate ==\n");
  const double calib_s = calibrate();
  std::printf("calibration loop: %.4f s\n", calib_s);

  const std::vector<std::pair<const char*, obs::BenchReport (*)(int)>>
      workloads = {
          {"gate_gs2_sweep", &run_gate_gs2_sweep},
          {"gate_pop_nm", &run_gate_pop_nm},
          {"gate_model_guided", &run_gate_model_guided},
          {"gate_server_throughput", &run_gate_server_throughput},
          {"gate_server_latency", &run_gate_server_latency},
          {"gate_server_sessions", &run_gate_server_sessions},
          {"gate_server_fleet", &run_gate_server_fleet},
          {"gate_eval_hotpath", &run_gate_eval_hotpath},
      };
  std::vector<obs::BenchReport> reports;
  for (const auto& [name, fn] : workloads) {
    if (!gate.only.empty() && gate.only != name) continue;
    reports.push_back(fn(gate.reps));
  }
  if (reports.empty()) {
    std::printf("error: --only '%s' matches no workload\n", gate.only.c_str());
    return 2;
  }
  for (auto& r : reports) {
    r.metrics["wall_ratio"] = r.wall_s / calib_s;
    r.metrics["calib_s"] = calib_s;
    std::printf("%s: best %s = %.4f, %d evals (%d to best), wall %.4f s "
                "(ratio %.3f)\n",
                r.name.c_str(), r.best_config.c_str(), r.best_value,
                r.evaluations, r.evals_to_best, r.wall_s,
                r.metrics["wall_ratio"]);
  }

  // Always drop fresh reports into --out for CI artifact upload.
  for (const auto& r : reports) {
    if (const auto path = r.write_file(gate.out_dir)) {
      std::printf("wrote %s\n", path->c_str());
    } else {
      std::printf("error: could not write report into '%s'\n",
                  gate.out_dir.c_str());
      return 2;
    }
  }

  if (gate.update) {
    for (const auto& r : reports) {
      const auto path = r.write_file(gate.baselines_dir);
      if (!path) {
        std::printf("error: could not write baseline into '%s'\n",
                    gate.baselines_dir.c_str());
        return 2;
      }
      std::printf("updated baseline %s\n", path->c_str());
    }
    return 0;
  }

  bool ok = true;
  std::vector<CheckRow> rows;
  for (const auto& r : reports) {
    const std::string path =
        gate.baselines_dir + "/" + obs::BenchReport::filename(r.name);
    const auto base = obs::BenchReport::load(path);
    if (!base) {
      std::printf("error: missing or unreadable baseline %s "
                  "(run with --update to create it)\n",
                  path.c_str());
      return 2;
    }
    ok = check_report(r, *base, gate, rows) && ok;
  }

  harmony::TextTable table({"check", "baseline", "current", "limit", "status"});
  for (const auto& row : rows) {
    table.add_row({row.label, harmony::fmt(row.baseline, 3),
                   harmony::fmt(row.current, 3), harmony::fmt(row.limit, 3),
                   row.ok ? "ok" : "REGRESSED"});
  }
  table.print(std::cout);

  if (!ok) {
    std::printf("\nFAILED: benchmark regression past tolerance "
                "(evals-tol %.0f%%, wall-tol %.0f%%)\n",
                100.0 * gate.evals_tol, 100.0 * gate.wall_tol);
    return 1;
  }
  std::printf("\nall benchmarks within tolerance\n");
  return 0;
}
