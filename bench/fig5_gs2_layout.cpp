// Regenerates paper Fig. 5: GS2 data-layout tuning across environments
// (Seaborg at three node topologies and a dual-Xeon Myrinet Linux cluster,
// 128 CPUs each), plus the Section VI headline speedups with and without
// the collision operator (3.4x and 2.3x).

#include <cstdio>
#include <iostream>

#include "core/harmony.hpp"
#include "minigs2/minigs2.hpp"
#include "simcluster/simcluster.hpp"

using namespace minigs2;
using harmony::Config;

namespace {

std::string tune_layout(const Gs2Model& model, const simcluster::Machine& machine,
                        int nranks, const Resolution& res,
                        CollisionModel collisions, double* best_time,
                        int* iterations) {
  std::vector<std::string> names;
  for (const auto& l : Layout::all()) names.push_back(l.order());
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Enum("layout", names));
  Config start = space.default_config();
  space.set(start, "layout", std::string("lxyes"));

  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 4;
  harmony::NelderMead nm(space, nm_opts, start);
  harmony::TunerOptions topts;
  topts.max_iterations = 50;
  harmony::Tuner tuner(space, topts);
  const auto result = tuner.run(nm, [&](const Config& c) {
    harmony::EvaluationResult r;
    r.objective = model.run_time(machine, nranks, res,
                                 Layout(std::get<std::string>(c.values[0])),
                                 collisions, 10);
    return r;
  });
  *best_time = result.best_result.objective;
  *iterations = result.iterations;
  return std::get<std::string>(result.best->values[0]);
}

}  // namespace

int main() {
  std::printf("== Fig. 5: GS2 layout tuning across environments (128 CPUs) ==\n\n");
  const Gs2Model model;
  Resolution res;
  res.ntheta = 26;
  res.negrid = 16;

  struct Env {
    std::string name;
    simcluster::Machine machine;
  };
  const Env envs[] = {
      {"Seaborg 8x16", simcluster::presets::seaborg(8, 16)},
      {"Seaborg 16x8", simcluster::presets::seaborg(16, 8)},
      {"Seaborg 32x4", simcluster::presets::seaborg(32, 4)},
      {"Linux 64x2", simcluster::presets::xeon_myrinet(64, 2)},
  };

  harmony::TextTable table({"environment", "lxyes (default)", "tuned layout",
                            "tuned (s)", "speedup"});
  for (const auto& env : envs) {
    const double t_default = model.run_time(env.machine, 128, res,
                                            Layout("lxyes"),
                                            CollisionModel::None, 10);
    double t_tuned = 0;
    int iters = 0;
    const std::string layout =
        tune_layout(model, env.machine, 128, res, CollisionModel::None,
                    &t_tuned, &iters);
    table.add_row({env.name, harmony::fmt(t_default, 2), layout,
                   harmony::fmt(t_tuned, 2),
                   harmony::speedup(t_default, t_tuned)});
  }
  table.print(std::cout);

  // Section VI headline: with and without the collision operator on
  // Seaborg 8x16 (paper: 55.06 -> 16.25 = 3.4x; 71.08 -> 31.55 = 2.3x).
  std::printf("\ncollision-mode comparison on Seaborg 8x16:\n");
  const auto& m = envs[0].machine;
  harmony::TextTable coll({"collision model", "lxyes (s)", "best tuned (s)",
                           "speedup", "paper"});
  for (const auto mode : {CollisionModel::None, CollisionModel::Lorentz}) {
    const double t_default =
        model.run_time(m, 128, res, Layout("lxyes"), mode, 10);
    double t_tuned = 0;
    int iters = 0;
    (void)tune_layout(model, m, 128, res, mode, &t_tuned, &iters);
    coll.add_row({mode == CollisionModel::None ? "none" : "lorentz",
                  harmony::fmt(t_default, 2), harmony::fmt(t_tuned, 2),
                  harmony::speedup(t_default, t_tuned),
                  mode == CollisionModel::None ? "3.4x" : "2.3x"});
  }
  coll.print(std::cout);
  return 0;
}
