// Regenerates paper Fig. 2 and the Section IV SLES results: tuning the
// matrix decomposition of a parallel linear solve.
//
//  (a) 4 processing nodes, dense-block matrix: the default even split cuts
//      dense blocks across ranks ("line B"); tuning finds block-aligned
//      boundaries ("line A").
//  (b) the larger run (paper: 21,025x21,025 on 32 nodes, 18% improvement;
//      here scaled to 8,100 rows so the real per-candidate CG solves stay
//      laptop-fast — the shape, not the absolute size, is reproduced).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/harmony.hpp"
#include "minipetsc/minipetsc.hpp"
#include "obs/bench_report.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipetsc;
using harmony::Config;

namespace {

struct CaseResult {
  double t_default;
  double t_tuned;
  int iterations;
  std::string boundaries;
};

CaseResult tune_case(const std::vector<int>& block_sizes, int nranks,
                     const simcluster::Machine& machine, int budget,
                     int line_samples) {
  const auto A = dense_block_matrix(block_sizes, 0.6);
  const int n = A.rows();
  Vec b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.05 * i);

  const auto solve_time = [&](const RowPartition& part) {
    Vec x;
    const PcBlockJacobi pc(A, part);
    const auto ksp = cg_solve(A, b, x, pc);
    if (!ksp.converged) return 1e18;
    return simulate_sles(machine, analyze(A, part), ksp.iterations).total_s;
  };
  const auto even = RowPartition::even(n, nranks);
  const double t_default = solve_time(even);

  harmony::ParamSpace space;
  for (int i = 0; i < nranks - 1; ++i) {
    std::string name = "b";
    name += std::to_string(i);
    space.add(harmony::Parameter::Integer(name, 1, n - 1));
  }
  Config start = space.default_config();
  for (int i = 0; i < nranks - 1; ++i) {
    std::string name = "b";
    name += std::to_string(i);
    space.set(start, name,
              std::int64_t{even.boundaries()[static_cast<std::size_t>(i)]});
  }

  harmony::CoordinateDescent search(space, start, 10, line_samples);
  harmony::TunerOptions topts;
  topts.max_iterations = budget;
  topts.max_proposals = budget * 64;
  harmony::Tuner tuner(space, topts);
  const auto result = tuner.run(search, [&](const Config& c) {
    std::vector<int> bounds;
    for (const auto& v : c.values) {
      bounds.push_back(static_cast<int>(std::get<std::int64_t>(v)));
    }
    harmony::EvaluationResult r;
    try {
      r.objective = solve_time(RowPartition::from_boundaries(n, nranks, bounds));
    } catch (const std::invalid_argument&) {
      return harmony::EvaluationResult::infeasible();
    }
    return r;
  });

  CaseResult out;
  out.t_default = t_default;
  out.t_tuned = result.best_result.objective;
  out.iterations = result.iterations;
  out.boundaries = space.format(*result.best);
  return out;
}

}  // namespace

int main() {
  std::printf("== Fig. 2 / Section IV: PETSc SLES decomposition tuning ==\n\n");

  {
    std::printf("(a) small example, 4 processing nodes (paper Fig. 2b)\n");
    const auto r = tune_case({140, 60, 120, 80}, 4,
                             simcluster::presets::pentium4_quad(),
                             /*budget=*/4000, /*line_samples=*/399);
    harmony::TextTable t({"configuration", "solve time (ms)", "improvement"});
    t.add_row({"default (even)", harmony::fmt(1e3 * r.t_default, 3), "-"});
    t.add_row({"tuned boundaries", harmony::fmt(1e3 * r.t_tuned, 3),
               harmony::percent_improvement(r.t_default, r.t_tuned)});
    t.print(std::cout);
    std::printf("  tuned: %s\n", r.boundaries.c_str());
    std::printf("  tuning cost: %d distinct runs\n\n", r.iterations);
  }

  {
    std::printf("(b) 21,025 x 21,025 on 32 processing nodes (paper: 18%%)\n");
    // The large case is the paper's load-balance story: row density varies
    // across the matrix, so the default even row split overloads the ranks
    // holding the dense middle. One real CG solve pins the iteration count;
    // the decomposition is then priced on the simulated 32-way cluster.
    const int n = 21025;
    const int nranks = 32;
    const auto A = variable_band_spd(n, 4, 120);
    const auto machine = simcluster::presets::cluster32();

    Vec b(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.01 * i);
    Vec x;
    const PcJacobi pc(A);
    const auto ksp = cg_solve(A, b, x, pc);
    const int iterations = std::max(1, ksp.iterations);
    std::printf("  real CG solve: %d iterations (converged: %s)\n", iterations,
                ksp.converged ? "yes" : "no");

    const auto time_of = [&](const RowPartition& part) {
      return simulate_sles(machine, analyze(A, part), iterations).total_s;
    };
    const auto even = RowPartition::even(n, nranks);
    const double t_default = time_of(even);

    // Dependent-variable handling per the paper's [12]: the 31 raw
    // boundaries are re-parameterized as 32 per-rank work weights, so one
    // coordinate move re-balances the whole partition (a raw boundary can
    // only trade rows between two adjacent ranks, which never lowers a max
    // over 32 ranks).
    harmony::ParamSpace space;
    for (int i = 0; i < nranks; ++i) {
      std::string name = "w";
      name += std::to_string(i);
      space.add(harmony::Parameter::Integer(name, 1, 200));
    }
    Config start = space.default_config();
    for (int i = 0; i < nranks; ++i) {
      std::string name = "w";
      name += std::to_string(i);
      space.set(start, name, std::int64_t{100});
    }
    const auto to_partition = [&](const Config& c) {
      double total = 0;
      for (const auto& v : c.values) {
        total += static_cast<double>(std::get<std::int64_t>(v));
      }
      std::vector<int> bounds;
      double cum = 0;
      for (int i = 0; i < nranks - 1; ++i) {
        cum += static_cast<double>(std::get<std::int64_t>(c.values[static_cast<std::size_t>(i)]));
        int b = static_cast<int>(std::lround(n * cum / total));
        const int lo = bounds.empty() ? 1 : bounds.back() + 1;
        b = std::clamp(b, lo, n - (nranks - 1 - i));
        bounds.push_back(b);
      }
      return RowPartition::from_boundaries(n, nranks, bounds);
    };

    harmony::NelderMeadOptions nm_opts;
    nm_opts.max_restarts = 8;
    harmony::NelderMead nm(space, nm_opts, start);
    harmony::TunerOptions topts;
    topts.max_iterations = 400;
    const auto tune_start = std::chrono::steady_clock::now();
    harmony::Tuner tuner(space, topts);
    const auto result = tuner.run(nm, [&](const Config& c) {
      harmony::EvaluationResult r;
      r.objective = time_of(to_partition(c));
      return r;
    });

    // Greedy per-weight refinement from the simplex result (the paper's
    // iterative mechanism keeps tuning as long as the budget allows).
    harmony::CoordinateDescent polish(space, *result.best, 4, /*line_samples=*/12);
    harmony::TunerOptions popts;
    popts.max_iterations = 800;
    popts.max_proposals = 60000;
    harmony::Tuner polisher(space, popts);
    const auto polished = polisher.run(polish, [&](const Config& c) {
      harmony::EvaluationResult r;
      r.objective = time_of(to_partition(c));
      return r;
    });
    const double t_tuned =
        std::min(result.best_result.objective, polished.best_result.objective);

    harmony::TextTable t({"configuration", "solve time (ms)", "improvement"});
    t.add_row({"default (even)", harmony::fmt(1e3 * t_default, 2), "-"});
    t.add_row({"tuned boundaries", harmony::fmt(1e3 * t_tuned, 2),
               harmony::percent_improvement(t_default, t_tuned)});
    t.print(std::cout);
    std::printf("  tuning cost: %d distinct runs (paper: 120 iterations, "
                "15-20%% improvement)\n",
                result.iterations);
    const double log10_space = 31.0 * std::log10(21024.0);
    std::printf("  raw search space: O(10^%.0f) points (paper: O(10^100))\n",
                log10_space);

    harmony::obs::BenchReport report;
    report.name = "fig2_petsc_decomposition";
    report.best_config =
        polished.best_result.objective < result.best_result.objective
            ? "polished weights"
            : "simplex weights";
    report.best_value = t_tuned;
    report.evaluations = result.iterations + polished.iterations;
    report.evals_to_best = tuner.history().evals_to_best();
    report.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      tune_start)
            .count();
    report.speedup = t_default / t_tuned;
    report.metrics["default_ms"] = 1e3 * t_default;
    report.metrics["tuned_ms"] = 1e3 * t_tuned;
    if (const auto path = report.write_file(harmony::obs::bench_out_dir())) {
      std::printf("  wrote %s\n", path->c_str());
    }
  }
  return 0;
}
