#pragma once

/// \file server_load.hpp
/// Shared load generator for the tuning server's network stack, used by
/// bench/server_throughput (the full benchmark) and bench/bench_gate (a
/// gate-sized run whose epoll/legacy evals-per-second ratio is tracked
/// against a checked-in baseline).
///
/// Two client harnesses:
///  * run_load(kEventLoop, pipelined=true)  — all K connections multiplexed
///    over a few poll()-driven threads, each connection keeping a window of
///    pipelined REPORT+FETCH lines in flight (the event-driven steady state).
///  * run_load(kLegacy, pipelined=false)    — one blocking client thread per
///    connection running the classic FETCH -> REPORT exchange against the
///    thread-per-connection server (the pre-event-loop deployment).

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/net.hpp"
#include "core/protocol.hpp"
#include "core/server.hpp"
#include "obs/trace.hpp"

namespace harmony::bench {

using LoadClock = std::chrono::steady_clock;

inline double load_seconds_since(LoadClock::time_point start) {
  return std::chrono::duration<double>(LoadClock::now() - start).count();
}

/// Monotonically improving synthetic objective: the search always has a new
/// incumbent, so Nelder-Mead keeps proposing and never converges mid-run.
inline double synthetic_objective(int eval_index) {
  return 1000.0 - 1e-3 * eval_index;
}

struct LoadOptions {
  int clients = 64;
  int evals = 200;   // evaluations per client
  int window = 8;    // pipelined REPORT+FETCH lines in flight per connection
  int reactors = 2;  // server reactor threads / client mux threads

  /// Client-side head sampling: this fraction of pipelined REPORT+FETCH
  /// lines carry a wire trace token (see protocol.hpp). Needs `tracer` to
  /// produce spans; 0 sends the exact untraced byte stream.
  double trace_sample = 0.0;
  obs::SearchTracer* tracer = nullptr;  ///< server-side span sink (optional)
  long long slow_request_us = 0;        ///< ServerOptions::slow_request_us
};

/// Head-based sampling coin drawn from the trace-id generator's stream.
inline bool trace_coin(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return static_cast<double>(obs::next_trace_id() >> 11) * 0x1.0p-53 < p;
}

struct ClientStats {
  std::uint64_t evals = 0;
  bool completed = false;
  std::vector<double> latency_ms;  // one sample per protocol request
};

/// One multiplexed pipelined connection: non-blocking socket, a window of
/// REPORT+FETCH lines in flight, replies consumed in order. run_mux_driver
/// runs many of these off a single poll() loop.
struct MuxConn {
  net::Socket sock;
  ClientStats* stats = nullptr;
  int evals = 0;
  int window = 0;
  double trace_sample = 0.0;
  std::string rbuf;
  std::size_t rpos = 0;
  std::string wbuf;
  std::deque<LoadClock::time_point> inflight;
  int setup_replies = 5;  // 4x OK + the first CONFIG
  int sent = 0;
  int completed = 0;
  bool done = false;

  void start(int port) {
    sock = net::connect_loopback(port);
    if (!sock.valid() || !sock.set_nonblocking()) {
      done = true;
      return;
    }
    wbuf = "HELLO bench\nPARAM REAL x 0 10\nPARAM REAL y 0 10\nSTART ";
    wbuf += std::to_string(evals + 8);
    wbuf += "\nFETCH\n";
  }

  /// Keep the request window full (no-op until setup replies are in).
  void fill_window() {
    if (setup_replies > 0 || done) return;
    const auto now = LoadClock::now();
    while (sent < evals && static_cast<int>(inflight.size()) < window) {
      wbuf += "REPORT+FETCH ";
      wbuf += std::to_string(synthetic_objective(sent));
      if (trace_coin(trace_sample)) {
        // This request becomes a trace root: the server's "server.handle"
        // span will name our span id as its parent.
        obs::TraceContext ctx;
        ctx.trace_id = obs::next_trace_id();
        ctx.span_id = obs::next_trace_id();
        proto::append_trace(ctx, wbuf);
      }
      wbuf += '\n';
      ++sent;
      inflight.push_back(now);
    }
  }

  /// Non-blocking drain of wbuf; false on connection error.
  bool flush() {
    while (!wbuf.empty()) {
      const auto n = ::send(sock.fd(), wbuf.data(), wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        wbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    return true;
  }

  void handle_line(std::string_view line) {
    if (line.rfind("ERR", 0) == 0) {
      done = true;
      return;
    }
    if (setup_replies > 0) {
      --setup_replies;
      return;
    }
    if (!inflight.empty()) {
      stats->latency_ms.push_back(1e3 * load_seconds_since(inflight.front()));
      inflight.pop_front();
    }
    ++completed;
    stats->evals = static_cast<std::uint64_t>(completed);
    if (line.rfind("CONFIG", 0) != 0) {  // DONE
      done = true;
      return;
    }
    if (completed >= evals) {
      stats->completed = true;
      wbuf += "BYE\n";
      done = true;
    }
  }

  /// Consume readable bytes and process complete lines; false on EOF/error.
  bool drain_input() {
    char chunk[16384];
    for (;;) {
      const auto n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n > 0) {
        rbuf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;  // EOF or hard error
    }
    std::size_t nl;
    while (!done && (nl = rbuf.find('\n', rpos)) != std::string::npos) {
      handle_line(std::string_view(rbuf).substr(rpos, nl - rpos));
      rpos = nl + 1;
    }
    if (rpos == rbuf.size()) {
      rbuf.clear();
      rpos = 0;
    }
    return true;
  }
};

/// Drive a set of pipelined connections from one thread with poll().
inline void run_mux_driver(int port, std::vector<MuxConn*> conns) {
  for (auto* c : conns) c->start(port);
  std::vector<pollfd> fds(conns.size());
  for (;;) {
    std::size_t live = 0;
    for (auto* c : conns) {
      if (c->done && c->wbuf.empty()) continue;
      c->fill_window();
      if (!c->flush()) {
        c->done = true;
        c->wbuf.clear();
        continue;
      }
      if (c->done && c->wbuf.empty()) continue;
      fds[live].fd = c->sock.fd();
      fds[live].events =
          static_cast<short>(POLLIN | (c->wbuf.empty() ? 0 : POLLOUT));
      fds[live].revents = 0;
      ++live;
    }
    if (live == 0) break;
    if (::poll(fds.data(), live, 5000) <= 0) break;
    std::size_t i = 0;
    for (auto* c : conns) {
      if (c->done && c->wbuf.empty()) continue;
      const auto re = fds[i++].revents;
      if ((re & (POLLERR | POLLHUP)) != 0 ||
          ((re & POLLIN) != 0 && !c->drain_input())) {
        c->done = true;
        c->wbuf.clear();
      }
      if (i >= live) break;
    }
  }
}

/// Blocking client: the classic exchange — FETCH, read, REPORT, read — two
/// round trips per evaluation, no pipelining.
inline void run_blocking_client(int port, int evals, ClientStats* out) {
  out->latency_ms.reserve(static_cast<std::size_t>(evals) + 8);
  net::Socket s = net::connect_loopback(port);
  if (!s.valid()) return;
  net::LineReader reader(s);
  std::string line;

  const auto transact = [&](const std::string& req) -> bool {
    const auto t0 = LoadClock::now();
    if (!s.send_all(req)) return false;
    if (!reader.read_line(line)) return false;
    out->latency_ms.push_back(1e3 * load_seconds_since(t0));
    return line.rfind("ERR", 0) != 0;
  };

  if (!transact("HELLO bench\n")) return;
  if (!transact("PARAM REAL x 0 10\n")) return;
  if (!transact("PARAM REAL y 0 10\n")) return;
  if (!transact("START " + std::to_string(evals + 8) + "\n")) return;
  if (!transact("FETCH\n")) return;
  for (int i = 0; i < evals; ++i) {
    if (!transact("REPORT " + std::to_string(synthetic_objective(i)) + "\n")) {
      return;
    }
    if (!transact("FETCH\n")) return;
    out->evals = static_cast<std::uint64_t>(i + 1);
    if (line.rfind("CONFIG", 0) != 0) return;
  }
  (void)s.send_all(std::string_view("BYE\n"));
  out->completed = true;
}

struct LoadResult {
  double wall_s = 0.0;
  std::uint64_t evals = 0;
  int sessions_completed = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  [[nodiscard]] double evals_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(evals) / wall_s : 0.0;
  }
  [[nodiscard]] double sessions_per_s() const {
    return wall_s > 0.0 ? sessions_completed / wall_s : 0.0;
  }
};

inline double latency_percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// One timed run: fresh server in `mode`, opt.clients sessions of opt.evals
/// evaluations each, pipelined-multiplexed or blocking-thread-per-connection
/// clients.
inline LoadResult run_load(ServerThreading mode, bool pipelined,
                           const LoadOptions& opt) {
  ServerOptions sopts;
  sopts.threading = mode;
  sopts.reactor_threads = opt.reactors;
  sopts.tracer = opt.tracer;
  sopts.slow_request_us = opt.slow_request_us;
  TuningServer server(sopts);
  LoadResult result;
  if (!server.start()) {
    std::fprintf(stderr, "error: server failed to start\n");
    return result;
  }

  std::vector<ClientStats> stats(static_cast<std::size_t>(opt.clients));
  for (auto& st : stats) {
    st.latency_ms.reserve(static_cast<std::size_t>(opt.evals) + 8);
  }
  std::vector<std::thread> threads;
  std::vector<MuxConn> conns;
  const auto t0 = LoadClock::now();
  if (pipelined) {
    // All connections multiplexed over a few poll() threads — the client
    // counterpart of the server's reactor shards.
    conns.resize(stats.size());
    const int drivers = std::clamp(opt.reactors, 1, opt.clients);
    std::vector<std::vector<MuxConn*>> assigned(
        static_cast<std::size_t>(drivers));
    for (std::size_t i = 0; i < conns.size(); ++i) {
      conns[i].stats = &stats[i];
      conns[i].evals = opt.evals;
      conns[i].window = opt.window;
      conns[i].trace_sample = opt.trace_sample;
      assigned[i % assigned.size()].push_back(&conns[i]);
    }
    threads.reserve(assigned.size());
    for (auto& group : assigned) {
      threads.emplace_back(run_mux_driver, server.port(), std::move(group));
    }
  } else {
    threads.reserve(stats.size());
    for (auto& st : stats) {
      threads.emplace_back(run_blocking_client, server.port(), opt.evals, &st);
    }
  }
  for (auto& t : threads) t.join();
  result.wall_s = load_seconds_since(t0);
  server.stop();

  std::vector<double> all_lat;
  for (const auto& st : stats) {
    result.evals += st.evals;
    result.sessions_completed += st.completed ? 1 : 0;
    all_lat.insert(all_lat.end(), st.latency_ms.begin(), st.latency_ms.end());
  }
  std::sort(all_lat.begin(), all_lat.end());
  result.p50_ms = latency_percentile(all_lat, 0.50);
  result.p95_ms = latency_percentile(all_lat, 0.95);
  result.p99_ms = latency_percentile(all_lat, 0.99);
  return result;
}

// ---- high-session-count storm mode -----------------------------------------
//
// The storm harness drives the server the way a saturated multi-tenant
// deployment does: thousands of concurrently live sessions, each running a
// short search over the batched BATCH framing, sessions churning (a finished
// session is immediately replaced until a lifetime total is reached), a mix
// of tenants, and a deliberate fraction of slow readers that exercise the
// server's pending-output backpressure instead of its happy path.

/// Best-effort fd headroom for thousand-session storms: raise the soft
/// RLIMIT_NOFILE toward `want` (bounded by the hard limit — CI runners
/// default to a 1024 soft limit) and return the resulting soft limit.
inline std::size_t ensure_fd_capacity(std::size_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur == RLIM_INFINITY) return want;
  if (static_cast<std::size_t>(rl.rlim_cur) >= want) {
    return static_cast<std::size_t>(rl.rlim_cur);
  }
  rlimit raised = rl;
  raised.rlim_cur = rl.rlim_max == RLIM_INFINITY
                        ? static_cast<rlim_t>(want)
                        : std::min(static_cast<rlim_t>(want), rl.rlim_max);
  if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  if (rl.rlim_cur == RLIM_INFINITY) return want;
  return static_cast<std::size_t>(rl.rlim_cur);
}

struct StormOptions {
  int sessions = 1024;      ///< concurrently live sessions (fd-limit clamped)
  int total_sessions = 0;   ///< lifetime sessions incl. churn; 0 = sessions
  int evals = 8;            ///< evaluations per session (short searches)
  int batch = 4;            ///< report/fetch pairs per BATCH line
  int window = 2;           ///< BATCH lines in flight per connection
  int reactors = 2;         ///< server reactor shards
  int drivers = 2;          ///< client poll() threads
  int tenants = 4;          ///< sessions cycle TENANT t0..t{n-1}; 0 = none
  int slow_every = 0;       ///< every Nth session reads slowly; 0 = none
  std::size_t slow_read_bytes = 256;  ///< slow readers' per-cycle read budget
  std::size_t per_conn_out_cap = 64 * 1024;  ///< max_pending_out_bytes
  long long idle_timeout_ms = 0;             ///< server idle reaping; 0 = off
  int tenant_quota = 0;                      ///< server per-tenant quota
};

/// One storm slot: a sequence of `sessions_left` short sessions run
/// back-to-back on fresh connections, each driving BATCH lines with a small
/// in-flight window. Latency samples are per BATCH line (send to last of its
/// reply lines).
struct StormConn {
  int port = 0;
  ClientStats* stats = nullptr;
  int evals = 8;
  int batch = 4;
  int window = 2;
  int sessions_left = 1;
  int sessions_done = 0;
  std::string tenant;  ///< "" = no TENANT line
  bool slow = false;
  std::size_t slow_read_bytes = 256;

  net::Socket sock;
  std::string rbuf;
  std::size_t rpos = 0;
  std::string wbuf;
  struct Flight {
    int lines;
    LoadClock::time_point t0;
  };
  std::deque<Flight> inflight;
  int setup_replies = 0;
  int sent = 0;  ///< objective values written
  int got = 0;   ///< reply lines (CONFIG/DONE) consumed
  bool done = false;

  void begin() {
    rbuf.clear();
    rpos = 0;
    wbuf.clear();
    inflight.clear();
    sent = got = 0;
    done = false;
    sock = net::connect_loopback(port);
    if (!sock.valid() || !sock.set_nonblocking()) {
      done = true;
      sessions_left = 0;
      return;
    }
    wbuf = "HELLO storm\n";
    setup_replies = 5;  // HELLO, 2x PARAM, START, first CONFIG
    if (!tenant.empty()) {
      wbuf += "TENANT ";
      wbuf += tenant;
      wbuf += '\n';
      ++setup_replies;
    }
    wbuf += "PARAM REAL x 0 10\nPARAM REAL y 0 10\nSTART ";
    wbuf += std::to_string(evals + 8);
    wbuf += "\nFETCH\n";
  }

  void fill_window() {
    if (setup_replies > 0 || done) return;
    const auto now = LoadClock::now();
    while (sent < evals && static_cast<int>(inflight.size()) < window) {
      const int k = std::min(batch, evals - sent);
      wbuf += "BATCH ";
      wbuf += std::to_string(k);
      for (int i = 0; i < k; ++i) {
        wbuf += ' ';
        wbuf += std::to_string(synthetic_objective(sent + i));
      }
      wbuf += '\n';
      sent += k;
      inflight.push_back({k, now});
    }
  }

  bool flush() {
    while (!wbuf.empty()) {
      const auto n = ::send(sock.fd(), wbuf.data(), wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        wbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    return true;
  }

  void handle_line(std::string_view line) {
    if (line.rfind("ERR", 0) == 0) {
      done = true;
      sessions_left = 0;  // a protocol error poisons the slot, not the run
      return;
    }
    if (setup_replies > 0) {
      --setup_replies;
      return;
    }
    ++got;
    if (line.rfind("CONFIG", 0) == 0) ++stats->evals;
    if (!inflight.empty() && --inflight.front().lines == 0) {
      stats->latency_ms.push_back(1e3 * load_seconds_since(inflight.front().t0));
      inflight.pop_front();
    }
    if (got >= evals && sent >= evals) {
      ++sessions_done;
      stats->completed = true;
      wbuf += "BYE\n";
      done = true;
    }
  }

  bool drain_input() {
    char chunk[16384];
    std::size_t budget =
        slow ? slow_read_bytes : std::numeric_limits<std::size_t>::max();
    while (budget > 0) {
      const std::size_t want = std::min(budget, sizeof(chunk));
      const auto n = ::recv(sock.fd(), chunk, want, 0);
      if (n > 0) {
        rbuf.append(chunk, static_cast<std::size_t>(n));
        budget -= static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;  // EOF or hard error
    }
    std::size_t nl;
    while (!done && (nl = rbuf.find('\n', rpos)) != std::string::npos) {
      handle_line(std::string_view(rbuf).substr(rpos, nl - rpos));
      rpos = nl + 1;
    }
    if (rpos == rbuf.size()) {
      rbuf.clear();
      rpos = 0;
    }
    return true;
  }
};

/// Drive a set of storm slots from one thread with poll(), respawning each
/// slot's connection until its session quota is spent.
inline void run_storm_driver(int port, std::vector<StormConn*> conns) {
  for (auto* c : conns) {
    c->port = port;
    if (c->sessions_left > 0) {
      c->begin();
    } else {
      c->done = true;
    }
  }
  std::vector<pollfd> fds(conns.size());
  std::vector<StormConn*> polled;
  polled.reserve(conns.size());
  for (;;) {
    polled.clear();
    for (auto* c : conns) {
      if (c->done) {
        if (!c->wbuf.empty()) {  // best-effort BYE
          (void)c->flush();
          c->wbuf.clear();
        }
        if (c->sessions_left > 0) --c->sessions_left;
        if (c->sessions_left > 0) {
          c->begin();
          if (c->done) continue;  // reconnect failed; slot poisoned
        } else {
          continue;
        }
      }
      c->fill_window();
      if (!c->flush()) {
        c->done = true;
        c->wbuf.clear();
        continue;
      }
      fds[polled.size()].fd = c->sock.fd();
      fds[polled.size()].events =
          static_cast<short>(POLLIN | (c->wbuf.empty() ? 0 : POLLOUT));
      fds[polled.size()].revents = 0;
      polled.push_back(c);
    }
    if (polled.empty()) break;
    if (::poll(fds.data(), polled.size(), 5000) <= 0) break;
    for (std::size_t i = 0; i < polled.size(); ++i) {
      StormConn* c = polled[i];
      const auto re = fds[i].revents;
      if ((re & (POLLERR | POLLHUP)) != 0 ||
          ((re & POLLIN) != 0 && !c->drain_input())) {
        c->done = true;
        c->wbuf.clear();
        c->sessions_left = 0;
      }
    }
  }
}

/// One timed storm run: a fresh event-mode server, `sessions` concurrent
/// short sessions churning up to `total_sessions`, BATCH framing, mixed
/// tenants, optional slow readers. LoadResult::sessions_completed counts
/// finished sessions (incl. churn); latency quantiles are per BATCH line.
inline LoadResult run_storm(const StormOptions& opt) {
  StormOptions o = opt;
  if (o.total_sessions <= 0) o.total_sessions = o.sessions;
  // Leave headroom for the server side of every connection plus stdio/epoll.
  const std::size_t have = ensure_fd_capacity(
      2 * static_cast<std::size_t>(o.sessions) + 512);
  const int fd_cap =
      static_cast<int>(have > 512 ? (have - 512) / 2 : 64);
  if (fd_cap < o.sessions) {
    std::fprintf(stderr, "note: fd limit clamps storm sessions %d -> %d\n",
                 o.sessions, fd_cap);
    o.sessions = std::max(1, fd_cap);
  }
  if (o.total_sessions < o.sessions) o.total_sessions = o.sessions;

  ServerOptions sopts;
  sopts.threading = ServerThreading::kEventLoop;
  sopts.reactor_threads = o.reactors;
  sopts.max_pending_out_bytes = o.per_conn_out_cap;
  sopts.idle_timeout_ms = o.idle_timeout_ms;
  sopts.tenant_quota = o.tenant_quota;
  TuningServer server(sopts);
  LoadResult result;
  if (!server.start()) {
    std::fprintf(stderr, "error: server failed to start\n");
    return result;
  }

  const auto slots = static_cast<std::size_t>(o.sessions);
  std::vector<ClientStats> stats(slots);
  std::vector<StormConn> conns(slots);
  const int base = o.total_sessions / o.sessions;
  const int extra = o.total_sessions % o.sessions;
  for (std::size_t i = 0; i < slots; ++i) {
    conns[i].stats = &stats[i];
    conns[i].evals = o.evals;
    conns[i].batch = std::max(1, o.batch);
    conns[i].window = std::max(1, o.window);
    conns[i].sessions_left = base + (static_cast<int>(i) < extra ? 1 : 0);
    if (o.tenants > 0) {
      conns[i].tenant = "t" + std::to_string(i % static_cast<std::size_t>(o.tenants));
    }
    conns[i].slow = o.slow_every > 0 && (i + 1) % static_cast<std::size_t>(o.slow_every) == 0;
    conns[i].slow_read_bytes = o.slow_read_bytes;
  }
  const int drivers = std::clamp(o.drivers, 1, o.sessions);
  std::vector<std::vector<StormConn*>> assigned(static_cast<std::size_t>(drivers));
  for (std::size_t i = 0; i < slots; ++i) {
    assigned[i % assigned.size()].push_back(&conns[i]);
  }
  std::vector<std::thread> threads;
  threads.reserve(assigned.size());
  const auto t0 = LoadClock::now();
  for (auto& group : assigned) {
    threads.emplace_back(run_storm_driver, server.port(), std::move(group));
  }
  for (auto& t : threads) t.join();
  result.wall_s = load_seconds_since(t0);
  server.stop();

  std::vector<double> all_lat;
  for (std::size_t i = 0; i < slots; ++i) {
    result.evals += stats[i].evals;
    result.sessions_completed += conns[i].sessions_done;
    all_lat.insert(all_lat.end(), stats[i].latency_ms.begin(),
                   stats[i].latency_ms.end());
  }
  std::sort(all_lat.begin(), all_lat.end());
  result.p50_ms = latency_percentile(all_lat, 0.50);
  result.p95_ms = latency_percentile(all_lat, 0.95);
  result.p99_ms = latency_percentile(all_lat, 0.99);
  return result;
}

/// Best (highest evals/s) of `reps` runs of `body` — scheduling noise on a
/// loaded host only ever subtracts throughput, so the max is the estimate.
template <typename Body>
LoadResult best_of(int reps, const Body& body) {
  LoadResult best;
  for (int i = 0; i < reps; ++i) {
    LoadResult r = body();
    if (i == 0 || r.evals_per_s() > best.evals_per_s()) best = r;
  }
  return best;
}

}  // namespace harmony::bench
