#pragma once

/// \file server_load.hpp
/// Shared load generator for the tuning server's network stack, used by
/// bench/server_throughput (the full benchmark) and bench/bench_gate (a
/// gate-sized run whose epoll/legacy evals-per-second ratio is tracked
/// against a checked-in baseline).
///
/// Two client harnesses:
///  * run_load(kEventLoop, pipelined=true)  — all K connections multiplexed
///    over a few poll()-driven threads, each connection keeping a window of
///    pipelined REPORT+FETCH lines in flight (the event-driven steady state).
///  * run_load(kLegacy, pipelined=false)    — one blocking client thread per
///    connection running the classic FETCH -> REPORT exchange against the
///    thread-per-connection server (the pre-event-loop deployment).

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/net.hpp"
#include "core/protocol.hpp"
#include "core/server.hpp"
#include "obs/trace.hpp"

namespace harmony::bench {

using LoadClock = std::chrono::steady_clock;

inline double load_seconds_since(LoadClock::time_point start) {
  return std::chrono::duration<double>(LoadClock::now() - start).count();
}

/// Monotonically improving synthetic objective: the search always has a new
/// incumbent, so Nelder-Mead keeps proposing and never converges mid-run.
inline double synthetic_objective(int eval_index) {
  return 1000.0 - 1e-3 * eval_index;
}

struct LoadOptions {
  int clients = 64;
  int evals = 200;   // evaluations per client
  int window = 8;    // pipelined REPORT+FETCH lines in flight per connection
  int reactors = 2;  // server reactor threads / client mux threads

  /// Client-side head sampling: this fraction of pipelined REPORT+FETCH
  /// lines carry a wire trace token (see protocol.hpp). Needs `tracer` to
  /// produce spans; 0 sends the exact untraced byte stream.
  double trace_sample = 0.0;
  obs::SearchTracer* tracer = nullptr;  ///< server-side span sink (optional)
  long long slow_request_us = 0;        ///< ServerOptions::slow_request_us
};

/// Head-based sampling coin drawn from the trace-id generator's stream.
inline bool trace_coin(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return static_cast<double>(obs::next_trace_id() >> 11) * 0x1.0p-53 < p;
}

struct ClientStats {
  std::uint64_t evals = 0;
  bool completed = false;
  std::vector<double> latency_ms;  // one sample per protocol request
};

/// One multiplexed pipelined connection: non-blocking socket, a window of
/// REPORT+FETCH lines in flight, replies consumed in order. run_mux_driver
/// runs many of these off a single poll() loop.
struct MuxConn {
  net::Socket sock;
  ClientStats* stats = nullptr;
  int evals = 0;
  int window = 0;
  double trace_sample = 0.0;
  std::string rbuf;
  std::size_t rpos = 0;
  std::string wbuf;
  std::deque<LoadClock::time_point> inflight;
  int setup_replies = 5;  // 4x OK + the first CONFIG
  int sent = 0;
  int completed = 0;
  bool done = false;

  void start(int port) {
    sock = net::connect_loopback(port);
    if (!sock.valid() || !sock.set_nonblocking()) {
      done = true;
      return;
    }
    wbuf = "HELLO bench\nPARAM REAL x 0 10\nPARAM REAL y 0 10\nSTART ";
    wbuf += std::to_string(evals + 8);
    wbuf += "\nFETCH\n";
  }

  /// Keep the request window full (no-op until setup replies are in).
  void fill_window() {
    if (setup_replies > 0 || done) return;
    const auto now = LoadClock::now();
    while (sent < evals && static_cast<int>(inflight.size()) < window) {
      wbuf += "REPORT+FETCH ";
      wbuf += std::to_string(synthetic_objective(sent));
      if (trace_coin(trace_sample)) {
        // This request becomes a trace root: the server's "server.handle"
        // span will name our span id as its parent.
        obs::TraceContext ctx;
        ctx.trace_id = obs::next_trace_id();
        ctx.span_id = obs::next_trace_id();
        proto::append_trace(ctx, wbuf);
      }
      wbuf += '\n';
      ++sent;
      inflight.push_back(now);
    }
  }

  /// Non-blocking drain of wbuf; false on connection error.
  bool flush() {
    while (!wbuf.empty()) {
      const auto n = ::send(sock.fd(), wbuf.data(), wbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        wbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    return true;
  }

  void handle_line(std::string_view line) {
    if (line.rfind("ERR", 0) == 0) {
      done = true;
      return;
    }
    if (setup_replies > 0) {
      --setup_replies;
      return;
    }
    if (!inflight.empty()) {
      stats->latency_ms.push_back(1e3 * load_seconds_since(inflight.front()));
      inflight.pop_front();
    }
    ++completed;
    stats->evals = static_cast<std::uint64_t>(completed);
    if (line.rfind("CONFIG", 0) != 0) {  // DONE
      done = true;
      return;
    }
    if (completed >= evals) {
      stats->completed = true;
      wbuf += "BYE\n";
      done = true;
    }
  }

  /// Consume readable bytes and process complete lines; false on EOF/error.
  bool drain_input() {
    char chunk[16384];
    for (;;) {
      const auto n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n > 0) {
        rbuf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;  // EOF or hard error
    }
    std::size_t nl;
    while (!done && (nl = rbuf.find('\n', rpos)) != std::string::npos) {
      handle_line(std::string_view(rbuf).substr(rpos, nl - rpos));
      rpos = nl + 1;
    }
    if (rpos == rbuf.size()) {
      rbuf.clear();
      rpos = 0;
    }
    return true;
  }
};

/// Drive a set of pipelined connections from one thread with poll().
inline void run_mux_driver(int port, std::vector<MuxConn*> conns) {
  for (auto* c : conns) c->start(port);
  std::vector<pollfd> fds(conns.size());
  for (;;) {
    std::size_t live = 0;
    for (auto* c : conns) {
      if (c->done && c->wbuf.empty()) continue;
      c->fill_window();
      if (!c->flush()) {
        c->done = true;
        c->wbuf.clear();
        continue;
      }
      if (c->done && c->wbuf.empty()) continue;
      fds[live].fd = c->sock.fd();
      fds[live].events =
          static_cast<short>(POLLIN | (c->wbuf.empty() ? 0 : POLLOUT));
      fds[live].revents = 0;
      ++live;
    }
    if (live == 0) break;
    if (::poll(fds.data(), live, 5000) <= 0) break;
    std::size_t i = 0;
    for (auto* c : conns) {
      if (c->done && c->wbuf.empty()) continue;
      const auto re = fds[i++].revents;
      if ((re & (POLLERR | POLLHUP)) != 0 ||
          ((re & POLLIN) != 0 && !c->drain_input())) {
        c->done = true;
        c->wbuf.clear();
      }
      if (i >= live) break;
    }
  }
}

/// Blocking client: the classic exchange — FETCH, read, REPORT, read — two
/// round trips per evaluation, no pipelining.
inline void run_blocking_client(int port, int evals, ClientStats* out) {
  out->latency_ms.reserve(static_cast<std::size_t>(evals) + 8);
  net::Socket s = net::connect_loopback(port);
  if (!s.valid()) return;
  net::LineReader reader(s);
  std::string line;

  const auto transact = [&](const std::string& req) -> bool {
    const auto t0 = LoadClock::now();
    if (!s.send_all(req)) return false;
    if (!reader.read_line(line)) return false;
    out->latency_ms.push_back(1e3 * load_seconds_since(t0));
    return line.rfind("ERR", 0) != 0;
  };

  if (!transact("HELLO bench\n")) return;
  if (!transact("PARAM REAL x 0 10\n")) return;
  if (!transact("PARAM REAL y 0 10\n")) return;
  if (!transact("START " + std::to_string(evals + 8) + "\n")) return;
  if (!transact("FETCH\n")) return;
  for (int i = 0; i < evals; ++i) {
    if (!transact("REPORT " + std::to_string(synthetic_objective(i)) + "\n")) {
      return;
    }
    if (!transact("FETCH\n")) return;
    out->evals = static_cast<std::uint64_t>(i + 1);
    if (line.rfind("CONFIG", 0) != 0) return;
  }
  (void)s.send_all(std::string_view("BYE\n"));
  out->completed = true;
}

struct LoadResult {
  double wall_s = 0.0;
  std::uint64_t evals = 0;
  int sessions_completed = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  [[nodiscard]] double evals_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(evals) / wall_s : 0.0;
  }
  [[nodiscard]] double sessions_per_s() const {
    return wall_s > 0.0 ? sessions_completed / wall_s : 0.0;
  }
};

inline double latency_percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// One timed run: fresh server in `mode`, opt.clients sessions of opt.evals
/// evaluations each, pipelined-multiplexed or blocking-thread-per-connection
/// clients.
inline LoadResult run_load(ServerThreading mode, bool pipelined,
                           const LoadOptions& opt) {
  ServerOptions sopts;
  sopts.threading = mode;
  sopts.reactor_threads = opt.reactors;
  sopts.tracer = opt.tracer;
  sopts.slow_request_us = opt.slow_request_us;
  TuningServer server(sopts);
  LoadResult result;
  if (!server.start()) {
    std::fprintf(stderr, "error: server failed to start\n");
    return result;
  }

  std::vector<ClientStats> stats(static_cast<std::size_t>(opt.clients));
  for (auto& st : stats) {
    st.latency_ms.reserve(static_cast<std::size_t>(opt.evals) + 8);
  }
  std::vector<std::thread> threads;
  std::vector<MuxConn> conns;
  const auto t0 = LoadClock::now();
  if (pipelined) {
    // All connections multiplexed over a few poll() threads — the client
    // counterpart of the server's reactor shards.
    conns.resize(stats.size());
    const int drivers = std::clamp(opt.reactors, 1, opt.clients);
    std::vector<std::vector<MuxConn*>> assigned(
        static_cast<std::size_t>(drivers));
    for (std::size_t i = 0; i < conns.size(); ++i) {
      conns[i].stats = &stats[i];
      conns[i].evals = opt.evals;
      conns[i].window = opt.window;
      conns[i].trace_sample = opt.trace_sample;
      assigned[i % assigned.size()].push_back(&conns[i]);
    }
    threads.reserve(assigned.size());
    for (auto& group : assigned) {
      threads.emplace_back(run_mux_driver, server.port(), std::move(group));
    }
  } else {
    threads.reserve(stats.size());
    for (auto& st : stats) {
      threads.emplace_back(run_blocking_client, server.port(), opt.evals, &st);
    }
  }
  for (auto& t : threads) t.join();
  result.wall_s = load_seconds_since(t0);
  server.stop();

  std::vector<double> all_lat;
  for (const auto& st : stats) {
    result.evals += st.evals;
    result.sessions_completed += st.completed ? 1 : 0;
    all_lat.insert(all_lat.end(), st.latency_ms.begin(), st.latency_ms.end());
  }
  std::sort(all_lat.begin(), all_lat.end());
  result.p50_ms = latency_percentile(all_lat, 0.50);
  result.p95_ms = latency_percentile(all_lat, 0.95);
  result.p99_ms = latency_percentile(all_lat, 0.99);
  return result;
}

/// Best (highest evals/s) of `reps` runs of `body` — scheduling noise on a
/// loaded host only ever subtracts throughput, so the max is the estimate.
template <typename Body>
LoadResult best_of(int reps, const Body& body) {
  LoadResult best;
  for (int i = 0; i < reps; ++i) {
    LoadResult r = body();
    if (i == 0 || r.evals_per_s() > best.evals_per_s()) best = r;
  }
  return best;
}

}  // namespace harmony::bench
