// Regenerates paper Table IV: GS2 tuning of (negrid, ntheta, nodes) for
// *production runs* (1,000 time steps), plus the Section VI combined
// headline: layout tuning and parameter tuning together make GS2 about
// 5.1x faster than the all-default configuration.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/harmony.hpp"
#include "minigs2/minigs2.hpp"
#include "simcluster/simcluster.hpp"

using namespace minigs2;
using harmony::Config;

namespace {

struct TuneOutcome {
  double t_default;
  double t_tuned;
  int runs;
  std::string tuned;
  Config best;
  harmony::ParamSpace space;
};

TuneOutcome tune_resolution(const Gs2Model& model, const Layout& layout,
                            int steps) {
  TuneOutcome out;
  out.space.add(harmony::Parameter::Integer("negrid", 8, 16));
  out.space.add(harmony::Parameter::Integer("ntheta", 16, 32, 2));
  out.space.add(harmony::Parameter::Integer("nodes", 1, 64));
  const auto& space = out.space;
  Config start = space.default_config();
  space.set(start, "negrid", std::int64_t{16});
  space.set(start, "ntheta", std::int64_t{26});
  space.set(start, "nodes", std::int64_t{32});

  const auto run_with = [&](const Config& c, int nsteps) {
    Resolution res;
    res.negrid = static_cast<int>(space.get_int(c, "negrid"));
    res.ntheta = static_cast<int>(space.get_int(c, "ntheta"));
    const int nodes = static_cast<int>(space.get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    return model.run_time(machine, 2 * nodes, res, layout, CollisionModel::None,
                          nsteps);
  };

  harmony::OfflineOptions oopts;
  oopts.short_run_steps = steps;
  oopts.max_runs = 30;
  harmony::OfflineDriver driver(space, oopts);
  harmony::NelderMeadOptions nm_opts;
  nm_opts.max_restarts = 3;
  harmony::NelderMead nm(space, nm_opts, start);
  const auto result = driver.tune(nm, [&](const Config& c, int nsteps) {
    harmony::ShortRunResult r;
    r.measured_s = run_with(c, nsteps);
    return r;
  });

  out.t_default = run_with(start, steps);
  out.t_tuned = result.best_measured_s;
  out.runs = result.runs;
  out.best = *result.best;
  std::ostringstream tuned;
  tuned << '(' << space.get_int(*result.best, "negrid") << ','
        << space.get_int(*result.best, "ntheta") << ','
        << space.get_int(*result.best, "nodes") << ')';
  out.tuned = tuned.str();
  return out;
}

}  // namespace

int main() {
  std::printf("== Table IV: GS2 tuning for production runs (1,000 steps) ==\n\n");
  const Gs2Model model;

  double default_lxyes_production = 0.0;
  double best_overall = 1e300;

  for (const auto* layout_name : {"lxyes", "yxles"}) {
    const auto outcome = tune_resolution(model, Layout(layout_name), 1000);
    if (std::string(layout_name) == "lxyes") {
      default_lxyes_production = outcome.t_default;
    }
    best_overall = std::min(best_overall, outcome.t_tuned);
    std::printf("Production run with \"%s\" layout\n", layout_name);
    harmony::TextTable t({"Tuning method (negrid,ntheta,nodes)",
                          "Tuning time (iterations)",
                          "Tuning result - seconds (improvement %)"});
    t.add_row({"Default - no tuning (16,26,32)", "-",
               harmony::fmt(outcome.t_default, 1)});
    t.add_row({"Tuned version " + outcome.tuned, std::to_string(outcome.runs),
               harmony::fmt(outcome.t_tuned, 1) + " (" +
                   harmony::percent_improvement(outcome.t_default,
                                                outcome.t_tuned) +
                   ")"});
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf("paper: lxyes 1480.3 -> 244.2 (83.5%%)\n\n");
  std::printf("combined effect of layout + parameter tuning: %.1f s -> %.1f s "
              "= %s faster (paper: 5.1x)\n",
              default_lxyes_production, best_overall,
              harmony::speedup(default_lxyes_production, best_overall).c_str());
  return 0;
}
