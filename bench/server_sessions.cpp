// server_sessions: high-session-count storm benchmark for the tuning server.
//
// Drives the event-loop server the way a saturated multi-tenant deployment
// does (bench/server_load.hpp run_storm): N concurrently live sessions, each
// a short search over the batched BATCH framing, sessions churning until a
// lifetime total, a cycle of TENANT names, and a deliberate fraction of slow
// readers exercising the pending-output backpressure path. The CI bench-smoke
// job runs this at 512 sessions; the 10k-session experiment documented in
// EXPERIMENTS.md is this binary at --sessions 10000.
//
// Results go to stdout and BENCH_server_sessions.json (ah-bench-report/1):
// evals/s, sessions/s, and p50/p95/p99 per-BATCH-line latency. All numbers
// are client-observed on purpose — the server's own backpressure counters
// live on the STATUS board (see obs/status.hpp) and are asserted by the
// admission tests, so this benchmark cannot drift when that schema does.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/bench_report.hpp"
#include "server_load.hpp"

namespace bench = harmony::bench;
namespace obs = harmony::obs;

namespace {

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--sessions K] [--total-sessions T] [--evals M] [--batch B]\n"
      "          [--window W] [--reactors N] [--drivers D] [--tenants J]\n"
      "          [--slow-every S] [--idle-ms MS] [--quota Q] [--reps R]\n"
      "          [--out DIR]\n\n"
      "Storm benchmark: K concurrent short sessions (churning to T lifetime\n"
      "sessions) x M evaluations over BATCH-B framing against the event-loop\n"
      "server, J tenants, every S-th session a slow reader. Writes\n"
      "BENCH_server_sessions.json into --out. The soft fd limit is raised\n"
      "best-effort; K is clamped when it cannot be.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bench::StormOptions storm;
  storm.sessions = 1024;
  storm.total_sessions = 0;  // = sessions unless overridden
  storm.slow_every = 50;
  int reps = 3;
  std::string out_dir = obs::bench_out_dir();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--sessions" && (v = next()) != nullptr) {
      storm.sessions = std::max(1, std::atoi(v));
    } else if (arg == "--total-sessions" && (v = next()) != nullptr) {
      storm.total_sessions = std::max(0, std::atoi(v));
    } else if (arg == "--evals" && (v = next()) != nullptr) {
      storm.evals = std::max(1, std::atoi(v));
    } else if (arg == "--batch" && (v = next()) != nullptr) {
      storm.batch = std::max(1, std::atoi(v));
    } else if (arg == "--window" && (v = next()) != nullptr) {
      storm.window = std::max(1, std::atoi(v));
    } else if (arg == "--reactors" && (v = next()) != nullptr) {
      storm.reactors = std::max(1, std::atoi(v));
    } else if (arg == "--drivers" && (v = next()) != nullptr) {
      storm.drivers = std::max(1, std::atoi(v));
    } else if (arg == "--tenants" && (v = next()) != nullptr) {
      storm.tenants = std::max(0, std::atoi(v));
    } else if (arg == "--slow-every" && (v = next()) != nullptr) {
      storm.slow_every = std::max(0, std::atoi(v));
    } else if (arg == "--idle-ms" && (v = next()) != nullptr) {
      storm.idle_timeout_ms = std::atoll(v);
    } else if (arg == "--quota" && (v = next()) != nullptr) {
      storm.tenant_quota = std::max(0, std::atoi(v));
    } else if (arg == "--reps" && (v = next()) != nullptr) {
      reps = std::max(1, std::atoi(v));
    } else if (arg == "--out" && (v = next()) != nullptr) {
      out_dir = v;
    } else {
      return usage(argv[0]);
    }
  }

  std::printf("== server_sessions: %d concurrent sessions (total %d) x %d "
              "evals, batch %d, %d tenants, slow every %d ==\n",
              storm.sessions,
              storm.total_sessions > 0 ? storm.total_sessions : storm.sessions,
              storm.evals, storm.batch, storm.tenants, storm.slow_every);

  const auto best = bench::best_of(reps, [&] { return bench::run_storm(storm); });
  std::printf("storm: %llu evals, %d sessions in %.3f s -> %.0f evals/s, "
              "%.1f sessions/s, p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
              static_cast<unsigned long long>(best.evals),
              best.sessions_completed, best.wall_s, best.evals_per_s(),
              best.sessions_per_s(), best.p50_ms, best.p95_ms, best.p99_ms);

  obs::BenchReport report;
  report.name = "server_sessions";
  report.evaluations = static_cast<int>(best.evals);
  report.wall_s = best.wall_s;
  report.metrics["sessions"] = storm.sessions;
  report.metrics["sessions_total"] = best.sessions_completed;
  report.metrics["batch"] = storm.batch;
  report.metrics["tenants"] = storm.tenants;
  report.metrics["evals_per_s"] = best.evals_per_s();
  report.metrics["sessions_per_s"] = best.sessions_per_s();
  report.metrics["p50_ms"] = best.p50_ms;
  report.metrics["p95_ms"] = best.p95_ms;
  report.metrics["p99_ms"] = best.p99_ms;
  report.metrics["p99_p50_ratio"] =
      best.p50_ms > 0.0 ? best.p99_ms / best.p50_ms : 0.0;
  if (const auto path = report.write_file(out_dir)) {
    std::printf("wrote %s\n", path->c_str());
  } else {
    std::fprintf(stderr, "error: could not write report into '%s'\n",
                 out_dir.c_str());
    return 2;
  }
  return 0;
}
