// server_throughput: load generator for the tuning server's network stack.
//
// Spawns K client sessions against a fresh in-process TuningServer; each
// session registers two parameters and completes M evaluations, then the
// whole exercise is timed. Two configurations are compared (see
// bench/server_load.hpp for the harnesses):
//
//  * epoll     — ServerThreading::kEventLoop, all K connections multiplexed
//                over a couple of poll()-driven client threads that pipeline
//                REPORT+FETCH with a send window of W lines per connection
//                (the steady state the event-driven stack is built for).
//  * legacy    — ServerThreading::kLegacy (one blocking thread per
//                connection) driven by one blocking client thread per
//                connection running the classic FETCH -> REPORT exchange:
//                two round trips, four syscalls, and two scheduled threads
//                per evaluation — the pre-event-loop deployment.
//
// A second, single-client experiment isolates the wire-protocol win: one
// TuningClient tuning synchronously via report_and_fetch() (one round trip
// per evaluation) versus report() + fetch() (two), both against the
// event-loop server.
//
// Results go to stdout and to BENCH_server_throughput.json
// (ah-bench-report/1): sessions/sec, evals/sec, p50/p95/p99 per-request
// latency for each configuration, plus the two headline ratios
// (`speedup` = pipelined-epoll over legacy evals/s, and `rf_speedup`). The
// CI bench-smoke job runs a small K x M and uploads the report; bench_gate
// tracks the epoll/legacy ratio against a baseline on a gate-sized workload.
//
// --trace-sample F + --trace-out FILE turn on end-to-end request tracing for
// the pipelined run: F of the REPORT+FETCH lines carry a wire trace token,
// the server records per-stage spans, and the spans land in FILE as JSONL
// (merge into a Chrome trace with report_gen --merge). --slow-us N sets the
// server's slow-request SLO so over-threshold requests hit the event log.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/client.hpp"
#include "core/server.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "server_load.hpp"

namespace bench = harmony::bench;
namespace obs = harmony::obs;
using bench::LoadResult;

namespace {

struct Options {
  bench::LoadOptions load;
  int reps = 3;  // keep the best of this many runs per configuration
  std::string out_dir = obs::bench_out_dir();
  std::string trace_out;  // span JSONL path; empty = tracing off
};

/// Single synchronous TuningClient, one round trip per evaluation via
/// report_and_fetch() when `combined`, two (report + fetch) otherwise.
LoadResult run_single_client(bool combined, int evals, const Options& opt) {
  harmony::ServerOptions sopts;
  sopts.reactor_threads = opt.load.reactors;
  harmony::TuningServer server(sopts);
  LoadResult result;
  if (!server.start()) return result;

  harmony::TuningClient client;
  const bool ok = client.connect(server.port(), "bench-single") &&
                  client.add_real("x", 0, 10) && client.add_real("y", 0, 10) &&
                  client.start(evals + 8);
  const auto t0 = bench::LoadClock::now();
  if (ok && client.fetch().has_value()) {
    for (int i = 0; i < evals; ++i) {
      const double obj = bench::synthetic_objective(i);
      if (combined) {
        if (!client.report_and_fetch(obj)) break;
      } else {
        if (!client.report(obj) || !client.fetch()) break;
      }
      result.evals = static_cast<std::uint64_t>(i + 1);
    }
  }
  result.wall_s = bench::load_seconds_since(t0);
  result.sessions_completed = 1;
  client.bye();
  server.stop();
  return result;
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--clients K] [--evals M] [--window W] [--reactors N]\n"
      "          [--reps R] [--out DIR] [--trace-sample F]\n"
      "          [--trace-out FILE] [--slow-us N]\n\n"
      "Measures tuning-server throughput: K concurrent clients x M\n"
      "evaluations each, event-loop+pipelined vs legacy+blocking, plus a\n"
      "single-client REPORT+FETCH vs FETCH/REPORT comparison. Writes\n"
      "BENCH_server_throughput.json into --out. --trace-sample F samples F\n"
      "of the pipelined requests into spans written to --trace-out FILE;\n"
      "--slow-us N logs requests over N microseconds.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--clients" && (v = next()) != nullptr) {
      opt.load.clients = std::max(1, std::atoi(v));
    } else if (arg == "--evals" && (v = next()) != nullptr) {
      opt.load.evals = std::max(1, std::atoi(v));
    } else if (arg == "--window" && (v = next()) != nullptr) {
      opt.load.window = std::max(1, std::atoi(v));
    } else if (arg == "--reactors" && (v = next()) != nullptr) {
      opt.load.reactors = std::max(1, std::atoi(v));
    } else if (arg == "--reps" && (v = next()) != nullptr) {
      opt.reps = std::max(1, std::atoi(v));
    } else if (arg == "--out" && (v = next()) != nullptr) {
      opt.out_dir = v;
    } else if (arg == "--trace-sample" && (v = next()) != nullptr) {
      opt.load.trace_sample = std::atof(v);
    } else if (arg == "--trace-out" && (v = next()) != nullptr) {
      opt.trace_out = v;
    } else if (arg == "--slow-us" && (v = next()) != nullptr) {
      opt.load.slow_request_us = std::atoll(v);
    } else {
      return usage(argv[0]);
    }
  }

  harmony::obs::SearchTracer tracer;
  if (!opt.trace_out.empty()) {
    opt.load.tracer = &tracer;
    if (opt.load.trace_sample <= 0.0) opt.load.trace_sample = 0.05;
  }

  std::printf("== server_throughput: %d clients x %d evals (window %d, "
              "%d reactors) ==\n",
              opt.load.clients, opt.load.evals, opt.load.window,
              opt.load.reactors);

  const auto epoll = bench::best_of(opt.reps, [&] {
    return bench::run_load(harmony::ServerThreading::kEventLoop,
                           /*pipelined=*/true, opt.load);
  });
  std::printf("epoll+pipelined: %llu evals in %.3f s -> %.0f evals/s, "
              "%.1f sessions/s, p50 %.3f ms, p99 %.3f ms (%d/%d completed)\n",
              static_cast<unsigned long long>(epoll.evals), epoll.wall_s,
              epoll.evals_per_s(), epoll.sessions_per_s(), epoll.p50_ms,
              epoll.p99_ms, epoll.sessions_completed, opt.load.clients);

  const auto legacy = bench::best_of(opt.reps, [&] {
    return bench::run_load(harmony::ServerThreading::kLegacy,
                           /*pipelined=*/false, opt.load);
  });
  std::printf("legacy+blocking: %llu evals in %.3f s -> %.0f evals/s, "
              "%.1f sessions/s, p50 %.3f ms, p99 %.3f ms (%d/%d completed)\n",
              static_cast<unsigned long long>(legacy.evals), legacy.wall_s,
              legacy.evals_per_s(), legacy.sessions_per_s(), legacy.p50_ms,
              legacy.p99_ms, legacy.sessions_completed, opt.load.clients);

  const double pipeline_speedup =
      legacy.evals_per_s() > 0.0 ? epoll.evals_per_s() / legacy.evals_per_s()
                                 : 0.0;
  std::printf("pipeline speedup (epoll/legacy evals/s): %.2fx\n",
              pipeline_speedup);

  // The single-client runs are short, so the two sides of the ratio are
  // measured back to back within each rep and the best rep's ratio kept —
  // a scheduling hiccup then hits both sides or drops the whole rep.
  const int single_evals = std::max(opt.load.evals, 2000);
  LoadResult rf;
  LoadResult fr;
  double rf_speedup = 0.0;
  for (int rep = 0; rep < opt.reps; ++rep) {
    const auto rf_run = run_single_client(/*combined=*/true, single_evals, opt);
    const auto fr_run = run_single_client(/*combined=*/false, single_evals, opt);
    const double ratio = fr_run.evals_per_s() > 0.0
                             ? rf_run.evals_per_s() / fr_run.evals_per_s()
                             : 0.0;
    if (rep == 0 || ratio > rf_speedup) {
      rf = rf_run;
      fr = fr_run;
      rf_speedup = ratio;
    }
  }
  std::printf("single client, %d evals: REPORT+FETCH %.0f evals/s vs "
              "FETCH/REPORT %.0f evals/s -> %.2fx\n",
              single_evals, rf.evals_per_s(), fr.evals_per_s(), rf_speedup);

  obs::BenchReport report;
  report.name = "server_throughput";
  report.best_config = "";
  report.best_value = 0.0;
  report.evaluations = static_cast<int>(epoll.evals + legacy.evals);
  report.evals_to_best = 0;
  report.wall_s = epoll.wall_s + legacy.wall_s;
  report.speedup = pipeline_speedup;
  report.metrics["clients"] = opt.load.clients;
  report.metrics["evals_per_client"] = opt.load.evals;
  report.metrics["window"] = opt.load.window;
  report.metrics["reactors"] = opt.load.reactors;
  report.metrics["epoll_evals_per_s"] = epoll.evals_per_s();
  report.metrics["epoll_sessions_per_s"] = epoll.sessions_per_s();
  report.metrics["epoll_p50_ms"] = epoll.p50_ms;
  report.metrics["epoll_p95_ms"] = epoll.p95_ms;
  report.metrics["epoll_p99_ms"] = epoll.p99_ms;
  report.metrics["legacy_evals_per_s"] = legacy.evals_per_s();
  report.metrics["legacy_sessions_per_s"] = legacy.sessions_per_s();
  report.metrics["legacy_p50_ms"] = legacy.p50_ms;
  report.metrics["legacy_p95_ms"] = legacy.p95_ms;
  report.metrics["legacy_p99_ms"] = legacy.p99_ms;
  report.metrics["rf_evals_per_s"] = rf.evals_per_s();
  report.metrics["fetch_report_evals_per_s"] = fr.evals_per_s();
  report.metrics["rf_speedup"] = rf_speedup;
  if (const auto path = report.write_file(opt.out_dir)) {
    std::printf("wrote %s\n", path->c_str());
  } else {
    std::fprintf(stderr, "error: could not write report into '%s'\n",
                 opt.out_dir.c_str());
    return 2;
  }
  if (!opt.trace_out.empty()) {
    std::ofstream tf(opt.trace_out);
    if (tf) {
      tracer.write_jsonl(tf);
      std::printf("wrote %zu span(s) to %s\n", tracer.span_count(),
                  opt.trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", opt.trace_out.c_str());
      return 2;
    }
  }
  return 0;
}
