// Ablation: design choices inside the Nelder-Mead kernel.
//
//  (1) reflection/expansion/contraction coefficients — how sensitive is the
//      tuned result to the simplex geometry (paper Section II uses the
//      classic Nelder-Mead moves);
//  (2) the evaluation cache — how many *distinct* short runs does the
//      memoization layer save on a discrete space where the snapped simplex
//      revisits lattice points (paper Section III bills every re-run).

#include <cstdio>
#include <iostream>

#include "core/harmony.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

using harmony::Config;

namespace {

struct PopProblem {
  harmony::ParamSpace space;
  Config start;
  harmony::Evaluator evaluate;
};

PopProblem make_problem() {
  PopProblem p;
  static const minipop::PopGrid grid = minipop::PopGrid::production();
  static const minipop::PopModel model(grid);
  static const auto machine = simcluster::presets::nersc_sp3(60, 8);
  static const auto pspace = minipop::make_param_space(32);
  static const auto mult = minipop::evaluate_multipliers(
      pspace, minipop::default_config(pspace));
  p.space.add(harmony::Parameter::Integer("block_x", 30, 720, 6));
  p.space.add(harmony::Parameter::Integer("block_y", 24, 600, 4));
  p.start = p.space.default_config();
  p.space.set(p.start, "block_x", std::int64_t{180});
  p.space.set(p.start, "block_y", std::int64_t{100});
  const auto space_copy = p.space;
  p.evaluate = [space_copy](const Config& c) {
    harmony::EvaluationResult r;
    const minipop::BlockShape shape{
        static_cast<int>(space_copy.get_int(c, "block_x")),
        static_cast<int>(space_copy.get_int(c, "block_y"))};
    r.objective = model.step_time(machine, 8, shape, mult).total_s;
    return r;
  };
  return p;
}

}  // namespace

int main() {
  std::printf("== Ablation: simplex coefficients and the evaluation cache ==\n\n");
  const PopProblem p = make_problem();
  const double t_default = p.evaluate(p.start).objective;

  std::printf("(1) simplex coefficients (POP block-size problem, budget 80)\n");
  harmony::TextTable t1(
      {"rho/chi/gamma/sigma", "best found (s/step)", "improvement"});
  const struct {
    const char* label;
    double rho, chi, gamma, sigma;
  } variants[] = {
      {"1.0/2.0/0.5/0.5 (classic)", 1.0, 2.0, 0.5, 0.5},
      {"0.8/1.5/0.4/0.6", 0.8, 1.5, 0.4, 0.6},
      {"1.2/2.5/0.6/0.4", 1.2, 2.5, 0.6, 0.4},
      {"1.0/1.2/0.5/0.5 (timid expand)", 1.0, 1.2, 0.5, 0.5},
      {"2.0/3.0/0.5/0.5 (aggressive)", 2.0, 3.0, 0.5, 0.5},
  };
  for (const auto& v : variants) {
    harmony::NelderMeadOptions opts;
    opts.reflection = v.rho;
    opts.expansion = v.chi;
    opts.contraction = v.gamma;
    opts.shrink = v.sigma;
    opts.max_restarts = 3;
    harmony::NelderMead nm(p.space, opts, p.start);
    harmony::TunerOptions topts;
    topts.max_iterations = 80;
    harmony::Tuner tuner(p.space, topts);
    const auto result = tuner.run(nm, p.evaluate);
    t1.add_row({v.label, harmony::fmt(result.best_result.objective, 4),
                harmony::percent_improvement(t_default,
                                             result.best_result.objective)});
  }
  t1.print(std::cout);

  std::printf("\n(2) evaluation cache: distinct short runs for the same search\n");
  harmony::TextTable t2({"cache", "proposals served", "application runs"});
  for (const bool use_cache : {true, false}) {
    harmony::NelderMeadOptions opts;
    opts.max_restarts = 3;
    harmony::NelderMead nm(p.space, opts, p.start);
    harmony::TunerOptions topts;
    topts.max_iterations = 80;
    topts.use_cache = use_cache;
    harmony::Tuner tuner(p.space, topts);
    int runs = 0;
    const auto counted = [&](const Config& c) {
      ++runs;
      return p.evaluate(c);
    };
    const auto result = tuner.run(nm, counted);
    t2.add_row({use_cache ? "on" : "off", std::to_string(result.proposals),
                std::to_string(runs)});
  }
  t2.print(std::cout);
  std::printf("\nwith the cache on, re-visited lattice points cost nothing — "
              "each application run in the paper is a full short run of the "
              "science code, so this is the tuning bill the cache cuts.\n");
  return 0;
}
