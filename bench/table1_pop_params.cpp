// Regenerates paper Tables I and II: POP runtime-parameter tuning on 32
// CPUs of Hockney (8 nodes x 4). Table I lists the parameter that changed
// at each improving iteration; Table II lists default vs tuned values.
// Paper's headline: 12.1% improvement after 12 configurations, 16.7% after
// 27 iterations.

#include <cstdio>
#include <iostream>

#include "core/harmony.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

using namespace minipop;
using harmony::Config;

int main() {
  std::printf("== Tables I & II: POP runtime-parameter tuning (Hockney, 32 CPUs) ==\n\n");
  const PopGrid grid = PopGrid::production();
  const PopModel model(grid);
  const auto machine = simcluster::presets::hockney(8, 4);
  const auto space = make_param_space(32);
  const auto start = default_config(space);

  const auto evaluate = [&](const Config& c) {
    harmony::EvaluationResult r;
    r.objective =
        model.step_time(machine, 4, {180, 100}, evaluate_multipliers(space, c))
            .total_s;
    return r;
  };
  const double t_default = evaluate(start).objective;

  // Per-parameter value sweeps (not just +-1 neighbor moves): a 3-choice
  // parameter whose middle value is slow would otherwise trap the greedy
  // descent, and num_iotasks can jump straight across its range the way the
  // paper's first iteration jumps 1 -> 32.
  harmony::CoordinateDescent search(space, start, 60, /*line_samples=*/8);
  harmony::TunerOptions topts;
  topts.max_iterations = 600;
  topts.max_proposals = 60000;
  harmony::Tuner tuner(space, topts);
  const auto result = tuner.run(search, evaluate);

  // --- Table I: parameter changes through iterations -------------------
  std::printf("Table I: parameter changes through iterations\n");
  harmony::TextTable t1({"Iteration", "Parameter", "Change from", "To"});
  const auto trace = tuner.history().improvement_trace();
  for (const auto& change : trace) {
    t1.add_row({std::to_string(change.iteration), change.param, change.from,
                change.to});
  }
  t1.print(std::cout);

  // --- Table II: default vs tuned values --------------------------------
  std::printf("\nTable II: parameter values before and after tuning\n");
  harmony::TextTable t2({"Parameter", "Default", "After tuning"});
  for (std::size_t i = 0; i < space.dim(); ++i) {
    const std::string def = harmony::to_string(start.values[i]);
    const std::string tuned = harmony::to_string(result.best->values[i]);
    if (def != tuned) {
      t2.add_row({space.param(i).name(), def, tuned});
    }
  }
  t2.print(std::cout);

  // --- Headline numbers --------------------------------------------------
  const double after12 = tuner.history().best_after(12);
  const double after27 = tuner.history().best_after(27);
  const double final_best = result.best_result.objective;
  std::printf("\nstep time default: %.4f s\n", t_default);
  std::printf("after 12 iterations: %.4f s (%s; paper: 12.1%%)\n", after12,
              harmony::percent_improvement(t_default, after12).c_str());
  std::printf("after 27 iterations: %.4f s (%s)\n", after27,
              harmony::percent_improvement(t_default, after27).c_str());
  std::printf("best found (%d iterations): %.4f s (%s; paper: 16.7%% after 27)\n",
              result.iterations, final_best,
              harmony::percent_improvement(t_default, final_best).c_str());
  return 0;
}
