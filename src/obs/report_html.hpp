#pragma once

/// \file report_html.hpp
/// Self-contained HTML session reports rendered from SearchTracer JSONL
/// traces and BenchReport JSON — the browsable counterpart of the paper's
/// convergence figures (Figs. 2-6 are all trajectory plots). The emitted
/// document embeds everything inline (CSS + SVG, no scripts, no external
/// fetches), so a CI artifact opens directly in a browser:
///
///  * an SVG convergence curve — best objective so far vs evaluation index,
///    with the raw per-evaluation objectives as faint markers;
///  * an SVG evaluation timeline — one row per thread lane, one bar per
///    evaluation colored by strategy (cache hits hollow), laid out on the
///    trace's wall clock — the at-a-glance view of pool utilization;
///  * a per-strategy summary table: evaluations, cache hits/rate, best
///    value;
///  * the BenchReport headline numbers, when a report is supplied.
///
/// The library half lives here so tests can exercise the renderer directly;
/// `tools/report_gen` is the thin CLI that CI runs over bench artifacts.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/trace.hpp"

namespace harmony::obs {

struct HtmlReportOptions {
  std::string title = "Active Harmony session report";
  int width = 900;        ///< pixel width of the SVG charts
  int curve_height = 320; ///< convergence chart height
  int lane_height = 26;   ///< per-lane row height in the timeline
};

/// Parse a SearchTracer::write_jsonl export. Lines that fail to parse are
/// skipped (counted in `*skipped` when non-null), so a truncated trace from
/// a crashed run still renders.
[[nodiscard]] std::vector<TraceEvent> load_trace_jsonl(std::istream& is,
                                                       std::size_t* skipped = nullptr);

/// One span parsed back from a write_jsonl export ("kind":"span" lines).
/// Ids stay hex strings (64-bit values do not survive a double round trip);
/// the timestamps have already been shifted onto the writing process's
/// wall clock via the per-line anchor, so spans from different processes
/// of the same distributed request line up on a shared axis.
struct MergedSpan {
  std::string trace_id;
  std::string span_id;
  std::string parent_span;
  std::string name;
  std::string detail;
  std::uint32_t thread_lane = 0;
  double t_start_us = 0.0;  ///< wall-clock unix microseconds
  double t_end_us = 0.0;
};

/// Parse only the span lines of a write_jsonl export (evaluation lines are
/// skipped; unparseable lines are counted in `*skipped` when non-null).
[[nodiscard]] std::vector<MergedSpan> load_span_jsonl(std::istream& is,
                                                      std::size_t* skipped = nullptr);

/// Merge span files from several processes into one Chrome trace-viewer
/// document: one pid per input (named by its label), tid = recording lane,
/// trace/span/parent ids in each slice's args so a distributed request can
/// be followed across the server and its workers by trace id. Timestamps
/// are rebased to the earliest span so the viewer opens at t=0.
void write_merged_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::vector<MergedSpan>>>& inputs);

/// Render the full report document. `bench` may be null (trace-only report).
void write_html_report(std::ostream& os, const std::vector<TraceEvent>& events,
                       const BenchReport* bench,
                       const HtmlReportOptions& opts = {});

/// Just the convergence-curve SVG element (exposed for tests/embedding).
void write_convergence_svg(std::ostream& os,
                           const std::vector<TraceEvent>& events,
                           const HtmlReportOptions& opts = {});

/// Just the per-lane evaluation-timeline SVG element.
void write_timeline_svg(std::ostream& os, const std::vector<TraceEvent>& events,
                        const HtmlReportOptions& opts = {});

}  // namespace harmony::obs
