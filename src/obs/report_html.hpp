#pragma once

/// \file report_html.hpp
/// Self-contained HTML session reports rendered from SearchTracer JSONL
/// traces and BenchReport JSON — the browsable counterpart of the paper's
/// convergence figures (Figs. 2-6 are all trajectory plots). The emitted
/// document embeds everything inline (CSS + SVG, no scripts, no external
/// fetches), so a CI artifact opens directly in a browser:
///
///  * an SVG convergence curve — best objective so far vs evaluation index,
///    with the raw per-evaluation objectives as faint markers;
///  * an SVG evaluation timeline — one row per thread lane, one bar per
///    evaluation colored by strategy (cache hits hollow), laid out on the
///    trace's wall clock — the at-a-glance view of pool utilization;
///  * a per-strategy summary table: evaluations, cache hits/rate, best
///    value;
///  * the BenchReport headline numbers, when a report is supplied.
///
/// The library half lives here so tests can exercise the renderer directly;
/// `tools/report_gen` is the thin CLI that CI runs over bench artifacts.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/trace.hpp"

namespace harmony::obs {

struct HtmlReportOptions {
  std::string title = "Active Harmony session report";
  int width = 900;        ///< pixel width of the SVG charts
  int curve_height = 320; ///< convergence chart height
  int lane_height = 26;   ///< per-lane row height in the timeline
};

/// Parse a SearchTracer::write_jsonl export. Lines that fail to parse are
/// skipped (counted in `*skipped` when non-null), so a truncated trace from
/// a crashed run still renders.
[[nodiscard]] std::vector<TraceEvent> load_trace_jsonl(std::istream& is,
                                                       std::size_t* skipped = nullptr);

/// Render the full report document. `bench` may be null (trace-only report).
void write_html_report(std::ostream& os, const std::vector<TraceEvent>& events,
                       const BenchReport* bench,
                       const HtmlReportOptions& opts = {});

/// Just the convergence-curve SVG element (exposed for tests/embedding).
void write_convergence_svg(std::ostream& os,
                           const std::vector<TraceEvent>& events,
                           const HtmlReportOptions& opts = {});

/// Just the per-lane evaluation-timeline SVG element.
void write_timeline_svg(std::ostream& os, const std::vector<TraceEvent>& events,
                        const HtmlReportOptions& opts = {});

}  // namespace harmony::obs
