#pragma once

/// \file json.hpp
/// Minimal JSON support for the observability layer: string escaping for the
/// writers (metrics snapshots, trace exports, bench reports) and a small
/// recursive-descent parser used to load checked-in benchmark baselines and
/// to round-trip exports in tests. Deliberately tiny — no external
/// dependency, no streaming, just enough JSON for our own schemas.

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace harmony::obs {

/// Escape a string for inclusion inside JSON double quotes (control
/// characters, quotes and backslashes; UTF-8 passes through untouched).
[[nodiscard]] std::string json_escape(std::string_view s);

/// A parsed JSON value. Numbers are always doubles (our schemas only carry
/// counts and seconds, both safely representable).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;
  JsonValue(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Typed member accessors with defaults, for schema readers.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const;

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Object> value_;
};

/// Parse a complete JSON document. Returns nullopt on any syntax error or
/// trailing garbage.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace harmony::obs
