#pragma once

/// \file bench_report.hpp
/// Machine-readable benchmark results. Every figure/table bench and the CI
/// gate serialize a BenchReport to `BENCH_<name>.json` so the numbers the
/// paper argues from (best configuration, evaluations spent, evaluations
/// until the best was first reached, wall clock, speedup) are diffable
/// artifacts rather than stdout prose. `bench/bench_gate` compares fresh
/// reports against checked-in baselines and fails CI on regression.
///
/// Schema (`ah-bench-report/1`), all keys at the top level:
///   schema, name, best_config, best_value, evaluations, evals_to_best,
///   wall_s, speedup, metrics{ free-form string->number }.

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

namespace harmony::obs {

struct BenchReport {
  std::string name;         ///< bench identifier; file is BENCH_<name>.json
  std::string best_config;  ///< formatted best configuration
  double best_value = 0.0;  ///< best objective reached (seconds in this repo)
  int evaluations = 0;      ///< distinct evaluations (short runs) spent
  int evals_to_best = 0;    ///< distinct evaluations until best first reached
  double wall_s = 0.0;      ///< harness wall-clock for the search
  double speedup = 0.0;     ///< bench-defined ratio (0 = not applicable)
  std::map<std::string, double> metrics;  ///< free-form extras

  /// "BENCH_<name>.json".
  [[nodiscard]] static std::string filename(const std::string& name);

  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Write to `<dir>/BENCH_<name>.json`; returns the path written, or
  /// nullopt when the file could not be opened.
  std::optional<std::string> write_file(const std::string& dir = ".") const;

  /// Parse a serialized report; nullopt on malformed JSON or wrong schema.
  [[nodiscard]] static std::optional<BenchReport> parse(const std::string& text);

  /// Load from a file path; nullopt when unreadable or malformed.
  [[nodiscard]] static std::optional<BenchReport> load(const std::string& path);
};

/// Directory benches write reports into: $AH_BENCH_OUT or ".".
[[nodiscard]] std::string bench_out_dir();

}  // namespace harmony::obs
