/// \file prometheus.cpp
/// Prometheus text exposition rendering for MetricsRegistry (the METRICS
/// protocol verb and anything else that wants to be scraped). Kept out of
/// metrics.cpp so the hot-path recording code stays separate from the
/// (cold) exposition encoder.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace harmony::obs {

namespace {

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted
/// names ("server.roundtrips") become underscored with an "ah_" namespace
/// prefix ("ah_server_roundtrips").
std::string prometheus_name(const std::string& name) {
  std::string out = "ah_";
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out += (std::isalnum(uc) != 0 || c == '_' || c == ':') ? c : '_';
  }
  return out;
}

std::string render_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Upper bound of log-2 bucket `i` (see Histogram::bucket_index): bucket 0
/// ends at kBucketFloor, bucket i at kBucketFloor * 2^i.
double bucket_upper_bound(int i) {
  return Histogram::kBucketFloor * std::ldexp(1.0, i);
}

void render_histogram(std::ostream& os, const std::string& name,
                      const Histogram& h) {
  os << "# TYPE " << name << " histogram\n";
  // Emit up to the highest non-empty bucket (at least bucket 0) so typical
  // timer histograms stay a dozen lines, not kBuckets.
  int top = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket(i) > 0) top = i;
  }
  std::uint64_t cumulative = 0;
  for (int i = 0; i <= top; ++i) {
    cumulative += h.bucket(i);
    os << name << "_bucket{le=\"" << render_double(bucket_upper_bound(i))
       << "\"} " << cumulative << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
  os << name << "_sum " << render_double(h.sum()) << "\n";
  os << name << "_count " << h.count() << "\n";
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  struct Row {
    std::string name;
    std::string body;
  };
  std::vector<Row> rows;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, entry] : shard.table) {
      const std::string pname = prometheus_name(name);
      std::ostringstream body;
      switch (entry.kind) {
        case Entry::Kind::Counter:
          body << "# TYPE " << pname << "_total counter\n"
               << pname << "_total " << entry.counter->value() << "\n";
          break;
        case Entry::Kind::Gauge:
          body << "# TYPE " << pname << " gauge\n"
               << pname << " " << render_double(entry.gauge->value()) << "\n";
          break;
        case Entry::Kind::Histogram:
          render_histogram(body, pname, *entry.histogram);
          break;
      }
      rows.push_back({pname, body.str()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  for (const auto& row : rows) os << row.body;
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

}  // namespace harmony::obs
