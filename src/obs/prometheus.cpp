/// \file prometheus.cpp
/// Prometheus text exposition rendering for MetricsRegistry (the METRICS
/// protocol verb and anything else that wants to be scraped). Kept out of
/// metrics.cpp so the hot-path recording code stays separate from the
/// (cold) exposition encoder.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace harmony::obs {

std::string prometheus_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

namespace {

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted
/// names ("server.roundtrips") become underscored with an "ah_" namespace
/// prefix ("ah_server_roundtrips").
std::string prometheus_name(const std::string& name) {
  std::string out = "ah_";
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out += (std::isalnum(uc) != 0 || c == '_' || c == ':') ? c : '_';
  }
  return out;
}

std::string render_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void render_help_type(std::ostream& os, const std::string& pname,
                      const std::string& source_name, std::string_view type) {
  // The source (dotted) name can in principle hold anything, so HELP text is
  // escaped: backslash -> \\ and line-feed -> \n per the text-format spec.
  std::string help;
  for (const char c : source_name) {
    if (c == '\\') {
      help += "\\\\";
    } else if (c == '\n') {
      help += "\\n";
    } else {
      help += c;
    }
  }
  os << "# HELP " << pname << " harmony metric " << help << "\n";
  os << "# TYPE " << pname << " " << type << "\n";
}

/// Upper bound of log-2 bucket `i` (see Histogram::bucket_index): bucket 0
/// ends at kBucketFloor, bucket i at kBucketFloor * 2^i.
double bucket_upper_bound(int i) {
  return Histogram::kBucketFloor * std::ldexp(1.0, i);
}

void render_histogram(std::ostream& os, const std::string& name,
                      const std::string& source_name, const Histogram& h) {
  render_help_type(os, name, source_name, "histogram");
  // Emit up to the highest non-empty bucket (at least bucket 0) so typical
  // timer histograms stay a dozen lines, not kBuckets.
  int top = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket(i) > 0) top = i;
  }
  std::uint64_t cumulative = 0;
  for (int i = 0; i <= top; ++i) {
    cumulative += h.bucket(i);
    os << name << "_bucket{le=\"" << prometheus_escape(render_double(bucket_upper_bound(i)))
       << "\"} " << cumulative << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
  os << name << "_sum " << render_double(h.sum()) << "\n";
  os << name << "_count " << h.count() << "\n";
}

void render_hdr(std::ostream& os, const std::string& name,
                const std::string& source_name, const HdrHistogram& h) {
  render_help_type(os, name, source_name, "histogram");
  // The log-linear layout has thousands of buckets; emit only the non-empty
  // ones (cumulative counts stay correct — skipped buckets add nothing).
  std::uint64_t cumulative = 0;
  for (int i = 0; i < HdrHistogram::kBuckets; ++i) {
    const std::uint64_t n = h.bucket(i);
    if (n == 0) continue;
    cumulative += n;
    os << name << "_bucket{le=\"" << prometheus_escape(render_double(HdrHistogram::bucket_upper(i)))
       << "\"} " << cumulative << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
  os << name << "_sum " << render_double(h.sum()) << "\n";
  os << name << "_count " << h.count() << "\n";
  // Pre-computed quantiles ride along as a gauge family so scrapers that do
  // not do histogram_quantile() still see the tail.
  const std::string qname = name + "_quantile";
  os << "# HELP " << qname << " harmony metric " << prometheus_escape(source_name)
     << " quantiles\n";
  os << "# TYPE " << qname << " gauge\n";
  os << qname << "{quantile=\"0.5\"} " << render_double(h.quantile(0.50)) << "\n";
  os << qname << "{quantile=\"0.95\"} " << render_double(h.quantile(0.95)) << "\n";
  os << qname << "{quantile=\"0.99\"} " << render_double(h.quantile(0.99)) << "\n";
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  struct Row {
    std::string name;
    std::string body;
  };
  std::vector<Row> rows;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, entry] : shard.table) {
      const std::string pname = prometheus_name(name);
      std::ostringstream body;
      switch (entry.kind) {
        case Entry::Kind::Counter:
          render_help_type(body, pname + "_total", name, "counter");
          body << pname << "_total " << entry.counter->value() << "\n";
          break;
        case Entry::Kind::Gauge:
          render_help_type(body, pname, name, "gauge");
          body << pname << " " << render_double(entry.gauge->value()) << "\n";
          break;
        case Entry::Kind::Histogram:
          render_histogram(body, pname, name, *entry.histogram);
          break;
        case Entry::Kind::Hdr:
          render_hdr(body, pname, name, *entry.hdr);
          break;
      }
      rows.push_back({pname, body.str()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  for (const auto& row : rows) os << row.body;
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

}  // namespace harmony::obs
