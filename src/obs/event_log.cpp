#include "obs/event_log.hpp"

#include <algorithm>
#include <functional>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/json.hpp"

namespace harmony::obs {

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "info";
}

Severity severity_from(std::string_view name) noexcept {
  if (name == "debug") return Severity::Debug;
  if (name == "warn") return Severity::Warn;
  if (name == "error") return Severity::Error;
  return Severity::Info;
}

EventLog::EventLog(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(capacity, kShards)),
      per_shard_(std::max<std::size_t>(1, capacity_ / kShards)),
      shards_(kShards) {}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

EventLog::Shard& EventLog::shard_for_current_thread() noexcept {
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % shards_.size()];
}

double EventLog::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventLog::record(Severity severity, std::string_view component,
                      std::string_view session, std::string_view message) {
  LogEvent e;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  e.t_us = now_us();
  e.severity = severity;
  e.component.assign(component);
  e.session.assign(session);
  e.message.assign(message);

  {
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    if (sink_ != nullptr) {
      write_event_json(*sink_, e);
      *sink_ << '\n';
    }
  }

  Shard& shard = shard_for_current_thread();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.ring.size() < per_shard_) {
    shard.ring.push_back(std::move(e));
  } else {
    shard.ring[shard.head] = std::move(e);
    shard.head = (shard.head + 1) % per_shard_;
  }
}

std::vector<LogEvent> EventLog::tail(std::size_t n) const {
  std::vector<LogEvent> out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.ring.begin(), shard.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const LogEvent& a, const LogEvent& b) { return a.seq < b.seq; });
  if (out.size() > n) out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(n));
  return out;
}

std::size_t EventLog::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.ring.size();
  }
  return n;
}

void EventLog::set_sink(std::ostream* sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink;
}

void EventLog::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.ring.clear();
    shard.head = 0;
  }
}

void EventLog::write_event_json(std::ostream& os, const LogEvent& e) {
  std::ostringstream t;
  t.precision(17);
  t << e.t_us;
  os << "{\"seq\":" << e.seq << ",\"t_us\":" << t.str() << ",\"severity\":\""
     << severity_name(e.severity) << "\",\"component\":\""
     << json_escape(e.component) << "\",\"session\":\""
     << json_escape(e.session) << "\",\"message\":\"" << json_escape(e.message)
     << "\"}";
}

void EventLog::write_jsonl_tail(std::ostream& os, std::size_t n) const {
  for (const auto& e : tail(n)) {
    write_event_json(os, e);
    os << '\n';
  }
}

}  // namespace harmony::obs
