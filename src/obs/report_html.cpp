#include "obs/report_html.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace harmony::obs {

namespace {

constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 16;
constexpr int kMarginBottom = 36;

/// Strategy bar/line colors; index by order of first appearance.
const char* const kPalette[] = {"#2563eb", "#dc2626", "#059669", "#d97706",
                                "#7c3aed", "#0891b2", "#be185d", "#4d7c0f"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v, int precision = 6) {
  if (!std::isfinite(v)) return "∞";
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

/// Events ordered the way a convergence plot wants them: by start time,
/// lanes breaking ties (same ordering SearchTracer::events() uses).
std::vector<TraceEvent> sorted_by_start(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t_start_us != b.t_start_us) {
                       return a.t_start_us < b.t_start_us;
                     }
                     return a.thread_lane < b.thread_lane;
                   });
  return events;
}

/// Distinct strategy names in order of first appearance (stable color map).
std::vector<std::string> strategy_order(const std::vector<TraceEvent>& events) {
  std::vector<std::string> out;
  for (const auto& e : events) {
    if (std::find(out.begin(), out.end(), e.strategy) == out.end()) {
      out.push_back(e.strategy);
    }
  }
  return out;
}

const char* color_for(const std::vector<std::string>& order,
                      const std::string& strategy) {
  const auto it = std::find(order.begin(), order.end(), strategy);
  const auto idx =
      it == order.end() ? 0 : static_cast<std::size_t>(it - order.begin());
  return kPalette[idx % kPaletteSize];
}

void empty_chart(std::ostream& os, int width, int height, const char* cls) {
  os << "<svg class=\"" << cls << "\" width=\"" << width << "\" height=\""
     << height << "\" viewBox=\"0 0 " << width << " " << height
     << "\" xmlns=\"http://www.w3.org/2000/svg\">"
     << "<text x=\"" << width / 2 << "\" y=\"" << height / 2
     << "\" text-anchor=\"middle\" fill=\"#6b7280\">no trace events</text>"
     << "</svg>\n";
}

}  // namespace

std::vector<TraceEvent> load_trace_jsonl(std::istream& is,
                                         std::size_t* skipped) {
  std::vector<TraceEvent> out;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto v = json_parse(line);
    if (!v || !v->is_object()) {
      ++bad;
      continue;
    }
    // Span records (tracing PRs onward) share the file but not the schema;
    // they are not evaluations, so the report skips them silently.
    if (v->find("kind") != nullptr) continue;
    TraceEvent e;
    e.strategy = v->string_or("strategy", "");
    e.point = v->string_or("point", "");
    // write_jsonl serializes non-finite objectives as null.
    const JsonValue* obj = v->find("objective");
    e.objective = (obj != nullptr && obj->is_number())
                      ? obj->as_number()
                      : std::numeric_limits<double>::infinity();
    const JsonValue* valid = v->find("valid");
    e.valid = valid != nullptr && valid->is_bool() ? valid->as_bool() : true;
    const JsonValue* hit = v->find("cache_hit");
    e.cache_hit = hit != nullptr && hit->is_bool() && hit->as_bool();
    e.thread_lane = static_cast<std::uint32_t>(v->number_or("thread", 0.0));
    e.t_start_us = v->number_or("t_start_us", 0.0);
    e.t_end_us = v->number_or("t_end_us", 0.0);
    out.push_back(std::move(e));
  }
  if (skipped != nullptr) *skipped = bad;
  return out;
}

std::vector<MergedSpan> load_span_jsonl(std::istream& is,
                                        std::size_t* skipped) {
  std::vector<MergedSpan> out;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto v = json_parse(line);
    if (!v || !v->is_object()) {
      ++bad;
      continue;
    }
    const JsonValue* kind = v->find("kind");
    if (kind == nullptr || !kind->is_string() || kind->as_string() != "span") {
      continue;  // evaluation line, shared file
    }
    MergedSpan s;
    s.trace_id = v->string_or("trace", "");
    s.span_id = v->string_or("span", "");
    s.parent_span = v->string_or("parent", "");
    s.name = v->string_or("name", "");
    s.detail = v->string_or("detail", "");
    s.thread_lane = static_cast<std::uint32_t>(v->number_or("thread", 0.0));
    // The anchor is the tracer's wall-clock time at its steady-epoch zero;
    // adding it turns per-process relative microseconds into a shared axis.
    const double anchor = v->number_or("anchor_us", 0.0);
    s.t_start_us = anchor + v->number_or("t_start_us", 0.0);
    s.t_end_us = anchor + v->number_or("t_end_us", 0.0);
    out.push_back(std::move(s));
  }
  if (skipped != nullptr) *skipped = bad;
  return out;
}

void write_merged_chrome_trace(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::vector<MergedSpan>>>& inputs) {
  double t0 = std::numeric_limits<double>::infinity();
  for (const auto& [label, spans] : inputs) {
    for (const auto& s : spans) t0 = std::min(t0, s.t_start_us);
  }
  if (!std::isfinite(t0)) t0 = 0.0;

  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t pid = 0; pid < inputs.size(); ++pid) {
    const auto& [label, spans] = inputs[pid];
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(label) << "\"}}";
    for (const auto& s : spans) {
      os << ",{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"span\""
         << ",\"ph\":\"X\",\"ts\":" << fmt(s.t_start_us - t0, 17)
         << ",\"dur\":" << fmt(std::max(0.0, s.t_end_us - s.t_start_us), 17)
         << ",\"pid\":" << pid << ",\"tid\":" << s.thread_lane
         << ",\"args\":{\"trace\":\"" << json_escape(s.trace_id)
         << "\",\"span\":\"" << json_escape(s.span_id) << "\",\"parent\":\""
         << json_escape(s.parent_span) << "\",\"detail\":\""
         << json_escape(s.detail) << "\"}}";
    }
  }
  os << "]}\n";
}

void write_convergence_svg(std::ostream& os,
                           const std::vector<TraceEvent>& events,
                           const HtmlReportOptions& opts) {
  const int width = opts.width;
  const int height = opts.curve_height;
  const auto evs = sorted_by_start(events);

  // Best-so-far trajectory over finite, valid objectives.
  std::vector<double> best_so_far(evs.size(),
                                  std::numeric_limits<double>::infinity());
  double best = std::numeric_limits<double>::infinity();
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const auto& e = evs[i];
    if (e.valid && std::isfinite(e.objective)) {
      best = std::min(best, e.objective);
      lo = std::min(lo, e.objective);
      hi = std::max(hi, e.objective);
      any = true;
    }
    best_so_far[i] = best;
  }
  if (!any) {
    empty_chart(os, width, height, "convergence");
    return;
  }
  if (hi <= lo) hi = lo + (lo != 0.0 ? std::abs(lo) * 1e-3 : 1.0);

  const double plot_w = width - kMarginLeft - kMarginRight;
  const double plot_h = height - kMarginTop - kMarginBottom;
  const double n = static_cast<double>(evs.size());
  const auto x_of = [&](std::size_t i) {
    return kMarginLeft +
           plot_w * (n > 1 ? static_cast<double>(i) / (n - 1) : 0.5);
  };
  const auto y_of = [&](double v) {
    return kMarginTop + plot_h * (1.0 - (v - lo) / (hi - lo));
  };

  os << "<svg class=\"convergence\" width=\"" << width << "\" height=\""
     << height << "\" viewBox=\"0 0 " << width << " " << height
     << "\" xmlns=\"http://www.w3.org/2000/svg\">\n";
  // Frame + axis labels.
  os << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
     << plot_w << "\" height=\"" << plot_h
     << "\" fill=\"none\" stroke=\"#d1d5db\"/>\n";
  os << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << y_of(hi) + 4
     << "\" text-anchor=\"end\" class=\"axis\">" << fmt(hi, 4) << "</text>\n";
  os << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << y_of(lo) + 4
     << "\" text-anchor=\"end\" class=\"axis\">" << fmt(lo, 4) << "</text>\n";
  os << "<text x=\"" << kMarginLeft << "\" y=\"" << height - 10
     << "\" class=\"axis\">evaluation 1</text>\n";
  os << "<text x=\"" << width - kMarginRight << "\" y=\"" << height - 10
     << "\" text-anchor=\"end\" class=\"axis\">evaluation " << evs.size()
     << "</text>\n";

  // Raw per-evaluation objectives as faint markers.
  const auto order = strategy_order(evs);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const auto& e = evs[i];
    if (!e.valid || !std::isfinite(e.objective)) continue;
    os << "<circle cx=\"" << fmt(x_of(i), 7) << "\" cy=\""
       << fmt(y_of(e.objective), 7) << "\" r=\"2\" fill=\""
       << color_for(order, e.strategy) << "\" fill-opacity=\"0.35\"/>\n";
  }

  // The best-so-far step curve (the figure the paper's convergence plots
  // show): horizontal until an improvement, then a vertical drop.
  os << "<polyline class=\"best\" fill=\"none\" stroke=\"#111827\" "
        "stroke-width=\"1.8\" points=\"";
  double prev = std::numeric_limits<double>::infinity();
  bool started = false;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (!std::isfinite(best_so_far[i])) continue;
    if (started && best_so_far[i] != prev) {
      os << fmt(x_of(i), 7) << "," << fmt(y_of(prev), 7) << " ";
    }
    os << fmt(x_of(i), 7) << "," << fmt(y_of(best_so_far[i]), 7) << " ";
    prev = best_so_far[i];
    started = true;
  }
  os << "\"/>\n</svg>\n";
}

void write_timeline_svg(std::ostream& os, const std::vector<TraceEvent>& events,
                        const HtmlReportOptions& opts) {
  const int width = opts.width;
  if (events.empty()) {
    empty_chart(os, width, 3 * opts.lane_height, "timeline");
    return;
  }
  std::uint32_t max_lane = 0;
  double t_lo = std::numeric_limits<double>::infinity();
  double t_hi = -std::numeric_limits<double>::infinity();
  for (const auto& e : events) {
    max_lane = std::max(max_lane, e.thread_lane);
    t_lo = std::min(t_lo, e.t_start_us);
    t_hi = std::max(t_hi, std::max(e.t_end_us, e.t_start_us));
  }
  if (t_hi <= t_lo) t_hi = t_lo + 1.0;
  const int lanes = static_cast<int>(max_lane) + 1;
  const int legend_h = 22;
  const int height = kMarginTop + lanes * opts.lane_height + kMarginBottom + legend_h;
  const double plot_w = width - kMarginLeft - kMarginRight;
  const auto x_of = [&](double t_us) {
    return kMarginLeft + plot_w * (t_us - t_lo) / (t_hi - t_lo);
  };

  os << "<svg class=\"timeline\" width=\"" << width << "\" height=\"" << height
     << "\" viewBox=\"0 0 " << width << " " << height
     << "\" xmlns=\"http://www.w3.org/2000/svg\">\n";
  for (int lane = 0; lane < lanes; ++lane) {
    const int y = kMarginTop + lane * opts.lane_height;
    os << "<text x=\"" << kMarginLeft - 6 << "\" y=\""
       << y + opts.lane_height / 2 + 4
       << "\" text-anchor=\"end\" class=\"axis\">lane " << lane << "</text>\n";
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << y + opts.lane_height
       << "\" x2=\"" << width - kMarginRight << "\" y2=\""
       << y + opts.lane_height << "\" stroke=\"#e5e7eb\"/>\n";
  }

  const auto order = strategy_order(events);
  for (const auto& e : events) {
    const double x0 = x_of(e.t_start_us);
    const double x1 = std::max(x_of(e.t_end_us), x0 + 1.0);  // min 1px wide
    const int y = kMarginTop +
                  static_cast<int>(e.thread_lane) * opts.lane_height + 3;
    const char* color = color_for(order, e.strategy);
    os << "<rect class=\"" << (e.cache_hit ? "hit" : "eval") << "\" x=\""
       << fmt(x0, 7) << "\" y=\"" << y << "\" width=\"" << fmt(x1 - x0, 7)
       << "\" height=\"" << opts.lane_height - 6 << "\" fill=\"" << color
       << "\" fill-opacity=\"" << (e.cache_hit ? "0.25" : "0.85")
       << "\" stroke=\"" << color << "\"><title>" << html_escape(e.point)
       << " = " << fmt(e.objective) << (e.cache_hit ? " (cache hit)" : "")
       << "</title></rect>\n";
  }

  // Time axis + strategy legend.
  const int axis_y = kMarginTop + lanes * opts.lane_height + 16;
  os << "<text x=\"" << kMarginLeft << "\" y=\"" << axis_y
     << "\" class=\"axis\">" << fmt(t_lo / 1000.0, 5) << " ms</text>\n";
  os << "<text x=\"" << width - kMarginRight << "\" y=\"" << axis_y
     << "\" text-anchor=\"end\" class=\"axis\">" << fmt(t_hi / 1000.0, 5)
     << " ms</text>\n";
  int lx = kMarginLeft;
  const int ly = axis_y + legend_h;
  for (const auto& s : order) {
    os << "<rect x=\"" << lx << "\" y=\"" << ly - 10
       << "\" width=\"12\" height=\"12\" fill=\"" << color_for(order, s)
       << "\"/><text x=\"" << lx + 16 << "\" y=\"" << ly
       << "\" class=\"axis\">" << html_escape(s) << "</text>\n";
    lx += 24 + 8 * static_cast<int>(s.size());
  }
  os << "</svg>\n";
}

void write_html_report(std::ostream& os, const std::vector<TraceEvent>& events,
                       const BenchReport* bench, const HtmlReportOptions& opts) {
  // Summary numbers from the trace itself.
  std::size_t cache_hits = 0;
  std::size_t invalid = 0;
  double best = std::numeric_limits<double>::infinity();
  std::string best_point;
  double wall_us = 0.0;
  std::uint32_t max_lane = 0;
  for (const auto& e : events) {
    if (e.cache_hit) ++cache_hits;
    if (!e.valid) ++invalid;
    if (e.valid && std::isfinite(e.objective) && e.objective < best) {
      best = e.objective;
      best_point = e.point;
    }
    wall_us = std::max(wall_us, e.t_end_us);
    max_lane = std::max(max_lane, e.thread_lane);
  }
  const double hit_rate =
      events.empty() ? 0.0
                     : 100.0 * static_cast<double>(cache_hits) /
                           static_cast<double>(events.size());

  os << "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>" << html_escape(opts.title) << "</title>\n<style>\n"
     << "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:"
     << opts.width + 40 << "px;color:#111827}\n"
     << "h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem}\n"
     << "table{border-collapse:collapse;font-size:0.9rem}\n"
     << "td,th{border:1px solid #d1d5db;padding:0.3rem 0.6rem;text-align:left}\n"
     << "th{background:#f3f4f6}\n"
     << "svg text.axis,svg .axis{font-size:11px;fill:#6b7280}\n"
     << "p.note{color:#6b7280;font-size:0.85rem}\n"
     << "</style>\n</head>\n<body>\n";
  os << "<h1>" << html_escape(opts.title) << "</h1>\n";

  if (bench != nullptr) {
    os << "<h2>Benchmark report</h2>\n<table class=\"bench\">\n"
       << "<tr><th>bench</th><td>" << html_escape(bench->name) << "</td></tr>\n"
       << "<tr><th>best config</th><td>" << html_escape(bench->best_config)
       << "</td></tr>\n"
       << "<tr><th>best value</th><td>" << fmt(bench->best_value)
       << "</td></tr>\n"
       << "<tr><th>evaluations</th><td>" << bench->evaluations << "</td></tr>\n"
       << "<tr><th>evals to best</th><td>" << bench->evals_to_best
       << "</td></tr>\n"
       << "<tr><th>wall (s)</th><td>" << fmt(bench->wall_s) << "</td></tr>\n";
    if (bench->speedup != 0.0) {
      os << "<tr><th>speedup</th><td>" << fmt(bench->speedup) << "</td></tr>\n";
    }
    for (const auto& [k, v] : bench->metrics) {
      os << "<tr><th>" << html_escape(k) << "</th><td>" << fmt(v)
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  os << "<h2>Convergence</h2>\n"
     << "<p class=\"note\">best objective so far vs evaluation index; faint "
        "dots are the raw per-evaluation objectives</p>\n";
  write_convergence_svg(os, events, opts);

  os << "<h2>Evaluation timeline</h2>\n"
     << "<p class=\"note\">one row per thread lane, one bar per evaluation "
        "(hollow = served from cache)</p>\n";
  write_timeline_svg(os, events, opts);

  os << "<h2>Cache & strategy summary</h2>\n<table class=\"summary\">\n"
     << "<tr><th>strategy</th><th>evaluations</th><th>cache hits</th>"
     << "<th>hit rate</th><th>best value</th></tr>\n";
  for (const auto& s : strategy_order(events)) {
    std::size_t count = 0;
    std::size_t hits = 0;
    double s_best = std::numeric_limits<double>::infinity();
    for (const auto& e : events) {
      if (e.strategy != s) continue;
      ++count;
      if (e.cache_hit) ++hits;
      if (e.valid && std::isfinite(e.objective)) s_best = std::min(s_best, e.objective);
    }
    os << "<tr><td>" << html_escape(s) << "</td><td>" << count << "</td><td>"
       << hits << "</td><td>"
       << fmt(count != 0 ? 100.0 * static_cast<double>(hits) /
                               static_cast<double>(count)
                         : 0.0,
              3)
       << "%</td><td>" << fmt(s_best) << "</td></tr>\n";
  }
  os << "<tr><th>total</th><th>" << events.size() << "</th><th>" << cache_hits
     << "</th><th>" << fmt(hit_rate, 3) << "%</th><th>" << fmt(best)
     << "</th></tr>\n</table>\n";
  os << "<p class=\"note\">trace: " << events.size() << " events, "
     << (static_cast<int>(max_lane) + 1) << " lane(s), " << invalid
     << " invalid evaluation(s), wall span " << fmt(wall_us / 1000.0, 5)
     << " ms; best point: " << html_escape(best_point) << "</p>\n";
  os << "</body>\n</html>\n";
}

}  // namespace harmony::obs
