#pragma once

/// \file metrics.hpp
/// Process-wide metrics for the tuning core and the parallel engine: named
/// counters, gauges and histogram timers behind a zero-cost-when-disabled
/// API. Design constraints, in order:
///
///  * recording must be safe and cheap from the thread-pool workers — metric
///    objects update with relaxed/CAS atomics only, and the name->metric
///    table is lock-sharded so two workers touching different metrics never
///    serialize on one mutex;
///  * when observability is off (the default), every record path reduces to
///    one relaxed atomic load and a branch — no clocks, no allocation, no
///    hashing — so instrumented hot paths cost nothing in production runs;
///  * metric references returned by the registry stay valid for the
///    registry's lifetime (entries are never removed), so callers on a hot
///    path can resolve the name once and keep the handle.
///
/// Enablement is process-wide: obs::set_enabled(true), or export AH_OBS=1
/// before the first record (read once, lazily).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace harmony::obs {

/// True when metric recording is on. One relaxed atomic load; reads AH_OBS
/// from the environment on first call.
[[nodiscard]] bool enabled() noexcept;

/// Escape a Prometheus label value per the text exposition spec: backslash,
/// double quote and line feed become \\, \" and \n. Implemented in
/// prometheus.cpp; exposed so the conformance tests can pin the rule down.
[[nodiscard]] std::string prometheus_escape(std::string_view v);

/// Turn recording on/off process-wide (overrides AH_OBS).
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary: count/sum/min/max plus base-2 log-scale buckets
/// (values below 1e-9 land in bucket 0; each bucket doubles). All updates
/// are atomic, so concurrent record() calls never lose counts.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kBucketFloor = 1e-9;  ///< bucket 0 upper bound

  void record(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double min() const noexcept;  ///< 0 when empty
  [[nodiscard]] double max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Index of the log-2 bucket a value falls into (exposed for tests).
  [[nodiscard]] static int bucket_index(double v) noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// High-dynamic-range distribution: log-linear buckets — 64 linear
/// sub-buckets per power-of-two octave — bound the relative quantile error at
/// ~1.6% anywhere in the range [1e-9, ~1.8e4] (seconds, say), which the
/// base-2 Histogram's factor-of-two buckets cannot do. quantile(q) scans the
/// cumulative counts and returns the matched bucket's midpoint clamped to the
/// observed [min, max], so a single-valued distribution reports that value
/// exactly. All updates are relaxed/CAS atomics; record() never allocates.
class HdrHistogram {
 public:
  static constexpr int kSubBits = 6;  ///< 2^6 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kOctaves = 44;
  static constexpr int kBuckets = 1 + kOctaves * kSubBuckets;
  static constexpr double kValueFloor = 1e-9;  ///< bucket 0 upper bound

  void record(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double min() const noexcept;  ///< 0 when empty
  [[nodiscard]] double max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept;
  /// Value at quantile q in [0, 1] (0 when empty). q=0.5 is the median.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Bucket a value falls into / that bucket's upper bound (exposed for the
  /// Prometheus renderer and for tests).
  [[nodiscard]] static int bucket_index(double v) noexcept;
  [[nodiscard]] static double bucket_upper(int i) noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Name -> metric table, sharded by name hash (one mutex per shard) so the
/// parallel engine's workers resolving different metrics do not contend.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t shards = 16);

  /// The process-wide registry used by the convenience helpers below.
  static MetricsRegistry& global();

  /// Get-or-create. The returned reference is stable for the registry's
  /// lifetime. A name keeps the kind it was first created with; asking for
  /// the same name as a different kind throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  HdrHistogram& hdr(std::string_view name);

  [[nodiscard]] std::size_t size() const;

  /// Zero every metric's value (registrations survive) — for tests and for
  /// reusing one process across benchmark repetitions.
  void reset_values();

  /// One JSON object, keys sorted: {"name":{"type":"counter","value":N}, ...}.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (one # HELP/# TYPE block per metric,
  /// names sorted): counters become `ah_<name>_total`, gauges `ah_<name>`,
  /// histograms the full cumulative `_bucket{le=...}/_sum/_count` family
  /// rendered from the log-2 buckets. Dots in metric names map to
  /// underscores. Served by the tuning server's METRICS verb; implemented in
  /// prometheus.cpp.
  void write_prometheus(std::ostream& os) const;
  [[nodiscard]] std::string to_prometheus() const;

 private:
  struct Entry {
    enum class Kind { Counter, Gauge, Histogram, Hdr } kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<HdrHistogram> hdr;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> table;
  };

  [[nodiscard]] Shard& shard_for(std::string_view name) const;
  Entry& entry_for(std::string_view name, Entry::Kind kind);

  mutable std::vector<Shard> shards_;
};

// ---- zero-cost-when-disabled convenience recorders ------------------------
// Each is a relaxed load + branch when observability is off. When on, they
// resolve the metric in the global registry (sharded lock) and update it
// atomically. Hot loops that record at high frequency should instead resolve
// the handle once via MetricsRegistry::global().counter(...).

inline void count(std::string_view name, std::uint64_t n = 1) {
  if (!enabled()) return;
  MetricsRegistry::global().counter(name).add(n);
}

inline void gauge_set(std::string_view name, double v) {
  if (!enabled()) return;
  MetricsRegistry::global().gauge(name).set(v);
}

inline void observe(std::string_view name, double v) {
  if (!enabled()) return;
  MetricsRegistry::global().histogram(name).record(v);
}

inline void hdr_observe(std::string_view name, double v) {
  if (!enabled()) return;
  MetricsRegistry::global().hdr(name).record(v);
}

/// RAII wall-clock timer recording seconds into a histogram on destruction.
/// Construct via time_scope(); holds nullptr (and touches no clock) when
/// observability is disabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_ = 0;
};

[[nodiscard]] ScopedTimer time_scope(std::string_view name);

/// RAII wall-clock timer recording seconds into an HdrHistogram on
/// destruction. Same contract as ScopedTimer: holds nullptr (and touches no
/// clock) when observability is disabled at construction time.
class HdrScopedTimer {
 public:
  explicit HdrScopedTimer(HdrHistogram* h) noexcept;
  ~HdrScopedTimer();
  HdrScopedTimer(const HdrScopedTimer&) = delete;
  HdrScopedTimer& operator=(const HdrScopedTimer&) = delete;

 private:
  HdrHistogram* histogram_;
  std::uint64_t start_ns_ = 0;
};

[[nodiscard]] HdrScopedTimer hdr_time_scope(std::string_view name);

}  // namespace harmony::obs
