#include "obs/status.hpp"

#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace harmony::obs {

namespace {

/// Finite numbers print plainly; the "no measurement yet" infinity becomes
/// null so STATUS consumers do not need to parse "inf".
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

double steady_seconds() {
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - origin)
      .count();
}

StatusRegistry& StatusRegistry::global() {
  static StatusRegistry registry;
  return registry;
}

// ---- SessionHandle --------------------------------------------------------

StatusRegistry::SessionHandle::SessionHandle(SessionHandle&& other) noexcept
    : registry_(std::exchange(other.registry_, nullptr)),
      slot_(std::exchange(other.slot_, nullptr)) {}

StatusRegistry::SessionHandle& StatusRegistry::SessionHandle::operator=(
    SessionHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = std::exchange(other.registry_, nullptr);
    slot_ = std::exchange(other.slot_, nullptr);
  }
  return *this;
}

StatusRegistry::SessionHandle::~SessionHandle() { reset(); }

void StatusRegistry::SessionHandle::update(
    const std::function<void(SessionStatus&)>& fn) {
  if (slot_ == nullptr || !fn) return;
  {
    const std::lock_guard<std::mutex> lock(slot_->mutex);
    std::string id = slot_->status.id;  // fixed at publish time
    fn(slot_->status);
    slot_->status.id = std::move(id);
  }
  slot_->slot_epoch.fetch_add(1, std::memory_order_relaxed);
  registry_->bump();
}

void StatusRegistry::SessionHandle::reset() {
  if (slot_ != nullptr) registry_->drop_session(slot_);
  registry_ = nullptr;
  slot_ = nullptr;
}

// ---- WorkerHandle ---------------------------------------------------------

StatusRegistry::WorkerHandle::WorkerHandle(WorkerHandle&& other) noexcept
    : registry_(std::exchange(other.registry_, nullptr)),
      slot_(std::exchange(other.slot_, nullptr)) {}

StatusRegistry::WorkerHandle& StatusRegistry::WorkerHandle::operator=(
    WorkerHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = std::exchange(other.registry_, nullptr);
    slot_ = std::exchange(other.slot_, nullptr);
  }
  return *this;
}

StatusRegistry::WorkerHandle::~WorkerHandle() { reset(); }

void StatusRegistry::WorkerHandle::set(bool busy, std::uint64_t tasks) {
  if (slot_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(slot_->mutex);
    slot_->status.busy = busy;
    slot_->status.tasks = tasks;
  }
  slot_->slot_epoch.fetch_add(1, std::memory_order_relaxed);
  registry_->bump();
}

void StatusRegistry::WorkerHandle::update(
    const std::function<void(WorkerStatus&)>& fn) {
  if (slot_ == nullptr || !fn) return;
  {
    const std::lock_guard<std::mutex> lock(slot_->mutex);
    std::string pool = slot_->status.pool;  // fixed at publish time
    const std::uint32_t lane = slot_->status.lane;
    fn(slot_->status);
    slot_->status.pool = std::move(pool);
    slot_->status.lane = lane;
  }
  slot_->slot_epoch.fetch_add(1, std::memory_order_relaxed);
  registry_->bump();
}

void StatusRegistry::WorkerHandle::reset() {
  if (slot_ != nullptr) registry_->drop_worker(slot_);
  registry_ = nullptr;
  slot_ = nullptr;
}

// ---- StatusRegistry -------------------------------------------------------

StatusRegistry::SessionHandle StatusRegistry::publish_session(
    const std::string& id) {
  auto slot = std::make_unique<SessionSlot>();
  slot->status.id = id;
  SessionSlot* raw = slot.get();
  {
    const std::lock_guard<std::mutex> lock(table_mutex_);
    std::string key = id;
    while (sessions_.count(key) != 0) {
      key = id;
      key.push_back('#');
      key += std::to_string(++clash_suffix_);
    }
    raw->status.id = key;
    sessions_.emplace(std::move(key), std::move(slot));
  }
  sessions_started_.fetch_add(1, std::memory_order_relaxed);
  bump();
  return SessionHandle(this, raw);
}

StatusRegistry::WorkerHandle StatusRegistry::publish_worker(
    const std::string& pool, std::uint32_t lane) {
  auto slot = std::make_unique<WorkerSlot>();
  slot->status.pool = pool;
  slot->status.lane = lane;
  WorkerSlot* raw = slot.get();
  {
    const std::lock_guard<std::mutex> lock(table_mutex_);
    std::string key = pool;
    key.push_back('/');
    key += std::to_string(lane);
    while (workers_.count(key) != 0) {
      key.push_back('#');
      key += std::to_string(++clash_suffix_);
    }
    workers_.emplace(std::move(key), std::move(slot));
  }
  bump();
  return WorkerHandle(this, raw);
}

StatusRegistry::TenantSlot* StatusRegistry::tenant_slot(const std::string& name) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, std::make_unique<TenantSlot>(name)).first;
    bump();
  }
  return it->second.get();
}

std::vector<StatusRegistry::TenantSnapshot> StatusRegistry::tenants() const {
  std::vector<TenantSnapshot> out;
  const std::lock_guard<std::mutex> lock(table_mutex_);
  out.reserve(tenants_.size());
  for (const auto& [name, slot] : tenants_) {
    TenantSnapshot snap;
    snap.name = name;
    snap.sessions = slot->sessions.load(std::memory_order_relaxed);
    snap.evals = slot->evals.load(std::memory_order_relaxed);
    snap.shed = slot->shed.load(std::memory_order_relaxed);
    if (slot->request_s.count() > 0) {
      snap.p50_us = slot->request_s.quantile(0.50) * 1e6;
      snap.p99_us = slot->request_s.quantile(0.99) * 1e6;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void StatusRegistry::drop_session(SessionSlot* slot) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->second.get() == slot) {
      sessions_.erase(it);
      break;
    }
  }
  bump();
}

void StatusRegistry::drop_worker(WorkerSlot* slot) {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  for (auto it = workers_.begin(); it != workers_.end(); ++it) {
    if (it->second.get() == slot) {
      workers_.erase(it);
      break;
    }
  }
  bump();
}

std::vector<SessionStatus> StatusRegistry::sessions() const {
  std::vector<SessionStatus> out;
  const std::lock_guard<std::mutex> lock(table_mutex_);
  out.reserve(sessions_.size());
  for (const auto& [key, slot] : sessions_) {
    const std::lock_guard<std::mutex> slot_lock(slot->mutex);
    out.push_back(slot->status);
  }
  return out;
}

std::vector<WorkerStatus> StatusRegistry::workers() const {
  std::vector<WorkerStatus> out;
  const std::lock_guard<std::mutex> lock(table_mutex_);
  out.reserve(workers_.size());
  for (const auto& [key, slot] : workers_) {
    const std::lock_guard<std::mutex> slot_lock(slot->mutex);
    out.push_back(slot->status);
  }
  return out;
}

std::size_t StatusRegistry::session_count() const {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  return sessions_.size();
}

std::size_t StatusRegistry::worker_count() const {
  const std::lock_guard<std::mutex> lock(table_mutex_);
  return workers_.size();
}

void StatusRegistry::write_json(std::ostream& os) const {
  const auto sess = sessions();
  const auto work = workers();
  os << "{\"epoch\":" << epoch()
     << ",\"sessions_started\":" << sessions_started() << ",\"sessions\":[";
  for (std::size_t i = 0; i < sess.size(); ++i) {
    const auto& s = sess[i];
    if (i != 0) os << ",";
    os << "{\"id\":\"" << json_escape(s.id) << "\""
       << ",\"app\":\"" << json_escape(s.app) << "\""
       << ",\"tenant\":\"" << json_escape(s.tenant) << "\""
       << ",\"strategy\":\"" << json_escape(s.strategy) << "\""
       << ",\"phase\":\"" << json_escape(s.phase) << "\""
       << ",\"best_config\":\"" << json_escape(s.best_config) << "\""
       << ",\"best_value\":" << json_number(s.best_value)
       << ",\"iterations\":" << s.iterations
       << ",\"cache_hits\":" << s.cache_hits
       << ",\"p50_us\":" << json_number(s.p50_us)
       << ",\"p95_us\":" << json_number(s.p95_us)
       << ",\"p99_us\":" << json_number(s.p99_us) << "}";
  }
  os << "],\"workers\":[";
  const double now_s = steady_seconds();
  for (std::size_t i = 0; i < work.size(); ++i) {
    const auto& w = work[i];
    if (i != 0) os << ",";
    os << "{\"pool\":\"" << json_escape(w.pool) << "\""
       << ",\"lane\":" << w.lane << ",\"busy\":" << (w.busy ? "true" : "false")
       << ",\"tasks\":" << w.tasks << ",\"detail\":\"" << json_escape(w.detail)
       << "\",\"beat_age_s\":"
       << (w.last_beat_s >= 0.0 ? json_number(now_s - w.last_beat_s) : "null")
       << "}";
  }
  os << "],\"tenants\":[";
  const auto tens = tenants();
  for (std::size_t i = 0; i < tens.size(); ++i) {
    const auto& t = tens[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << json_escape(t.name) << "\""
       << ",\"sessions\":" << t.sessions << ",\"evals\":" << t.evals
       << ",\"shed\":" << t.shed << ",\"p50_us\":" << json_number(t.p50_us)
       << ",\"p99_us\":" << json_number(t.p99_us) << "}";
  }
  os << "],\"backpressure\":{";
  os << "\"pending_out_bytes\":"
     << backpressure_.pending_out_bytes.load(std::memory_order_relaxed)
     << ",\"paused\":" << backpressure_.paused.load(std::memory_order_relaxed)
     << ",\"paused_total\":"
     << backpressure_.paused_total.load(std::memory_order_relaxed)
     << ",\"idle_reaped\":"
     << backpressure_.reaped_total.load(std::memory_order_relaxed)
     << ",\"shed\":" << backpressure_.shed_total.load(std::memory_order_relaxed);
  os << "},\"latency\":{";
  const auto& lat = latency_.request_s;
  os << "\"p50_us\":" << json_number(lat.quantile(0.50) * 1e6)
     << ",\"p95_us\":" << json_number(lat.quantile(0.95) * 1e6)
     << ",\"p99_us\":" << json_number(lat.quantile(0.99) * 1e6)
     << ",\"count\":" << lat.count() << ",\"slow_requests\":"
     << latency_.slow_requests.load(std::memory_order_relaxed);
  os << "}}";
}

std::string StatusRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace harmony::obs
