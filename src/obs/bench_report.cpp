#include "obs/bench_report.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace harmony::obs {

namespace {
constexpr const char* kSchema = "ah-bench-report/1";
}

std::string BenchReport::filename(const std::string& name) {
  return "BENCH_" + name + ".json";
}

void BenchReport::write_json(std::ostream& os) const {
  os.precision(17);
  os << "{\n"
     << "  \"schema\": \"" << kSchema << "\",\n"
     << "  \"name\": \"" << json_escape(name) << "\",\n"
     << "  \"best_config\": \"" << json_escape(best_config) << "\",\n"
     << "  \"best_value\": " << best_value << ",\n"
     << "  \"evaluations\": " << evaluations << ",\n"
     << "  \"evals_to_best\": " << evals_to_best << ",\n"
     << "  \"wall_s\": " << wall_s << ",\n"
     << "  \"speedup\": " << speedup << ",\n"
     << "  \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(key) << "\": " << value;
  }
  if (!metrics.empty()) os << "\n  ";
  os << "}\n}\n";
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::optional<std::string> BenchReport::write_file(const std::string& dir) const {
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/" + filename(name);
  std::ofstream out(path);
  if (!out) return std::nullopt;
  write_json(out);
  out.flush();
  if (!out) return std::nullopt;
  return path;
}

std::optional<BenchReport> BenchReport::parse(const std::string& text) {
  const auto doc = json_parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  if (doc->string_or("schema", "") != kSchema) return std::nullopt;

  BenchReport r;
  r.name = doc->string_or("name", "");
  if (r.name.empty()) return std::nullopt;
  r.best_config = doc->string_or("best_config", "");
  r.best_value = doc->number_or("best_value", 0.0);
  r.evaluations = static_cast<int>(doc->number_or("evaluations", 0.0));
  r.evals_to_best = static_cast<int>(doc->number_or("evals_to_best", 0.0));
  r.wall_s = doc->number_or("wall_s", 0.0);
  r.speedup = doc->number_or("speedup", 0.0);
  if (const auto* m = doc->find("metrics"); m != nullptr && m->is_object()) {
    for (const auto& [key, value] : m->as_object()) {
      if (value.is_number()) r.metrics[key] = value.as_number();
    }
  }
  return r;
}

std::optional<BenchReport> BenchReport::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string bench_out_dir() {
  const char* dir = std::getenv("AH_BENCH_OUT");
  return (dir != nullptr && dir[0] != '\0') ? dir : ".";
}

}  // namespace harmony::obs
