#pragma once

/// \file obs.hpp
/// Umbrella header for the observability layer: process metrics
/// (MetricsRegistry, with Prometheus text exposition), per-evaluation search
/// tracing (SearchTracer), machine-readable benchmark reports (BenchReport),
/// live introspection (StatusRegistry), the structured EventLog, and the
/// HTML session-report renderer. See each header for the design; the
/// one-line story is "measure the tuner the way the paper measures the
/// applications" — iterations, evaluations, wall clock and cache behaviour
/// as exportable *and live-queryable* data, at zero cost when disabled.

#include "obs/bench_report.hpp"
#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report_html.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"
