#pragma once

/// \file obs.hpp
/// Umbrella header for the observability layer: process metrics
/// (MetricsRegistry), per-evaluation search tracing (SearchTracer) and
/// machine-readable benchmark reports (BenchReport). See each header for
/// the design; the one-line story is "measure the tuner the way the paper
/// measures the applications" — iterations, evaluations, wall clock and
/// cache behaviour as exportable data, at zero cost when disabled.

#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
