#pragma once

/// \file event_log.hpp
/// Structured event log for the tuning system: bounded, lock-sharded ring
/// buffer of (severity, component, session, message) records with monotonic
/// timestamps and a global sequence order. The server's `LOG tail N` verb
/// reads the most recent events while the system runs; an optional JSONL
/// sink mirrors every record to a stream for durable logs.
///
/// Recording is shard-local (shard chosen by thread id, one mutex per
/// shard), so pool workers logging concurrently almost never contend; the
/// buffer is bounded per shard, so a chatty component can never grow memory
/// without limit — old events are overwritten, the lifetime total is kept.
///
/// The gated convenience helpers (obs::log_info etc.) cost one relaxed
/// atomic load when observability is off, like every other record site in
/// this layer.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"  // obs::enabled()

namespace harmony::obs {

enum class Severity { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Lower-case label ("debug", "info", "warn", "error").
[[nodiscard]] const char* severity_name(Severity s) noexcept;

/// Parse a label back; nullopt semantics via bool return + out param would
/// be clunky here — unknown labels map to Info.
[[nodiscard]] Severity severity_from(std::string_view name) noexcept;

struct LogEvent {
  std::uint64_t seq = 0;   ///< process-wide record order (1-based)
  double t_us = 0.0;       ///< microseconds since the log's construction
  Severity severity = Severity::Info;
  std::string component;   ///< subsystem, e.g. "server", "engine.pool"
  std::string session;     ///< session id when applicable, else empty
  std::string message;
};

class EventLog {
 public:
  /// `capacity` bounds the total retained events (split across shards,
  /// minimum one event per shard).
  explicit EventLog(std::size_t capacity = 4096);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The process-wide log used by the convenience helpers and the server.
  static EventLog& global();

  /// Append one record. Thread-safe; overwrites the shard's oldest record
  /// when full. Also mirrors to the sink when one is attached.
  void record(Severity severity, std::string_view component,
              std::string_view session, std::string_view message);

  /// The most recent `n` retained events, oldest first. Thread-safe
  /// snapshot; events evicted from the ring are gone (see total()).
  [[nodiscard]] std::vector<LogEvent> tail(std::size_t n) const;

  /// Events ever recorded (including evicted ones).
  [[nodiscard]] std::uint64_t total() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Events currently retained across all shards.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Microseconds since construction, from the log's steady clock.
  [[nodiscard]] double now_us() const;

  /// Attach (or detach with nullptr) a JSONL sink: every subsequent record
  /// is also appended to `sink` as one JSON object per line, under a
  /// dedicated mutex. The stream must outlive the attachment.
  void set_sink(std::ostream* sink);

  /// Drop all retained events (the sequence counter keeps counting).
  void clear();

  /// Serialize one event as a single-line JSON object (no newline):
  /// {"seq":N,"t_us":T,"severity":"info","component":"...","session":"...",
  ///  "message":"..."}
  static void write_event_json(std::ostream& os, const LogEvent& e);

  /// tail(n), one JSON object per line.
  void write_jsonl_tail(std::ostream& os, std::size_t n) const;

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mutex;
    std::vector<LogEvent> ring;  ///< capacity-bounded, wraps at `head`
    std::size_t head = 0;        ///< next write position once full
  };

  Shard& shard_for_current_thread() noexcept;

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::size_t per_shard_;
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> seq_{0};
  std::mutex sink_mutex_;
  std::ostream* sink_ = nullptr;
};

// ---- zero-cost-when-disabled convenience recorders ------------------------

inline void log_event(Severity sev, std::string_view component,
                      std::string_view session, std::string_view message) {
  if (!enabled()) return;
  EventLog::global().record(sev, component, session, message);
}

inline void log_debug(std::string_view component, std::string_view message,
                      std::string_view session = {}) {
  log_event(Severity::Debug, component, session, message);
}
inline void log_info(std::string_view component, std::string_view message,
                     std::string_view session = {}) {
  log_event(Severity::Info, component, session, message);
}
inline void log_warn(std::string_view component, std::string_view message,
                     std::string_view session = {}) {
  log_event(Severity::Warn, component, session, message);
}
inline void log_error(std::string_view component, std::string_view message,
                      std::string_view session = {}) {
  log_event(Severity::Error, component, session, message);
}

}  // namespace harmony::obs
