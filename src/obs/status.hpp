#pragma once

/// \file status.hpp
/// Live introspection board for the tuning system: drivers, server sessions
/// and the thread pool publish their current state here, and pollers (the
/// server's STATUS verb, the `harmony_top` example) read cheap consistent
/// snapshots while the search is still running. This is the "ask the running
/// system what it is doing" counterpart to the post-mortem exports in
/// trace.hpp / bench_report.hpp.
///
/// Design:
///
///  * publishers hold RAII handles; an update locks only that slot's mutex
///    (never the registry table), so two sessions or two pool workers never
///    serialize against each other;
///  * every update bumps a relaxed per-slot epoch and a registry-wide epoch,
///    so a poller can skip re-rendering when `epoch()` has not moved since
///    its last visit — the "did anything change" probe is one relaxed load;
///  * slots unpublish themselves when the handle dies, so STATUS only ever
///    lists live sessions/workers; `sessions_started()` keeps the lifetime
///    total.
///
/// Publishing through the gated convenience path (drivers, pool) costs one
/// relaxed atomic load when observability is off (see obs::enabled()); the
/// tuning server publishes unconditionally because the STATUS verb is part
/// of its protocol surface, not passive instrumentation.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // HdrHistogram for the latency board

namespace harmony::obs {

/// Live state of one tuning session (a server connection or an offline
/// driver run). Publishers own the write side; snapshots copy it out.
struct SessionStatus {
  std::string id;           ///< unique id, e.g. "server/3" or "offline/1"
  std::string app;          ///< application / bench name when known
  std::string tenant;       ///< TENANT name the session admitted under ("" none)
  std::string strategy;     ///< SearchStrategy::name() steering the session
  std::string phase;        ///< strategy-specific phase ("reflect", "batch 7")
  std::string best_config;  ///< formatted incumbent configuration
  double best_value = std::numeric_limits<double>::infinity();  ///< inf = none
  std::uint64_t iterations = 0;  ///< completed evaluations / round trips
  std::uint64_t cache_hits = 0;  ///< evaluations served from a cache

  /// Per-session request-latency quantiles in microseconds (server handle
  /// time of FETCH/REPORT/REPORT+FETCH/RESULT). 0 until the first request.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Live state of one worker lane (a thread-pool lane or a remote fleet
/// worker). Fleet publishers additionally fill `detail` (the in-flight
/// candidate) and `last_beat_s` (heartbeat time, from steady_seconds()).
struct WorkerStatus {
  std::string pool;       ///< pool identifier, e.g. "pool/2" or "fleet/pop"
  std::uint32_t lane = 0; ///< worker index within the pool
  bool busy = false;      ///< currently executing a task
  std::uint64_t tasks = 0;  ///< tasks completed so far
  std::string detail;     ///< in-flight candidate description ("" when idle)
  double last_beat_s = -1.0;  ///< steady_seconds() of the last heartbeat; <0 none
};

/// Monotonic seconds since an arbitrary process-wide origin; timestamps the
/// worker heartbeats so STATUS snapshots can serialize an age.
[[nodiscard]] double steady_seconds();

class StatusRegistry {
  struct SessionSlot;
  struct WorkerSlot;

 public:
  StatusRegistry() = default;
  StatusRegistry(const StatusRegistry&) = delete;
  StatusRegistry& operator=(const StatusRegistry&) = delete;

  /// The process-wide board the server and the convenience publishers use.
  static StatusRegistry& global();

  /// RAII publisher for one session slot; unpublishes on destruction.
  class SessionHandle {
   public:
    SessionHandle() = default;
    SessionHandle(SessionHandle&& other) noexcept;
    SessionHandle& operator=(SessionHandle&& other) noexcept;
    SessionHandle(const SessionHandle&) = delete;
    SessionHandle& operator=(const SessionHandle&) = delete;
    ~SessionHandle();

    [[nodiscard]] bool valid() const noexcept { return slot_ != nullptr; }

    /// Mutate the published state under the slot lock and bump the epochs.
    /// `id` is fixed at publish time; changes to it are ignored.
    void update(const std::function<void(SessionStatus&)>& fn);

    void reset();  ///< unpublish early

   private:
    friend class StatusRegistry;
    SessionHandle(StatusRegistry* reg, SessionSlot* slot)
        : registry_(reg), slot_(slot) {}
    StatusRegistry* registry_ = nullptr;
    SessionSlot* slot_ = nullptr;
  };

  /// RAII publisher for one worker lane; unpublishes on destruction.
  class WorkerHandle {
   public:
    WorkerHandle() = default;
    WorkerHandle(WorkerHandle&& other) noexcept;
    WorkerHandle& operator=(WorkerHandle&& other) noexcept;
    WorkerHandle(const WorkerHandle&) = delete;
    WorkerHandle& operator=(const WorkerHandle&) = delete;
    ~WorkerHandle();

    [[nodiscard]] bool valid() const noexcept { return slot_ != nullptr; }

    /// Publish the lane's current activity.
    void set(bool busy, std::uint64_t tasks);

    /// Mutate the published state under the slot lock (fleet publishers set
    /// detail/heartbeat too). `pool` and `lane` are fixed at publish time.
    void update(const std::function<void(WorkerStatus&)>& fn);

    void reset();  ///< unpublish early

   private:
    friend class StatusRegistry;
    WorkerHandle(StatusRegistry* reg, WorkerSlot* slot)
        : registry_(reg), slot_(slot) {}
    StatusRegistry* registry_ = nullptr;
    WorkerSlot* slot_ = nullptr;
  };

  /// Process-wide request-latency board: every server request verb records
  /// its handle time here (always on — the STATUS verb's latency block is
  /// protocol surface, like the session slots), and requests slower than
  /// ServerOptions::slow_request_us bump `slow_requests`. Serialized by
  /// write_json as the top-level "latency" object.
  struct LatencyBoard {
    HdrHistogram request_s;
    std::atomic<std::uint64_t> slow_requests{0};
  };
  [[nodiscard]] LatencyBoard& latency() noexcept { return latency_; }

  /// One tenant's live rollup. Slots are created on first use and never
  /// erased (bounded by the number of distinct tenant names), so the
  /// server's hot path holds a raw pointer and touches only the atomics and
  /// the lock-free histogram — no table lock, no slot mutex, nothing shared
  /// across reactor shards but cache lines.
  struct TenantSlot {
    explicit TenantSlot(std::string tenant_name) : name(std::move(tenant_name)) {}
    const std::string name;
    std::atomic<std::int64_t> sessions{0};  ///< live admitted sessions
    std::atomic<std::uint64_t> evals{0};    ///< completed report round trips
    std::atomic<std::uint64_t> shed{0};     ///< quota rejections (retry-after)
    HdrHistogram request_s;                 ///< per-tenant request latency
  };

  /// Copy-out snapshot of one tenant slot for STATUS serialization.
  struct TenantSnapshot {
    std::string name;
    std::int64_t sessions = 0;
    std::uint64_t evals = 0;
    std::uint64_t shed = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
  };

  /// Create-or-get the slot for `name`. Takes the table mutex only when
  /// called — the server resolves it once per TENANT verb, not per request.
  [[nodiscard]] TenantSlot* tenant_slot(const std::string& name);

  /// Snapshots of every tenant seen so far, ordered by name.
  [[nodiscard]] std::vector<TenantSnapshot> tenants() const;

  /// Transport backpressure + admission board, serialized by write_json as
  /// the top-level "backpressure" object. All-atomic: reactor shards bump
  /// these from their own threads with no shared locks.
  struct BackpressureBoard {
    std::atomic<std::int64_t> pending_out_bytes{0};  ///< queued across conns
    std::atomic<std::int64_t> paused{0};        ///< conns with reads deferred
    std::atomic<std::uint64_t> paused_total{0};  ///< cumulative pause events
    std::atomic<std::uint64_t> reaped_total{0};  ///< idle sessions evicted
    std::atomic<std::uint64_t> shed_total{0};    ///< admissions refused
  };
  [[nodiscard]] BackpressureBoard& backpressure() noexcept {
    return backpressure_;
  }

  /// Claim a session slot. Ids must be unique among live sessions; a clash
  /// gets a "#<n>" suffix rather than an error so publishers never fail.
  [[nodiscard]] SessionHandle publish_session(const std::string& id);

  /// Claim a worker-lane slot for `pool`/`lane`.
  [[nodiscard]] WorkerHandle publish_worker(const std::string& pool,
                                            std::uint32_t lane);

  /// Registry-wide change counter: bumped (relaxed) by every publish, update
  /// and unpublish. Pollers compare against their last seen value.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Sessions ever published (lifetime total, for the STATUS header).
  [[nodiscard]] std::uint64_t sessions_started() const noexcept {
    return sessions_started_.load(std::memory_order_relaxed);
  }

  /// Consistent copies of every live slot, ordered by id.
  [[nodiscard]] std::vector<SessionStatus> sessions() const;
  [[nodiscard]] std::vector<WorkerStatus> workers() const;

  [[nodiscard]] std::size_t session_count() const;
  [[nodiscard]] std::size_t worker_count() const;

  /// One JSON object:
  /// {"epoch":N,"sessions_started":N,"sessions":[{...}],"workers":[{...}],
  ///  "latency":{"p50_us":..,"p95_us":..,"p99_us":..,"count":N,
  ///             "slow_requests":N}}.
  /// Sessions with no measurement yet serialize "best_value":null.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  struct SessionSlot {
    mutable std::mutex mutex;
    SessionStatus status;
    std::atomic<std::uint64_t> slot_epoch{0};
  };
  struct WorkerSlot {
    mutable std::mutex mutex;
    WorkerStatus status;
    std::atomic<std::uint64_t> slot_epoch{0};
  };

  void bump() noexcept { epoch_.fetch_add(1, std::memory_order_relaxed); }
  void drop_session(SessionSlot* slot);
  void drop_worker(WorkerSlot* slot);

  mutable std::mutex table_mutex_;
  std::map<std::string, std::unique_ptr<SessionSlot>> sessions_;
  std::map<std::string, std::unique_ptr<WorkerSlot>> workers_;
  std::map<std::string, std::unique_ptr<TenantSlot>> tenants_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> sessions_started_{0};
  std::uint64_t clash_suffix_ = 0;
  LatencyBoard latency_;
  BackpressureBoard backpressure_;
};

}  // namespace harmony::obs
