#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace harmony::obs {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = not yet resolved from environment

int resolve_from_env() {
  const char* v = std::getenv("AH_OBS");
  const int on = (v != nullptr && v[0] != '\0' && v[0] != '0') ? 1 : 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace

bool enabled() noexcept {
  const int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return resolve_from_env() != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---- Histogram ------------------------------------------------------------

int Histogram::bucket_index(double v) noexcept {
  if (!(v > kBucketFloor)) return 0;  // also catches NaN and negatives
  // log2(v) - log2(floor) rather than log2(v / floor): the quotient can
  // overflow to inf for huge v (1e300 / 1e-9 > DBL_MAX).
  const int idx =
      1 + static_cast<int>(std::floor(std::log2(v) - std::log2(kBucketFloor)));
  return std::clamp(idx, 0, kBuckets - 1);
}

void Histogram::record(double v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add; compiled to a CAS loop where needed.
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);

  // min/max via CAS; the any_ flag handles the empty->first-value race by
  // letting the first recorder seed both extrema before relaxing into CAS.
  if (!any_.exchange(true, std::memory_order_acq_rel)) {
    min_.store(v, std::memory_order_release);
    max_.store(v, std::memory_order_release);
    return;
  }
  double cur = min_.load(std::memory_order_acquire);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
  cur = max_.load(std::memory_order_acquire);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
}

double Histogram::min() const noexcept {
  return any_.load(std::memory_order_acquire) ? min_.load(std::memory_order_acquire) : 0.0;
}

double Histogram::max() const noexcept {
  return any_.load(std::memory_order_acquire) ? max_.load(std::memory_order_acquire) : 0.0;
}

double Histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- HdrHistogram ---------------------------------------------------------

int HdrHistogram::bucket_index(double v) noexcept {
  if (!(v > kValueFloor)) return 0;  // also catches NaN and negatives
  // Normalise to units of the floor, then split log2(u) into octave (the
  // integer part, via frexp) and a linear sub-bucket within [2^o, 2^(o+1)).
  const double u = v / kValueFloor;
  if (!std::isfinite(u)) return kBuckets - 1;  // v / floor overflowed
  int exp = 0;
  const double frac = std::frexp(u, &exp);  // u = frac * 2^exp, frac in [0.5,1)
  const int octave = exp - 1;               // u in [2^octave, 2^(octave+1))
  if (octave >= kOctaves) return kBuckets - 1;
  // frac*2 in [1,2) is the mantissa; its fractional part picks the sub-bucket.
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets));
  return 1 + octave * kSubBuckets + sub;
}

double HdrHistogram::bucket_upper(int i) noexcept {
  if (i <= 0) return kValueFloor;
  const int j = std::min(i, kBuckets - 1) - 1;
  const int octave = j / kSubBuckets;
  const int sub = j % kSubBuckets;
  return kValueFloor * std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                                  octave);
}

void HdrHistogram::record(double v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);

  if (!any_.exchange(true, std::memory_order_acq_rel)) {
    min_.store(v, std::memory_order_release);
    max_.store(v, std::memory_order_release);
    return;
  }
  double cur = min_.load(std::memory_order_acquire);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
  cur = max_.load(std::memory_order_acquire);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
}

double HdrHistogram::min() const noexcept {
  return any_.load(std::memory_order_acquire) ? min_.load(std::memory_order_acquire) : 0.0;
}

double HdrHistogram::max() const noexcept {
  return any_.load(std::memory_order_acquire) ? max_.load(std::memory_order_acquire) : 0.0;
}

double HdrHistogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double HdrHistogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double qc = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic (1-based, ceil), so quantile(1.0) lands
  // in the last non-empty bucket and quantile(0.0) in the first.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(qc * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (cum >= rank) {
      const double hi = bucket_upper(i);
      const double lo = i == 0 ? 0.0 : bucket_upper(i - 1);
      return std::clamp((lo + hi) * 0.5, min(), max());
    }
  }
  return max();  // racing writers: counts moved under us
}

void HdrHistogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- MetricsRegistry ------------------------------------------------------

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(std::max<std::size_t>(1, shards)) {}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) const {
  const std::size_t h = std::hash<std::string_view>{}(name);
  return shards_[h % shards_.size()];
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name,
                                                   Entry::Kind kind) {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.table.find(std::string(name));
  if (it == shard.table.end()) {
    Entry e{kind, nullptr, nullptr, nullptr, nullptr};
    switch (kind) {
      case Entry::Kind::Counter: e.counter = std::make_unique<Counter>(); break;
      case Entry::Kind::Gauge: e.gauge = std::make_unique<Gauge>(); break;
      case Entry::Kind::Histogram: e.histogram = std::make_unique<Histogram>(); break;
      case Entry::Kind::Hdr: e.hdr = std::make_unique<HdrHistogram>(); break;
    }
    it = shard.table.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry_for(name, Entry::Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry_for(name, Entry::Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry_for(name, Entry::Kind::Histogram).histogram;
}

HdrHistogram& MetricsRegistry::hdr(std::string_view name) {
  return *entry_for(name, Entry::Kind::Hdr).hdr;
}

std::size_t MetricsRegistry::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.table.size();
  }
  return n;
}

void MetricsRegistry::reset_values() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [name, entry] : shard.table) {
      switch (entry.kind) {
        case Entry::Kind::Counter: entry.counter->reset(); break;
        case Entry::Kind::Gauge: entry.gauge->reset(); break;
        case Entry::Kind::Histogram: entry.histogram->reset(); break;
        case Entry::Kind::Hdr: entry.hdr->reset(); break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  // Snapshot under the shard locks, then render sorted for stable output.
  struct Row {
    std::string name;
    std::string body;
  };
  std::vector<Row> rows;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, entry] : shard.table) {
      std::ostringstream body;
      body.precision(17);
      switch (entry.kind) {
        case Entry::Kind::Counter:
          body << "{\"type\":\"counter\",\"value\":" << entry.counter->value() << "}";
          break;
        case Entry::Kind::Gauge:
          body << "{\"type\":\"gauge\",\"value\":" << entry.gauge->value() << "}";
          break;
        case Entry::Kind::Histogram: {
          const Histogram& h = *entry.histogram;
          body << "{\"type\":\"histogram\",\"count\":" << h.count()
               << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
               << ",\"max\":" << h.max() << ",\"mean\":" << h.mean() << "}";
          break;
        }
        case Entry::Kind::Hdr: {
          const HdrHistogram& h = *entry.hdr;
          body << "{\"type\":\"hdr\",\"count\":" << h.count()
               << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
               << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
               << ",\"p50\":" << h.quantile(0.50) << ",\"p95\":" << h.quantile(0.95)
               << ",\"p99\":" << h.quantile(0.99) << "}";
          break;
        }
      }
      rows.push_back({name, body.str()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  os << "{";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(rows[i].name) << "\":" << rows[i].body;
  }
  os << "}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

// ---- ScopedTimer ----------------------------------------------------------

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(Histogram* h) noexcept : histogram_(h) {
  if (histogram_ != nullptr) start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ != nullptr) {
    histogram_->record(static_cast<double>(now_ns() - start_ns_) * 1e-9);
  }
}

ScopedTimer time_scope(std::string_view name) {
  return ScopedTimer(enabled() ? &MetricsRegistry::global().histogram(name) : nullptr);
}

HdrScopedTimer::HdrScopedTimer(HdrHistogram* h) noexcept : histogram_(h) {
  if (histogram_ != nullptr) start_ns_ = now_ns();
}

HdrScopedTimer::~HdrScopedTimer() {
  if (histogram_ != nullptr) {
    histogram_->record(static_cast<double>(now_ns() - start_ns_) * 1e-9);
  }
}

HdrScopedTimer hdr_time_scope(std::string_view name) {
  return HdrScopedTimer(enabled() ? &MetricsRegistry::global().hdr(name) : nullptr);
}

}  // namespace harmony::obs
