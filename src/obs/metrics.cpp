#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace harmony::obs {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = not yet resolved from environment

int resolve_from_env() {
  const char* v = std::getenv("AH_OBS");
  const int on = (v != nullptr && v[0] != '\0' && v[0] != '0') ? 1 : 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace

bool enabled() noexcept {
  const int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return resolve_from_env() != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---- Histogram ------------------------------------------------------------

int Histogram::bucket_index(double v) noexcept {
  if (!(v > kBucketFloor)) return 0;  // also catches NaN and negatives
  // log2(v) - log2(floor) rather than log2(v / floor): the quotient can
  // overflow to inf for huge v (1e300 / 1e-9 > DBL_MAX).
  const int idx =
      1 + static_cast<int>(std::floor(std::log2(v) - std::log2(kBucketFloor)));
  return std::clamp(idx, 0, kBuckets - 1);
}

void Histogram::record(double v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add; compiled to a CAS loop where needed.
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);

  // min/max via CAS; the any_ flag handles the empty->first-value race by
  // letting the first recorder seed both extrema before relaxing into CAS.
  if (!any_.exchange(true, std::memory_order_acq_rel)) {
    min_.store(v, std::memory_order_release);
    max_.store(v, std::memory_order_release);
    return;
  }
  double cur = min_.load(std::memory_order_acquire);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
  cur = max_.load(std::memory_order_acquire);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
}

double Histogram::min() const noexcept {
  return any_.load(std::memory_order_acquire) ? min_.load(std::memory_order_acquire) : 0.0;
}

double Histogram::max() const noexcept {
  return any_.load(std::memory_order_acquire) ? max_.load(std::memory_order_acquire) : 0.0;
}

double Histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---- MetricsRegistry ------------------------------------------------------

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(std::max<std::size_t>(1, shards)) {}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) const {
  const std::size_t h = std::hash<std::string_view>{}(name);
  return shards_[h % shards_.size()];
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name,
                                                   Entry::Kind kind) {
  Shard& shard = shard_for(name);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.table.find(std::string(name));
  if (it == shard.table.end()) {
    Entry e{kind, nullptr, nullptr, nullptr};
    switch (kind) {
      case Entry::Kind::Counter: e.counter = std::make_unique<Counter>(); break;
      case Entry::Kind::Gauge: e.gauge = std::make_unique<Gauge>(); break;
      case Entry::Kind::Histogram: e.histogram = std::make_unique<Histogram>(); break;
    }
    it = shard.table.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry_for(name, Entry::Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry_for(name, Entry::Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry_for(name, Entry::Kind::Histogram).histogram;
}

std::size_t MetricsRegistry::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.table.size();
  }
  return n;
}

void MetricsRegistry::reset_values() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [name, entry] : shard.table) {
      switch (entry.kind) {
        case Entry::Kind::Counter: entry.counter->reset(); break;
        case Entry::Kind::Gauge: entry.gauge->reset(); break;
        case Entry::Kind::Histogram: entry.histogram->reset(); break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  // Snapshot under the shard locks, then render sorted for stable output.
  struct Row {
    std::string name;
    std::string body;
  };
  std::vector<Row> rows;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, entry] : shard.table) {
      std::ostringstream body;
      body.precision(17);
      switch (entry.kind) {
        case Entry::Kind::Counter:
          body << "{\"type\":\"counter\",\"value\":" << entry.counter->value() << "}";
          break;
        case Entry::Kind::Gauge:
          body << "{\"type\":\"gauge\",\"value\":" << entry.gauge->value() << "}";
          break;
        case Entry::Kind::Histogram: {
          const Histogram& h = *entry.histogram;
          body << "{\"type\":\"histogram\",\"count\":" << h.count()
               << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
               << ",\"max\":" << h.max() << ",\"mean\":" << h.mean() << "}";
          break;
        }
      }
      rows.push_back({name, body.str()});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  os << "{";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(rows[i].name) << "\":" << rows[i].body;
  }
  os << "}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

// ---- ScopedTimer ----------------------------------------------------------

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(Histogram* h) noexcept : histogram_(h) {
  if (histogram_ != nullptr) start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ != nullptr) {
    histogram_->record(static_cast<double>(now_ns() - start_ns_) * 1e-9);
  }
}

ScopedTimer time_scope(std::string_view name) {
  return ScopedTimer(enabled() ? &MetricsRegistry::global().histogram(name) : nullptr);
}

}  // namespace harmony::obs
