#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ <= 12
// GCC 12 reports spurious -Wmaybe-uninitialized on moves of the
// variant-backed JsonValue out of std::optional returns (GCC PR105593 /
// PR108000 family — the diagnostics point inside libstdc++'s variant
// storage, not at any real read). GCC 13+ and Clang compile this file
// warning-free; suppress only for the affected compiler.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace harmony::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const auto* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key, std::string fallback) const {
  const auto* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::move(fallback);
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': {
        auto s = string();
        if (!s) return std::nullopt;
        return JsonValue(std::move(*s));
      }
      case 't': return literal("true") ? std::optional<JsonValue>(JsonValue(true)) : std::nullopt;
      case 'f': return literal("false") ? std::optional<JsonValue>(JsonValue(false)) : std::nullopt;
      case 'n': return literal("null") ? std::optional<JsonValue>(JsonValue(nullptr)) : std::nullopt;
      default: return number();
    }
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double d{};
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      return std::nullopt;
    }
    return JsonValue(d);
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned cp{};
            const auto [p, ec] = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, cp, 16);
            if (ec != std::errc{} || p != text_.data() + pos_ + 4) return std::nullopt;
            pos_ += 4;
            // Encode the code point as UTF-8 (surrogate pairs are not
            // recombined — our own writers only emit \u00xx escapes).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> array() {
    if (!eat('[')) return std::nullopt;
    JsonValue::Array items;
    skip_ws();
    if (eat(']')) return JsonValue(std::move(items));
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return JsonValue(std::move(items));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> object() {
    if (!eat('{')) return std::nullopt;
    JsonValue::Object members;
    skip_ws();
    if (eat('}')) return JsonValue(std::move(members));
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      // emplace (move-construct), not operator[]= (default-construct then
      // move-assign): later duplicate keys lose, and GCC 12 flags a spurious
      // -Wmaybe-uninitialized on the variant move-assignment path.
      members.emplace(std::move(*key), std::move(*v));
      skip_ws();
      if (eat('}')) return JsonValue(std::move(members));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace harmony::obs
