#pragma once

/// \file trace.hpp
/// Per-evaluation search tracing. A SearchTracer records one event per
/// objective evaluation — which strategy asked, which point was tried, what
/// came back, whether the evaluation cache served it, which thread ran it
/// and when — and exports the record two ways:
///
///  * JSON-lines (one event object per line), the machine-readable
///    trajectory log behind the paper's Tables I-IV / Fig. 6 analyses;
///  * Chrome trace format (chrome://tracing or https://ui.perfetto.dev),
///    where each recording thread gets its own lane, so a
///    ParallelOfflineDriver run shows one lane per pool worker with the
///    short runs laid out on the wall clock.
///
/// Recording is thread-safe and cheap: events append to lock-sharded
/// buffers (shard chosen by thread id, so pool workers almost never share a
/// shard), timestamps come from one steady clock anchored at construction.
/// Thread lane ids are small integers assigned in order of first appearance.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace harmony::obs {

/// Trace identity for one end-to-end request, carried across the wire as an
/// optional trailing "T=<trace>-<span>" token (see core/protocol.hpp).
/// trace_id == 0 means "not sampled": every tracing call site must be a
/// no-op in that case, so unsampled requests pay nothing.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;     ///< id of the current (innermost) span
  std::uint64_t parent_span = 0; ///< 0 at the root
  [[nodiscard]] bool sampled() const noexcept { return trace_id != 0; }
};

/// A fresh process-unique non-zero 64-bit id (for trace ids and span ids):
/// an atomic counter mixed through splitmix64, seeded once per process from
/// the wall clock so ids from different processes do not collide.
[[nodiscard]] std::uint64_t next_trace_id() noexcept;

/// One named stage of a sampled request (parse, queue wait, strategy ask,
/// remote eval, ...). Span ids tie the stages of one request together across
/// threads — and, via the wall-clock anchor written by write_jsonl, across
/// processes.
struct SpanEvent {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::string name;            ///< stage name, e.g. "server.tell"
  std::string detail;          ///< free-form (verb, work id, ...)
  std::uint32_t thread_lane = 0;
  double t_start_us = 0.0;     ///< microseconds since tracer construction
  double t_end_us = 0.0;
};

/// One objective evaluation as seen by a driver.
struct TraceEvent {
  std::string strategy;    ///< SearchStrategy::name() of the proposer
  std::string point;       ///< formatted configuration (ParamSpace::format)
  double objective = 0.0;  ///< observed objective (infinity when invalid)
  bool valid = true;       ///< run succeeded / configuration feasible
  bool cache_hit = false;  ///< served from an evaluation cache (or coalesced)
  std::uint32_t thread_lane = 0;  ///< small dense id of the recording thread
  double t_start_us = 0.0;        ///< microseconds since tracer construction
  double t_end_us = 0.0;
};

class SearchTracer {
 public:
  SearchTracer();

  /// Microseconds since construction, from the tracer's steady clock.
  [[nodiscard]] double now_us() const;

  /// Dense lane id of the calling thread (assigned on first use).
  [[nodiscard]] std::uint32_t lane_for_current_thread();

  /// Append one event. `thread_lane` is filled in from the calling thread;
  /// callers set every other field. Thread-safe.
  void record(TraceEvent e);

  /// Append one span of a sampled request. Same sharding and lane rules as
  /// record(). Callers must already have checked TraceContext::sampled() —
  /// recording a span with trace_id 0 is a programming error.
  void record_span(SpanEvent s);

  /// All events so far, merged across shards and sorted by start time
  /// (ties broken by lane). Thread-safe snapshot.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// All spans so far, merged and sorted like events(). Thread-safe snapshot.
  [[nodiscard]] std::vector<SpanEvent> spans() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::size_t lanes() const;
  void clear();

  /// Wall-clock (unix) microseconds corresponding to t == 0 on this tracer's
  /// steady clock. Lets a merge tool align traces from different processes.
  [[nodiscard]] double wall_anchor_us() const noexcept { return wall_anchor_us_; }

  /// One JSON object per line:
  /// {"strategy":...,"point":...,"objective":...,"valid":...,"cache_hit":...,
  ///  "thread":...,"t_start_us":...,"t_end_us":...}
  /// Span records ride along as {"kind":"span","trace":"<hex>",...} lines
  /// carrying an "anchor_us" wall-clock field (loaders keyed on the eval
  /// schema must skip lines with a "kind" key).
  void write_jsonl(std::ostream& os) const;

  /// Chrome trace JSON: one complete ("ph":"X") event per evaluation in the
  /// lane of its recording thread, plus thread_name metadata so
  /// chrome://tracing labels each pool worker. Spans appear in the same
  /// lanes under the "span" category with trace/span ids in args.
  void write_chrome_trace(std::ostream& os) const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::vector<SpanEvent> spans;
  };

  std::chrono::steady_clock::time_point epoch_;
  double wall_anchor_us_ = 0.0;
  mutable std::vector<Shard> shards_;
  mutable std::mutex lanes_mutex_;
  std::unordered_map<std::thread::id, std::uint32_t> lane_ids_;
};

}  // namespace harmony::obs
