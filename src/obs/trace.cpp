#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace harmony::obs {

namespace {

/// Render a double for JSON: finite values print plainly; non-finite values
/// (infinite objectives mark infeasible configurations) become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Hex rendering for 64-bit ids: JSON numbers only carry 53 bits safely, so
/// trace/span ids are always strings.
std::string hex_id(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count())};
  std::uint64_t id = 0;
  while (id == 0) {
    id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

SearchTracer::SearchTracer()
    : epoch_(std::chrono::steady_clock::now()),
      wall_anchor_us_(std::chrono::duration<double, std::micro>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count()),
      shards_(kShards) {}

double SearchTracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t SearchTracer::lane_for_current_thread() {
  const auto id = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(lanes_mutex_);
  const auto it = lane_ids_.find(id);
  if (it != lane_ids_.end()) return it->second;
  const auto lane = static_cast<std::uint32_t>(lane_ids_.size());
  lane_ids_.emplace(id, lane);
  return lane;
}

void SearchTracer::record(TraceEvent e) {
  e.thread_lane = lane_for_current_thread();
  Shard& shard = shards_[std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                         shards_.size()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(std::move(e));
}

void SearchTracer::record_span(SpanEvent s) {
  s.thread_lane = lane_for_current_thread();
  Shard& shard = shards_[std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                         shards_.size()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.spans.push_back(std::move(s));
}

std::vector<SpanEvent> SearchTracer::spans() const {
  std::vector<SpanEvent> out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.spans.begin(), shard.spans.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.t_start_us != b.t_start_us) {
                       return a.t_start_us < b.t_start_us;
                     }
                     return a.thread_lane < b.thread_lane;
                   });
  return out;
}

std::size_t SearchTracer::span_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.spans.size();
  }
  return n;
}

std::vector<TraceEvent> SearchTracer::events() const {
  std::vector<TraceEvent> out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t_start_us != b.t_start_us) {
                       return a.t_start_us < b.t_start_us;
                     }
                     return a.thread_lane < b.thread_lane;
                   });
  return out;
}

std::size_t SearchTracer::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.events.size();
  }
  return n;
}

std::size_t SearchTracer::lanes() const {
  const std::lock_guard<std::mutex> lock(lanes_mutex_);
  return lane_ids_.size();
}

void SearchTracer::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.clear();
    shard.spans.clear();
  }
  const std::lock_guard<std::mutex> lock(lanes_mutex_);
  lane_ids_.clear();
}

void SearchTracer::write_jsonl(std::ostream& os) const {
  for (const auto& e : events()) {
    os << "{\"strategy\":\"" << json_escape(e.strategy) << "\""
       << ",\"point\":\"" << json_escape(e.point) << "\""
       << ",\"objective\":" << json_number(e.objective)
       << ",\"valid\":" << (e.valid ? "true" : "false")
       << ",\"cache_hit\":" << (e.cache_hit ? "true" : "false")
       << ",\"thread\":" << e.thread_lane
       << ",\"t_start_us\":" << json_number(e.t_start_us)
       << ",\"t_end_us\":" << json_number(e.t_end_us) << "}\n";
  }
  for (const auto& s : spans()) {
    os << "{\"kind\":\"span\",\"trace\":\"" << hex_id(s.trace_id) << "\""
       << ",\"span\":\"" << hex_id(s.span_id) << "\""
       << ",\"parent\":\"" << hex_id(s.parent_span) << "\""
       << ",\"name\":\"" << json_escape(s.name) << "\""
       << ",\"detail\":\"" << json_escape(s.detail) << "\""
       << ",\"thread\":" << s.thread_lane
       << ",\"t_start_us\":" << json_number(s.t_start_us)
       << ",\"t_end_us\":" << json_number(s.t_end_us)
       << ",\"anchor_us\":" << json_number(wall_anchor_us_) << "}\n";
  }
}

void SearchTracer::write_chrome_trace(std::ostream& os) const {
  const auto evs = events();
  const auto sps = spans();
  std::uint32_t max_lane = 0;
  for (const auto& e : evs) max_lane = std::max(max_lane, e.thread_lane);
  for (const auto& s : sps) max_lane = std::max(max_lane, s.thread_lane);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Lane labels so chrome://tracing shows "worker 0..N" instead of raw tids.
  if (!evs.empty() || !sps.empty()) {
    for (std::uint32_t lane = 0; lane <= max_lane; ++lane) {
      comma();
      os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << lane
         << "\"}}";
    }
  }

  for (const auto& e : evs) {
    comma();
    const double dur = std::max(0.0, e.t_end_us - e.t_start_us);
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.thread_lane
       << ",\"ts\":" << json_number(e.t_start_us)
       << ",\"dur\":" << json_number(dur) << ",\"cat\":\""
       << (e.cache_hit ? "cache" : "eval") << "\",\"name\":\""
       << json_escape(e.point) << "\",\"args\":{\"strategy\":\""
       << json_escape(e.strategy) << "\",\"objective\":"
       << json_number(e.objective) << ",\"valid\":" << (e.valid ? "true" : "false")
       << ",\"cache_hit\":" << (e.cache_hit ? "true" : "false") << "}}";
  }
  for (const auto& s : sps) {
    comma();
    const double dur = std::max(0.0, s.t_end_us - s.t_start_us);
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.thread_lane
       << ",\"ts\":" << json_number(s.t_start_us)
       << ",\"dur\":" << json_number(dur)
       << ",\"cat\":\"span\",\"name\":\"" << json_escape(s.name)
       << "\",\"args\":{\"trace\":\"" << hex_id(s.trace_id)
       << "\",\"span\":\"" << hex_id(s.span_id)
       << "\",\"parent\":\"" << hex_id(s.parent_span)
       << "\",\"detail\":\"" << json_escape(s.detail) << "\"}}";
  }
  os << "]}";
}

}  // namespace harmony::obs
