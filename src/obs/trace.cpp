#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace harmony::obs {

namespace {

/// Render a double for JSON: finite values print plainly; non-finite values
/// (infinite objectives mark infeasible configurations) become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

SearchTracer::SearchTracer()
    : epoch_(std::chrono::steady_clock::now()), shards_(kShards) {}

double SearchTracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t SearchTracer::lane_for_current_thread() {
  const auto id = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(lanes_mutex_);
  const auto it = lane_ids_.find(id);
  if (it != lane_ids_.end()) return it->second;
  const auto lane = static_cast<std::uint32_t>(lane_ids_.size());
  lane_ids_.emplace(id, lane);
  return lane;
}

void SearchTracer::record(TraceEvent e) {
  e.thread_lane = lane_for_current_thread();
  Shard& shard = shards_[std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                         shards_.size()];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(std::move(e));
}

std::vector<TraceEvent> SearchTracer::events() const {
  std::vector<TraceEvent> out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t_start_us != b.t_start_us) {
                       return a.t_start_us < b.t_start_us;
                     }
                     return a.thread_lane < b.thread_lane;
                   });
  return out;
}

std::size_t SearchTracer::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.events.size();
  }
  return n;
}

std::size_t SearchTracer::lanes() const {
  const std::lock_guard<std::mutex> lock(lanes_mutex_);
  return lane_ids_.size();
}

void SearchTracer::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.clear();
  }
  const std::lock_guard<std::mutex> lock(lanes_mutex_);
  lane_ids_.clear();
}

void SearchTracer::write_jsonl(std::ostream& os) const {
  for (const auto& e : events()) {
    os << "{\"strategy\":\"" << json_escape(e.strategy) << "\""
       << ",\"point\":\"" << json_escape(e.point) << "\""
       << ",\"objective\":" << json_number(e.objective)
       << ",\"valid\":" << (e.valid ? "true" : "false")
       << ",\"cache_hit\":" << (e.cache_hit ? "true" : "false")
       << ",\"thread\":" << e.thread_lane
       << ",\"t_start_us\":" << json_number(e.t_start_us)
       << ",\"t_end_us\":" << json_number(e.t_end_us) << "}\n";
  }
}

void SearchTracer::write_chrome_trace(std::ostream& os) const {
  const auto evs = events();
  std::uint32_t max_lane = 0;
  for (const auto& e : evs) max_lane = std::max(max_lane, e.thread_lane);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Lane labels so chrome://tracing shows "worker 0..N" instead of raw tids.
  if (!evs.empty()) {
    for (std::uint32_t lane = 0; lane <= max_lane; ++lane) {
      comma();
      os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << lane
         << "\"}}";
    }
  }

  for (const auto& e : evs) {
    comma();
    const double dur = std::max(0.0, e.t_end_us - e.t_start_us);
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.thread_lane
       << ",\"ts\":" << json_number(e.t_start_us)
       << ",\"dur\":" << json_number(dur) << ",\"cat\":\""
       << (e.cache_hit ? "cache" : "eval") << "\",\"name\":\""
       << json_escape(e.point) << "\",\"args\":{\"strategy\":\""
       << json_escape(e.strategy) << "\",\"objective\":"
       << json_number(e.objective) << ",\"valid\":" << (e.valid ? "true" : "false")
       << ",\"cache_hit\":" << (e.cache_hit ? "true" : "false") << "}}";
  }
  os << "]}";
}

}  // namespace harmony::obs
