#include "engine/surrogate_backend.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace harmony::engine {

SurrogateEvalBackend::SurrogateEvalBackend(EvalBackend& inner, Surrogate& model,
                                           SurrogateBackendOptions opts)
    : inner_(&inner), model_(&model), opts_(opts) {
  if (opts.top_k == 0) {
    throw std::invalid_argument("SurrogateEvalBackend: top_k must be >= 1");
  }
  if (opts.rank_window < opts.top_k) {
    throw std::invalid_argument(
        "SurrogateEvalBackend: rank_window must be >= top_k");
  }
}

std::vector<EvalOutcome> SurrogateEvalBackend::evaluate(
    const std::vector<Config>& batch, const Context& ctx) {
  // Rank by predicted objective. Candidates the model abstains on rank
  // ahead of everything predicted — unknown territory must be measured.
  std::vector<std::optional<double>> predicted(batch.size());
  bool any_abstained = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    predicted[i] = model_->predict(batch[i]);
    any_abstained = any_abstained || !predicted[i];
  }

  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (predicted[a].has_value() != predicted[b].has_value()) {
      return !predicted[a].has_value();
    }
    if (!predicted[a]) return a < b;
    return *predicted[a] < *predicted[b];
  });

  // Forward the top-K (in original batch order, so the inner backend sees
  // the same sub-batch a prefix truncation would have produced).
  const std::size_t k =
      any_abstained ? batch.size() : std::min(opts_.top_k, batch.size());
  std::vector<bool> forward(batch.size(), false);
  for (std::size_t j = 0; j < k; ++j) forward[order[j]] = true;

  // Spend one forwarded slot on the candidate the model is least sure about
  // (largest distance to any stored sample): pure exploitation never
  // corrects the model where it is extrapolating, which is exactly where a
  // narrow optimum hides. The predicted-worst forwarded slot is traded away.
  if (k < batch.size() && k >= 2) {
    std::size_t explore = batch.size();
    double most = -1.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (forward[i]) continue;
      const double u = model_->uncertainty(batch[i]);
      if (u > most) {
        most = u;
        explore = i;
      }
    }
    if (explore < batch.size() && most > 0.0) {
      forward[order[k - 1]] = false;
      forward[explore] = true;
    }
  }

  std::vector<Config> real;
  std::vector<std::size_t> real_at;
  real.reserve(k);
  real_at.reserve(k);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (forward[i]) {
      real.push_back(batch[i]);
      real_at.push_back(i);
    }
  }

  std::vector<EvalOutcome> out(batch.size());
  if (!real.empty()) {
    auto measured = inner_->evaluate(real, ctx);
    if (measured.size() != real.size()) {
      throw std::logic_error("SurrogateEvalBackend: inner batch size mismatch");
    }
    for (std::size_t m = 0; m < real.size(); ++m) {
      const std::size_t i = real_at[m];
      out[i] = std::move(measured[m]);
      if (out[i].ran && out[i].result.valid) {
        model_->observe(batch[i], out[i].result.objective);
        if (predicted[i] && out[i].result.objective != 0.0) {
          obs::observe("engine.surrogate.rel_error",
                       std::abs(*predicted[i] - out[i].result.objective) /
                           std::abs(out[i].result.objective));
        }
      }
    }
    forwarded_ += real.size();
    obs::count("engine.surrogate.forwarded", real.size());
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (forward[i]) continue;
    EvalOutcome& o = out[i];
    o.result.objective = *predicted[i];
    o.result.valid = true;
    o.result.metrics["surrogate_predicted"] = 1.0;
    o.ran = false;
    o.speculative = true;
    ++skipped_;
  }
  if (k < batch.size()) {
    obs::count("engine.surrogate.skipped", batch.size() - k);
  }
  return out;
}

}  // namespace harmony::engine
