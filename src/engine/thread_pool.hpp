#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool used by the parallel evaluation engine. The paper's
/// off-line tuning loop evaluates one candidate per iteration; every substrate
/// in this repo is a deterministic simulation, so short runs are embarrassingly
/// parallel and the pool lets a batch of candidates execute concurrently.
///
/// Semantics:
///  * submit() wraps the callable in a std::packaged_task and returns its
///    future; exceptions thrown by the task propagate to future::get().
///  * Shutdown is graceful: the destructor (or shutdown()) stops accepting
///    new work, drains every task already queued, then joins the workers —
///    a future obtained from submit() therefore always becomes ready.
///  * A pool of size 1 executes tasks strictly in submission order, which is
///    what makes the ParallelOfflineDriver's pool-size-1 determinism guard
///    possible.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace harmony::engine {

class ThreadPool {
 public:
  /// Spawn `threads` workers (throws std::invalid_argument when 0).
  explicit ThreadPool(std::size_t threads);

  /// Drains queued work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Queue a callable; the returned future yields its result or rethrows
  /// whatever it threw. Throws std::runtime_error after shutdown.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& f) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  /// Stop accepting work, finish everything queued, join the workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks executed over the pool's lifetime (for tests and reports).
  [[nodiscard]] std::size_t completed() const;

  /// Identifier this pool's worker lanes publish under on the live-status
  /// board ("pool/<n>", dense per process). Lanes appear in STATUS only
  /// while observability is enabled (see obs::StatusRegistry).
  [[nodiscard]] const std::string& status_name() const noexcept {
    return status_name_;
  }

 private:
  void post(std::function<void()> job);
  void worker_loop(std::uint32_t lane);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t completed_ = 0;
  bool stopping_ = false;
  std::string status_name_;
};

}  // namespace harmony::engine
