#include "engine/thread_pool.hpp"

#include <atomic>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/status.hpp"

namespace harmony::engine {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) throw std::invalid_argument("ThreadPool: zero threads");
  static std::atomic<std::uint64_t> next_pool_id{0};
  status_name_ = "pool/";
  status_name_ += std::to_string(next_pool_id.fetch_add(1));
  obs::gauge_set("engine.pool.size", static_cast<double>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::uint32_t>(i)); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::post(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::size_t ThreadPool::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void ThreadPool::worker_loop(std::uint32_t lane) {
  // Live-status lane, claimed lazily the first time observability is on so
  // the disabled path stays at one relaxed load per loop turn. The handle
  // unpublishes when the worker exits.
  obs::StatusRegistry::WorkerHandle status;
  std::uint64_t done = 0;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful shutdown: drain the queue before exiting, so every future
      // handed out by submit() becomes ready.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    if (obs::enabled()) {
      if (!status.valid()) {
        status = obs::StatusRegistry::global().publish_worker(status_name_, lane);
      }
      status.set(/*busy=*/true, done);
    }
    {
      // Zero-cost when disabled: time_scope holds no histogram (and reads
      // no clock) unless observability is on at task start.
      const auto timer = obs::time_scope("engine.pool.task_s");
      job();  // packaged_task captures exceptions into the future
    }
    ++done;
    if (status.valid()) status.set(/*busy=*/false, done);
    obs::count("engine.pool.tasks");
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
  }
}

}  // namespace harmony::engine
