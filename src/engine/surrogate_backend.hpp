#pragma once

/// \file surrogate_backend.hpp
/// Model-guided pre-ranking on the EvalBackend seam. SurrogateEvalBackend
/// decorates any existing backend — Serial, ShortRun, Pool, the fleet's
/// WorkerEvalBackend — without that backend knowing:
///
///   strategy --(batch)--> SurrogateEvalBackend --(top-K)--> inner backend
///                              |     ^
///                           predict  observe (real results)
///                              v     |
///                           Surrogate model
///
/// While the model is still warming up (fewer observations than it needs to
/// predict), every candidate is forwarded and measured for real. Once the
/// model predicts, each proposed batch is ranked by predicted objective and
/// only the best `top_k` candidates reach the inner backend; the rest come
/// back as EvalOutcome::speculative with the model's prediction as their
/// result. The SearchController reports speculative results to the strategy
/// (steering the search) but never charges them to the budget, caches them,
/// or lets them become the incumbent — so switching the surrogate off (just
/// don't wrap the backend) leaves trajectories bit-exact.
///
/// concurrency() reports `rank_window`, not the inner backend's width: the
/// controller then asks the strategy for a whole window of candidates at
/// once, which is what gives the model something to rank. Observability:
/// `engine.surrogate.forwarded` / `engine.surrogate.skipped` counters and an
/// `engine.surrogate.rel_error` histogram of |predicted - measured| /
/// measured for every forwarded candidate the model had an opinion on.

#include <cstddef>

#include "core/controller.hpp"
#include "engine/surrogate.hpp"

namespace harmony::engine {

struct SurrogateBackendOptions {
  /// Candidates per batch forwarded to real evaluation once the model is
  /// predicting (>= 1).
  std::size_t top_k = 6;

  /// Batch width reported to the controller (>= top_k): how many candidates
  /// the strategy is asked to propose so the model can rank them.
  std::size_t rank_window = 24;
};

class SurrogateEvalBackend final : public EvalBackend {
 public:
  /// `inner` and `model` are borrowed and must outlive the backend.
  SurrogateEvalBackend(EvalBackend& inner, Surrogate& model,
                       SurrogateBackendOptions opts = {});

  [[nodiscard]] std::vector<EvalOutcome> evaluate(const std::vector<Config>& batch,
                                                  const Context& ctx) override;

  [[nodiscard]] std::size_t concurrency() const override {
    return opts_.rank_window;
  }
  [[nodiscard]] bool traces() const override { return inner_->traces(); }
  [[nodiscard]] std::size_t cache_hits() const override {
    return inner_->cache_hits();
  }
  [[nodiscard]] std::size_t cache_coalesced() const override {
    return inner_->cache_coalesced();
  }

  /// Candidates measured for real / answered from the model.
  [[nodiscard]] std::size_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

 private:
  EvalBackend* inner_;
  Surrogate* model_;
  SurrogateBackendOptions opts_;
  std::size_t forwarded_ = 0;
  std::size_t skipped_ = 0;
};

}  // namespace harmony::engine
