#include "engine/batch_strategy.hpp"

#include <stdexcept>
#include <utility>

#include "core/exhaustive.hpp"
#include "core/random_search.hpp"
#include "core/systematic_sampler.hpp"

namespace harmony::engine {

IndependentBatchStrategy::IndependentBatchStrategy(
    std::unique_ptr<SearchStrategy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("IndependentBatchStrategy: null inner");
}

std::vector<Config> IndependentBatchStrategy::propose_batch(std::size_t max_n) {
  std::vector<Config> batch;
  batch.reserve(max_n);
  for (std::size_t i = 0; i < max_n; ++i) {
    auto c = inner_->propose();
    if (!c) break;
    batch.push_back(std::move(*c));
  }
  return batch;
}

void IndependentBatchStrategy::report_batch(
    const std::vector<Config>& configs, const std::vector<EvaluationResult>& results) {
  if (configs.size() != results.size()) {
    throw std::invalid_argument("IndependentBatchStrategy: batch size mismatch");
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    inner_->report(configs[i], results[i]);
  }
}

bool IndependentBatchStrategy::converged() const { return inner_->converged(); }

BatchRandomSearch::BatchRandomSearch(const ParamSpace& space, int max_samples,
                                     std::uint64_t seed)
    : IndependentBatchStrategy(
          std::make_unique<RandomSearch>(space, max_samples, seed)) {}

BatchSystematicSampler::BatchSystematicSampler(const ParamSpace& space,
                                               std::vector<int> samples_per_dim)
    : IndependentBatchStrategy(std::make_unique<SystematicSampler>(
          space, std::move(samples_per_dim))) {}

BatchSystematicSampler::BatchSystematicSampler(const ParamSpace& space,
                                               int samples_per_dim)
    : IndependentBatchStrategy(
          std::make_unique<SystematicSampler>(space, samples_per_dim)) {}

BatchExhaustive::BatchExhaustive(const ParamSpace& space, std::uint64_t max_points)
    : IndependentBatchStrategy(std::make_unique<Exhaustive>(space, max_points)) {}

SpeculativeNelderMead::SpeculativeNelderMead(const ParamSpace& space,
                                             NelderMeadOptions opts,
                                             std::optional<Config> initial,
                                             ConstraintSet constraints)
    : space_(&space),
      nm_(space, opts, std::move(initial), std::move(constraints)) {}

std::vector<Config> SpeculativeNelderMead::propose_batch(std::size_t max_n) {
  drive();  // consume anything already known before speculating further
  if (nm_.converged() || max_n == 0) return {};
  std::vector<Config> batch;
  batch_keys_.clear();
  for (auto& c : nm_.speculative_candidates()) {
    if (batch.size() >= max_n) break;
    scratch_key_.assign(*space_, c);
    if (results_.find(scratch_key_) != nullptr) {
      continue;  // already evaluated: free replay
    }
    bool dup = false;
    for (const auto& k : batch_keys_) {
      if (k == scratch_key_) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      batch_keys_.push_back(scratch_key_);
      batch.push_back(std::move(c));
    }
  }
  // speculative_candidates() lists the serially-needed point first and
  // drive() guarantees it is not in results_, so `batch` is never empty here
  // and any prefix truncation by the driver's budget guard keeps it.
  return batch;
}

void SpeculativeNelderMead::report_batch(const std::vector<Config>& configs,
                                         const std::vector<EvaluationResult>& results) {
  if (configs.size() != results.size()) {
    throw std::invalid_argument("SpeculativeNelderMead: batch size mismatch");
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    scratch_key_.assign(*space_, configs[i]);
    results_.insert_or_assign(scratch_key_, results[i]);
  }
  drive();
}

void SpeculativeNelderMead::drive() {
  // Replay the serial ask/tell alternation against memoized results. The
  // state machine advances exactly as a serial driver would have advanced
  // it; we stop the moment it asks for a point we have not evaluated.
  while (!nm_.converged()) {
    const auto c = nm_.propose();
    if (!c) break;
    scratch_key_.assign(*space_, *c);
    const auto* r = results_.find(scratch_key_);
    if (r == nullptr) break;  // next batch will contain this point
    nm_.report(*c, *r);
  }
}

}  // namespace harmony::engine
