#pragma once

/// \file eval_cache.hpp
/// Thread-safe memoizing evaluation cache for the parallel engine. Like the
/// serial harmony::EvalCache it is keyed by the index-space identity of a
/// configuration (PointKey), so any two configurations that snap to the same
/// lattice point share an entry. Two extras make it safe and cheap under
/// concurrency:
///
///  * the table is sharded (one mutex per shard) so unrelated lookups do not
///    contend on a single lock. Each shard is an open-addressing flat table
///    (FlatPointMap) instead of a node-based unordered_map: probes walk
///    contiguous memory and insertion allocates nothing in steady state;
///  * entries are shared_futures, giving in-flight deduplication: when two
///    workers ask for the same configuration at once, the second blocks on
///    the first worker's evaluation instead of running it twice. Those waits
///    are counted separately (coalesced()) from ordinary completed-entry
///    hits.
///
/// The key's 64-bit hash is computed exactly once per call — at PointKey
/// derivation — and reused for both shard selection (high bits) and the
/// table probe (low bits). The old string-keyed design hashed every key
/// twice: once in shard_for and again inside unordered_map.
///
/// The driver maps `ran == false` outcomes to History's existing `cached`
/// flag, so batch histories stay comparable with serial ones.

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "core/evaluation.hpp"
#include "core/flat_map.hpp"
#include "core/param_space.hpp"
#include "core/point_key.hpp"
#include "core/types.hpp"

namespace harmony::engine {

class ConcurrentEvalCache {
 public:
  explicit ConcurrentEvalCache(const ParamSpace& space, std::size_t shards = 16);

  /// What evaluate() did for one configuration.
  struct Outcome {
    EvaluationResult result;
    bool ran = false;        ///< this call executed `compute`
    bool coalesced = false;  ///< waited on another thread's in-flight run
  };

  /// Memoized evaluation. Exactly one caller per distinct key executes
  /// `compute`; concurrent callers for the same key block until that result
  /// is ready. If `compute` throws, the exception propagates to this caller
  /// and to every coalesced waiter, and the entry is dropped so a later call
  /// retries.
  Outcome evaluate(const Config& c, const std::function<EvaluationResult()>& compute);

  /// Key-space variant: the caller already derived the PointKey (and thereby
  /// the hash) — nothing about `c` is needed.
  Outcome evaluate(const PointKey& key,
                   const std::function<EvaluationResult()>& compute);

  /// Non-blocking lookup of a completed entry (counts as hit or miss).
  [[nodiscard]] std::optional<EvaluationResult> lookup(const Config& c) const;
  [[nodiscard]] std::optional<EvaluationResult> lookup(const PointKey& key) const;

  /// Insert a result computed elsewhere (a remote fleet worker) as a ready
  /// entry; overwrites any existing entry for the key (latest wins). Does
  /// not touch the hit/miss counters.
  void insert(const Config& c, const EvaluationResult& r);
  void insert(const PointKey& key, const EvaluationResult& r);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_.load(); }
  [[nodiscard]] std::size_t coalesced() const noexcept { return coalesced_.load(); }
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    FlatPointMap<std::shared_future<EvaluationResult>> table;
  };

  /// Shard index from the key's stored hash — the table probe uses the low
  /// bits, so the shard uses the high bits to stay uncorrelated.
  [[nodiscard]] Shard& shard_for(const PointKey& key) const {
    return shards_[(key.hash() >> 48) % shards_.size()];
  }

  const ParamSpace* space_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> coalesced_{0};
};

}  // namespace harmony::engine
