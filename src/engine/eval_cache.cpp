#include "engine/eval_cache.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace harmony::engine {

ConcurrentEvalCache::ConcurrentEvalCache(const ParamSpace& space, std::size_t shards)
    : space_(&space), shards_(shards == 0 ? 1 : shards) {}

ConcurrentEvalCache::Outcome ConcurrentEvalCache::evaluate(
    const Config& c, const std::function<EvaluationResult()>& compute) {
  // Derive once: the PointKey carries the hash used for the shard pick and
  // every probe below (stack-local, no allocation for paper-sized spaces).
  return evaluate(PointKey(*space_, c), compute);
}

ConcurrentEvalCache::Outcome ConcurrentEvalCache::evaluate(
    const PointKey& key, const std::function<EvaluationResult()>& compute) {
  if (!compute) throw std::invalid_argument("ConcurrentEvalCache: null compute");
  Shard& shard = shard_for(key);

  std::promise<EvaluationResult> promise;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (const auto* entry = shard.table.find(key)) {
      // Completed entry -> plain hit; still running -> coalesce onto it.
      const bool ready =
          entry->wait_for(std::chrono::seconds(0)) == std::future_status::ready;
      if (ready) {
        ++hits_;
        obs::count("engine.cache.hits");
      } else {
        ++coalesced_;
        obs::count("engine.cache.coalesced");
      }
      auto fut = *entry;
      // Release the shard before a potentially long wait: holding it would
      // stall every other key hashed to this shard.
      lock.unlock();
      Outcome out;
      out.coalesced = !ready;
      out.result = fut.get();
      return out;
    }
    ++misses_;
    obs::count("engine.cache.misses");
    shard.table.insert_or_assign(key, promise.get_future().share());
  }

  try {
    EvaluationResult r = compute();
    promise.set_value(r);
    Outcome out;
    out.result = std::move(r);
    out.ran = true;
    return out;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      // Drop the failed entry so a later call retries; existing waiters
      // already hold the shared_future and will observe the exception.
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.table.erase(key);
    }
    throw;
  }
}

void ConcurrentEvalCache::insert(const Config& c, const EvaluationResult& r) {
  insert(PointKey(*space_, c), r);
}

void ConcurrentEvalCache::insert(const PointKey& key, const EvaluationResult& r) {
  Shard& shard = shard_for(key);
  std::promise<EvaluationResult> ready;
  ready.set_value(r);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.table.insert_or_assign(key, ready.get_future().share());
}

std::optional<EvaluationResult> ConcurrentEvalCache::lookup(const Config& c) const {
  return lookup(PointKey(*space_, c));
}

std::optional<EvaluationResult> ConcurrentEvalCache::lookup(const PointKey& key) const {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto* entry = shard.table.find(key);
  if (entry == nullptr ||
      entry->wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return entry->get();
}

std::size_t ConcurrentEvalCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.table.size();
  }
  return n;
}

void ConcurrentEvalCache::clear() {
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.table.clear();
  }
  hits_ = 0;
  misses_ = 0;
  coalesced_ = 0;
}

}  // namespace harmony::engine
