#pragma once

/// \file batch_strategy.hpp
/// Native batch strategies for the parallel evaluation engine. The batch
/// interface itself (BatchSearchStrategy) and the universal batch-size-1
/// wrapper (SequentialBatchAdapter) live in core/strategy.hpp — they are the
/// SearchController's native contract — and are aliased here for
/// compatibility. This header adds the strategies that exploit real
/// batching:
///  * BatchRandomSearch / BatchSystematicSampler / BatchExhaustive propose up
///    to max_n points per batch. Their serial counterparts never consult
///    report() state when proposing, so the batched trajectory (the sequence
///    of evaluated configurations and the final best) is identical.
///  * SpeculativeNelderMead evaluates the reflection, expansion and both
///    contraction points of the worst vertex concurrently, then replays the
///    standard acceptance rule — bitwise-identical to the serial simplex on
///    deterministic objectives, at the cost of some wasted evaluations.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/constraint.hpp"
#include "core/evaluation.hpp"
#include "core/flat_map.hpp"
#include "core/nelder_mead.hpp"
#include "core/param_space.hpp"
#include "core/point_key.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"

namespace harmony::engine {

// The batch contract and the universal serial wrapper moved to
// core/strategy.hpp; these aliases keep existing engine call sites valid.
using BatchSearchStrategy = harmony::BatchSearchStrategy;
using SequentialBatchAdapter = harmony::SequentialBatchAdapter;

/// Batches a serial strategy whose proposals never depend on reports by
/// pulling up to max_n proposals ahead, then reporting them in order. Base
/// for the native batch strategies below; owns the wrapped strategy.
class IndependentBatchStrategy : public BatchSearchStrategy {
 public:
  explicit IndependentBatchStrategy(std::unique_ptr<SearchStrategy> inner);

  [[nodiscard]] std::vector<Config> propose_batch(std::size_t max_n) override;
  void report_batch(const std::vector<Config>& configs,
                    const std::vector<EvaluationResult>& results) override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override { return inner_->best(); }
  [[nodiscard]] double best_objective() const override {
    return inner_->best_objective();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<SearchStrategy> inner_;
  std::size_t outstanding_ = 0;  // proposals pulled but not yet reported
};

/// Native batch form of RandomSearch: max_n independent uniform samples.
class BatchRandomSearch final : public IndependentBatchStrategy {
 public:
  BatchRandomSearch(const ParamSpace& space, int max_samples,
                    std::uint64_t seed = 1);
};

/// Native batch form of SystematicSampler: max_n consecutive plan points.
class BatchSystematicSampler final : public IndependentBatchStrategy {
 public:
  BatchSystematicSampler(const ParamSpace& space, std::vector<int> samples_per_dim);
  BatchSystematicSampler(const ParamSpace& space, int samples_per_dim);
};

/// Native batch form of Exhaustive: max_n consecutive lattice points.
class BatchExhaustive final : public IndependentBatchStrategy {
 public:
  explicit BatchExhaustive(const ParamSpace& space,
                           std::uint64_t max_points = 1'000'000);
};

/// Speculative-evaluation Nelder–Mead. Each batch contains every point the
/// serial simplex might need before its current phase resolves (all initial /
/// shrink vertices, or the reflection + expansion + both contractions of the
/// worst vertex); once results arrive the serial state machine is replayed
/// against them. On a deterministic objective the search trajectory — every
/// accepted vertex, the restart schedule, the final best — is identical to
/// the serial NelderMead with the same options.
class SpeculativeNelderMead final : public BatchSearchStrategy {
 public:
  SpeculativeNelderMead(const ParamSpace& space, NelderMeadOptions opts = {},
                        std::optional<Config> initial = std::nullopt,
                        ConstraintSet constraints = {});

  [[nodiscard]] std::vector<Config> propose_batch(std::size_t max_n) override;
  void report_batch(const std::vector<Config>& configs,
                    const std::vector<EvaluationResult>& results) override;
  [[nodiscard]] bool converged() const override { return nm_.converged(); }
  [[nodiscard]] std::optional<Config> best() const override { return nm_.best(); }
  [[nodiscard]] double best_objective() const override {
    return nm_.best_objective();
  }
  [[nodiscard]] std::string name() const override {
    return "speculative-nelder-mead";
  }

  /// The underlying serial state machine (for tests: transformations, ...).
  [[nodiscard]] const NelderMead& inner() const noexcept { return nm_; }

 private:
  /// Feed known results through the serial state machine until it asks for a
  /// configuration we have not evaluated yet (or converges).
  void drive();

  const ParamSpace* space_;
  NelderMead nm_;
  /// Memoized results in index space: probing the pending-results table is a
  /// hash compare plus a few integer compares, with no string materialized.
  FlatPointMap<EvaluationResult> results_;
  PointKey scratch_key_;               ///< reused across lookups (no alloc)
  std::vector<PointKey> batch_keys_;   ///< keys of the batch being built
};

}  // namespace harmony::engine
