#pragma once

/// \file parallel_driver.hpp
/// Parallel counterpart of OfflineDriver (Section III's off-line short-run
/// tuning loop): a thin facade over SearchController + PoolEvalBackend.
/// Mirrors OfflineDriver's options/result/history surface, but evaluates
/// each batch of candidate configurations across a worker pool, with:
///
///  * a budget guard — batches are sized to the remaining run budget before
///    submission, so `max_runs` is never exceeded even with a batch in
///    flight (cache hits may leave budget unused in a batch; it is recovered
///    in the next one);
///  * a concurrent memoizing cache with in-flight deduplication — duplicate
///    configurations inside one batch cost a single short run, and served
///    entries are recorded with History's existing `cached` flag;
///  * serial-equivalence at pool size 1 — driving any serial strategy via
///    SequentialBatchAdapter with one worker produces a History identical to
///    OfflineDriver's (guarded by tests/engine/test_parallel_driver.cpp).
///
/// `total_tuning_cost_s` remains the sum over all runs (the tuning bill the
/// paper accounts: restart + warm-up + measured region); wall-clock shrinks
/// with pool size because runs overlap, which is the whole point.

#include <optional>

#include "core/history.hpp"
#include "core/offline_driver.hpp"
#include "core/strategy.hpp"
#include "engine/batch_strategy.hpp"

namespace harmony::engine {

/// Inherits the shared loop knobs (`use_cache`, `tracer`) from
/// ControllerOptions. `use_cache` here memoizes *and* deduplicates in-flight
/// evaluations (the backend's concurrent cache); tracer events are recorded
/// from the worker threads, so an exported Chrome trace shows one lane per
/// pool worker.
struct ParallelOfflineOptions : ControllerOptions {
  int short_run_steps = 10;       ///< paper: "typical benchmarking run of 10 time steps"
  int max_runs = 40;              ///< tuning-iteration budget (distinct runs)
  double restart_overhead_s = 0;  ///< stop/reconfigure/restart cost per run
  int pool_size = 4;              ///< worker threads evaluating short runs
  int max_batch = 0;              ///< per-batch candidate cap (0 = pool_size)
};

struct ParallelOfflineResult {
  std::optional<Config> best;
  double best_measured_s = 0.0;
  int runs = 0;                    ///< distinct short runs actually launched
  double total_tuning_cost_s = 0;  ///< restarts + warmups + measured regions
  bool strategy_converged = false;
  std::size_t cache_hits = 0;       ///< completed-entry cache hits
  std::size_t cache_coalesced = 0;  ///< waits coalesced onto in-flight runs
  int batches = 0;                  ///< propose/report round trips
};

class ParallelOfflineDriver {
 public:
  ParallelOfflineDriver(const ParamSpace& space, ParallelOfflineOptions opts = {});

  /// Run the tuning loop over a batch strategy.
  ParallelOfflineResult tune(BatchSearchStrategy& strategy, const ShortRunFn& run);

  /// Convenience: drive a serial strategy through SequentialBatchAdapter
  /// (batch size 1; with pool_size 1 this matches OfflineDriver exactly).
  ParallelOfflineResult tune(SearchStrategy& strategy, const ShortRunFn& run);

  [[nodiscard]] const History& history() const { return history_; }

 private:
  const ParamSpace* space_;
  ParallelOfflineOptions opts_;
  History history_;
};

}  // namespace harmony::engine
