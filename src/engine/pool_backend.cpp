#include "engine/pool_backend.hpp"

#include <future>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace harmony::engine {

PoolEvalBackend::PoolEvalBackend(const ParamSpace& space, const ShortRunFn& run,
                                 int steps, double restart_overhead_s,
                                 int pool_size, std::size_t batch_cap,
                                 bool use_cache)
    : run_(&run),
      steps_(steps),
      restart_overhead_s_(restart_overhead_s),
      use_cache_(use_cache),
      batch_cap_(batch_cap),
      cache_(space),
      pool_(static_cast<std::size_t>(pool_size)) {}

std::vector<EvalOutcome> PoolEvalBackend::evaluate(const std::vector<Config>& batch,
                                                   const Context& ctx) {
  std::vector<std::future<EvalOutcome>> futures;
  futures.reserve(batch.size());
  for (const auto& c : batch) {
    futures.push_back(pool_.submit([this, &ctx, c]() {
      // One tuning iteration == one representative short run (Section III):
      // stop, reconfigure, restart, warm up, measure. Every component of
      // that cost is charged to the tuning bill.
      obs::SearchTracer* const tracer = ctx.tracer;
      const double t_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
      double cost_s = 0.0;
      const auto launch = [&]() {
        const ShortRunResult r = (*run_)(c, steps_);
        cost_s = restart_overhead_s_ + r.warmup_s + r.measured_s;
        obs::observe("engine.short_run_s", r.warmup_s + r.measured_s);
        EvaluationResult res;
        res.valid = r.ok;
        res.objective =
            r.ok ? r.measured_s : std::numeric_limits<double>::infinity();
        res.metrics["warmup_s"] = r.warmup_s;
        return res;
      };
      EvalOutcome t;
      if (use_cache_) {
        const auto o = cache_.evaluate(c, launch);
        t.result = o.result;
        t.ran = o.ran;
      } else {
        t.result = launch();
        t.ran = true;
      }
      t.cost_s = t.ran ? cost_s : 0.0;
      if (t.ran) obs::count("engine.driver.runs");
      if (tracer != nullptr) {
        tracer->record({ctx.strategy_name, ctx.space->format(c),
                        t.result.objective, t.result.valid,
                        /*cache_hit=*/!t.ran, /*thread_lane=*/0, t_start_us,
                        tracer->now_us()});
      }
      return t;
    }));
  }
  std::vector<EvalOutcome> out;
  out.reserve(batch.size());
  for (auto& f : futures) {
    out.push_back(f.get());  // rethrows worker exceptions
  }
  return out;
}

}  // namespace harmony::engine
