#pragma once

/// \file engine.hpp
/// Umbrella header for the parallel evaluation engine:
///
///   harmony::ParamSpace space = ...;
///   harmony::engine::BatchSystematicSampler sweep(space, 8);
///   harmony::engine::ParallelOfflineDriver driver(space, {.pool_size = 8});
///   auto result = driver.tune(sweep, short_run);
///
/// The engine layers on top of the serial core: any SearchStrategy runs
/// unchanged through SequentialBatchAdapter; random/systematic/exhaustive
/// searches and Nelder–Mead get genuinely parallel batch implementations.

#include "engine/batch_strategy.hpp"
#include "engine/eval_cache.hpp"
#include "engine/parallel_driver.hpp"
#include "engine/surrogate.hpp"
#include "engine/surrogate_backend.hpp"
#include "engine/thread_pool.hpp"
