#pragma once

/// \file surrogate.hpp
/// Cheap performance models fitted from observed evaluations — the "offsite"
/// half of model-guided two-stage search (Offsite Autotuning, Odyssey/AutoSA
/// flow): a cheap model pre-ranks candidates so the accurate-but-expensive
/// measurement only runs on the promising ones. A Surrogate absorbs real
/// measurements incrementally (one observe() per fresh evaluation, or a
/// whole recorded History at once) and predicts the objective of unseen
/// configurations; SurrogateEvalBackend (surrogate_backend.hpp) wires a
/// Surrogate in front of any EvalBackend.
///
/// KnnSurrogate is the default model: k-nearest-neighbour regression with
/// inverse-distance weighting over the ParamSpace coordinate embedding,
/// normalized per dimension so "nearest" is meaningful across parameters
/// with wildly different ranges. It has no training step — fitting is an
/// append — which makes it a natural incremental model for a running search.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony::engine {

/// Incremental objective model: absorb measurements, predict unseen points.
class Surrogate {
 public:
  virtual ~Surrogate() = default;

  /// Absorb one real measurement (invalid results must not be fed here).
  virtual void observe(const Config& c, double objective) = 0;

  /// Predicted objective for `c`, or nullopt while the model does not yet
  /// consider itself able to predict (too few samples).
  [[nodiscard]] virtual std::optional<double> predict(const Config& c) const = 0;

  /// Number of measurements absorbed so far.
  [[nodiscard]] virtual std::size_t samples() const = 0;

  /// How unsure the model is about `c`, on an arbitrary but monotone scale
  /// (0 = a point it has already measured). SurrogateEvalBackend spends one
  /// forwarded slot per batch on the most uncertain candidate, so the model
  /// keeps being corrected where it is extrapolating instead of measuring
  /// only where it already predicts well.
  [[nodiscard]] virtual double uncertainty(const Config&) const { return 0.0; }

  [[nodiscard]] virtual std::string name() const = 0;
};

struct KnnSurrogateOptions {
  std::size_t k = 5;            ///< neighbours averaged per prediction
  std::size_t min_samples = 8;  ///< predict() abstains below this
  double idw_power = 2.0;       ///< inverse-distance weight exponent
};

/// k-NN / inverse-distance-weighted regressor over normalized coordinates.
class KnnSurrogate final : public Surrogate {
 public:
  /// Throws std::invalid_argument on k == 0 or an empty space.
  explicit KnnSurrogate(const ParamSpace& space, KnnSurrogateOptions opts = {});

  void observe(const Config& c, double objective) override;

  /// Warm-start from a recorded History: every valid, non-cached entry is
  /// absorbed (cached entries repeat a lattice point already seen).
  void fit_history(const History& h);

  [[nodiscard]] std::optional<double> predict(const Config& c) const override;
  [[nodiscard]] std::size_t samples() const override { return values_.size(); }

  /// Distance to the nearest stored sample in normalized coordinate space.
  [[nodiscard]] double uncertainty(const Config& c) const override;

  [[nodiscard]] std::string name() const override { return "knn"; }

 private:
  /// Normalize `c`'s coordinate embedding to [0, 1] per dimension into the
  /// query scratch; returns a pointer to dim() doubles.
  [[nodiscard]] const double* normalized(const Config& c) const;

  const ParamSpace* space_;
  KnnSurrogateOptions opts_;
  std::size_t dim_;                ///< coordinates per sample
  std::vector<double> norm_min_;   ///< per-dim coord_min, precomputed
  std::vector<double> norm_scale_; ///< per-dim 1/span (0 for degenerate dims)
  /// Sample i's normalized coordinates live at points_[i*dim_ .. +dim_):
  /// one contiguous block, so the k-NN scan streams linearly instead of
  /// chasing a pointer per sample.
  std::vector<double> points_;
  std::vector<double> values_;     ///< observed objectives

  // Query scratch, reused across calls. Not thread-safe, including the
  // const methods: a model is owned and queried by one search thread
  // (SurrogateEvalBackend calls it from the controller thread only).
  mutable std::vector<double> query_;
  mutable std::vector<std::pair<double, std::size_t>> dist_;
};

}  // namespace harmony::engine
