#include "engine/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace harmony::engine {

KnnSurrogate::KnnSurrogate(const ParamSpace& space, KnnSurrogateOptions opts)
    : space_(&space), opts_(opts) {
  if (space.empty()) {
    throw std::invalid_argument("KnnSurrogate: empty parameter space");
  }
  if (opts.k == 0) throw std::invalid_argument("KnnSurrogate: k must be >= 1");
}

std::vector<double> KnnSurrogate::normalized(const Config& c) const {
  std::vector<double> coords = space_->coords(c);
  for (std::size_t d = 0; d < coords.size(); ++d) {
    const Parameter& p = space_->param(d);
    const double span = p.coord_max() - p.coord_min();
    coords[d] = span > 0.0 ? (coords[d] - p.coord_min()) / span : 0.0;
  }
  return coords;
}

void KnnSurrogate::observe(const Config& c, double objective) {
  points_.push_back(normalized(c));
  values_.push_back(objective);
}

void KnnSurrogate::fit_history(const History& h) {
  for (const auto& e : h.entries()) {
    if (e.result.valid && !e.cached) observe(e.config, e.result.objective);
  }
}

std::optional<double> KnnSurrogate::predict(const Config& c) const {
  if (values_.size() < opts_.min_samples) return std::nullopt;
  const std::vector<double> q = normalized(c);

  // Squared distance to every sample; partial-select the k nearest.
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) {
      const double delta = points_[i][d] - q[d];
      d2 += delta * delta;
    }
    dist.emplace_back(d2, i);
  }
  const std::size_t k = std::min(opts_.k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());

  // Inverse-distance weighting; an exact lattice match dominates entirely.
  double wsum = 0.0;
  double vsum = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double d = std::sqrt(dist[j].first);
    if (d < 1e-12) return values_[dist[j].second];
    const double w = 1.0 / std::pow(d, opts_.idw_power);
    wsum += w;
    vsum += w * values_[dist[j].second];
  }
  return vsum / wsum;
}

double KnnSurrogate::uncertainty(const Config& c) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  const std::vector<double> q = normalized(c);
  double nearest = std::numeric_limits<double>::infinity();
  for (const auto& p : points_) {
    double d2 = 0.0;
    for (std::size_t d = 0; d < q.size(); ++d) {
      const double delta = p[d] - q[d];
      d2 += delta * delta;
    }
    nearest = std::min(nearest, d2);
  }
  return std::sqrt(nearest);
}

}  // namespace harmony::engine
