#include "engine/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace harmony::engine {

KnnSurrogate::KnnSurrogate(const ParamSpace& space, KnnSurrogateOptions opts)
    : space_(&space), opts_(opts), dim_(space.dim()) {
  if (space.empty()) {
    throw std::invalid_argument("KnnSurrogate: empty parameter space");
  }
  if (opts.k == 0) throw std::invalid_argument("KnnSurrogate: k must be >= 1");
  norm_min_.reserve(dim_);
  norm_scale_.reserve(dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    const Parameter& p = space.param(d);
    const double span = p.coord_max() - p.coord_min();
    norm_min_.push_back(p.coord_min());
    norm_scale_.push_back(span > 0.0 ? 1.0 / span : 0.0);
  }
}

const double* KnnSurrogate::normalized(const Config& c) const {
  space_->coords(c, query_);
  for (std::size_t d = 0; d < dim_; ++d) {
    query_[d] = (query_[d] - norm_min_[d]) * norm_scale_[d];
  }
  return query_.data();
}

void KnnSurrogate::observe(const Config& c, double objective) {
  const double* q = normalized(c);
  points_.insert(points_.end(), q, q + dim_);
  values_.push_back(objective);
}

void KnnSurrogate::fit_history(const History& h) {
  for (const auto& e : h.entries()) {
    if (e.result.valid && !e.cached) observe(e.config, e.result.objective);
  }
}

std::optional<double> KnnSurrogate::predict(const Config& c) const {
  if (values_.size() < opts_.min_samples) return std::nullopt;
  const double* q = normalized(c);

  // Squared distance to every sample; partial-select the k nearest. The
  // sample matrix is row-contiguous, so this is one linear pass.
  dist_.clear();
  dist_.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double* p = points_.data() + i * dim_;
    double d2 = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double delta = p[d] - q[d];
      d2 += delta * delta;
    }
    dist_.emplace_back(d2, i);
  }
  const std::size_t k = std::min(opts_.k, dist_.size());
  std::partial_sort(dist_.begin(), dist_.begin() + static_cast<std::ptrdiff_t>(k),
                    dist_.end());

  // Inverse-distance weighting; an exact lattice match dominates entirely.
  double wsum = 0.0;
  double vsum = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double d = std::sqrt(dist_[j].first);
    if (d < 1e-12) return values_[dist_[j].second];
    const double w = 1.0 / std::pow(d, opts_.idw_power);
    wsum += w;
    vsum += w * values_[dist_[j].second];
  }
  return vsum / wsum;
}

double KnnSurrogate::uncertainty(const Config& c) const {
  if (values_.empty()) return std::numeric_limits<double>::infinity();
  const double* q = normalized(c);
  double nearest = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double* p = points_.data() + i * dim_;
    double d2 = 0.0;
    for (std::size_t d = 0; d < dim_; ++d) {
      const double delta = p[d] - q[d];
      d2 += delta * delta;
    }
    nearest = std::min(nearest, d2);
  }
  return std::sqrt(nearest);
}

}  // namespace harmony::engine
