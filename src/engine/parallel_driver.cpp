#include "engine/parallel_driver.hpp"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/controller.hpp"
#include "engine/pool_backend.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"

namespace harmony::engine {

ParallelOfflineDriver::ParallelOfflineDriver(const ParamSpace& space,
                                             ParallelOfflineOptions opts)
    : space_(&space), opts_(opts), history_(space) {
  if (opts.max_runs < 1) {
    throw std::invalid_argument("ParallelOfflineDriver: max_runs < 1");
  }
  if (opts.short_run_steps < 1) {
    throw std::invalid_argument("ParallelOfflineDriver: short_run_steps < 1");
  }
  if (opts.restart_overhead_s < 0) {
    throw std::invalid_argument("ParallelOfflineDriver: negative restart overhead");
  }
  if (opts.pool_size < 1) {
    throw std::invalid_argument("ParallelOfflineDriver: pool_size < 1");
  }
  if (opts.max_batch < 0) {
    throw std::invalid_argument("ParallelOfflineDriver: negative max_batch");
  }
}

ParallelOfflineResult ParallelOfflineDriver::tune(SearchStrategy& strategy,
                                                  const ShortRunFn& run) {
  SequentialBatchAdapter adapter(strategy);
  return tune(adapter, run);
}

ParallelOfflineResult ParallelOfflineDriver::tune(BatchSearchStrategy& strategy,
                                                  const ShortRunFn& run) {
  if (!run) throw std::invalid_argument("ParallelOfflineDriver::tune: null run function");

  ControllerHooks hooks;
  hooks.proposals_counter = "engine.driver.proposals";
  hooks.batches_counter = "engine.driver.batches";
  hooks.status_phase = "batching";
  hooks.status_batch_phase = true;
  // Live-status slot (gated: published only while observability is on).
  if (obs::enabled()) {
    static std::atomic<std::uint64_t> next_id{0};
    hooks.status_id = "parallel/" + std::to_string(next_id.fetch_add(1));
  }

  // Memoization (and in-flight coalescing) lives in the pool backend's
  // concurrent cache, so every batch element is dispatched to a worker; the
  // controller therefore runs without its own cache.
  PoolEvalBackend backend(*space_, run, opts_.short_run_steps,
                          opts_.restart_overhead_s, opts_.pool_size,
                          static_cast<std::size_t>(
                              opts_.max_batch > 0 ? opts_.max_batch : opts_.pool_size),
                          opts_.use_cache);

  // Same generous proposal guard as the serial driver: strategies may propose
  // cached points freely without burning the run budget.
  SearchController controller(*space_,
                              {opts_.max_runs, opts_.max_runs * 64 + 256},
                              std::move(hooks), opts_.tracer, /*cache=*/nullptr);
  const ControllerResult r = controller.run(strategy, backend);
  history_ = controller.take_history();

  ParallelOfflineResult out;
  out.best = r.best;
  out.best_measured_s = r.best_objective;
  out.runs = r.evaluations;
  out.total_tuning_cost_s = r.total_cost_s;
  out.strategy_converged = r.strategy_converged;
  out.cache_hits = backend.cache_hits();
  out.cache_coalesced = backend.cache_coalesced();
  out.batches = r.batches;
  return out;
}

}  // namespace harmony::engine
