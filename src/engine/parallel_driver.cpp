#include "engine/parallel_driver.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/eval_cache.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace harmony::engine {

namespace {

/// Per-configuration outcome collected from a worker.
struct TaskOutcome {
  EvaluationResult result;
  bool ran = false;    ///< a short run was actually launched for this config
  double cost_s = 0.0; ///< restart + warmup + measured, when ran
};

}  // namespace

ParallelOfflineDriver::ParallelOfflineDriver(const ParamSpace& space,
                                             ParallelOfflineOptions opts)
    : space_(&space), opts_(opts), history_(space) {
  if (opts.max_runs < 1) {
    throw std::invalid_argument("ParallelOfflineDriver: max_runs < 1");
  }
  if (opts.short_run_steps < 1) {
    throw std::invalid_argument("ParallelOfflineDriver: short_run_steps < 1");
  }
  if (opts.restart_overhead_s < 0) {
    throw std::invalid_argument("ParallelOfflineDriver: negative restart overhead");
  }
  if (opts.pool_size < 1) {
    throw std::invalid_argument("ParallelOfflineDriver: pool_size < 1");
  }
  if (opts.max_batch < 0) {
    throw std::invalid_argument("ParallelOfflineDriver: negative max_batch");
  }
}

ParallelOfflineResult ParallelOfflineDriver::tune(SearchStrategy& strategy,
                                                  const ShortRunFn& run) {
  SequentialBatchAdapter adapter(strategy);
  return tune(adapter, run);
}

ParallelOfflineResult ParallelOfflineDriver::tune(BatchSearchStrategy& strategy,
                                                  const ShortRunFn& run) {
  if (!run) throw std::invalid_argument("ParallelOfflineDriver::tune: null run function");
  history_ = History(*space_);
  ConcurrentEvalCache cache(*space_);
  ThreadPool pool(static_cast<std::size_t>(opts_.pool_size));
  const std::size_t batch_cap = static_cast<std::size_t>(
      opts_.max_batch > 0 ? opts_.max_batch : opts_.pool_size);

  ParallelOfflineResult out;
  out.best_measured_s = std::numeric_limits<double>::infinity();

  // Same generous proposal guard as the serial driver: strategies may propose
  // cached points freely without burning the run budget.
  const int max_proposals = opts_.max_runs * 64 + 256;
  int proposals = 0;

  obs::SearchTracer* const tracer = opts_.tracer;
  const std::string strategy_name = strategy.name();

  // Live-status slot (gated: published only while observability is on).
  obs::StatusRegistry::SessionHandle status;
  if (obs::enabled()) {
    static std::atomic<std::uint64_t> next_id{0};
    std::string id = "parallel/";
    id += std::to_string(next_id.fetch_add(1));
    status = obs::StatusRegistry::global().publish_session(id);
    status.update([&](obs::SessionStatus& s) {
      s.strategy = strategy_name;
      s.phase = "batching";
    });
  }

  while (out.runs < opts_.max_runs && proposals < max_proposals) {
    // Budget guard: never ask for (and never submit) more candidates than
    // the remaining run budget, so max_runs holds even with a batch in
    // flight. Cached entries consume no budget; any slack this reservation
    // leaves is available again next batch.
    const std::size_t want = std::min(
        batch_cap, static_cast<std::size_t>(opts_.max_runs - out.runs));
    auto batch = strategy.propose_batch(want);
    if (batch.empty()) break;
    if (batch.size() > want) batch.resize(want);  // defensive prefix cut
    proposals += static_cast<int>(batch.size());
    ++out.batches;
    obs::count("engine.driver.batches");
    obs::count("engine.driver.proposals", batch.size());

    std::vector<std::future<TaskOutcome>> futures;
    futures.reserve(batch.size());
    for (const auto& c : batch) {
      futures.push_back(pool.submit([this, &cache, &run, &strategy_name, tracer, c]() {
        // One tuning iteration == one representative short run (Section
        // III): stop, reconfigure, restart, warm up, measure. Every
        // component of that cost is charged to the tuning bill.
        const double t_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
        double cost_s = 0.0;
        const auto launch = [&]() {
          const ShortRunResult r = run(c, opts_.short_run_steps);
          cost_s = opts_.restart_overhead_s + r.warmup_s + r.measured_s;
          obs::observe("engine.short_run_s", r.warmup_s + r.measured_s);
          EvaluationResult res;
          res.valid = r.ok;
          res.objective =
              r.ok ? r.measured_s : std::numeric_limits<double>::infinity();
          res.metrics["warmup_s"] = r.warmup_s;
          return res;
        };
        TaskOutcome t;
        if (opts_.use_cache) {
          const auto o = cache.evaluate(c, launch);
          t.result = o.result;
          t.ran = o.ran;
        } else {
          t.result = launch();
          t.ran = true;
        }
        t.cost_s = t.ran ? cost_s : 0.0;
        if (t.ran) obs::count("engine.driver.runs");
        if (tracer != nullptr) {
          tracer->record({strategy_name, space_->format(c), t.result.objective,
                          t.result.valid, /*cache_hit=*/!t.ran,
                          /*thread_lane=*/0, t_start_us, tracer->now_us()});
        }
        return t;
      }));
    }

    std::vector<EvaluationResult> results(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const TaskOutcome t = futures[i].get();  // rethrows worker exceptions
      if (t.ran) {
        ++out.runs;
        out.total_tuning_cost_s += t.cost_s;
      }
      history_.record(batch[i], t.result, /*cached=*/!t.ran);
      if (t.result.valid && t.result.objective < out.best_measured_s) {
        out.best_measured_s = t.result.objective;
        out.best = batch[i];
      }
      results[i] = t.result;
    }
    strategy.report_batch(batch, results);
    if (status.valid()) {
      status.update([&](obs::SessionStatus& s) {
        std::string phase = "batch ";
        phase += std::to_string(out.batches);
        s.phase = std::move(phase);
        s.iterations = static_cast<std::uint64_t>(out.runs);
        s.cache_hits = static_cast<std::uint64_t>(cache.hits());
        if (out.best) {
          s.best_value = out.best_measured_s;
          s.best_config = space_->format(*out.best);
        }
      });
    }
  }

  out.strategy_converged = strategy.converged();
  out.cache_hits = cache.hits();
  out.cache_coalesced = cache.coalesced();
  return out;
}

}  // namespace harmony::engine
