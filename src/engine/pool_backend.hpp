#pragma once

/// \file pool_backend.hpp
/// Thread-pool EvalBackend for the SearchController: measures a whole batch
/// of candidate configurations concurrently with representative short runs.
/// Every batch element is submitted to the pool; a concurrent memoizing
/// cache with in-flight deduplication makes duplicate configurations (inside
/// one batch or across batches) cost a single short run. Trace events are
/// recorded from the worker threads, so an exported Chrome trace shows one
/// lane per pool worker.

#include <cstddef>

#include "core/controller.hpp"
#include "core/param_space.hpp"
#include "engine/eval_cache.hpp"
#include "engine/thread_pool.hpp"

namespace harmony::engine {

class PoolEvalBackend final : public EvalBackend {
 public:
  /// `run` is not owned and must outlive the backend. `batch_cap` is what
  /// concurrency() reports — the controller's per-batch candidate cap.
  PoolEvalBackend(const ParamSpace& space, const ShortRunFn& run, int steps,
                  double restart_overhead_s, int pool_size, std::size_t batch_cap,
                  bool use_cache);

  [[nodiscard]] std::vector<EvalOutcome> evaluate(const std::vector<Config>& batch,
                                                  const Context& ctx) override;

  [[nodiscard]] std::size_t concurrency() const override { return batch_cap_; }
  [[nodiscard]] bool traces() const override { return true; }
  [[nodiscard]] std::size_t cache_hits() const override { return cache_.hits(); }
  [[nodiscard]] std::size_t cache_coalesced() const override {
    return cache_.coalesced();
  }

 private:
  const ShortRunFn* run_;
  int steps_;
  double restart_overhead_s_;
  bool use_cache_;
  std::size_t batch_cap_;
  ConcurrentEvalCache cache_;
  ThreadPool pool_;
};

}  // namespace harmony::engine
