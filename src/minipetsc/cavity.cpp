#include "minipetsc/cavity.hpp"

#include <stdexcept>

namespace minipetsc {

ResidualFn CavityProblem::residual() const {
  if (nx < 3 || ny < 3) throw std::invalid_argument("CavityProblem: grid too small");
  if (reynolds <= 0) throw std::invalid_argument("CavityProblem: Re <= 0");
  const CavityProblem p = *this;  // capture by value: problem is small

  return [p](const Vec& x, Vec& f) {
    if (static_cast<int>(x.size()) != p.unknowns()) {
      throw std::invalid_argument("cavity residual: state size mismatch");
    }
    f.assign(x.size(), 0.0);
    const double h = 1.0 / (p.nx - 1);
    const double h2 = h * h;
    const double inv_re = 1.0 / p.reynolds;

    const auto psi = [&](int i, int j) { return x[static_cast<std::size_t>(p.psi_index(i, j))]; };
    const auto omg = [&](int i, int j) { return x[static_cast<std::size_t>(p.omega_index(i, j))]; };

    for (int j = 0; j < p.ny; ++j) {
      for (int i = 0; i < p.nx; ++i) {
        const auto fp = static_cast<std::size_t>(p.psi_index(i, j));
        const auto fo = static_cast<std::size_t>(p.omega_index(i, j));
        const bool bottom = j == 0;
        const bool top = j == p.ny - 1;
        const bool left = i == 0;
        const bool right = i == p.nx - 1;

        if (bottom || top || left || right) {
          // psi = 0 on all walls.
          f[fp] = psi(i, j);
          // Thom's wall vorticity (corners default to the horizontal walls).
          if (bottom) {
            f[fo] = omg(i, j) + 2.0 * psi(i, 1) / h2;
          } else if (top) {
            f[fo] = omg(i, j) + 2.0 * psi(i, p.ny - 2) / h2 +
                    2.0 * p.lid_velocity / h;
          } else if (left) {
            f[fo] = omg(i, j) + 2.0 * psi(1, j) / h2;
          } else {
            f[fo] = omg(i, j) + 2.0 * psi(p.nx - 2, j) / h2;
          }
          continue;
        }

        const double lap_psi = (psi(i + 1, j) + psi(i - 1, j) + psi(i, j + 1) +
                                psi(i, j - 1) - 4.0 * psi(i, j)) / h2;
        f[fp] = lap_psi + omg(i, j);

        const double lap_omg = (omg(i + 1, j) + omg(i - 1, j) + omg(i, j + 1) +
                                omg(i, j - 1) - 4.0 * omg(i, j)) / h2;
        const double u = (psi(i, j + 1) - psi(i, j - 1)) / (2.0 * h);
        const double v = -(psi(i + 1, j) - psi(i - 1, j)) / (2.0 * h);
        const double domg_dx = (omg(i + 1, j) - omg(i - 1, j)) / (2.0 * h);
        const double domg_dy = (omg(i, j + 1) - omg(i, j - 1)) / (2.0 * h);
        f[fo] = inv_re * lap_omg - (u * domg_dx + v * domg_dy);
      }
    }
  };
}

Vec CavityProblem::initial_guess() const {
  return Vec(static_cast<std::size_t>(unknowns()), 0.0);
}

Vec CavityProblem::psi_field(const Vec& state) const {
  Vec out(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      out[static_cast<std::size_t>(j * nx + i)] =
          state[static_cast<std::size_t>(psi_index(i, j))];
    }
  }
  return out;
}

}  // namespace minipetsc
