#pragma once

/// \file mat_gen.hpp
/// Test-problem matrix generators. dense_block_matrix reproduces the Fig. 2
/// structure of the paper's first PETSc example: dense sub-blocks along the
/// diagonal joined by weak coupling, so that a decomposition whose
/// boundaries respect block edges ("line A") keeps communication local,
/// while even splitting ("line B") smears dense blocks across ranks.

#include <cstdint>
#include <vector>

#include "minipetsc/csr_matrix.hpp"

namespace minipetsc {

/// 5-point Laplacian on an nx x ny grid (SPD, row-major grid ordering).
[[nodiscard]] CsrMatrix laplacian2d(int nx, int ny);

/// 1-D Laplacian (tridiagonal SPD), for small solver tests.
[[nodiscard]] CsrMatrix laplacian1d(int n);

/// Block-structured SPD matrix of size n: dense diagonal blocks with the
/// given sizes (must sum to n) and tridiagonal coupling of strength
/// `coupling` between consecutive blocks. Diagonally dominant by
/// construction.
[[nodiscard]] CsrMatrix dense_block_matrix(const std::vector<int>& block_sizes,
                                           double coupling = 0.1);

/// Seeded random sparse diagonally-dominant SPD matrix with about
/// `nnz_per_row` off-diagonals per row.
[[nodiscard]] CsrMatrix random_spd(int n, int nnz_per_row, std::uint64_t seed);

/// Banded SPD matrix whose half-bandwidth varies smoothly across the rows:
/// b(r) = min_band + (max_band - min_band) * sin^2(pi r / n). Rows near the
/// middle are much denser than rows near the edges, so an even row split is
/// badly load-imbalanced — the Section IV "better load balance" scenario
/// (discretizations refined in an interior region have exactly this shape).
[[nodiscard]] CsrMatrix variable_band_spd(int n, int min_band, int max_band);

}  // namespace minipetsc
