#pragma once

/// \file partition.hpp
/// Row decomposition of a matrix across ranks — the tunable of the paper's
/// first PETSc case study. A partition is defined by nranks-1 strictly
/// increasing boundary rows ("the boundary is read from a configuration file
/// instead of hard-coded", Section IV). analyze() derives exactly the
/// quantities that determine parallel performance: per-rank row/nonzero
/// counts (load balance) and the halo values each rank must receive for an
/// SpMV (communication volume).

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "minipetsc/csr_matrix.hpp"

namespace minipetsc {

class RowPartition {
 public:
  /// Even split of n rows over nranks (the paper's default configuration).
  [[nodiscard]] static RowPartition even(int n, int nranks);

  /// Explicit boundaries: rank k owns rows [b[k-1], b[k]) with b[-1]=0 and
  /// b[nranks-1]=n. Boundaries must be strictly increasing in (0, n); each
  /// rank owns at least one row. Throws std::invalid_argument otherwise.
  [[nodiscard]] static RowPartition from_boundaries(int n, int nranks,
                                                    std::vector<int> boundaries);

  [[nodiscard]] int rows() const noexcept { return n_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const std::vector<int>& boundaries() const noexcept {
    return boundaries_;
  }

  /// Owning rank of a row.
  [[nodiscard]] int owner(int row) const;

  /// Half-open row range [lo, hi) owned by a rank.
  [[nodiscard]] std::pair<int, int> range(int rank) const;

  [[nodiscard]] int rows_of(int rank) const;

 private:
  int n_ = 0;
  int nranks_ = 0;
  std::vector<int> boundaries_;  // size nranks-1
};

/// Performance-relevant statistics of (matrix, partition).
struct PartitionStats {
  std::vector<int> rows_per_rank;
  std::vector<std::int64_t> nnz_per_rank;

  /// halo_counts[{src,dst}] = number of distinct vector entries rank `src`
  /// must send to rank `dst` for one SpMV.
  std::map<std::pair<int, int>, std::int64_t> halo_counts;

  [[nodiscard]] std::int64_t total_halo_values() const;

  /// max nnz per rank / mean nnz per rank — the load-balance figure of merit.
  [[nodiscard]] double nnz_imbalance() const;
};

[[nodiscard]] PartitionStats analyze(const CsrMatrix& A, const RowPartition& part);

}  // namespace minipetsc
