#pragma once

/// \file ksp.hpp
/// Krylov solvers (PETSc KSP / the paper's "SLES linear equation solver").
/// Operators are supplied either as a CsrMatrix or as a matrix-free
/// LinearOp, which is what the SNES layer uses for Jacobian-vector products.

#include <functional>

#include "minipetsc/csr_matrix.hpp"
#include "minipetsc/pc.hpp"
#include "minipetsc/vec.hpp"

namespace minipetsc {

/// y <- A x.
using LinearOp = std::function<void(const Vec& x, Vec& y)>;

struct KspOptions {
  double rtol = 1e-8;       ///< relative decrease of the preconditioned residual
  double atol = 1e-50;
  int max_iterations = 10000;
  int gmres_restart = 30;
};

struct KspResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;  ///< final (true) residual 2-norm
};

/// Preconditioned conjugate gradients; requires a symmetric positive-definite
/// operator and a symmetric positive-definite preconditioner.
[[nodiscard]] KspResult cg_solve(const LinearOp& A, const Vec& b, Vec& x,
                                 const Pc& pc, const KspOptions& opts = {});

/// Restarted GMRES with left preconditioning (works for nonsymmetric ops).
[[nodiscard]] KspResult gmres_solve(const LinearOp& A, const Vec& b, Vec& x,
                                    const Pc& pc, const KspOptions& opts = {});

/// Convenience overloads on assembled matrices.
[[nodiscard]] KspResult cg_solve(const CsrMatrix& A, const Vec& b, Vec& x,
                                 const Pc& pc, const KspOptions& opts = {});
[[nodiscard]] KspResult gmres_solve(const CsrMatrix& A, const Vec& b, Vec& x,
                                    const Pc& pc, const KspOptions& opts = {});

}  // namespace minipetsc
