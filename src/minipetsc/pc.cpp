#include "minipetsc/pc.hpp"

#include <cmath>
#include <stdexcept>

namespace minipetsc {

PcJacobi::PcJacobi(const CsrMatrix& A) : inv_diag_(A.diagonal()) {
  for (auto& d : inv_diag_) {
    if (d == 0.0) throw std::invalid_argument("PcJacobi: zero diagonal entry");
    d = 1.0 / d;
  }
}

void PcJacobi::apply(const Vec& r, Vec& z) const {
  z = r;
  pointwise_mult(z, inv_diag_);
}

DenseLu::DenseLu(std::vector<double> a, int n) : lu_(std::move(a)), n_(n) {
  if (n < 1 || lu_.size() != static_cast<std::size_t>(n) * static_cast<std::size_t>(n)) {
    throw std::invalid_argument("DenseLu: bad shape");
  }
  piv_.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    // Partial pivot.
    int p = k;
    double pmax = std::abs(lu_[static_cast<std::size_t>(k) * n + k]);
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_[static_cast<std::size_t>(i) * n + k]);
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (pmax == 0.0) throw std::runtime_error("DenseLu: singular block");
    piv_[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (int j = 0; j < n; ++j) {
        std::swap(lu_[static_cast<std::size_t>(k) * n + j],
                  lu_[static_cast<std::size_t>(p) * n + j]);
      }
    }
    const double pivot = lu_[static_cast<std::size_t>(k) * n + k];
    for (int i = k + 1; i < n; ++i) {
      const double m = lu_[static_cast<std::size_t>(i) * n + k] / pivot;
      lu_[static_cast<std::size_t>(i) * n + k] = m;
      for (int j = k + 1; j < n; ++j) {
        lu_[static_cast<std::size_t>(i) * n + j] -=
            m * lu_[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
}

void DenseLu::solve(std::vector<double>& b) const {
  if (b.size() != static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("DenseLu::solve: size mismatch");
  }
  for (int k = 0; k < n_; ++k) {
    std::swap(b[static_cast<std::size_t>(k)],
              b[static_cast<std::size_t>(piv_[static_cast<std::size_t>(k)])]);
    for (int i = k + 1; i < n_; ++i) {
      b[static_cast<std::size_t>(i)] -=
          lu_[static_cast<std::size_t>(i) * n_ + k] * b[static_cast<std::size_t>(k)];
    }
  }
  for (int k = n_ - 1; k >= 0; --k) {
    for (int j = k + 1; j < n_; ++j) {
      b[static_cast<std::size_t>(k)] -=
          lu_[static_cast<std::size_t>(k) * n_ + j] * b[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(k)] /= lu_[static_cast<std::size_t>(k) * n_ + k];
  }
}

PcBlockJacobi::PcBlockJacobi(const CsrMatrix& A, const RowPartition& part) {
  if (A.rows() != part.rows()) {
    throw std::invalid_argument("PcBlockJacobi: size mismatch");
  }
  blocks_.reserve(static_cast<std::size_t>(part.nranks()));
  const auto& row_ptr = A.row_ptr();
  const auto& col_idx = A.col_idx();
  const auto& vals = A.values();
  for (int rank = 0; rank < part.nranks(); ++rank) {
    const auto [lo, hi] = part.range(rank);
    const int b = hi - lo;
    std::vector<double> dense(static_cast<std::size_t>(b) * b, 0.0);
    for (int r = lo; r < hi; ++r) {
      for (auto k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        const int c = col_idx[static_cast<std::size_t>(k)];
        if (c >= lo && c < hi) {
          dense[static_cast<std::size_t>(r - lo) * b + (c - lo)] =
              vals[static_cast<std::size_t>(k)];
        }
      }
    }
    blocks_.push_back(Block{lo, hi, DenseLu(std::move(dense), b)});
  }
}

void PcBlockJacobi::apply(const Vec& r, Vec& z) const {
  z.assign(r.size(), 0.0);
  std::vector<double> local;
  for (const auto& block : blocks_) {
    local.assign(r.begin() + block.lo, r.begin() + block.hi);
    block.lu.solve(local);
    std::copy(local.begin(), local.end(), z.begin() + block.lo);
  }
}

}  // namespace minipetsc
