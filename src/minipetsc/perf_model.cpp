#include "minipetsc/perf_model.hpp"

#include <stdexcept>

namespace minipetsc {

simcluster::Phase spmv_phase(const PartitionStats& stats, const CostModel& cost) {
  simcluster::Phase phase;
  const auto nranks = stats.nnz_per_rank.size();
  phase.compute_ref_s.resize(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    phase.compute_ref_s[r] = cost.flops_per_nnz *
                             static_cast<double>(stats.nnz_per_rank[r]) /
                             cost.ref_flops_per_s;
  }
  for (const auto& [pair, count] : stats.halo_counts) {
    phase.messages.push_back(simcluster::Message{
        pair.first, pair.second, cost.bytes_per_value * static_cast<double>(count)});
  }
  return phase;
}

simcluster::Phase cg_iteration_phase(const PartitionStats& stats,
                                     const CostModel& cost) {
  simcluster::Phase phase = spmv_phase(stats, cost);
  for (std::size_t r = 0; r < phase.compute_ref_s.size(); ++r) {
    phase.compute_ref_s[r] += cost.vec_flops_per_row *
                              static_cast<double>(stats.rows_per_rank[r]) /
                              cost.ref_flops_per_s;
  }
  phase.allreduce_count = 2;  // r.z and p.Ap
  phase.allreduce_bytes = cost.bytes_per_value;
  return phase;
}

simcluster::SimReport simulate_sles(const simcluster::Machine& machine,
                                    const PartitionStats& stats,
                                    int ksp_iterations, const CostModel& cost) {
  if (ksp_iterations < 1) throw std::invalid_argument("simulate_sles: iterations < 1");
  simcluster::Phase iteration = cg_iteration_phase(stats, cost);
  iteration.repeat(ksp_iterations);
  const simcluster::Simulator sim(machine,
                                  static_cast<int>(stats.nnz_per_rank.size()));
  return sim.run(iteration);
}

simcluster::Phase residual_phase(const Da2D& da, const CostModel& cost) {
  simcluster::Phase phase;
  const auto points = da.points_per_rank();
  phase.compute_ref_s.resize(points.size());
  for (std::size_t r = 0; r < points.size(); ++r) {
    phase.compute_ref_s[r] = cost.flops_per_grid_point *
                             static_cast<double>(points[r]) / cost.ref_flops_per_s;
  }
  // Strip neighbors exchange one halo row in each direction.
  const double bytes = cost.bytes_per_value * da.halo_values_per_exchange();
  for (int r = 0; r + 1 < da.nranks(); ++r) {
    phase.messages.push_back(simcluster::Message{r, r + 1, bytes});
    phase.messages.push_back(simcluster::Message{r + 1, r, bytes});
  }
  return phase;
}

simcluster::SimReport simulate_snes(const simcluster::Machine& machine,
                                    const Da2D& da, const SnesWork& work,
                                    const CostModel& cost) {
  if (work.residual_evaluations < 1) {
    throw std::invalid_argument("simulate_snes: no residual evaluations");
  }
  simcluster::Phase phase = residual_phase(da, cost);
  phase.repeat(work.residual_evaluations);
  // Inner Krylov orthogonalization: ~2 global reductions per iteration, plus
  // one line-search norm per Newton step.
  phase.allreduce_count =
      2 * work.total_ksp_iterations + 2 * work.newton_iterations;
  phase.allreduce_bytes = cost.bytes_per_value;
  const simcluster::Simulator sim(machine, da.nranks());
  return sim.run(phase);
}

}  // namespace minipetsc
