#pragma once

/// \file perf_model.hpp
/// Bridge from mini-PETSc execution structure to the cluster simulator.
/// Numerical work (solves, iteration counts) is real; this file translates
/// that work into per-rank compute seconds and halo/collective traffic so a
/// Machine can price a configuration. The quantities fed in — per-rank
/// nonzeros, per-rank grid points, halo volumes, Krylov iteration counts —
/// are precisely the drivers of real PETSc performance on real clusters,
/// which is why tuning against this model reproduces the paper's behaviour.

#include "minipetsc/da.hpp"
#include "minipetsc/partition.hpp"
#include "simcluster/machine.hpp"
#include "simcluster/simulator.hpp"
#include "simcluster/workload.hpp"

namespace minipetsc {

struct CostModel {
  double ref_flops_per_s = 1.5e9;  ///< reference-CPU floating-point rate
  double bytes_per_value = 8.0;
  double flops_per_nnz = 2.0;        ///< multiply-add per stored nonzero
  double vec_flops_per_row = 12.0;   ///< axpy/dot bookkeeping per row per iter
  double flops_per_grid_point = 60.0;  ///< stencil residual cost (cavity)
};

/// One SpMV superstep: per-rank nonzero work + halo messages.
[[nodiscard]] simcluster::Phase spmv_phase(const PartitionStats& stats,
                                           const CostModel& cost = {});

/// One full CG iteration: SpMV + vector ops + two dot-product allreduces.
[[nodiscard]] simcluster::Phase cg_iteration_phase(const PartitionStats& stats,
                                                   const CostModel& cost = {});

/// Simulated execution time of a KSP solve that ran `ksp_iterations`
/// iterations under the given decomposition.
[[nodiscard]] simcluster::SimReport
simulate_sles(const simcluster::Machine& machine, const PartitionStats& stats,
              int ksp_iterations, const CostModel& cost = {});

/// Work actually performed by a SNES solve (taken from SnesResult).
struct SnesWork {
  int newton_iterations = 0;
  int total_ksp_iterations = 0;
  int residual_evaluations = 0;
};

/// One residual-evaluation superstep on a strip-decomposed grid: per-rank
/// stencil work + strip-neighbor halo rows.
[[nodiscard]] simcluster::Phase residual_phase(const Da2D& da,
                                               const CostModel& cost = {});

/// Simulated execution time of a SNES solve on a strip decomposition:
/// every residual evaluation pays compute + halo; every inner Krylov
/// iteration adds orthogonalization allreduces.
[[nodiscard]] simcluster::SimReport
simulate_snes(const simcluster::Machine& machine, const Da2D& da,
              const SnesWork& work, const CostModel& cost = {});

}  // namespace minipetsc
