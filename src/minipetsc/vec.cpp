#include "minipetsc/vec.hpp"

#include <cmath>
#include <stdexcept>

namespace minipetsc {

namespace {
void check_same(std::size_t a, std::size_t b, const char* what) {
  if (a != b) throw std::invalid_argument(std::string(what) + ": size mismatch");
}
}  // namespace

void axpy(double a, const Vec& x, Vec& y) {
  check_same(x.size(), y.size(), "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void aypx(double b, const Vec& x, Vec& y) {
  check_same(x.size(), y.size(), "aypx");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + b * y[i];
}

void waxpy(Vec& w, double a, const Vec& x, const Vec& y) {
  check_same(x.size(), y.size(), "waxpy");
  w.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) w[i] = a * x[i] + y[i];
}

double dot(const Vec& a, const Vec& b) {
  check_same(a.size(), b.size(), "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vec& v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, std::abs(x));
  return m;
}

void scale(Vec& v, double a) {
  for (auto& x : v) x *= a;
}

void set_all(Vec& v, double a) {
  for (auto& x : v) x = a;
}

void pointwise_mult(Vec& v, const Vec& w) {
  check_same(v.size(), w.size(), "pointwise_mult");
  for (std::size_t i = 0; i < v.size(); ++i) v[i] *= w[i];
}

}  // namespace minipetsc
