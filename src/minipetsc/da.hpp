#pragma once

/// \file da.hpp
/// 2-D distributed array (PETSc DA/DMDA): ownership of an nx x ny structured
/// grid across ranks. The paper's computation-distribution study tunes "how
/// the grid points are distributed among processing nodes" (Section IV); the
/// decomposition here is the strip layout of Fig. 3 — each rank owns a
/// horizontal band whose extent is set by tunable cut positions — which is
/// also what makes the 40,000-point/32-rank search space O(10^36)
/// (C(199,31) ~ 10^36 cut placements on a 200-row grid).

#include <utility>
#include <vector>

namespace minipetsc {

class Da2D {
 public:
  /// Even horizontal strips (the default configuration).
  [[nodiscard]] static Da2D even_strips(int nx, int ny, int nranks);

  /// Strips with explicit cut rows: rank k owns grid rows [cuts[k-1],
  /// cuts[k]) with implicit 0 and ny at the ends; cuts strictly increasing
  /// in (0, ny). Throws std::invalid_argument otherwise.
  [[nodiscard]] static Da2D from_cuts(int nx, int ny, std::vector<int> cuts);

  [[nodiscard]] int nx() const noexcept { return nx_; }
  [[nodiscard]] int ny() const noexcept { return ny_; }
  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(cuts_.size()) + 1;
  }
  [[nodiscard]] const std::vector<int>& cuts() const noexcept { return cuts_; }

  /// Grid-row range [lo, hi) owned by a rank.
  [[nodiscard]] std::pair<int, int> row_range(int rank) const;

  /// Owning rank of grid row j.
  [[nodiscard]] int owner_of_row(int j) const;

  /// Grid points owned by each rank.
  [[nodiscard]] std::vector<int> points_per_rank() const;

  /// Number of boundary values each rank pair exchanges per halo swap
  /// (one grid row of nx values in each direction between strip neighbors).
  [[nodiscard]] int halo_values_per_exchange() const noexcept { return nx_; }

 private:
  int nx_ = 0;
  int ny_ = 0;
  std::vector<int> cuts_;
};

}  // namespace minipetsc
