#pragma once

/// \file vec.hpp
/// Dense vector kernels in the style of PETSc's Vec object. The numerics in
/// this substrate are real (solves actually converge, residuals actually
/// shrink); only the *parallel timing* is modeled, by perf_model.hpp.

#include <cstddef>
#include <vector>

namespace minipetsc {

using Vec = std::vector<double>;

/// y <- a*x + y. Throws std::invalid_argument on size mismatch.
void axpy(double a, const Vec& x, Vec& y);

/// y <- x + b*y.
void aypx(double b, const Vec& x, Vec& y);

/// w <- a*x + y (w may alias x or y).
void waxpy(Vec& w, double a, const Vec& x, const Vec& y);

[[nodiscard]] double dot(const Vec& a, const Vec& b);

[[nodiscard]] double norm2(const Vec& v);

[[nodiscard]] double norm_inf(const Vec& v);

void scale(Vec& v, double a);

void set_all(Vec& v, double a);

/// v <- v .* w (pointwise multiply, used by Jacobi preconditioning).
void pointwise_mult(Vec& v, const Vec& w);

}  // namespace minipetsc
