#pragma once

/// \file snes.hpp
/// Nonlinear solver (PETSc SNES): inexact Newton with a matrix-free
/// finite-difference Jacobian-vector product and a backtracking line search.
/// The paper's second PETSc case study solves the 2-D driven cavity with
/// SNES; cavity.hpp provides that residual.

#include <functional>

#include "minipetsc/ksp.hpp"
#include "minipetsc/vec.hpp"

namespace minipetsc {

/// f <- F(x).
using ResidualFn = std::function<void(const Vec& x, Vec& f)>;

struct SnesOptions {
  double rtol = 1e-8;        ///< ||F|| relative decrease
  double atol = 1e-10;       ///< absolute ||F||
  int max_iterations = 50;
  KspOptions ksp;            ///< inner (Jacobian) solve options
  double fd_epsilon = 1e-7;  ///< finite-difference step scale
  int max_line_search = 20;  ///< backtracking halvings
};

struct SnesResult {
  bool converged = false;
  int iterations = 0;            ///< Newton steps taken
  int total_ksp_iterations = 0;  ///< summed inner Krylov iterations
  int residual_evaluations = 0;  ///< total calls to F
  double residual_norm = 0.0;
};

/// Solve F(x) = 0 starting from x (updated in place).
[[nodiscard]] SnesResult newton_solve(const ResidualFn& F, Vec& x,
                                      const SnesOptions& opts = {});

}  // namespace minipetsc
