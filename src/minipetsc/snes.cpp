#include "minipetsc/snes.hpp"

#include <cmath>
#include <stdexcept>

namespace minipetsc {

SnesResult newton_solve(const ResidualFn& F, Vec& x, const SnesOptions& opts) {
  if (!F) throw std::invalid_argument("newton_solve: null residual");
  SnesResult out;

  Vec f;
  F(x, f);
  ++out.residual_evaluations;
  double fnorm = norm2(f);
  const double f0 = fnorm;
  out.residual_norm = fnorm;
  if (fnorm <= opts.atol) {
    out.converged = true;
    return out;
  }

  Vec ftmp;
  for (int it = 0; it < opts.max_iterations; ++it) {
    // Matrix-free Jacobian-vector product around the current x:
    //   J v ~ (F(x + eps v) - F(x)) / eps.
    const double xnorm = norm2(x);
    const LinearOp jv = [&](const Vec& v, Vec& y) {
      const double vnorm = norm2(v);
      if (vnorm == 0.0) {
        y.assign(v.size(), 0.0);
        return;
      }
      const double eps = opts.fd_epsilon * (1.0 + xnorm) / vnorm;
      Vec xp = x;
      axpy(eps, v, xp);
      F(xp, ftmp);
      ++out.residual_evaluations;
      y = ftmp;
      axpy(-1.0, f, y);
      scale(y, 1.0 / eps);
    };

    // Solve J s = -f.
    Vec rhs = f;
    scale(rhs, -1.0);
    Vec s(x.size(), 0.0);
    PcNone pc;
    const KspResult ksp = gmres_solve(jv, rhs, s, pc, opts.ksp);
    out.total_ksp_iterations += ksp.iterations;

    // Backtracking line search on ||F||.
    double lambda = 1.0;
    bool accepted = false;
    Vec x_trial;
    for (int ls = 0; ls < opts.max_line_search; ++ls) {
      x_trial = x;
      axpy(lambda, s, x_trial);
      F(x_trial, ftmp);
      ++out.residual_evaluations;
      const double fn = norm2(ftmp);
      if (fn < fnorm) {
        x = x_trial;
        f = ftmp;
        fnorm = fn;
        accepted = true;
        break;
      }
      lambda *= 0.5;
    }
    ++out.iterations;
    out.residual_norm = fnorm;
    if (!accepted) return out;  // stagnated: report non-convergence honestly
    if (fnorm <= opts.atol || fnorm <= opts.rtol * f0) {
      out.converged = true;
      return out;
    }
  }
  return out;
}

}  // namespace minipetsc
