#pragma once

/// \file cavity.hpp
/// The nonlinear driven-cavity problem of the paper's second PETSc example,
/// in the classic streamfunction-vorticity form: on the unit square,
///
///   laplacian(psi) + omega = 0
///   (1/Re) laplacian(omega) - (u d(omega)/dx + v d(omega)/dy) = 0
///   u = d(psi)/dy, v = -d(psi)/dx
///
/// with no-slip walls and a lid moving at speed U (Thom's wall-vorticity
/// closure). The state vector interleaves [psi, omega] per node; SNES solves
/// the coupled system matrix-free.

#include "minipetsc/snes.hpp"
#include "minipetsc/vec.hpp"

namespace minipetsc {

struct CavityProblem {
  int nx = 17;
  int ny = 17;
  double reynolds = 10.0;
  double lid_velocity = 1.0;

  [[nodiscard]] int unknowns() const noexcept { return 2 * nx * ny; }

  /// Flat index of psi at (i, j).
  [[nodiscard]] int psi_index(int i, int j) const noexcept {
    return 2 * (j * nx + i);
  }
  /// Flat index of omega at (i, j).
  [[nodiscard]] int omega_index(int i, int j) const noexcept {
    return 2 * (j * nx + i) + 1;
  }

  /// Residual callback for newton_solve().
  [[nodiscard]] ResidualFn residual() const;

  /// Zero initial state.
  [[nodiscard]] Vec initial_guess() const;

  /// Extract the psi field (nx*ny values, row-major) from a state vector.
  [[nodiscard]] Vec psi_field(const Vec& state) const;
};

}  // namespace minipetsc
