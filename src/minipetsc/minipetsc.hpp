#pragma once

/// \file minipetsc.hpp
/// Umbrella header for the mini-PETSc substrate.

#include "minipetsc/cavity.hpp"
#include "minipetsc/csr_matrix.hpp"
#include "minipetsc/da.hpp"
#include "minipetsc/ksp.hpp"
#include "minipetsc/mat_gen.hpp"
#include "minipetsc/partition.hpp"
#include "minipetsc/pc.hpp"
#include "minipetsc/perf_model.hpp"
#include "minipetsc/snes.hpp"
#include "minipetsc/vec.hpp"
