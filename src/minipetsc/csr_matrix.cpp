#include "minipetsc/csr_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>

namespace minipetsc {

CsrMatrix CsrMatrix::from_triplets(
    int rows, int cols, std::vector<std::tuple<int, int, double>> triplets) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("CsrMatrix: negative shape");
  for (const auto& [r, c, v] : triplets) {
    (void)v;
    if (r < 0 || r >= rows || c < 0 || c >= cols) {
      throw std::invalid_argument("CsrMatrix: triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              return std::tie(std::get<0>(a), std::get<1>(a)) <
                     std::tie(std::get<0>(b), std::get<1>(b));
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.vals_.reserve(triplets.size());

  for (std::size_t i = 0; i < triplets.size();) {
    const int r = std::get<0>(triplets[i]);
    const int c = std::get<1>(triplets[i]);
    double sum = 0.0;
    while (i < triplets.size() && std::get<0>(triplets[i]) == r &&
           std::get<1>(triplets[i]) == c) {
      sum += std::get<2>(triplets[i]);
      ++i;
    }
    m.col_idx_.push_back(c);
    m.vals_.push_back(sum);
    ++m.row_ptr_[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  if (static_cast<int>(x.size()) != cols_) {
    throw std::invalid_argument("CsrMatrix::multiply: x size mismatch");
  }
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (auto k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      sum += vals_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

void CsrMatrix::multiply_transpose(const Vec& x, Vec& y) const {
  if (static_cast<int>(x.size()) != rows_) {
    throw std::invalid_argument("CsrMatrix::multiply_transpose: x size mismatch");
  }
  y.assign(static_cast<std::size_t>(cols_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<std::size_t>(r)];
    for (auto k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
          vals_[static_cast<std::size_t>(k)] * xr;
    }
  }
}

Vec CsrMatrix::diagonal() const {
  Vec d(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_ && r < cols_; ++r) {
    d[static_cast<std::size_t>(r)] = at(r, r);
  }
  return d;
}

double CsrMatrix::at(int r, int c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("CsrMatrix::at");
  }
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(
                                            row_ptr_[static_cast<std::size_t>(r)]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(
                                          row_ptr_[static_cast<std::size_t>(r) + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return vals_[static_cast<std::size_t>(
      row_ptr_[static_cast<std::size_t>(r)] + std::distance(begin, it))];
}

std::int64_t CsrMatrix::nnz_in_rows(int lo, int hi) const {
  if (lo < 0 || hi > rows_ || lo > hi) {
    throw std::invalid_argument("nnz_in_rows: bad range");
  }
  return row_ptr_[static_cast<std::size_t>(hi)] -
         row_ptr_[static_cast<std::size_t>(lo)];
}

double CsrMatrix::frobenius_norm() const {
  double s = 0.0;
  for (const double v : vals_) s += v * v;
  return std::sqrt(s);
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (auto k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (std::abs(vals_[static_cast<std::size_t>(k)] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

}  // namespace minipetsc
