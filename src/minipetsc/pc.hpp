#pragma once

/// \file pc.hpp
/// Preconditioners (PETSc PC). Jacobi and block-Jacobi are the ones the
/// paper's SLES example exercises; block-Jacobi is also where decomposition
/// quality shows up numerically (blocks that respect the matrix's dense
/// sub-structure make far better local solves).

#include <memory>
#include <vector>

#include "minipetsc/csr_matrix.hpp"
#include "minipetsc/partition.hpp"
#include "minipetsc/vec.hpp"

namespace minipetsc {

class Pc {
 public:
  virtual ~Pc() = default;

  /// z <- M^{-1} r.
  virtual void apply(const Vec& r, Vec& z) const = 0;
};

/// Identity preconditioner.
class PcNone final : public Pc {
 public:
  void apply(const Vec& r, Vec& z) const override { z = r; }
};

/// Diagonal (Jacobi) preconditioner. Throws std::invalid_argument when the
/// matrix has a zero diagonal entry.
class PcJacobi final : public Pc {
 public:
  explicit PcJacobi(const CsrMatrix& A);
  void apply(const Vec& r, Vec& z) const override;

 private:
  Vec inv_diag_;
};

/// Dense LU with partial pivoting, used for block-Jacobi blocks.
class DenseLu {
 public:
  /// Factor an n x n row-major dense matrix. Throws std::runtime_error on
  /// (numerical) singularity.
  DenseLu(std::vector<double> a, int n);

  /// Solve LU x = b (b overwritten with x).
  void solve(std::vector<double>& b) const;

  [[nodiscard]] int size() const noexcept { return n_; }

 private:
  std::vector<double> lu_;
  std::vector<int> piv_;
  int n_ = 0;
};

/// Block-Jacobi: exact dense solves on the diagonal blocks induced by a row
/// partition (one block per rank, PETSc's default PCBJACOBI shape).
class PcBlockJacobi final : public Pc {
 public:
  PcBlockJacobi(const CsrMatrix& A, const RowPartition& part);
  void apply(const Vec& r, Vec& z) const override;

 private:
  struct Block {
    int lo;
    int hi;
    DenseLu lu;
  };
  std::vector<Block> blocks_;
};

}  // namespace minipetsc
