#include "minipetsc/ksp.hpp"

#include <cmath>
#include <stdexcept>

namespace minipetsc {

namespace {

LinearOp wrap(const CsrMatrix& A) {
  return [&A](const Vec& x, Vec& y) { A.multiply(x, y); };
}

double true_residual(const LinearOp& A, const Vec& b, const Vec& x) {
  Vec ax;
  A(x, ax);
  Vec r = b;
  axpy(-1.0, ax, r);
  return norm2(r);
}

}  // namespace

KspResult cg_solve(const LinearOp& A, const Vec& b, Vec& x, const Pc& pc,
                   const KspOptions& opts) {
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  KspResult out;

  Vec ax;
  A(x, ax);
  Vec r = b;
  axpy(-1.0, ax, r);

  Vec z;
  pc.apply(r, z);
  Vec p = z;
  double rz = dot(r, z);

  const double r0 = norm2(r);
  if (r0 <= opts.atol) {
    out.converged = true;
    out.residual_norm = r0;
    return out;
  }

  Vec ap;
  for (int it = 0; it < opts.max_iterations; ++it) {
    A(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) {
      // Not SPD (or breakdown) — report divergence honestly.
      out.iterations = it;
      out.residual_norm = norm2(r);
      return out;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    const double rn = norm2(r);
    out.iterations = it + 1;
    if (rn <= opts.rtol * r0 || rn <= opts.atol) {
      out.converged = true;
      out.residual_norm = rn;
      return out;
    }
    pc.apply(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    aypx(beta, z, p);
  }
  out.residual_norm = norm2(r);
  return out;
}

KspResult gmres_solve(const LinearOp& A, const Vec& b, Vec& x, const Pc& pc,
                      const KspOptions& opts) {
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const int m = opts.gmres_restart;
  if (m < 1) throw std::invalid_argument("gmres_solve: restart < 1");
  const std::size_t n = b.size();
  KspResult out;

  // Left-preconditioned initial residual.
  Vec ax;
  A(x, ax);
  Vec raw = b;
  axpy(-1.0, ax, raw);
  Vec r;
  pc.apply(raw, r);
  double beta = norm2(r);
  const double beta0 = beta > 0 ? beta : 1.0;

  if (beta <= opts.atol) {
    out.converged = true;
    out.residual_norm = true_residual(A, b, x);
    return out;
  }

  std::vector<Vec> V;             // Krylov basis
  std::vector<double> H;          // Hessenberg, (m+1) x m column-major
  std::vector<double> cs(static_cast<std::size_t>(m));
  std::vector<double> sn(static_cast<std::size_t>(m));
  std::vector<double> g(static_cast<std::size_t>(m) + 1);

  while (out.iterations < opts.max_iterations) {
    V.assign(1, r);
    scale(V[0], 1.0 / beta);
    H.assign(static_cast<std::size_t>(m + 1) * static_cast<std::size_t>(m), 0.0);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < m && out.iterations < opts.max_iterations; ++k) {
      ++out.iterations;
      Vec w_raw;
      A(V[static_cast<std::size_t>(k)], w_raw);
      Vec w;
      pc.apply(w_raw, w);

      // Modified Gram-Schmidt.
      for (int i = 0; i <= k; ++i) {
        const double h = dot(w, V[static_cast<std::size_t>(i)]);
        H[static_cast<std::size_t>(i) +
          static_cast<std::size_t>(k) * (static_cast<std::size_t>(m) + 1)] = h;
        axpy(-h, V[static_cast<std::size_t>(i)], w);
      }
      const double h_next = norm2(w);
      H[static_cast<std::size_t>(k) + 1 +
        static_cast<std::size_t>(k) * (static_cast<std::size_t>(m) + 1)] = h_next;

      // Apply the accumulated Givens rotations to the new column.
      auto col = [&](int i) -> double& {
        return H[static_cast<std::size_t>(i) +
                 static_cast<std::size_t>(k) * (static_cast<std::size_t>(m) + 1)];
      };
      for (int i = 0; i < k; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * col(i) +
                         sn[static_cast<std::size_t>(i)] * col(i + 1);
        col(i + 1) = -sn[static_cast<std::size_t>(i)] * col(i) +
                     cs[static_cast<std::size_t>(i)] * col(i + 1);
        col(i) = t;
      }
      const double denom = std::hypot(col(k), col(k + 1));
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(k)] = 1.0;
        sn[static_cast<std::size_t>(k)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(k)] = col(k) / denom;
        sn[static_cast<std::size_t>(k)] = col(k + 1) / denom;
      }
      col(k) = cs[static_cast<std::size_t>(k)] * col(k) +
               sn[static_cast<std::size_t>(k)] * col(k + 1);
      col(k + 1) = 0.0;
      g[static_cast<std::size_t>(k) + 1] =
          -sn[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] =
          cs[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];

      const double resid = std::abs(g[static_cast<std::size_t>(k) + 1]);
      const bool happy = h_next <= 1e-14 * beta0;
      if (resid <= opts.rtol * beta0 || resid <= opts.atol || happy) {
        ++k;
        break;
      }
      if (h_next == 0.0) {
        ++k;
        break;
      }
      Vec v = w;
      scale(v, 1.0 / h_next);
      V.push_back(std::move(v));
    }

    // Back substitution for the least-squares coefficients.
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double sum = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        sum -= H[static_cast<std::size_t>(i) +
                 static_cast<std::size_t>(j) * (static_cast<std::size_t>(m) + 1)] *
               y[static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i)] =
          sum / H[static_cast<std::size_t>(i) +
                  static_cast<std::size_t>(i) * (static_cast<std::size_t>(m) + 1)];
    }
    for (int i = 0; i < k; ++i) {
      axpy(y[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)], x);
    }

    // Converged inside the cycle, or out of budget? Check the true residual.
    Vec ax2(n);
    A(x, ax2);
    Vec raw2 = b;
    axpy(-1.0, ax2, raw2);
    pc.apply(raw2, r);
    beta = norm2(r);
    if (beta <= opts.rtol * beta0 || beta <= opts.atol) {
      out.converged = true;
      break;
    }
  }
  out.residual_norm = true_residual(A, b, x);
  return out;
}

KspResult cg_solve(const CsrMatrix& A, const Vec& b, Vec& x, const Pc& pc,
                   const KspOptions& opts) {
  return cg_solve(wrap(A), b, x, pc, opts);
}

KspResult gmres_solve(const CsrMatrix& A, const Vec& b, Vec& x, const Pc& pc,
                      const KspOptions& opts) {
  return gmres_solve(wrap(A), b, x, pc, opts);
}

}  // namespace minipetsc
