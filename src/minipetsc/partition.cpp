#include "minipetsc/partition.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace minipetsc {

RowPartition RowPartition::even(int n, int nranks) {
  if (n < nranks || nranks < 1) {
    throw std::invalid_argument("RowPartition::even: need n >= nranks >= 1");
  }
  std::vector<int> b;
  b.reserve(static_cast<std::size_t>(nranks) - 1);
  for (int k = 1; k < nranks; ++k) {
    b.push_back(static_cast<int>(static_cast<std::int64_t>(n) * k / nranks));
  }
  return from_boundaries(n, nranks, std::move(b));
}

RowPartition RowPartition::from_boundaries(int n, int nranks,
                                           std::vector<int> boundaries) {
  if (n < 1 || nranks < 1) {
    throw std::invalid_argument("RowPartition: bad n/nranks");
  }
  if (static_cast<int>(boundaries.size()) != nranks - 1) {
    throw std::invalid_argument("RowPartition: need nranks-1 boundaries");
  }
  int prev = 0;
  for (const int b : boundaries) {
    if (b <= prev || b >= n) {
      throw std::invalid_argument("RowPartition: boundaries must be strictly "
                                  "increasing within (0, n)");
    }
    prev = b;
  }
  RowPartition p;
  p.n_ = n;
  p.nranks_ = nranks;
  p.boundaries_ = std::move(boundaries);
  return p;
}

int RowPartition::owner(int row) const {
  if (row < 0 || row >= n_) throw std::out_of_range("RowPartition::owner");
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), row);
  return static_cast<int>(std::distance(boundaries_.begin(), it));
}

std::pair<int, int> RowPartition::range(int rank) const {
  if (rank < 0 || rank >= nranks_) throw std::out_of_range("RowPartition::range");
  const int lo = rank == 0 ? 0 : boundaries_[static_cast<std::size_t>(rank) - 1];
  const int hi = rank == nranks_ - 1 ? n_ : boundaries_[static_cast<std::size_t>(rank)];
  return {lo, hi};
}

int RowPartition::rows_of(int rank) const {
  const auto [lo, hi] = range(rank);
  return hi - lo;
}

std::int64_t PartitionStats::total_halo_values() const {
  std::int64_t total = 0;
  for (const auto& [pair, count] : halo_counts) total += count;
  return total;
}

double PartitionStats::nnz_imbalance() const {
  if (nnz_per_rank.empty()) return 1.0;
  std::int64_t max_nnz = 0;
  std::int64_t sum_nnz = 0;
  for (const auto v : nnz_per_rank) {
    max_nnz = std::max(max_nnz, v);
    sum_nnz += v;
  }
  const double mean = static_cast<double>(sum_nnz) /
                      static_cast<double>(nnz_per_rank.size());
  return mean > 0.0 ? static_cast<double>(max_nnz) / mean : 1.0;
}

PartitionStats analyze(const CsrMatrix& A, const RowPartition& part) {
  if (A.rows() != part.rows()) {
    throw std::invalid_argument("analyze: matrix/partition size mismatch");
  }
  if (A.rows() != A.cols()) {
    throw std::invalid_argument("analyze: matrix must be square");
  }
  PartitionStats stats;
  const int nranks = part.nranks();
  stats.rows_per_rank.resize(static_cast<std::size_t>(nranks));
  stats.nnz_per_rank.resize(static_cast<std::size_t>(nranks));

  const auto& row_ptr = A.row_ptr();
  const auto& col_idx = A.col_idx();

  for (int rank = 0; rank < nranks; ++rank) {
    const auto [lo, hi] = part.range(rank);
    stats.rows_per_rank[static_cast<std::size_t>(rank)] = hi - lo;
    stats.nnz_per_rank[static_cast<std::size_t>(rank)] = A.nnz_in_rows(lo, hi);

    // Distinct external columns referenced by this rank's rows, grouped by
    // owning rank: these are the vector values that must arrive before the
    // local SpMV can complete.
    std::set<int> external;
    for (int r = lo; r < hi; ++r) {
      for (auto k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        const int c = col_idx[static_cast<std::size_t>(k)];
        if (c < lo || c >= hi) external.insert(c);
      }
    }
    for (const int c : external) {
      const int src = part.owner(c);
      ++stats.halo_counts[{src, rank}];
    }
  }
  return stats;
}

}  // namespace minipetsc
