#include "minipetsc/mat_gen.hpp"

#include <numeric>
#include <stdexcept>

#include "core/rng.hpp"

namespace minipetsc {

CsrMatrix laplacian2d(int nx, int ny) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("laplacian2d: bad shape");
  const int n = nx * ny;
  std::vector<std::tuple<int, int, double>> t;
  t.reserve(static_cast<std::size_t>(n) * 5);
  const auto id = [nx](int i, int j) { return j * nx + i; };
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const int r = id(i, j);
      t.emplace_back(r, r, 4.0);
      if (i > 0) t.emplace_back(r, id(i - 1, j), -1.0);
      if (i < nx - 1) t.emplace_back(r, id(i + 1, j), -1.0);
      if (j > 0) t.emplace_back(r, id(i, j - 1), -1.0);
      if (j < ny - 1) t.emplace_back(r, id(i, j + 1), -1.0);
    }
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

CsrMatrix laplacian1d(int n) {
  if (n < 1) throw std::invalid_argument("laplacian1d: bad size");
  std::vector<std::tuple<int, int, double>> t;
  t.reserve(static_cast<std::size_t>(n) * 3);
  for (int i = 0; i < n; ++i) {
    t.emplace_back(i, i, 2.0);
    if (i > 0) t.emplace_back(i, i - 1, -1.0);
    if (i < n - 1) t.emplace_back(i, i + 1, -1.0);
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

CsrMatrix dense_block_matrix(const std::vector<int>& block_sizes, double coupling) {
  if (block_sizes.empty()) throw std::invalid_argument("dense_block_matrix: empty");
  for (const int b : block_sizes) {
    if (b < 1) throw std::invalid_argument("dense_block_matrix: bad block size");
  }
  const int n = std::accumulate(block_sizes.begin(), block_sizes.end(), 0);
  std::vector<std::tuple<int, int, double>> t;
  int base = 0;
  for (const int b : block_sizes) {
    for (int i = 0; i < b; ++i) {
      for (int j = 0; j < b; ++j) {
        const double v = i == j ? static_cast<double>(b) + 1.0 : -1.0 / b;
        t.emplace_back(base + i, base + j, v);
      }
    }
    base += b;
  }
  // Weak tridiagonal coupling across block boundaries keeps the matrix
  // irreducible (and models the physical coupling in the paper's example).
  for (int i = 0; i + 1 < n; ++i) {
    t.emplace_back(i, i + 1, -coupling);
    t.emplace_back(i + 1, i, -coupling);
    t.emplace_back(i, i, coupling);
    t.emplace_back(i + 1, i + 1, coupling);
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

CsrMatrix variable_band_spd(int n, int min_band, int max_band) {
  if (n < 1 || min_band < 1 || max_band < min_band) {
    throw std::invalid_argument("variable_band_spd: bad args");
  }
  std::vector<std::tuple<int, int, double>> t;
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < n; ++r) {
    const double s = std::sin(M_PI * static_cast<double>(r) / n);
    const int band = min_band + static_cast<int>((max_band - min_band) * s * s);
    for (int k = 1; k <= band; ++k) {
      const int c = r + k;
      if (c >= n) break;
      const double v = -1.0 / k;
      t.emplace_back(r, c, v);
      t.emplace_back(c, r, v);
      row_sum[static_cast<std::size_t>(r)] += -v;
      row_sum[static_cast<std::size_t>(c)] += -v;
    }
  }
  for (int r = 0; r < n; ++r) {
    t.emplace_back(r, r, row_sum[static_cast<std::size_t>(r)] + 1.0);
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

CsrMatrix random_spd(int n, int nnz_per_row, std::uint64_t seed) {
  if (n < 1 || nnz_per_row < 0) throw std::invalid_argument("random_spd: bad args");
  harmony::Rng rng(seed);
  std::vector<std::tuple<int, int, double>> t;
  std::vector<double> row_sum(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < nnz_per_row; ++k) {
      const int j = static_cast<int>(rng.uniform_int(0, n - 1));
      if (j == i) continue;
      const double v = -rng.uniform(0.1, 1.0);
      // Symmetrize.
      t.emplace_back(i, j, v);
      t.emplace_back(j, i, v);
      row_sum[static_cast<std::size_t>(i)] += -v;
      row_sum[static_cast<std::size_t>(j)] += -v;
    }
  }
  for (int i = 0; i < n; ++i) {
    t.emplace_back(i, i, row_sum[static_cast<std::size_t>(i)] + 1.0);
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

}  // namespace minipetsc
