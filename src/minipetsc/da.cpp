#include "minipetsc/da.hpp"

#include <algorithm>
#include <stdexcept>

namespace minipetsc {

Da2D Da2D::even_strips(int nx, int ny, int nranks) {
  if (nranks < 1 || ny < nranks) {
    throw std::invalid_argument("Da2D::even_strips: need ny >= nranks >= 1");
  }
  std::vector<int> cuts;
  cuts.reserve(static_cast<std::size_t>(nranks) - 1);
  for (int k = 1; k < nranks; ++k) {
    cuts.push_back(static_cast<int>(static_cast<long long>(ny) * k / nranks));
  }
  return from_cuts(nx, ny, std::move(cuts));
}

Da2D Da2D::from_cuts(int nx, int ny, std::vector<int> cuts) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("Da2D: bad shape");
  int prev = 0;
  for (const int c : cuts) {
    if (c <= prev || c >= ny) {
      throw std::invalid_argument("Da2D: cuts must be strictly increasing in (0, ny)");
    }
    prev = c;
  }
  Da2D da;
  da.nx_ = nx;
  da.ny_ = ny;
  da.cuts_ = std::move(cuts);
  return da;
}

std::pair<int, int> Da2D::row_range(int rank) const {
  if (rank < 0 || rank >= nranks()) throw std::out_of_range("Da2D::row_range");
  const int lo = rank == 0 ? 0 : cuts_[static_cast<std::size_t>(rank) - 1];
  const int hi =
      rank == nranks() - 1 ? ny_ : cuts_[static_cast<std::size_t>(rank)];
  return {lo, hi};
}

int Da2D::owner_of_row(int j) const {
  if (j < 0 || j >= ny_) throw std::out_of_range("Da2D::owner_of_row");
  const auto it = std::upper_bound(cuts_.begin(), cuts_.end(), j);
  return static_cast<int>(std::distance(cuts_.begin(), it));
}

std::vector<int> Da2D::points_per_rank() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(nranks()));
  for (int r = 0; r < nranks(); ++r) {
    const auto [lo, hi] = row_range(r);
    out.push_back((hi - lo) * nx_);
  }
  return out;
}

}  // namespace minipetsc
