#pragma once

/// \file csr_matrix.hpp
/// Compressed-sparse-row matrix, the Mat of this substrate. Assembly uses a
/// coordinate-triplet builder (duplicates summed, PETSc ADD_VALUES style);
/// solves operate on the immutable CSR form.

#include <cstdint>
#include <tuple>
#include <vector>

#include "minipetsc/vec.hpp"

namespace minipetsc {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets. Duplicate (row,col) entries are summed. Throws
  /// std::invalid_argument for out-of-range indices.
  static CsrMatrix from_triplets(int rows, int cols,
                                 std::vector<std::tuple<int, int, double>> triplets);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] std::int64_t nnz() const noexcept {
    return static_cast<std::int64_t>(vals_.size());
  }

  /// y <- A x. Throws on size mismatch.
  void multiply(const Vec& x, Vec& y) const;

  /// y <- A^T x.
  void multiply_transpose(const Vec& x, Vec& y) const;

  /// Diagonal entries (0 where absent).
  [[nodiscard]] Vec diagonal() const;

  /// Entry lookup (0 where absent) — O(log nnz_row); for tests.
  [[nodiscard]] double at(int r, int c) const;

  /// Number of nonzeros in rows [lo, hi).
  [[nodiscard]] std::int64_t nnz_in_rows(int lo, int hi) const;

  /// Raw access for partition analysis and preconditioners.
  [[nodiscard]] const std::vector<std::int64_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<int>& col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return vals_; }

  /// Frobenius norm (for tests).
  [[nodiscard]] double frobenius_norm() const;

  /// True when structurally and numerically symmetric within `tol`.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> vals_;
};

}  // namespace minipetsc
