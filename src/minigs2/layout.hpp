#pragma once

/// \file layout.hpp
/// GS2 data layouts. The simulation state is a 5-D array over dimensions
/// x, y (spatial), l, e (velocity: pitch angle and energy) and s (species);
/// a layout string such as "lxyes" gives the dimension order of the array,
/// outermost first, and the outermost dimensions are the ones distributed
/// across processors. The layout is the paper's primary GS2 tunable (Fig. 5):
/// the default was "lxyes"; tuning found "yxles"/"yxels" and the GS2 team
/// adopted them as the new defaults.

#include <array>
#include <string>
#include <vector>

namespace minigs2 {

class Layout {
 public:
  /// Parse a 5-character permutation of {x,y,l,e,s}. Throws
  /// std::invalid_argument for anything else.
  explicit Layout(const std::string& order);

  [[nodiscard]] const std::string& order() const noexcept { return order_; }

  /// Dimension character at position i (0 = outermost).
  [[nodiscard]] char dim(std::size_t i) const { return order_.at(i); }

  /// Position of a dimension in the order (0 = outermost).
  [[nodiscard]] std::size_t position(char dim) const;

  bool operator==(const Layout& other) const = default;

  /// All 120 permutations, lexicographically ordered.
  [[nodiscard]] static std::vector<Layout> all();

  /// GS2's historical default.
  [[nodiscard]] static Layout default_layout() { return Layout("lxyes"); }

 private:
  std::string order_;
};

/// Grid resolution. nx is set by ntheta (grid points per 2*pi field-line
/// segment) and ne by negrid (energy grid) — the two resolution tunables of
/// the paper's Tables III/IV; ny, nl, ns are held at typical values.
struct Resolution {
  int ntheta = 26;
  int negrid = 16;
  int ny = 64;
  int nl = 20;
  int ns = 2;

  [[nodiscard]] int nx() const noexcept { return ntheta; }
  [[nodiscard]] int ne() const noexcept { return negrid; }

  /// Extent of a dimension by its layout character.
  [[nodiscard]] int extent(char dim) const;

  /// Total 5-D mesh points.
  [[nodiscard]] long long total_points() const;
};

}  // namespace minigs2
