#include "minigs2/layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace minigs2 {

Layout::Layout(const std::string& order) : order_(order) {
  std::string sorted = order;
  std::sort(sorted.begin(), sorted.end());
  if (sorted != "elsxy") {
    throw std::invalid_argument("Layout: '" + order +
                                "' is not a permutation of x,y,l,e,s");
  }
}

std::size_t Layout::position(char dim) const {
  const auto pos = order_.find(dim);
  if (pos == std::string::npos) {
    throw std::invalid_argument(std::string("Layout::position: bad dim '") + dim +
                                "'");
  }
  return pos;
}

std::vector<Layout> Layout::all() {
  std::string chars = "elsxy";
  std::vector<Layout> out;
  out.reserve(120);
  do {
    out.emplace_back(chars);
  } while (std::next_permutation(chars.begin(), chars.end()));
  return out;
}

int Resolution::extent(char dim) const {
  switch (dim) {
    case 'x': return nx();
    case 'y': return ny;
    case 'l': return nl;
    case 'e': return ne();
    case 's': return ns;
    default:
      throw std::invalid_argument(std::string("Resolution::extent: bad dim '") +
                                  dim + "'");
  }
}

long long Resolution::total_points() const {
  return static_cast<long long>(nx()) * ny * nl * ne() * ns;
}

}  // namespace minigs2
