#include "minigs2/decomp.hpp"

#include <stdexcept>

namespace minigs2 {

DecompInfo decompose(const Layout& layout, const Resolution& res, int nranks) {
  if (nranks < 1) throw std::invalid_argument("decompose: nranks < 1");
  if (static_cast<long long>(nranks) > res.total_points()) {
    throw std::invalid_argument("decompose: more ranks than mesh points");
  }
  DecompInfo info;
  if (nranks == 1) return info;  // everything local on one rank

  // Flatten outermost dimensions until their product covers the rank count;
  // those dimensions carry the distribution.
  long long outer = 1;
  std::size_t k = 0;
  while (k < 5 && outer < nranks) {
    outer *= res.extent(layout.dim(k));
    info.distributed.push_back(layout.dim(k));
    ++k;
  }

  for (const char d : info.distributed) {
    switch (d) {
      case 'x': info.x_local = false; break;
      case 'y': info.y_local = false; break;
      case 'l': info.l_local = false; break;
      case 'e': info.e_local = false; break;
      case 's': info.s_local = false; break;
      default: break;
    }
  }

  // Block distribution of `outer` chunks over nranks ranks: a rank owns
  // ceil or floor chunks; imbalance is the ceil/mean ratio.
  const long long chunks_max = (outer + nranks - 1) / nranks;
  info.imbalance = static_cast<double>(chunks_max) * nranks /
                   static_cast<double>(outer);
  return info;
}

}  // namespace minigs2
