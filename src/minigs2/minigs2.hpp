#pragma once

/// \file minigs2.hpp
/// Umbrella header for the mini-GS2 substrate.

#include "minigs2/decomp.hpp"
#include "minigs2/gs2_model.hpp"
#include "minigs2/layout.hpp"
