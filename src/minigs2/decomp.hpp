#pragma once

/// \file decomp.hpp
/// Domain decomposition induced by a layout: the outermost dimensions of the
/// 5-D array are flattened and block-distributed over ranks. A dimension is
/// *distributed* when the per-rank block boundary can fall inside it, and
/// *local* when every rank holds complete copies of it. What made the
/// paper's layout tuning matter is captured here:
///
///   * imbalance — when the flattened outer extent does not divide evenly by
///     the rank count, some ranks own one extra chunk ("proper data
///     alignment with the number of processors is the major factor deciding
///     the performance", Section VI);
///   * phase locality — the FFT phase needs x,y local, the velocity-space
///     integrals and the collision operator need l,e local; distributing
///     those dimensions forces global transposes.

#include <string>
#include <vector>

#include "minigs2/layout.hpp"

namespace minigs2 {

struct DecompInfo {
  /// Dimensions (layout characters) the rank boundary cuts through.
  std::string distributed;

  /// max points per rank / mean points per rank (>= 1).
  double imbalance = 1.0;

  bool x_local = true;
  bool y_local = true;
  bool l_local = true;
  bool e_local = true;
  bool s_local = true;

  /// FFT phase requires x and y local.
  [[nodiscard]] bool needs_fft_transpose() const noexcept {
    return !(x_local && y_local);
  }
  /// Velocity-space integrals / collisions require l and e local.
  [[nodiscard]] bool needs_velocity_transpose() const noexcept {
    return !(l_local && e_local);
  }
};

/// Decompose `res` under `layout` over `nranks` ranks. Throws
/// std::invalid_argument when nranks < 1 or exceeds the total mesh size.
[[nodiscard]] DecompInfo decompose(const Layout& layout, const Resolution& res,
                                   int nranks);

}  // namespace minigs2
