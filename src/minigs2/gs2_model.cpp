#include "minigs2/gs2_model.hpp"

#include <stdexcept>

#include "simcluster/collectives.hpp"

namespace minigs2 {

Gs2StepReport Gs2Model::step_time(const simcluster::Machine& machine, int nranks,
                                  const Resolution& res, const Layout& layout,
                                  CollisionModel collisions) const {
  if (nranks < 1 || nranks > machine.total_cpus()) {
    throw std::invalid_argument("Gs2Model::step_time: bad nranks");
  }
  const DecompInfo decomp = decompose(layout, res, nranks);
  Gs2StepReport rep;
  rep.imbalance = decomp.imbalance;

  const double points = static_cast<double>(res.total_points());
  const double rate = cost_.ref_flops_per_s * machine.min_speed();

  // --- Compute: implicit update (+ collisions). The parallel part scales
  // with ranks (Amdahl serial fraction excepted) and is gated by the fullest
  // rank; layouts whose distributed extent does not divide the rank count
  // additionally pay a strided-access penalty (ragged chunks defeat the
  // innermost-loop vectorization, which is also why the GS2 authors care
  // about layout beyond communication).
  double flops_pp = cost_.flops_per_point;
  if (collisions == CollisionModel::Lorentz) {
    flops_pp += cost_.collision_flops_per_point;
  }
  const double ragged_penalty =
      decomp.imbalance > 1.0 ? cost_.ragged_compute_penalty : 1.0;
  const double work_s = points * flops_pp / rate;
  rep.compute_s =
      work_s * (cost_.serial_fraction +
                (1.0 - cost_.serial_fraction) * decomp.imbalance * ragged_penalty /
                    nranks);

  // --- Transposes: GS2 redistributes slice-by-slice (one y-plane batch per
  // message wave), so each transpose is latency-bound at scale.
  const double bytes_per_pair = points * cost_.bytes_per_point *
                                cost_.slice_fraction /
                                (static_cast<double>(nranks) * nranks);
  const double one_transpose =
      simcluster::alltoall_time(machine, nranks, bytes_per_pair);
  const double ragged = decomp.imbalance > 1.0 ? cost_.irregular_factor : 1.0;

  if (decomp.needs_fft_transpose()) {
    rep.fft_comm_s = cost_.fft_transposes_per_step * one_transpose * ragged;
  }
  if (decomp.needs_velocity_transpose()) {
    rep.velocity_comm_s =
        cost_.velocity_transposes_per_step * one_transpose * ragged;
    if (collisions == CollisionModel::Lorentz) {
      rep.collision_comm_s =
          cost_.collision_transposes_per_step * one_transpose * ragged;
    }
  }

  rep.reduce_s = cost_.allreduces_per_step *
                 simcluster::allreduce_time(machine, nranks, 8.0);

  rep.step_s = rep.compute_s + rep.fft_comm_s + rep.velocity_comm_s +
               rep.collision_comm_s + rep.reduce_s;
  return rep;
}

double Gs2Model::init_time(const simcluster::Machine& machine, int nranks,
                           const Resolution& res) const {
  if (nranks < 1 || nranks > machine.total_cpus()) {
    throw std::invalid_argument("Gs2Model::init_time: bad nranks");
  }
  // Response-matrix setup parallelizes over mesh points but has a serial
  // fraction (reading input, field-line setup) that grows with ntheta.
  const double points = static_cast<double>(res.total_points());
  const double rate = cost_.ref_flops_per_s * machine.min_speed();
  const double parallel = points * cost_.init_flops_per_point / (rate * nranks);
  const double serial =
      cost_.init_serial_s * (1.0 + 0.02 * res.ntheta) ;
  return parallel + serial;
}

double Gs2Model::run_time(const simcluster::Machine& machine, int nranks,
                          const Resolution& res, const Layout& layout,
                          CollisionModel collisions, int steps) const {
  if (steps < 1) throw std::invalid_argument("Gs2Model::run_time: steps < 1");
  return init_time(machine, nranks, res) +
         steps * step_time(machine, nranks, res, layout, collisions).step_s;
}

}  // namespace minigs2
