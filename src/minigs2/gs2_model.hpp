#pragma once

/// \file gs2_model.hpp
/// Simulated execution time for GS2-style gyrokinetic runs. One time step
/// consists of (i) the implicit field/streaming update (compute over all
/// mesh points), (ii) the pseudo-spectral nonlinear term, which needs x,y
/// local — distributed spatial dimensions force FFT transposes — (iii)
/// velocity-space integrals for the fields, which need l,e local, and (iv)
/// optionally the collision operator, which also works in l,e and both adds
/// compute and (for l,e-distributed layouts) additional redistributions.
/// Transposes are priced by the machine's all-to-all cost; layouts whose
/// distributed extent does not divide the rank count pay an irregularity
/// factor (alltoallv with ragged counts) *and* the compute imbalance.
///
/// A run is init_time + steps * step_time: the initialization (response
/// matrix setup) is the fixed cost that makes the paper's benchmark-run
/// improvements (Table III) smaller than its production-run improvements
/// (Table IV) for the same configurations.

#include "minigs2/decomp.hpp"
#include "minigs2/layout.hpp"
#include "simcluster/machine.hpp"

namespace minigs2 {

enum class CollisionModel { None, Lorentz };

struct Gs2CostModel {
  double ref_flops_per_s = 1.5e9;
  double flops_per_point = 20000.0;            ///< implicit update + streaming
  double collision_flops_per_point = 50000.0;  ///< Lorentz operator
  double serial_fraction = 0.01;               ///< Amdahl fraction of the update
  double bytes_per_point = 16.0;               ///< complex double (g itself)
  double slice_fraction = 1.0 / 32.0;          ///< volume of one transpose slice
  int fft_transposes_per_step = 24;            ///< forward+inverse per plane batch
  int velocity_transposes_per_step = 96;       ///< per velocity-integral batch
  int collision_transposes_per_step = 48;      ///< extra redistributes if l,e split
  double irregular_factor = 3.0;               ///< ragged alltoallv penalty
  double ragged_compute_penalty = 1.3;         ///< strided access on ragged layouts
  int allreduces_per_step = 4;
  double init_flops_per_point = 8000.0;        ///< response-matrix setup
  double init_serial_s = 0.15;                 ///< fixed startup
};

struct Gs2StepReport {
  double step_s = 0.0;
  double compute_s = 0.0;
  double fft_comm_s = 0.0;
  double velocity_comm_s = 0.0;
  double collision_comm_s = 0.0;
  double reduce_s = 0.0;
  double imbalance = 1.0;
};

class Gs2Model {
 public:
  explicit Gs2Model(Gs2CostModel cost = {}) : cost_(cost) {}

  /// Per-step breakdown for a configuration on `machine`, using `nranks`
  /// of its CPUs.
  [[nodiscard]] Gs2StepReport step_time(const simcluster::Machine& machine,
                                        int nranks, const Resolution& res,
                                        const Layout& layout,
                                        CollisionModel collisions) const;

  /// Initialization cost (response matrices etc.).
  [[nodiscard]] double init_time(const simcluster::Machine& machine, int nranks,
                                 const Resolution& res) const;

  /// Full run: init + steps.
  [[nodiscard]] double run_time(const simcluster::Machine& machine, int nranks,
                                const Resolution& res, const Layout& layout,
                                CollisionModel collisions, int steps) const;

  [[nodiscard]] const Gs2CostModel& cost() const noexcept { return cost_; }

 private:
  const Gs2CostModel cost_;
};

}  // namespace minigs2
