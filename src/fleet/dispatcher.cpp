#include "fleet/dispatcher.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/protocol.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace harmony::fleet {

namespace {

EvalOutcome invalid_outcome() {
  EvalOutcome o;
  o.result.objective = std::numeric_limits<double>::infinity();
  o.result.valid = false;
  o.ran = false;
  o.cost_s = 0.0;
  return o;
}

}  // namespace

Dispatcher::Dispatcher(const ParamSpace& space, DispatcherOptions opts)
    : space_(&space), opts_(std::move(opts)) {}

Dispatcher::~Dispatcher() { shutdown(); }

bool Dispatcher::eligible(const WorkerState& w) const {
  return opts_.substrate.empty() || w.name == opts_.substrate;
}

bool Dispatcher::sample_trace() const {
  if (opts_.tracer == nullptr || opts_.trace_sample <= 0.0) return false;
  if (opts_.trace_sample >= 1.0) return true;
  // Coin flip drawn from the id generator's own splitmix stream, so sampling
  // needs no extra RNG state and stays thread-safe.
  const double u =
      static_cast<double>(obs::next_trace_id() >> 11) * 0x1.0p-53;
  return u < opts_.trace_sample;
}

void Dispatcher::span_locked(const Item& item, const char* name,
                             const std::string& detail, double dur_us) const {
  if (!item.trace.sampled() || opts_.tracer == nullptr) return;
  obs::SpanEvent sp;
  sp.trace_id = item.trace.trace_id;
  sp.span_id = obs::next_trace_id();
  sp.parent_span = item.trace.span_id;
  sp.name = name;
  sp.detail = detail;
  sp.t_end_us = opts_.tracer->now_us();
  sp.t_start_us = sp.t_end_us - dur_us;
  opts_.tracer->record_span(sp);
}

void Dispatcher::publish_worker_locked(std::uint64_t id, WorkerState& w) {
  std::string detail;
  if (!w.inflight.empty()) {
    // Show the oldest in-flight candidate (strip "WORK " and the newline).
    const auto it = items_.find(*w.inflight.begin());
    if (it != items_.end() && it->second.payload.size() > 6) {
      detail = it->second.payload.substr(5, it->second.payload.size() - 6);
    }
  }
  (void)id;
  w.lane.update([&](obs::WorkerStatus& s) {
    s.busy = !w.inflight.empty();
    s.tasks = w.completed;
    s.detail = std::move(detail);
    s.last_beat_s = obs::steady_seconds();
  });
}

void Dispatcher::pump_locked(Outbox& outbox) {
  while (!pending_.empty()) {
    // Least-loaded eligible worker with free capacity (ties: lowest id, the
    // map order). This is the work-conserving steal: capacity freed on any
    // shard immediately drains the shared queue.
    WorkerState* best = nullptr;
    std::uint64_t best_id = 0;
    for (auto& [wid, w] : workers_) {
      if (!eligible(w)) continue;
      if (static_cast<int>(w.inflight.size()) >= w.capacity) continue;
      if (best == nullptr || w.inflight.size() < best->inflight.size()) {
        best = &w;
        best_id = wid;
      }
    }
    if (best == nullptr) return;
    const std::uint64_t id = pending_.front();
    pending_.pop_front();
    const auto it = items_.find(id);
    if (it == items_.end()) continue;  // completed while queued; skip
    Item& item = it->second;
    item.holders.insert(best_id);
    item.issued = std::chrono::steady_clock::now();
    if (!item.ever_dispatched) {
      item.ever_dispatched = true;
      span_locked(item, "fleet.queue_wait", best->name,
                  std::chrono::duration<double, std::micro>(item.issued -
                                                            item.enqueued)
                      .count());
    }
    best->inflight.insert(id);
    ++stats_.dispatched;
    outbox.emplace_back(best->push, item.payload);
    publish_worker_locked(best_id, *best);
  }
}

void Dispatcher::check_stragglers_locked(Outbox& outbox) {
  if (opts_.straggler_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& [id, item] : items_) {
    if (item.holders.empty()) continue;  // queued, not in flight
    if (now - item.issued < opts_.straggler_timeout) continue;
    for (auto& [wid, w] : workers_) {
      if (!eligible(w)) continue;
      if (static_cast<int>(w.inflight.size()) >= w.capacity) continue;
      if (item.holders.count(wid) != 0) continue;
      // Duplicate onto the free worker; first RESULT wins, the loser's late
      // duplicate is dropped (deduped) when it eventually lands.
      span_locked(item, "fleet.redispatch", w.name,
                  std::chrono::duration<double, std::micro>(now - item.issued)
                      .count());
      item.holders.insert(wid);
      item.issued = now;  // re-arm the timeout instead of re-firing every tick
      w.inflight.insert(id);
      ++stats_.redispatched;
      ++stats_.dispatched;
      obs::count("fleet.redispatched");
      outbox.emplace_back(w.push, item.payload);
      publish_worker_locked(wid, w);
      break;
    }
  }
}

void Dispatcher::finish_item_locked(std::map<std::uint64_t, Item>::iterator it,
                                    const EvalOutcome& outcome) {
  Item& item = it->second;
  Batch* batch = item.batch;
  batch->out[item.slot] = outcome;
  if (batch->remaining > 0) --batch->remaining;
  // Leave other holders' inflight entries alone: those workers are genuinely
  // busy computing the duplicate; their capacity frees when the late RESULT
  // arrives and hits the dedup path.
  items_.erase(it);
  ++stats_.completed;
}

void Dispatcher::send_outbox(Outbox& outbox) {
  for (auto& [push, payload] : outbox) {
    if (push) (void)push(payload);
  }
  outbox.clear();
}

std::uint64_t Dispatcher::attach(const std::string& name, int capacity,
                                 PushFn push) {
  Outbox outbox;
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    id = ++next_worker_id_;
    WorkerState w;
    w.name = name;
    w.capacity = std::max(1, capacity);
    w.push = std::move(push);
    w.lane = obs::StatusRegistry::global().publish_worker(
        opts_.status_pool + "/" + name, static_cast<std::uint32_t>(id));
    auto [it, inserted] = workers_.emplace(id, std::move(w));
    publish_worker_locked(id, it->second);
    obs::count("fleet.attached");
    // An elastic mid-search join starts pulling queued work immediately.
    pump_locked(outbox);
  }
  cv_.notify_all();
  send_outbox(outbox);
  obs::log_info("fleet", "worker " + name + " attached as #" + std::to_string(id));
  return id;
}

void Dispatcher::detach(std::uint64_t worker_id) {
  Outbox outbox;
  std::size_t requeued = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto wit = workers_.find(worker_id);
    if (wit == workers_.end()) return;
    for (const std::uint64_t id : wit->second.inflight) {
      const auto it = items_.find(id);
      if (it == items_.end()) continue;  // already completed elsewhere
      it->second.holders.erase(worker_id);
      if (it->second.holders.empty()) {
        // Head of the queue: a candidate that already waited once should
        // not wait behind the whole backlog again.
        pending_.push_front(id);
        ++stats_.requeued;
        ++requeued;
      }
    }
    workers_.erase(wit);  // lane handle unpublishes the status slot
    pump_locked(outbox);
  }
  cv_.notify_all();
  send_outbox(outbox);
  obs::count("fleet.detached");
  if (requeued > 0) {
    obs::log_warn("fleet", "worker #" + std::to_string(worker_id) +
                               " detached, re-queued " +
                               std::to_string(requeued) + " in-flight item(s)");
  }
}

bool Dispatcher::on_result(std::uint64_t worker_id, std::uint64_t work_id,
                           bool ok, double objective, double cost_s) {
  Outbox outbox;
  bool known = true;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (work_id == 0 || work_id > next_work_id_) return false;  // never issued
    const auto wit = workers_.find(worker_id);
    if (wit != workers_.end()) {
      wit->second.inflight.erase(work_id);
      ++wit->second.completed;
    }
    const auto it = items_.find(work_id);
    if (it == items_.end()) {
      // First RESULT already won; this is a straggler's late duplicate (or a
      // result that raced a detach re-queue). Drop it — dedup by id.
      ++stats_.deduped;
      obs::count("fleet.deduped");
    } else {
      EvalOutcome outcome;
      outcome.result.objective = objective;
      outcome.result.valid = ok && std::isfinite(objective);
      outcome.ran = true;
      outcome.cost_s = cost_s;
      if (!outcome.result.valid) ++stats_.failed;
      const auto now = std::chrono::steady_clock::now();
      const double wait_us =
          std::chrono::duration<double, std::micro>(now - it->second.issued)
              .count();
      eval_s_.record(wait_us * 1e-6);
      if (obs::enabled()) {
        obs::MetricsRegistry::global().hdr("fleet.eval_s").record(wait_us *
                                                                  1e-6);
      }
      span_locked(it->second, "fleet.eval",
                  wit != workers_.end() ? wit->second.name : std::string(),
                  wait_us);
      if (it->second.trace.sampled() && opts_.tracer != nullptr) {
        // Root span for this item's whole fleet lifetime (enqueue → RESULT);
        // the remote worker's spans parent onto it via the wire token.
        obs::SpanEvent root;
        root.trace_id = it->second.trace.trace_id;
        root.span_id = it->second.trace.span_id;
        root.name = "fleet.item";
        root.detail = "work " + std::to_string(work_id);
        root.t_end_us = opts_.tracer->now_us();
        root.t_start_us =
            root.t_end_us -
            std::chrono::duration<double, std::micro>(now - it->second.enqueued)
                .count();
        opts_.tracer->record_span(root);
      }
      finish_item_locked(it, outcome);
      obs::count("fleet.results");
    }
    if (wit != workers_.end()) publish_worker_locked(worker_id, wit->second);
    // Capacity freed: steal the next queued item onto this (or any) worker.
    pump_locked(outbox);
  }
  cv_.notify_all();
  send_outbox(outbox);
  return known;
}

void Dispatcher::heartbeat(std::uint64_t worker_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto wit = workers_.find(worker_id);
  if (wit != workers_.end()) publish_worker_locked(worker_id, wit->second);
}

std::vector<EvalOutcome> Dispatcher::run_batch(const std::vector<Config>& batch) {
  Batch state;
  state.out.assign(batch.size(), invalid_outcome());
  state.remaining = batch.size();
  if (batch.empty()) return std::move(state.out);

  Outbox outbox;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return std::move(state.out);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Item item;
      item.id = ++next_work_id_;
      item.batch = &state;
      item.slot = i;
      proto::encode_work(*space_, item.id, batch[i], item.payload);
      item.enqueued = std::chrono::steady_clock::now();
      if (sample_trace()) {
        item.trace.trace_id = obs::next_trace_id();
        item.trace.span_id = obs::next_trace_id();
        // Splice the trace token in front of the newline so the worker's
        // spans join this item's trace.
        item.payload.pop_back();
        proto::append_trace(item.trace, item.payload);
        item.payload.push_back('\n');
      }
      pending_.push_back(item.id);
      items_.emplace(item.id, std::move(item));
    }
    pump_locked(outbox);
  }
  send_outbox(outbox);

  // Wait for the batch, waking on every result and on a timer tick that
  // drives straggler re-dispatch (and re-pumps after elastic joins).
  const auto tick =
      opts_.straggler_timeout.count() > 0
          ? std::max<std::chrono::milliseconds>(
                std::chrono::milliseconds(5), opts_.straggler_timeout / 4)
          : std::chrono::milliseconds(100);
  std::unique_lock<std::mutex> lock(mutex_);
  while (state.remaining > 0 && !shutdown_) {
    cv_.wait_for(lock, tick);
    if (state.remaining == 0 || shutdown_) break;
    Outbox ob;
    check_stragglers_locked(ob);
    pump_locked(ob);
    if (!ob.empty()) {
      lock.unlock();
      send_outbox(ob);
      lock.lock();
    }
  }
  if (state.remaining > 0) {
    // shutdown(): disown the unfinished items so no dangling batch pointer
    // survives this frame; their slots keep the invalid placeholder.
    for (auto it = items_.begin(); it != items_.end();) {
      if (it->second.batch == &state) {
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
    state.remaining = 0;
  }
  return std::move(state.out);
}

bool Dispatcher::wait_for_workers(std::size_t n,
                                  std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, timeout, [&] {
    std::size_t count = 0;
    for (const auto& [id, w] : workers_) {
      if (eligible(w)) ++count;
    }
    return count >= n;
  });
}

void Dispatcher::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    // Wake every run_batch; each disowns its own unfinished items.
    pending_.clear();
  }
  cv_.notify_all();
}

std::size_t Dispatcher::worker_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

std::size_t Dispatcher::total_capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, w] : workers_) {
    if (eligible(w)) total += static_cast<std::size_t>(w.capacity);
  }
  return total;
}

DispatcherStats Dispatcher::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace harmony::fleet
