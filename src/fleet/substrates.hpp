#pragma once

/// \file substrates.hpp
/// The evaluation substrates a harmony_worker process can serve: each one
/// pairs a parameter space with a ShortRunFn over one of the repo's
/// application models (paper Sections IV-VI), plus a fully synthetic
/// integer-exact function used by identity tests and scaling benches. The
/// worker picks one by name (--substrate) and must agree with the server's
/// space — WORK fields are positional.

#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/param_space.hpp"

namespace harmony::fleet {

struct Substrate {
  std::string name;
  ParamSpace space;
  ShortRunFn run;
  int steps = 10;  ///< default short-run step count
};

/// Names accepted by make_substrate, in display order.
[[nodiscard]] const std::vector<std::string>& substrate_names();

/// Build a substrate by name ("synthetic", "pop", "gs2", "petsc"); nullopt
/// for unknown names. `spin_us` adds a simulated per-run wall-clock cost
/// (a sleep — the worker would be blocked on the application's short run)
/// so scaling benches can model real evaluations.
[[nodiscard]] std::optional<Substrate> make_substrate(const std::string& name,
                                                      int spin_us = 0);

}  // namespace harmony::fleet
