#pragma once

/// \file dispatcher.hpp
/// The fleet dispatcher: the server-side broker between a SearchController
/// batch (WorkerEvalBackend::evaluate) and the remote worker processes that
/// ATTACH over the wire protocol. Implements the WorkSink seam the tuning
/// server pushes worker events through (core/work_sink.hpp).
///
/// Dispatch model — one shared queue, work-conserving ("stealing") refill:
/// every batch item enters a single pending queue; any worker with free
/// capacity takes from it, least-loaded first, regardless of which reactor
/// shard its connection lives on. Whenever capacity frees anywhere (a
/// RESULT, a fresh ATTACH, a DETACH re-queue), the pump immediately drains
/// the queue into it, so a fast worker that empties its pipeline pulls work
/// that would otherwise idle behind a slow one.
///
/// Fault tolerance:
///  * worker death — the server detaches the worker (connection teardown);
///    items it held in flight re-enter the queue head and re-dispatch;
///  * stragglers — an item in flight longer than `straggler_timeout` is
///    duplicated onto another free worker; the first RESULT wins and the
///    loser's late duplicate is counted (`deduped`) and dropped, freeing its
///    capacity;
///  * elastic membership — ATTACH/DETACH at any point mid-search: new
///    workers start pulling from the shared queue immediately, and a
///    graceful DETACH re-queues exactly like a death.
///
/// All public methods are thread-safe. Push functions are always invoked
/// outside the dispatcher lock (an outbox is drained after unlock), so a
/// slow or blocking transport can never stall result ingestion.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/param_space.hpp"
#include "core/work_sink.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace harmony::fleet {

struct DispatcherOptions {
  /// Re-dispatch an in-flight item to a second worker once it has waited
  /// this long (zero disables straggler re-dispatch).
  std::chrono::milliseconds straggler_timeout{1000};

  /// Only workers that ATTACHed with this substrate name receive work;
  /// empty accepts any worker.
  std::string substrate;

  /// StatusRegistry pool prefix for the per-worker lanes ("<pool>/<name>").
  std::string status_pool = "fleet";

  /// Span sink for dispatch tracing (not owned, may be null). Sampled batch
  /// items get queue-wait / eval / straggler-redispatch spans recorded here,
  /// and their WORK lines carry the wire trace token so the remote worker's
  /// spans join the same trace (see protocol.hpp).
  obs::SearchTracer* tracer = nullptr;

  /// Head-based sampling probability in [0, 1] applied per batch item; 0
  /// traces nothing even with a tracer set.
  double trace_sample = 0.0;
};

/// Lifetime counters (monotonic; snapshot via stats()).
struct DispatcherStats {
  std::uint64_t dispatched = 0;    ///< WORK pushes sent (including duplicates)
  std::uint64_t completed = 0;     ///< items finished by a first RESULT
  std::uint64_t requeued = 0;      ///< items re-queued by a worker detach
  std::uint64_t redispatched = 0;  ///< straggler duplicates issued
  std::uint64_t deduped = 0;       ///< late duplicate RESULTs dropped
  std::uint64_t failed = 0;        ///< items whose winning RESULT was FAIL
};

class Dispatcher final : public WorkSink {
 public:
  /// `space` must outlive the dispatcher; WORK lines encode against it.
  explicit Dispatcher(const ParamSpace& space, DispatcherOptions opts = {});
  ~Dispatcher() override;

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // ---- WorkSink (called by the tuning server) -----------------------------
  [[nodiscard]] std::uint64_t attach(const std::string& name, int capacity,
                                     PushFn push) override;
  void detach(std::uint64_t worker_id) override;
  bool on_result(std::uint64_t worker_id, std::uint64_t work_id, bool ok,
                 double objective, double cost_s) override;
  void heartbeat(std::uint64_t worker_id) override;

  // ---- batch side (called by WorkerEvalBackend) ---------------------------

  /// Dispatch the whole batch across the fleet and block until every item
  /// has a result (or shutdown() fails the remainder). Element-wise results
  /// in batch order. Safe to call from several threads at once.
  [[nodiscard]] std::vector<EvalOutcome> run_batch(const std::vector<Config>& batch);

  /// Block until at least `n` eligible workers are attached; false on
  /// timeout. Lets hosts sequence "start server, spawn workers, run search".
  [[nodiscard]] bool wait_for_workers(std::size_t n,
                                      std::chrono::milliseconds timeout);

  /// Fail every pending/in-flight item with an invalid result and refuse
  /// further batches. Called by the destructor; idempotent.
  void shutdown();

  [[nodiscard]] std::size_t worker_count() const;
  [[nodiscard]] std::size_t total_capacity() const;
  [[nodiscard]] DispatcherStats stats() const;

  /// In-flight evaluation latency (WORK dispatch to winning RESULT), always
  /// recorded; lock-free to read while batches run (atomic buckets). The
  /// fleet bench reads its p50/p99 for BENCH_*.json.
  [[nodiscard]] const obs::HdrHistogram& eval_latency() const noexcept {
    return eval_s_;
  }

 private:
  struct Batch {
    std::vector<EvalOutcome> out;
    std::size_t remaining = 0;
    bool failed = false;  ///< shutdown() filled the remainder as invalid
  };

  struct Item {
    std::uint64_t id = 0;
    Batch* batch = nullptr;
    std::size_t slot = 0;                 ///< index into batch->out
    std::string payload;                  ///< complete "WORK ...\n" line
    std::chrono::steady_clock::time_point issued{};
    std::set<std::uint64_t> holders;      ///< workers currently holding it

    // Tracing: trace.span_id is the item's root span; enqueued anchors the
    // queue-wait span; ever_dispatched keeps that span first-dispatch-only.
    obs::TraceContext trace;
    std::chrono::steady_clock::time_point enqueued{};
    bool ever_dispatched = false;
  };

  struct WorkerState {
    std::string name;
    int capacity = 1;
    PushFn push;
    std::set<std::uint64_t> inflight;     ///< item ids held
    std::uint64_t completed = 0;
    obs::StatusRegistry::WorkerHandle lane;
  };

  using Outbox = std::vector<std::pair<PushFn, std::string>>;

  [[nodiscard]] bool eligible(const WorkerState& w) const;
  /// Head-based sampling decision for one fresh batch item.
  [[nodiscard]] bool sample_trace() const;
  /// Record a child span of `item`'s root span ending now, lasting `dur_us`.
  /// No-op for unsampled items.
  void span_locked(const Item& item, const char* name,
                   const std::string& detail, double dur_us) const;
  /// Drain the pending queue into free capacity (least-loaded first);
  /// callers send the outbox after unlocking.
  void pump_locked(Outbox& outbox);
  /// Duplicate timed-out in-flight items onto free workers.
  void check_stragglers_locked(Outbox& outbox);
  void publish_worker_locked(std::uint64_t id, WorkerState& w);
  void finish_item_locked(std::map<std::uint64_t, Item>::iterator it,
                          const EvalOutcome& outcome);
  static void send_outbox(Outbox& outbox);

  const ParamSpace* space_;
  DispatcherOptions opts_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::uint64_t next_worker_id_ = 0;
  std::uint64_t next_work_id_ = 0;
  std::map<std::uint64_t, WorkerState> workers_;
  std::map<std::uint64_t, Item> items_;   ///< incomplete items by id
  std::deque<std::uint64_t> pending_;     ///< ids with no holder yet
  DispatcherStats stats_;
  obs::HdrHistogram eval_s_;              ///< dispatch-to-RESULT latency

};

}  // namespace harmony::fleet
