#include "fleet/worker_client.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstdio>
#include <utility>

#include "core/protocol.hpp"

namespace harmony::fleet {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

WorkerClient::WorkerClient(WorkerClientOptions opts) : opts_(std::move(opts)) {}

void WorkerClient::stop() {
  stop_.store(true);
  socket_.shutdown();  // wakes a blocked poll()/recv()
}

bool WorkerClient::handle_line(std::string_view line, const ParamSpace& space,
                               const ShortRunFn& fn, int steps) {
  proto::MessageView msg;
  if (!proto::parse_line(line, msg)) return true;

  if (msg.verb == "WORK") {
    if (msg.args.empty()) return true;  // malformed push; ignore
    // Optional trailing trace token (see protocol.hpp): strip it before the
    // config decode, mint this worker's own span under the sender's, and
    // echo the token on the RESULT so the chain survives the round trip.
    obs::TraceContext trace;
    if (proto::is_trace_token(msg.args.back())) {
      if (const auto ctx = proto::parse_trace(msg.args.back())) {
        trace.trace_id = ctx->trace_id;
        trace.parent_span = ctx->span_id;
        trace.span_id = obs::next_trace_id();
      }
      msg.args.pop_back();
      if (msg.args.empty()) return true;  // token with no work id; ignore
    }
    const auto id = proto::parse_i64(msg.args[0]);
    if (!id || *id <= 0) return true;
    char reply[160];
    int len = 0;
    const auto finish_reply = [&] {
      if (trace.sampled()) {
        len += std::snprintf(reply + len, sizeof(reply) - len,
                             " T=%016llx-%016llx",
                             static_cast<unsigned long long>(trace.trace_id),
                             static_cast<unsigned long long>(trace.span_id));
      }
      reply[len++] = '\n';
      return std::string_view(reply, static_cast<std::size_t>(len));
    };
    const auto config = proto::decode_config(space, msg, /*skip=*/1);
    if (!config) {
      // Undecodable against this worker's compiled-in space: report FAIL so
      // the search charges the candidate instead of waiting forever.
      len = std::snprintf(reply, sizeof(reply), "RESULT %lld FAIL",
                          static_cast<long long>(*id));
      return socket_.send_all(finish_reply());
    }
    const auto t0 = std::chrono::steady_clock::now();
    const ShortRunResult r = fn(*config, steps);
    const double cost_s = seconds_since(t0);
    if (trace.sampled() && opts_.tracer != nullptr) {
      obs::SpanEvent sp;
      sp.trace_id = trace.trace_id;
      sp.span_id = trace.span_id;
      sp.parent_span = trace.parent_span;
      sp.name = "worker.eval";
      sp.detail = "work " + std::to_string(*id);
      sp.t_end_us = opts_.tracer->now_us();
      sp.t_start_us = sp.t_end_us - cost_s * 1e6;
      opts_.tracer->record_span(sp);
    }
    if (r.ok) {
      // %.17g: exact double round trip, so a fleet search sees bit-identical
      // objectives to a serial run of the same substrate.
      len = std::snprintf(reply, sizeof(reply), "RESULT %lld %.17g %.6g",
                          static_cast<long long>(*id), r.measured_s, cost_s);
    } else {
      len = std::snprintf(reply, sizeof(reply), "RESULT %lld FAIL",
                          static_cast<long long>(*id));
    }
    if (!socket_.send_all(finish_reply())) return false;
    const std::uint64_t done = evals_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (opts_.max_evals > 0 && done >= opts_.max_evals) {
      (void)socket_.send_all(std::string_view("DETACH\n"));
      return false;  // quota met: graceful leave (dispatcher re-queues rest)
    }
    return true;
  }
  if (msg.verb == "OK") {
    if (msg.args.size() == 2 && msg.args[0] == "worker") {
      const auto id = proto::parse_i64(msg.args[1]);
      if (id && *id > 0) worker_id_ = static_cast<std::uint64_t>(*id);
    }
    return true;  // OK detached etc. need no action
  }
  if (msg.verb == "PONG") return true;
  if (msg.verb == "ERR") {
    error_.assign(line);
    return worker_id_ != 0;  // pre-ATTACH errors are fatal
  }
  return true;  // unknown pushes are ignored
}

bool WorkerClient::run(int port, const ParamSpace& space, const ShortRunFn& fn,
                       int steps) {
  stop_.store(false);
  worker_id_ = 0;
  error_.clear();
  socket_ = net::connect_loopback(port, opts_.connect);
  if (!socket_.valid()) {
    error_ = "connect failed";
    return false;
  }
  {
    char attach[128];
    std::snprintf(attach, sizeof(attach), "ATTACH %s %d\n", opts_.name.c_str(),
                  opts_.capacity);
    if (!socket_.send_all(attach)) {
      error_ = "send failed";
      return false;
    }
  }

  // Hand-rolled read loop (instead of LineReader) so idle periods can time
  // out into PING heartbeats even while complete lines may be buffered.
  std::string buf;
  std::size_t head = 0;
  const int idle_ms = opts_.heartbeat.count() > 0
                          ? static_cast<int>(opts_.heartbeat.count())
                          : -1;
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto pos = buf.find('\n', head);
    if (pos != std::string::npos) {
      std::size_t len = pos - head;
      if (len > 0 && buf[head + len - 1] == '\r') --len;
      const std::string_view line(buf.data() + head, len);
      const bool keep = handle_line(line, space, fn, steps);
      head = pos + 1;
      if (!keep) break;
      continue;
    }
    if (head > 0) {
      buf.erase(0, head);
      head = 0;
    }
    pollfd pfd{};
    pfd.fd = socket_.fd();
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, idle_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) {
      // Idle: refresh the server-side heartbeat (PONG arrives as input).
      if (!socket_.send_all(std::string_view("PING\n"))) break;
      continue;
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // peer closed or error
  }
  socket_.close();
  if (worker_id_ == 0 && error_.empty()) error_ = "ATTACH not acknowledged";
  return worker_id_ != 0;
}

}  // namespace harmony::fleet
