#include "fleet/substrates.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>

#include "minigs2/minigs2.hpp"
#include "minipetsc/minipetsc.hpp"
#include "minipop/minipop.hpp"
#include "simcluster/simcluster.hpp"

namespace harmony::fleet {

namespace {

/// Simulated per-run cost: the worker would be blocked on the application's
/// short run for this long, so it sleeps (wall time, not CPU) — scaling
/// benches then measure dispatch overlap rather than host core count.
void spin_for(int spin_us) {
  if (spin_us <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(spin_us));
}

/// Integer-exact paraboloid with a unique minimum at (37, 61). Every
/// objective is a small integer divided by a power of two, so the value
/// round-trips the wire bit-exactly and fleet trajectories can be compared
/// against serial golden runs with EXPECT_EQ.
Substrate make_synthetic(int spin_us) {
  // The space is shared into the lambda (Substrate objects get moved around,
  // so capturing a reference to the member would dangle).
  auto sp = std::make_shared<ParamSpace>();
  sp->add(Parameter::Integer("x", 0, 100));
  sp->add(Parameter::Integer("y", 0, 100));
  Substrate s;
  s.name = "synthetic";
  s.space = *sp;
  s.run = [sp, spin_us](const Config& c, int) {
    const double dx = static_cast<double>(sp->get_int(c, "x") - 37);
    const double dy = static_cast<double>(sp->get_int(c, "y") - 61);
    ShortRunResult r;
    r.measured_s = (dx * dx + dy * dy + 1.0) / 1024.0;
    spin_for(spin_us);
    return r;
  };
  return s;
}

Substrate make_pop(int spin_us) {
  struct State {
    minipop::PopGrid grid = minipop::PopGrid::production();
    minipop::PopModel model{grid};
    simcluster::Machine machine = simcluster::presets::nersc_sp3(30, 16);
    minipop::PhaseMultipliers mult;
  };
  auto st = std::make_shared<State>();
  const auto pspace = minipop::make_param_space(32);
  st->mult = minipop::evaluate_multipliers(pspace, minipop::default_config(pspace));

  auto sp = std::make_shared<ParamSpace>();
  sp->add(Parameter::Integer("block_x", 30, 720, 6));
  sp->add(Parameter::Integer("block_y", 24, 600, 4));
  Substrate s;
  s.name = "pop";
  s.space = *sp;
  s.run = [st, sp, spin_us](const Config& c, int) {
    const minipop::BlockShape shape{
        static_cast<int>(sp->get_int(c, "block_x")),
        static_cast<int>(sp->get_int(c, "block_y"))};
    ShortRunResult r;
    r.measured_s = st->model.step_time(st->machine, 16, shape, st->mult).total_s;
    spin_for(spin_us);
    return r;
  };
  return s;
}

Substrate make_gs2(int spin_us) {
  auto model = std::make_shared<minigs2::Gs2Model>();
  auto sp = std::make_shared<ParamSpace>();
  sp->add(Parameter::Integer("negrid", 4, 16));
  sp->add(Parameter::Integer("ntheta", 10, 32, 2));
  sp->add(Parameter::Integer("nodes", 1, 64));
  Substrate s;
  s.name = "gs2";
  s.space = *sp;
  s.run = [model, sp, spin_us](const Config& c, int steps) {
    minigs2::Resolution res;
    res.negrid = static_cast<int>(sp->get_int(c, "negrid"));
    res.ntheta = static_cast<int>(sp->get_int(c, "ntheta"));
    const int nodes = static_cast<int>(sp->get_int(c, "nodes"));
    const auto machine = simcluster::presets::xeon_myrinet(nodes, 2);
    ShortRunResult r;
    r.measured_s =
        model->run_time(machine, 2 * nodes, res, minigs2::Layout("lxyes"),
                        minigs2::CollisionModel::None, steps);
    spin_for(spin_us);
    return r;
  };
  return s;
}

Substrate make_petsc(int spin_us) {
  // Fig. 2(a)-shaped dense-block solve, 4 ranks: tune the three row-partition
  // boundaries of a block-structured matrix.
  struct State {
    minipetsc::CsrMatrix A;
    minipetsc::Vec b;
    simcluster::Machine machine = simcluster::presets::xeon_myrinet(4, 1);
    int n = 0;
  };
  auto st = std::make_shared<State>();
  st->A = minipetsc::dense_block_matrix({40, 40, 40, 40}, 0.6);
  st->n = st->A.rows();
  st->b = minipetsc::Vec(static_cast<std::size_t>(st->n));
  for (std::size_t i = 0; i < st->b.size(); ++i) st->b[i] = std::sin(0.05 * i);

  Substrate s;
  s.name = "petsc";
  for (int i = 0; i < 3; ++i) {
    s.space.add(Parameter::Integer("b" + std::to_string(i), 1, st->n - 1));
  }
  s.run = [st, spin_us](const Config& c, int) {
    std::vector<int> bounds;
    bounds.reserve(c.values.size());
    for (const auto& v : c.values) {
      bounds.push_back(static_cast<int>(std::get<std::int64_t>(v)));
    }
    ShortRunResult r;
    try {
      const auto part =
          minipetsc::RowPartition::from_boundaries(st->n, 4, bounds);
      minipetsc::Vec x;
      const minipetsc::PcBlockJacobi pc(st->A, part);
      const auto ksp = minipetsc::cg_solve(st->A, st->b, x, pc);
      if (!ksp.converged) {
        r.ok = false;
      } else {
        r.measured_s = minipetsc::simulate_sles(
                           st->machine, minipetsc::analyze(st->A, part),
                           ksp.iterations)
                           .total_s;
      }
    } catch (const std::invalid_argument&) {
      r.ok = false;  // crossing/degenerate boundaries: infeasible candidate
    }
    spin_for(spin_us);
    return r;
  };
  return s;
}

}  // namespace

const std::vector<std::string>& substrate_names() {
  static const std::vector<std::string> names{"synthetic", "pop", "gs2", "petsc"};
  return names;
}

std::optional<Substrate> make_substrate(const std::string& name, int spin_us) {
  if (name == "synthetic") return make_synthetic(spin_us);
  if (name == "pop") return make_pop(spin_us);
  if (name == "gs2") return make_gs2(spin_us);
  if (name == "petsc") return make_petsc(spin_us);
  return std::nullopt;
}

}  // namespace harmony::fleet
