#include "fleet/worker_backend.hpp"

#include "obs/metrics.hpp"

namespace harmony::fleet {

WorkerEvalBackend::WorkerEvalBackend(Dispatcher& dispatcher,
                                     const ParamSpace& space,
                                     WorkerBackendOptions opts)
    : dispatcher_(&dispatcher), space_(&space), opts_(opts), cache_(space) {}

std::size_t WorkerEvalBackend::concurrency() const {
  if (opts_.max_batch > 0) return opts_.max_batch;
  const std::size_t cap = dispatcher_->total_capacity();
  return cap > 0 ? cap : 1;
}

std::size_t WorkerEvalBackend::cache_hits() const { return cache_.hits(); }

std::size_t WorkerEvalBackend::cache_coalesced() const {
  return coalesced_.load(std::memory_order_relaxed);
}

std::vector<EvalOutcome> WorkerEvalBackend::evaluate(
    const std::vector<Config>& batch, const Context& ctx) {
  (void)ctx;
  std::vector<EvalOutcome> out(batch.size());

  // Resolve the batch against the cache and collapse in-batch duplicates:
  // one wire dispatch per distinct lattice point, every other slot is filled
  // from the first one's result. The PointKey of each element is derived
  // exactly once and reused for the cache probe, the first-miss dedup table
  // and the post-dispatch insert — no string key anywhere.
  std::vector<Config> misses;
  std::vector<std::size_t> miss_slot;       // batch index of each miss
  std::vector<std::pair<std::size_t, std::size_t>> dup_of;  // slot, miss idx
  first_miss_.clear();
  miss_keys_.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scratch_key_.assign(*space_, batch[i]);
    if (opts_.use_cache) {
      if (const auto hit = cache_.lookup(scratch_key_)) {
        out[i].result = *hit;
        out[i].ran = false;
        continue;
      }
    }
    const auto [first, inserted] = first_miss_.try_emplace(scratch_key_);
    if (!inserted) {
      dup_of.emplace_back(i, *first);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    *first = misses.size();
    miss_slot.push_back(i);
    miss_keys_.push_back(scratch_key_);
    misses.push_back(batch[i]);
  }

  if (!misses.empty()) {
    obs::count("fleet.batches");
    const auto results = dispatcher_->run_batch(misses);
    for (std::size_t m = 0; m < results.size(); ++m) {
      out[miss_slot[m]] = results[m];
      if (opts_.use_cache && results[m].ran) {
        cache_.insert(miss_keys_[m], results[m].result);
      }
    }
  }
  for (const auto& [slot, m] : dup_of) {
    out[slot].result = out[miss_slot[m]].result;
    out[slot].ran = false;  // shared the duplicate's single remote run
  }
  return out;
}

}  // namespace harmony::fleet
