#pragma once

/// \file worker_client.hpp
/// The worker side of the fleet protocol: connect (with retry, so workers
/// survive a server that starts later), ATTACH with a substrate name and a
/// pipeline capacity, then serve pushed WORK lines — decode the candidate,
/// run the ShortRunFn, answer RESULT — until the server hangs up, stop() is
/// called from another thread, or an optional evaluation quota is met. Sends
/// PING heartbeats while idle. Used by the tools/harmony_worker binary (one
/// worker per process) and, in-process, by tests and benches (one worker per
/// thread — same code path, TSan-visible).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/controller.hpp"
#include "core/net.hpp"
#include "core/param_space.hpp"
#include "obs/trace.hpp"

namespace harmony::fleet {

struct WorkerClientOptions {
  std::string name = "synthetic";  ///< substrate advertised in ATTACH
  int capacity = 2;                ///< WORK items the server may pipeline

  /// Connect retry: defaults tolerate the server starting ~2s late.
  net::ConnectOptions connect{/*attempts=*/20, /*backoff_ms=*/50,
                              /*max_backoff_ms=*/500, /*timeout_ms=*/1000};

  /// Idle heartbeat interval (PING); zero disables.
  std::chrono::milliseconds heartbeat{500};

  /// Detach voluntarily after this many evaluations; 0 = serve forever.
  std::uint64_t max_evals = 0;

  /// Span sink (not owned, may be null). WORK lines carrying a wire trace
  /// token get a "worker.eval" span recorded here, and the RESULT echoes the
  /// token so the server-side spans of the same request link up. Without a
  /// tracer the token is still echoed (the ids keep the chain intact).
  obs::SearchTracer* tracer = nullptr;
};

class WorkerClient {
 public:
  explicit WorkerClient(WorkerClientOptions opts = {});

  /// Connect + ATTACH + serve until disconnect/stop()/quota. Returns false
  /// when the connect or ATTACH handshake failed (see last_error()).
  [[nodiscard]] bool run(int port, const ParamSpace& space, const ShortRunFn& fn,
                         int steps);

  /// Ask a running worker to exit; safe from any thread. The in-flight
  /// evaluation (if any) completes and its RESULT may be lost — the
  /// dispatcher re-queues it when the connection drops.
  void stop();

  [[nodiscard]] std::uint64_t evals() const noexcept {
    return evals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t worker_id() const noexcept { return worker_id_; }
  [[nodiscard]] const std::string& last_error() const noexcept { return error_; }

 private:
  /// Handle one server line; false ends the serve loop.
  [[nodiscard]] bool handle_line(std::string_view line, const ParamSpace& space,
                                 const ShortRunFn& fn, int steps);

  WorkerClientOptions opts_;
  net::Socket socket_;
  std::atomic<std::uint64_t> evals_{0};
  std::atomic<bool> stop_{false};
  std::uint64_t worker_id_ = 0;
  std::string error_;
};

}  // namespace harmony::fleet
