#pragma once

/// \file worker_backend.hpp
/// EvalBackend that measures candidates on the remote worker fleet: each
/// batch is deduplicated against a ConcurrentEvalCache (first occurrence
/// keyed by the canonical lattice key wins; repeats are served without a
/// remote round trip) and the misses are dispatched through the fleet
/// Dispatcher, which fans them out across every attached worker process.
/// Plugging this into SearchController turns any strategy into a
/// fleet-distributed search with no controller changes — the same seam the
/// serial and thread-pool backends use.

#include <atomic>
#include <cstddef>
#include <vector>

#include "core/controller.hpp"
#include "core/flat_map.hpp"
#include "core/point_key.hpp"
#include "engine/eval_cache.hpp"
#include "fleet/dispatcher.hpp"

namespace harmony::fleet {

struct WorkerBackendOptions {
  /// Cap on one dispatched batch; 0 sizes batches to the fleet's live total
  /// capacity (at least 1), so the controller asks strategies for exactly
  /// what the fleet can absorb at once.
  std::size_t max_batch = 0;

  /// Memoize results across batches (the dedup-by-key cache). Disable for
  /// benchmarks that want every proposal to hit the wire.
  bool use_cache = true;
};

class WorkerEvalBackend final : public EvalBackend {
 public:
  /// `dispatcher` and `space` must outlive the backend.
  WorkerEvalBackend(Dispatcher& dispatcher, const ParamSpace& space,
                    WorkerBackendOptions opts = {});

  [[nodiscard]] std::vector<EvalOutcome> evaluate(const std::vector<Config>& batch,
                                                  const Context& ctx) override;

  [[nodiscard]] std::size_t concurrency() const override;
  [[nodiscard]] std::size_t cache_hits() const override;
  [[nodiscard]] std::size_t cache_coalesced() const override;

 private:
  Dispatcher* dispatcher_;
  const ParamSpace* space_;
  WorkerBackendOptions opts_;
  engine::ConcurrentEvalCache cache_;
  std::atomic<std::size_t> coalesced_{0};  ///< in-batch duplicate proposals

  // Per-batch scratch, reused across evaluate() calls so the steady-state
  // dedup pass allocates nothing. evaluate() is called from the controller
  // thread only (the EvalBackend contract), so unsynchronized reuse is safe.
  PointKey scratch_key_;
  FlatPointMap<std::size_t> first_miss_;    ///< key -> index into misses
  std::vector<PointKey> miss_keys_;         ///< keys of dispatched misses
};

}  // namespace harmony::fleet
