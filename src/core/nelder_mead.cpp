#include "core/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace harmony {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

NelderMead::NelderMead(const ParamSpace& space, NelderMeadOptions opts,
                       std::optional<Config> initial, ConstraintSet constraints)
    : space_(&space),
      opts_(opts),
      constraints_(std::move(constraints)),
      rng_(opts.seed),
      best_value_(kInf),
      current_step_fraction_(opts.initial_step_fraction) {
  if (space.empty()) {
    throw std::invalid_argument("NelderMead: empty parameter space");
  }
  const Config start = initial.value_or(space.default_config());
  seed_simplex(space.coords(start), current_step_fraction_);
}

void NelderMead::seed_simplex(const std::vector<double>& center,
                              double step_fraction) {
  const std::size_t n = space_->dim();
  simplex_.assign(n + 1, Vertex{});
  simplex_[0].coords = center;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = space_->param(i);
    const double range = p.coord_max() - p.coord_min();
    // Never seed a degenerate edge: even a single-lattice-step displacement
    // keeps the simplex non-flat in this dimension.
    double step = std::max(step_fraction * range, range > 0.0 ? 1.0 : 0.0);
    if (p.type() == ParamType::Real) step = std::max(step_fraction * range, 1e-9 * range);
    auto coords = center;
    // Step towards whichever side has room.
    if (coords[i] + step <= p.coord_max()) {
      coords[i] += step;
    } else {
      coords[i] -= step;
    }
    coords[i] = std::clamp(coords[i], p.coord_min(), p.coord_max());
    simplex_[i + 1].coords = std::move(coords);
  }
  phase_ = Phase::BuildSimplex;
  pending_index_ = 0;
  awaiting_report_ = false;
  stall_count_ = 0;
}

Config NelderMead::make_config(std::vector<double> coords) const {
  constraints_.project(*space_, coords);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    const auto& p = space_->param(i);
    coords[i] = std::clamp(coords[i], p.coord_min(), p.coord_max());
  }
  return space_->snap(coords);
}

std::optional<Config> NelderMead::propose() {
  if (phase_ == Phase::Done) return std::nullopt;
  switch (phase_) {
    case Phase::BuildSimplex:
    case Phase::Shrink:
      // Find the vertex currently needing evaluation.
      while (pending_index_ < simplex_.size() && simplex_[pending_index_].evaluated) {
        ++pending_index_;
      }
      if (pending_index_ >= simplex_.size()) {
        // All vertices evaluated (can happen when report() finished the
        // phase); fall through to the next iteration.
        begin_iteration();
        return propose();
      }
      pending_coords_ = simplex_[pending_index_].coords;
      break;
    case Phase::Reflect:
    case Phase::Expand:
    case Phase::ContractOutside:
    case Phase::ContractInside:
      // pending_coords_ already prepared by the transition.
      break;
    case Phase::Done:
      return std::nullopt;
  }
  awaiting_report_ = true;
  return make_config(pending_coords_);
}

void NelderMead::report(const Config& c, const EvaluationResult& r) {
  if (!awaiting_report_) {
    throw std::logic_error("NelderMead::report without a pending propose()");
  }
  awaiting_report_ = false;

  double value = r.valid ? r.objective : kInf;
  if (r.valid && !constraints_.empty()) value += constraints_.penalty(*space_, c);

  if (r.valid && value < best_value_) {
    best_value_ = value;
    best_ = c;
    stall_count_ = 0;
  } else {
    ++stall_count_;
  }

  switch (phase_) {
    case Phase::BuildSimplex:
    case Phase::Shrink: {
      simplex_[pending_index_].value = value;
      simplex_[pending_index_].evaluated = true;
      ++pending_index_;
      while (pending_index_ < simplex_.size() && simplex_[pending_index_].evaluated) {
        ++pending_index_;
      }
      if (pending_index_ >= simplex_.size()) begin_iteration();
      return;
    }
    case Phase::Reflect: {
      reflected_value_ = value;
      reflected_coords_ = pending_coords_;
      const std::size_t n = simplex_.size() - 1;
      const double f_best = simplex_.front().value;
      const double f_second_worst = simplex_[n - 1].value;
      const double f_worst = simplex_[n].value;
      if (value < f_best) {
        // Try to expand further along the same direction.
        const auto centroid = centroid_excluding_worst();
        std::vector<double> xe(centroid.size());
        for (std::size_t i = 0; i < xe.size(); ++i) {
          xe[i] = centroid[i] +
                  opts_.expansion * (reflected_coords_[i] - centroid[i]);
        }
        pending_coords_ = std::move(xe);
        phase_ = Phase::Expand;
        return;
      }
      if (value < f_second_worst) {
        simplex_[n] = Vertex{reflected_coords_, value, true};
        ++transformations_;
        obs::count("nm.reflect");
        begin_iteration();
        return;
      }
      const auto centroid = centroid_excluding_worst();
      if (value < f_worst) {
        // Outside contraction between centroid and reflected point.
        std::vector<double> xc(centroid.size());
        for (std::size_t i = 0; i < xc.size(); ++i) {
          xc[i] = centroid[i] +
                  opts_.contraction * (reflected_coords_[i] - centroid[i]);
        }
        pending_coords_ = std::move(xc);
        phase_ = Phase::ContractOutside;
      } else {
        // Inside contraction between centroid and the worst vertex.
        std::vector<double> xcc(centroid.size());
        for (std::size_t i = 0; i < xcc.size(); ++i) {
          xcc[i] = centroid[i] -
                   opts_.contraction * (centroid[i] - simplex_.back().coords[i]);
        }
        pending_coords_ = std::move(xcc);
        phase_ = Phase::ContractInside;
      }
      return;
    }
    case Phase::Expand: {
      const std::size_t n = simplex_.size() - 1;
      if (value < reflected_value_) {
        simplex_[n] = Vertex{pending_coords_, value, true};
        obs::count("nm.expand");
      } else {
        simplex_[n] = Vertex{reflected_coords_, reflected_value_, true};
        obs::count("nm.reflect");
      }
      ++transformations_;
      begin_iteration();
      return;
    }
    case Phase::ContractOutside: {
      const std::size_t n = simplex_.size() - 1;
      if (value <= reflected_value_) {
        simplex_[n] = Vertex{pending_coords_, value, true};
        ++transformations_;
        obs::count("nm.contract_outside");
        begin_iteration();
      } else {
        begin_shrink();
      }
      return;
    }
    case Phase::ContractInside: {
      const std::size_t n = simplex_.size() - 1;
      if (value < simplex_[n].value) {
        simplex_[n] = Vertex{pending_coords_, value, true};
        ++transformations_;
        obs::count("nm.contract_inside");
        begin_iteration();
      } else {
        begin_shrink();
      }
      return;
    }
    case Phase::Done:
      return;
  }
}

std::vector<Config> NelderMead::speculative_candidates() const {
  std::vector<Config> out;
  switch (phase_) {
    case Phase::BuildSimplex:
    case Phase::Shrink:
      for (const auto& v : simplex_) {
        if (!v.evaluated) out.push_back(make_config(v.coords));
      }
      break;
    case Phase::Reflect: {
      // pending_coords_ holds the continuous reflection point xr prepared by
      // begin_iteration(). The expansion and outside-contraction points are
      // functions of xr and the centroid; the inside-contraction point is a
      // function of the centroid and the worst vertex. All four use exactly
      // the formulas report() would apply, so speculative results replayed
      // through report() are bitwise-identical to a serial drive.
      const auto centroid = centroid_excluding_worst();
      const auto& xr = pending_coords_;
      const auto& worst = simplex_.back().coords;
      std::vector<double> xe(centroid.size());
      std::vector<double> xoc(centroid.size());
      std::vector<double> xic(centroid.size());
      for (std::size_t i = 0; i < centroid.size(); ++i) {
        xe[i] = centroid[i] + opts_.expansion * (xr[i] - centroid[i]);
        xoc[i] = centroid[i] + opts_.contraction * (xr[i] - centroid[i]);
        xic[i] = centroid[i] - opts_.contraction * (centroid[i] - worst[i]);
      }
      out.push_back(make_config(xr));
      out.push_back(make_config(xe));
      out.push_back(make_config(xoc));
      out.push_back(make_config(xic));
      break;
    }
    case Phase::Expand:
    case Phase::ContractOutside:
    case Phase::ContractInside:
      out.push_back(make_config(pending_coords_));
      break;
    case Phase::Done:
      break;
  }
  return out;
}

void NelderMead::order_simplex() {
  std::stable_sort(simplex_.begin(), simplex_.end(),
                   [](const Vertex& a, const Vertex& b) { return a.value < b.value; });
}

std::vector<double> NelderMead::centroid_excluding_worst() const {
  const std::size_t n = simplex_.size() - 1;
  std::vector<double> c(space_->dim(), 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < c.size(); ++i) c[i] += simplex_[v].coords[i];
  }
  for (auto& x : c) x /= static_cast<double>(n);
  return c;
}

double NelderMead::simplex_diameter() const {
  double d = 0.0;
  for (std::size_t a = 0; a < simplex_.size(); ++a) {
    for (std::size_t b = a + 1; b < simplex_.size(); ++b) {
      double dist = 0.0;
      for (std::size_t i = 0; i < simplex_[a].coords.size(); ++i) {
        dist = std::max(dist,
                        std::abs(simplex_[a].coords[i] - simplex_[b].coords[i]));
      }
      d = std::max(d, dist);
    }
  }
  return d;
}

void NelderMead::begin_iteration() {
  order_simplex();
  const bool collapsed = simplex_diameter() < opts_.diameter_tolerance;
  const bool stalled = opts_.max_stall > 0 && stall_count_ >= opts_.max_stall;
  if (collapsed || stalled) {
    maybe_restart();
    if (phase_ == Phase::Done) return;
    // maybe_restart seeded a fresh simplex; evaluation resumes there.
    return;
  }
  // Prepare the reflection candidate.
  const auto centroid = centroid_excluding_worst();
  const auto& worst = simplex_.back().coords;
  std::vector<double> xr(centroid.size());
  for (std::size_t i = 0; i < xr.size(); ++i) {
    xr[i] = centroid[i] + opts_.reflection * (centroid[i] - worst[i]);
  }
  pending_coords_ = std::move(xr);
  phase_ = Phase::Reflect;
}

void NelderMead::begin_shrink() {
  // Shrink every vertex towards the best one, then re-evaluate them.
  const auto& x1 = simplex_.front().coords;
  for (std::size_t v = 1; v < simplex_.size(); ++v) {
    auto& vert = simplex_[v];
    for (std::size_t i = 0; i < vert.coords.size(); ++i) {
      vert.coords[i] = x1[i] + opts_.shrink * (vert.coords[i] - x1[i]);
    }
    vert.evaluated = false;
  }
  ++transformations_;
  obs::count("nm.shrink");
  phase_ = Phase::Shrink;
  pending_index_ = 1;
}

void NelderMead::maybe_restart() {
  if (restarts_used_ >= opts_.max_restarts || !best_.has_value()) {
    phase_ = Phase::Done;
    return;
  }
  ++restarts_used_;
  obs::count("nm.restart");
  current_step_fraction_ = std::max(current_step_fraction_ * opts_.restart_shrink,
                                    1e-3);
  // Jitter the restart center slightly so a re-seeded simplex does not
  // retrace the identical lattice path.
  auto center = space_->coords(*best_);
  for (std::size_t i = 0; i < center.size(); ++i) {
    const auto& p = space_->param(i);
    const double range = p.coord_max() - p.coord_min();
    center[i] = std::clamp(center[i] + 0.1 * range * (rng_.uniform() - 0.5),
                           p.coord_min(), p.coord_max());
  }
  seed_simplex(center, current_step_fraction_);
}

const char* NelderMead::phase_name() const noexcept {
  switch (phase_) {
    case Phase::BuildSimplex: return "build";
    case Phase::Reflect: return "reflect";
    case Phase::Expand: return "expand";
    case Phase::ContractOutside: return "contract-out";
    case Phase::ContractInside: return "contract-in";
    case Phase::Shrink: return "shrink";
    case Phase::Done: return "done";
  }
  return "unknown";
}

bool NelderMead::converged() const { return phase_ == Phase::Done; }

std::optional<Config> NelderMead::best() const { return best_; }

double NelderMead::best_objective() const { return best_value_; }

}  // namespace harmony
