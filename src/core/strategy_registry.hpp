#pragma once

/// \file strategy_registry.hpp
/// Name-based construction of search strategies — the single construction
/// path shared by Session defaults, the tuning server (its default search
/// and the STRATEGY protocol verb), benches and examples. Options arrive as
/// textual key=value pairs (exactly what the wire protocol carries), are
/// validated with precise error messages, and unknown names/keys are
/// rejected rather than ignored.
///
///   auto s = StrategyRegistry::make("annealing", space,
///                                   {{"cooling", "0.9"}, {"seed", "3"}});
///
/// Registered names and their options:
///   nelder-mead        reflection, expansion, contraction, shrink,
///                      initial_step_fraction, diameter_tolerance, max_stall,
///                      max_restarts, restart_shrink, seed
///   random             samples, seed
///   systematic         samples_per_dim
///   exhaustive         max_points
///   annealing          max_evaluations, initial_temperature, cooling,
///                      neighbor_fraction, seed
///   genetic            population, generations, mutation, elite, tournament,
///                      crossover, seed
///   coordinate-descent max_sweeps, line_samples

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/nelder_mead.hpp"
#include "core/param_space.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"

namespace harmony {

/// Ordered key=value pairs, as parsed off a STRATEGY line or a CLI flag.
using StrategyOptions = std::vector<std::pair<std::string, std::string>>;

class StrategyRegistry {
 public:
  /// Every registered strategy name, in presentation order.
  [[nodiscard]] static const std::vector<std::string>& names();

  [[nodiscard]] static bool known(const std::string& name);

  /// Check a name + option list without constructing (no ParamSpace needed,
  /// so the server can reject a bad STRATEGY line before START). Returns
  /// false and fills `error` on unknown names, unknown keys or unparsable
  /// values.
  static bool validate(const std::string& name, const StrategyOptions& opts,
                       std::string* error);

  /// Construct a strategy by name. `initial` seeds strategies that accept a
  /// start point (nelder-mead, annealing, coordinate-descent) and is ignored
  /// by the others. Throws std::invalid_argument with a descriptive message
  /// on unknown names, bad options, or construction failure (e.g. exhaustive
  /// on a space larger than max_points).
  [[nodiscard]] static std::unique_ptr<SearchStrategy> make(
      const std::string& name, const ParamSpace& space,
      const StrategyOptions& opts = {},
      std::optional<Config> initial = std::nullopt);

  /// Construct the batch-native form of a strategy. Strategies with a native
  /// batch implementation (genetic) are returned directly, so a concurrent
  /// backend can evaluate a whole population at once; every other name is
  /// wrapped in an owning batch-size-1 adapter that preserves its serial
  /// propose/report semantics to the letter.
  [[nodiscard]] static std::unique_ptr<BatchSearchStrategy> make_batch(
      const std::string& name, const ParamSpace& space,
      const StrategyOptions& opts = {},
      std::optional<Config> initial = std::nullopt);

  /// The default strategy every deployment starts from when none was chosen
  /// explicitly: Nelder–Mead with the caller's base options. This is the one
  /// construction site behind Session::fetch() and the server's START.
  [[nodiscard]] static std::unique_ptr<SearchStrategy> make_default(
      const ParamSpace& space, const NelderMeadOptions& base = {},
      std::optional<Config> initial = std::nullopt);
};

}  // namespace harmony
