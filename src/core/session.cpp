#include "core/session.hpp"

#include <limits>
#include <stdexcept>

#include "core/strategy_registry.hpp"
#include "obs/metrics.hpp"

namespace harmony {

Session::Session(std::string app_name) : app_name_(std::move(app_name)) {
  nm_opts_.max_stall = 30;
  nm_opts_.max_restarts = 2;
}

Session::~Session() = default;

std::size_t Session::add_int(const std::string& name, std::int64_t lo,
                             std::int64_t hi, std::int64_t step,
                             std::int64_t* bound) {
  if (strategy_) throw std::logic_error("Session: add after first fetch");
  space_.add(Parameter::Integer(name, lo, hi, step));
  Binding b;
  b.i = bound;
  bindings_.push_back(b);
  return space_.dim() - 1;
}

std::size_t Session::add_real(const std::string& name, double lo, double hi,
                              double* bound) {
  if (strategy_) throw std::logic_error("Session: add after first fetch");
  space_.add(Parameter::Real(name, lo, hi));
  Binding b;
  b.r = bound;
  bindings_.push_back(b);
  return space_.dim() - 1;
}

std::size_t Session::add_enum(const std::string& name,
                              std::vector<std::string> choices,
                              std::string* bound) {
  if (strategy_) throw std::logic_error("Session: add after first fetch");
  space_.add(Parameter::Enum(name, std::move(choices)));
  Binding b;
  b.s = bound;
  bindings_.push_back(b);
  return space_.dim() - 1;
}

void Session::set_strategy(StrategyFactory factory) {
  if (strategy_) throw std::logic_error("Session: set_strategy after first fetch");
  factory_ = std::move(factory);
}

void Session::set_nelder_mead_options(NelderMeadOptions opts) {
  if (strategy_) throw std::logic_error("Session: options after first fetch");
  nm_opts_ = opts;
}

void Session::ensure_strategy() {
  if (strategy_) return;
  if (space_.empty()) throw std::logic_error("Session: no tunable variables added");
  if (factory_) {
    strategy_ = factory_(space_);
    if (!strategy_) throw std::logic_error("Session: strategy factory returned null");
  } else {
    strategy_ = StrategyRegistry::make_default(space_, nm_opts_);
  }
  // The application measures in its own main loop, so the session drives the
  // controller's incremental ask/tell surface; the strategy decides when to
  // stop, not an iteration budget.
  constexpr int kUnbounded = std::numeric_limits<int>::max();
  controller_ = std::make_unique<SearchController>(
      space_, ControllerLimits{kUnbounded, kUnbounded});
}

void Session::write_bound(const Config& c) {
  for (std::size_t i = 0; i < bindings_.size(); ++i) {
    const auto& b = bindings_[i];
    const auto& v = c.values[i];
    if (b.i != nullptr) *b.i = std::get<std::int64_t>(v);
    if (b.r != nullptr) *b.r = std::get<double>(v);
    if (b.s != nullptr) *b.s = std::get<std::string>(v);
  }
}

bool Session::fetch() {
  ensure_strategy();
  if (awaiting_report_) {
    throw std::logic_error("Session::fetch: report() the previous candidate first");
  }
  auto proposal = controller_->ask(*strategy_);
  if (!proposal) {
    // Converged: leave the best configuration in the bound variables.
    if (auto b = strategy_->best()) {
      current_ = *b;
      write_bound(*b);
    }
    return false;
  }
  ++fetches_;
  obs::count("session.fetches");
  current_ = std::move(*proposal);
  write_bound(*current_);
  awaiting_report_ = true;
  return true;
}

void Session::report(double performance) {
  if (!awaiting_report_) {
    throw std::logic_error("Session::report without a pending fetch()");
  }
  awaiting_report_ = false;
  obs::count("session.reports");
  EvaluationResult r;
  r.objective = performance;
  r.valid = true;
  controller_->tell(*strategy_, r);
}

bool Session::report_and_fetch(double performance) {
  report(performance);
  return fetch();
}

const History& Session::history() const {
  if (!controller_) throw std::logic_error("Session: no history before first fetch");
  return controller_->history();
}

const Config& Session::current() const {
  if (!current_) throw std::logic_error("Session::current before first fetch");
  return *current_;
}

std::optional<Config> Session::best() const {
  return strategy_ ? strategy_->best() : std::nullopt;
}

double Session::best_performance() const {
  if (!strategy_) throw std::logic_error("Session: no strategy yet");
  return strategy_->best_objective();
}

bool Session::converged() const { return strategy_ && strategy_->converged(); }

std::int64_t Session::get_int(std::size_t handle) const {
  return std::get<std::int64_t>(current().values.at(handle));
}

double Session::get_real(std::size_t handle) const {
  return std::get<double>(current().values.at(handle));
}

const std::string& Session::get_enum(std::size_t handle) const {
  return std::get<std::string>(current().values.at(handle));
}

}  // namespace harmony
