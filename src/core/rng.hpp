#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation used by every stochastic
/// search strategy. We use xoshiro256** (public-domain algorithm by Blackman
/// and Vigna) rather than std::mt19937_64 so streams are cheap to split and
/// the exact sequence is pinned down independent of the standard library.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace harmony {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal deviate (Marsaglia polar method).
  [[nodiscard]] double normal() noexcept {
    while (true) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Derive an independent child stream (for per-component RNGs).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace harmony
