#pragma once

/// \file coordinate_descent.hpp
/// Greedy one-parameter-at-a-time descent: repeatedly sweep the parameters,
/// trying each lattice neighbor of the incumbent and keeping improvements,
/// until a full sweep yields no progress. This mirrors how the POP parameter
/// study (paper Tables I/II) surfaces per-iteration single-parameter changes,
/// and serves as the "tune each component independently" strawman discussed
/// in Section VII.

#include <deque>
#include <optional>

#include "core/strategy.hpp"

namespace harmony {

class CoordinateDescent final : public SearchStrategy {
 public:
  /// `line_samples` == 0 explores only the +-1 lattice neighbors of the
  /// incumbent (classic greedy descent). With `line_samples` > 0 each sweep
  /// instead evaluates that many evenly spaced values across each
  /// parameter's full range — a per-coordinate line search that can jump
  /// into narrow optima such as the block-aligned decompositions of the
  /// paper's PETSc study, where +-1 moves see no gradient at all.
  CoordinateDescent(const ParamSpace& space,
                    std::optional<Config> initial = std::nullopt,
                    int max_sweeps = 50, int line_samples = 0);

  [[nodiscard]] std::optional<Config> propose() override;
  void report(const Config& c, const EvaluationResult& r) override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override;
  [[nodiscard]] double best_objective() const override;
  [[nodiscard]] std::string name() const override { return "coordinate-descent"; }

  [[nodiscard]] int sweeps_completed() const noexcept { return sweeps_; }

 private:
  void refill_queue();

  const ParamSpace* space_;
  Config incumbent_;
  bool incumbent_evaluated_ = false;
  double incumbent_value_;
  std::deque<Config> queue_;
  std::optional<Config> pending_;
  bool improved_this_sweep_ = false;
  int sweeps_ = 0;
  int max_sweeps_;
  int line_samples_;
  bool done_ = false;
  std::optional<Config> best_;
  double best_value_;
};

}  // namespace harmony
