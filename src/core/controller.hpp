#pragma once

/// \file controller.hpp
/// The one Adaptation Controller (paper Fig. 1). SearchController owns the
/// whole tuning loop — proposal budgeting (distinct-evaluation vs proposal
/// caps), EvalCache memoization, History recording, SearchTracer events and
/// obs metrics — and is parameterized by an EvalBackend that knows how a
/// candidate configuration is actually measured:
///
///  * SerialEvalBackend      — call an Evaluator in-process (Tuner facade).
///  * ShortRunEvalBackend    — one representative short run per candidate,
///                             with restart/warm-up cost accounting
///                             (OfflineDriver facade).
///  * engine::PoolEvalBackend — dispatch a whole batch across a thread pool
///                             with a concurrent, coalescing cache
///                             (ParallelOfflineDriver facade).
///
/// The controller is batch-native: it drives a BatchSearchStrategy, and any
/// serial SearchStrategy rides along through SequentialBatchAdapter with
/// batch size 1, which keeps trajectories bitwise-identical to a serial
/// loop. It also exposes an incremental ask/tell surface for deployments
/// where the measurement happens elsewhere (the TCP tuning server and the
/// in-application Session facade).

#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/history.hpp"
#include "core/param_space.hpp"
#include "core/point_key.hpp"
#include "core/strategy.hpp"
#include "core/types.hpp"

namespace harmony::obs {
class SearchTracer;
}  // namespace harmony::obs

namespace harmony {

/// Loop options shared by every facade (TunerOptions, OfflineOptions,
/// engine::ParallelOfflineOptions all inherit these fields).
struct ControllerOptions {
  /// Memoize evaluations per lattice point.
  bool use_cache = true;

  /// Optional per-evaluation tracer (not owned; may be null). When set, one
  /// TraceEvent is recorded per proposal — strategy, point, objective, cache
  /// hit/miss, wall-clock span — independent of obs::enabled(), which only
  /// gates the aggregate metrics. Feed the JSONL export to tools/report_gen
  /// for the HTML convergence report.
  obs::SearchTracer* tracer = nullptr;
};

/// One representative short run of the application under configuration `c`,
/// executing `steps` time steps. Returns per-run measurements.
struct ShortRunResult {
  double measured_s = 0.0;  ///< time of the measured region (the objective)
  double warmup_s = 0.0;    ///< time spent warming up before measurement
  bool ok = true;           ///< false when the run failed under this config
};

using ShortRunFn = std::function<ShortRunResult(const Config&, int steps)>;

/// Outcome of measuring one candidate through an EvalBackend.
struct EvalOutcome {
  EvaluationResult result;
  bool ran = true;      ///< a fresh evaluation happened (charges the budget)
  double cost_s = 0.0;  ///< tuning cost charged when ran (restart+warmup+run)

  /// True when `result` is a model prediction rather than a measurement
  /// (engine::SurrogateEvalBackend skipping a low-ranked candidate). The
  /// controller reports a speculative result to the strategy — that is the
  /// whole point of pre-ranking — but never lets it charge the budget,
  /// enter the cache, update the incumbent, or land in History. No backend
  /// sets this by default, so trajectories without a surrogate are
  /// untouched.
  bool speculative = false;
};

/// How candidates get measured. The backend owns the evaluation side of the
/// loop: launching runs, backend-level caching/coalescing, per-run metrics
/// and (for concurrent backends) per-worker trace events.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  struct Context {
    const ParamSpace* space = nullptr;
    obs::SearchTracer* tracer = nullptr;
    std::string strategy_name;
  };

  /// Measure every configuration in `batch`, element-wise.
  [[nodiscard]] virtual std::vector<EvalOutcome> evaluate(
      const std::vector<Config>& batch, const Context& ctx) = 0;

  /// How many candidates the backend can usefully measure at once — the
  /// controller never asks a strategy for a larger batch.
  [[nodiscard]] virtual std::size_t concurrency() const { return 1; }

  /// True when the backend records trace events itself (concurrent backends
  /// trace from their workers); the controller then does not double-record.
  [[nodiscard]] virtual bool traces() const { return false; }

  /// Backend-level cache statistics (0 for backends without a cache).
  [[nodiscard]] virtual std::size_t cache_hits() const { return 0; }
  [[nodiscard]] virtual std::size_t cache_coalesced() const { return 0; }
};

/// In-process evaluation of an Evaluator callback (the Tuner facade).
class SerialEvalBackend final : public EvalBackend {
 public:
  explicit SerialEvalBackend(const Evaluator& evaluate);

  [[nodiscard]] std::vector<EvalOutcome> evaluate(const std::vector<Config>& batch,
                                                  const Context& ctx) override;

 private:
  const Evaluator* evaluate_;
};

/// One representative short run per candidate (paper Section III): stop the
/// application, apply the configuration, restart, warm up, measure. Every
/// component of that cost is charged to the tuning bill. Emits the
/// configured run counter / histogram per fresh run.
class ShortRunEvalBackend final : public EvalBackend {
 public:
  ShortRunEvalBackend(const ShortRunFn& run, int steps, double restart_overhead_s,
                      std::string runs_counter, std::string run_histogram);

  [[nodiscard]] std::vector<EvalOutcome> evaluate(const std::vector<Config>& batch,
                                                  const Context& ctx) override;

 private:
  const ShortRunFn* run_;
  int steps_;
  double restart_overhead_s_;
  std::string runs_counter_;
  std::string run_histogram_;
};

/// Budgets for one controller run.
struct ControllerLimits {
  /// Budget of *distinct* evaluations (cache misses). The paper reports
  /// tuning cost in these units ("27 iterations", "120 tuning steps").
  int max_evaluations = 100;

  /// Hard cap on strategy proposals, cached or not, as a loop guard.
  int max_proposals = 100000;
};

/// Deployment-specific obs wiring. Empty names disable the corresponding
/// counter; an empty status_id disables live-status publishing.
struct ControllerHooks {
  std::string proposals_counter;  ///< counted once per proposal
  std::string batches_counter;    ///< counted once per dispatched batch
  std::string cache_hits_counter; ///< counted once per controller-cache hit
  std::string status_id;          ///< live-status session id ("offline/3")
  std::string status_phase;       ///< initial phase label
  bool status_batch_phase = false;///< relabel the phase "batch K" per batch
};

struct ControllerResult {
  std::optional<Config> best;
  EvaluationResult best_result;  ///< result recorded for the final incumbent
  /// Objective of the incumbent; +inf when nothing valid was observed.
  double best_objective = std::numeric_limits<double>::infinity();
  int evaluations = 0;           ///< distinct (budget-charged) evaluations
  int proposals = 0;             ///< total strategy proposals served
  int batches = 0;               ///< batches dispatched to the backend
  double total_cost_s = 0.0;     ///< summed backend cost (restart+warmup+run)
  std::size_t cache_hits = 0;    ///< controller-cache hits
  bool strategy_converged = false;
};

class SearchController {
 public:
  /// `cache` (not owned, may be null) is the controller-level memoization
  /// table; null disables it. Backends with their own cache (the thread-pool
  /// backend) run without a controller cache so every candidate reaches the
  /// backend.
  SearchController(const ParamSpace& space, ControllerLimits limits,
                   ControllerHooks hooks = {}, obs::SearchTracer* tracer = nullptr,
                   EvalCache* cache = nullptr);

  /// Drive the full loop: propose a batch, resolve it against the cache,
  /// measure the misses through the backend, record history, report back.
  ControllerResult run(BatchSearchStrategy& strategy, EvalBackend& backend);

  /// Serial strategies ride the same loop through SequentialBatchAdapter.
  ControllerResult run(SearchStrategy& strategy, EvalBackend& backend);

  /// Incremental surface for deployments that measure elsewhere (tuning
  /// server, in-application Session). ask() is idempotent while a proposal
  /// is outstanding and returns nullopt once the evaluation budget is spent
  /// or the strategy stops proposing; tell() feeds the measurement back.
  /// A speculative tell() carries a model-predicted value: the strategy
  /// hears it, but it charges no budget, never becomes the incumbent and is
  /// not recorded in History — mirroring how the batch loop treats
  /// EvalOutcome::speculative.
  [[nodiscard]] std::optional<Config> ask(SearchStrategy& strategy);
  void tell(SearchStrategy& strategy, const EvaluationResult& r,
            bool speculative = false);
  [[nodiscard]] bool awaiting_tell() const { return pending_.has_value(); }

  [[nodiscard]] int evaluations() const { return evaluations_; }
  [[nodiscard]] int proposals() const { return proposals_; }

  [[nodiscard]] const History& history() const { return history_; }
  [[nodiscard]] History take_history() { return std::move(history_); }

 private:
  /// Record a measurement. Takes the config by value: the batch loop copies
  /// it (the batch is reported to the strategy afterwards), the tell() path
  /// moves its pending config in — steady-state ask/tell round trips then
  /// perform no Config copy at all.
  void note_result(Config c, const EvaluationResult& r, bool cached);

  const ParamSpace* space_;
  ControllerLimits limits_;
  ControllerHooks hooks_;
  obs::SearchTracer* tracer_;
  EvalCache* cache_;
  History history_;

  // Incumbent tracking (valid results only, strict improvement).
  std::optional<Config> best_;
  EvaluationResult best_result_;
  double best_value_;

  int evaluations_ = 0;
  int proposals_ = 0;
  std::size_t cache_hits_ = 0;
  std::optional<Config> pending_;  // ask/tell: proposal awaiting its result

  // Batch-loop scratch, reused across iterations so the steady-state loop
  // allocates only what grows the tables (the vectors keep their capacity
  // and PointKeys keep their slot storage between batches).
  struct BatchScratch {
    std::vector<EvalOutcome> outcomes;
    std::vector<double> t_start_us;
    std::vector<Config> misses;            ///< cache misses, in batch order
    std::vector<std::size_t> miss_at;      ///< batch index of each miss
    std::vector<PointKey> miss_keys;       ///< index-space keys of the misses
    std::vector<EvaluationResult> results; ///< per-slot results for report_batch
    PointKey key;                          ///< per-candidate derivation scratch
  };
  BatchScratch scratch_;
};

}  // namespace harmony
