#include "core/types.hpp"

#include <sstream>

namespace harmony {

std::string to_string(const Value& v) {
  std::ostringstream os;
  if (std::holds_alternative<std::int64_t>(v)) {
    os << std::get<std::int64_t>(v);
  } else if (std::holds_alternative<double>(v)) {
    os << std::get<double>(v);
  } else {
    os << std::get<std::string>(v);
  }
  return os.str();
}

std::string to_string(const Config& c, const std::vector<std::string>& names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < c.values.size(); ++i) {
    if (i != 0) os << ' ';
    if (i < names.size()) os << names[i] << '=';
    os << to_string(c.values[i]);
  }
  return os.str();
}

}  // namespace harmony
