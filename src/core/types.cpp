#include "core/types.hpp"

#include <charconv>
#include <cstdio>

namespace harmony {

void to_string(const Value& v, std::string& out) {
  char buf[64];
  if (std::holds_alternative<std::int64_t>(v)) {
    const auto r = std::to_chars(buf, buf + sizeof(buf), std::get<std::int64_t>(v));
    out.append(buf, static_cast<std::size_t>(r.ptr - buf));
  } else if (std::holds_alternative<double>(v)) {
    // "%g" matches `ostringstream << double` (6 significant digits) — the
    // rendering the wire protocol and golden fixtures were recorded with.
    const int n = std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v));
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  } else {
    out.append(std::get<std::string>(v));
  }
}

std::string to_string(const Value& v) {
  std::string out;
  to_string(v, out);
  return out;
}

std::string to_string(const Config& c, const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < c.values.size(); ++i) {
    if (i != 0) out += ' ';
    if (i < names.size()) {
      out += names[i];
      out += '=';
    }
    to_string(c.values[i], out);
  }
  return out;
}

}  // namespace harmony
