#include "core/controller.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace harmony {

SerialEvalBackend::SerialEvalBackend(const Evaluator& evaluate)
    : evaluate_(&evaluate) {
  if (!evaluate) throw std::invalid_argument("SerialEvalBackend: null evaluator");
}

std::vector<EvalOutcome> SerialEvalBackend::evaluate(const std::vector<Config>& batch,
                                                     const Context& /*ctx*/) {
  std::vector<EvalOutcome> out;
  out.reserve(batch.size());
  for (const auto& c : batch) {
    EvalOutcome o;
    o.result = (*evaluate_)(c);
    out.push_back(std::move(o));
  }
  return out;
}

ShortRunEvalBackend::ShortRunEvalBackend(const ShortRunFn& run, int steps,
                                         double restart_overhead_s,
                                         std::string runs_counter,
                                         std::string run_histogram)
    : run_(&run),
      steps_(steps),
      restart_overhead_s_(restart_overhead_s),
      runs_counter_(std::move(runs_counter)),
      run_histogram_(std::move(run_histogram)) {
  if (!run) throw std::invalid_argument("ShortRunEvalBackend: null run function");
}

std::vector<EvalOutcome> ShortRunEvalBackend::evaluate(const std::vector<Config>& batch,
                                                       const Context& /*ctx*/) {
  std::vector<EvalOutcome> out;
  out.reserve(batch.size());
  for (const auto& c : batch) {
    const ShortRunResult r = (*run_)(c, steps_);
    EvalOutcome o;
    o.cost_s = restart_overhead_s_ + r.warmup_s + r.measured_s;
    o.result.valid = r.ok;
    o.result.objective =
        r.ok ? r.measured_s : std::numeric_limits<double>::infinity();
    o.result.metrics["warmup_s"] = r.warmup_s;
    if (!runs_counter_.empty()) obs::count(runs_counter_);
    if (!run_histogram_.empty()) {
      obs::observe(run_histogram_, r.warmup_s + r.measured_s);
    }
    out.push_back(std::move(o));
  }
  return out;
}

SearchController::SearchController(const ParamSpace& space, ControllerLimits limits,
                                   ControllerHooks hooks, obs::SearchTracer* tracer,
                                   EvalCache* cache)
    : space_(&space),
      limits_(limits),
      hooks_(std::move(hooks)),
      tracer_(tracer),
      cache_(cache),
      history_(space),
      best_value_(std::numeric_limits<double>::infinity()) {
  if (limits.max_evaluations < 1) {
    throw std::invalid_argument("SearchController: max_evaluations < 1");
  }
  if (limits.max_proposals < 1) {
    throw std::invalid_argument("SearchController: max_proposals < 1");
  }
}

void SearchController::note_result(Config c, const EvaluationResult& r,
                                   bool cached) {
  const bool improved = r.valid && r.objective < best_value_;
  if (improved) {
    best_value_ = r.objective;
    best_result_ = r;
    best_ = c;
  }
  history_.record(std::move(c), r, cached);
}

ControllerResult SearchController::run(SearchStrategy& strategy,
                                       EvalBackend& backend) {
  SequentialBatchAdapter adapter(strategy);
  return run(adapter, backend);
}

ControllerResult SearchController::run(BatchSearchStrategy& strategy,
                                       EvalBackend& backend) {
  ControllerResult out;
  const std::string strategy_name = strategy.name();
  const std::size_t batch_cap = std::max<std::size_t>(1, backend.concurrency());

  EvalBackend::Context ctx;
  ctx.space = space_;
  ctx.tracer = tracer_;
  ctx.strategy_name = strategy_name;

  // Live-status slot. The facade only hands us an id while observability is
  // on, so the disabled path publishes nothing.
  obs::StatusRegistry::SessionHandle status;
  if (!hooks_.status_id.empty()) {
    status = obs::StatusRegistry::global().publish_session(hooks_.status_id);
    status.update([&](obs::SessionStatus& s) {
      s.strategy = strategy_name;
      s.phase = hooks_.status_phase;
    });
  }

  while (evaluations_ < limits_.max_evaluations &&
         proposals_ < limits_.max_proposals) {
    // Budget guard: never ask for (and never dispatch) more candidates than
    // the remaining distinct-evaluation budget, so the cap holds even with a
    // whole batch in flight. Cached entries consume no budget; any slack
    // this reservation leaves is available again next batch.
    const std::size_t want =
        std::min(batch_cap,
                 static_cast<std::size_t>(limits_.max_evaluations - evaluations_));
    auto batch = strategy.propose_batch(want);
    if (batch.empty()) break;
    if (batch.size() > want) batch.resize(want);  // defensive prefix cut
    proposals_ += static_cast<int>(batch.size());
    ++out.batches;
    if (!hooks_.batches_counter.empty()) obs::count(hooks_.batches_counter);
    if (!hooks_.proposals_counter.empty()) {
      obs::count(hooks_.proposals_counter, batch.size());
    }

    // Resolve the batch against the controller cache; only misses reach the
    // backend (element order within the miss sub-batch is preserved). All
    // bookkeeping lives in reused scratch: each candidate's PointKey is
    // derived once and reused for the lookup and the post-measurement store,
    // and no per-batch vector is reallocated in steady state.
    auto& outcomes = scratch_.outcomes;
    auto& t_start_us = scratch_.t_start_us;
    auto& misses = scratch_.misses;
    auto& miss_at = scratch_.miss_at;
    auto& miss_keys = scratch_.miss_keys;
    outcomes.clear();
    outcomes.resize(batch.size());
    t_start_us.assign(batch.size(), 0.0);
    misses.clear();
    miss_at.clear();
    miss_keys.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      t_start_us[i] = tracer_ != nullptr ? tracer_->now_us() : 0.0;
      if (cache_ != nullptr) {
        scratch_.key.assign(*space_, batch[i]);
        if (const EvaluationResult* cached = cache_->lookup(scratch_.key)) {
          outcomes[i].result = *cached;
          outcomes[i].ran = false;
          ++cache_hits_;
          if (!hooks_.cache_hits_counter.empty()) {
            obs::count(hooks_.cache_hits_counter);
          }
          continue;
        }
        miss_keys.push_back(scratch_.key);
      }
      misses.push_back(batch[i]);
      miss_at.push_back(i);
    }
    if (!misses.empty()) {
      auto measured = backend.evaluate(misses, ctx);
      if (measured.size() != misses.size()) {
        throw std::logic_error("SearchController: backend batch size mismatch");
      }
      for (std::size_t m = 0; m < misses.size(); ++m) {
        outcomes[miss_at[m]] = std::move(measured[m]);
        if (cache_ != nullptr && outcomes[miss_at[m]].ran) {
          cache_->store(miss_keys[m], outcomes[miss_at[m]].result);
        }
      }
    }

    auto& results = scratch_.results;
    results.clear();
    results.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const EvalOutcome& o = outcomes[i];
      if (tracer_ != nullptr && !backend.traces()) {
        tracer_->record({strategy_name, space_->format(batch[i]),
                         o.result.objective, o.result.valid,
                         /*cache_hit=*/!o.ran, /*thread_lane=*/0, t_start_us[i],
                         tracer_->now_us()});
      }
      if (o.ran) {
        ++evaluations_;
        out.total_cost_s += o.cost_s;
      }
      // Speculative (model-predicted) outcomes reach the strategy only:
      // History and the incumbent record measurements exclusively, so the
      // reported best is always a real evaluation.
      if (!o.speculative) note_result(batch[i], o.result, /*cached=*/!o.ran);
      results[i] = o.result;
    }
    strategy.report_batch(batch, results);

    if (status.valid()) {
      status.update([&](obs::SessionStatus& s) {
        if (hooks_.status_batch_phase) {
          std::string phase = "batch ";
          phase += std::to_string(out.batches);
          s.phase = std::move(phase);
        }
        s.iterations = static_cast<std::uint64_t>(evaluations_);
        s.cache_hits =
            static_cast<std::uint64_t>(cache_hits_ + backend.cache_hits());
        if (best_) {
          s.best_value = best_value_;
          s.best_config = space_->format(*best_);
        }
      });
    }
  }

  out.strategy_converged = strategy.converged();
  out.best = best_;
  out.best_result = best_result_;
  out.best_objective = best_value_;
  out.evaluations = evaluations_;
  out.proposals = proposals_;
  out.cache_hits = cache_hits_;
  return out;
}

std::optional<Config> SearchController::ask(SearchStrategy& strategy) {
  if (pending_) return pending_;  // idempotent re-ask of the outstanding point
  // The budget counts measurements, not proposals: speculative tells leave
  // evaluations_ untouched, so a surrogate-assisted loop keeps asking until
  // enough *real* measurements were spent (max_proposals still bounds it).
  if (evaluations_ >= limits_.max_evaluations) return std::nullopt;
  if (proposals_ >= limits_.max_proposals) return std::nullopt;
  auto proposal = strategy.propose();
  if (!proposal) return std::nullopt;
  ++proposals_;
  pending_ = std::move(*proposal);
  return pending_;
}

void SearchController::tell(SearchStrategy& strategy, const EvaluationResult& r,
                            bool speculative) {
  if (!pending_) {
    throw std::logic_error("SearchController::tell without a pending ask");
  }
  if (tracer_ != nullptr) {
    const double now = tracer_->now_us();
    tracer_->record({strategy.name(), space_->format(*pending_), r.objective,
                     r.valid, /*cache_hit=*/speculative, /*thread_lane=*/0, now,
                     now});
  }
  if (!speculative) ++evaluations_;
  // Report first, then move the pending config into History — the strategy
  // needs the config intact, and handing History our copy makes the whole
  // tell() round trip Config-copy-free.
  strategy.report(*pending_, r);
  if (!speculative) note_result(std::move(*pending_), r, /*cached=*/false);
  pending_.reset();
}

}  // namespace harmony
