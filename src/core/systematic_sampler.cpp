#include "core/systematic_sampler.hpp"

#include <limits>
#include <stdexcept>

namespace harmony {

SystematicSampler::SystematicSampler(const ParamSpace& space,
                                     std::vector<int> samples_per_dim)
    : space_(&space),
      samples_per_dim_(std::move(samples_per_dim)),
      best_value_(std::numeric_limits<double>::infinity()) {
  if (samples_per_dim_.size() != space.dim()) {
    throw std::invalid_argument("SystematicSampler: samples_per_dim size mismatch");
  }
  init();
}

SystematicSampler::SystematicSampler(const ParamSpace& space, int samples_per_dim)
    : SystematicSampler(space,
                        std::vector<int>(space.dim(), samples_per_dim)) {}

void SystematicSampler::init() {
  grid_coords_.resize(space_->dim());
  plan_size_ = 1;
  for (std::size_t i = 0; i < space_->dim(); ++i) {
    const auto& p = space_->param(i);
    int want = samples_per_dim_[i];
    if (want < 1) throw std::invalid_argument("SystematicSampler: samples < 1");
    // Discrete dims cannot yield more distinct values than their lattice size.
    if (p.count() > 0 && static_cast<std::uint64_t>(want) > p.count()) {
      want = static_cast<int>(p.count());
    }
    auto& g = grid_coords_[i];
    if (want == 1) {
      g.push_back(0.5 * (p.coord_min() + p.coord_max()));
    } else {
      for (int k = 0; k < want; ++k) {
        g.push_back(p.coord_min() + (p.coord_max() - p.coord_min()) *
                                        static_cast<double>(k) /
                                        static_cast<double>(want - 1));
      }
    }
    plan_size_ *= g.size();
  }
  cursor_.assign(space_->dim(), 0);
}

std::optional<Config> SystematicSampler::propose() {
  if (exhausted_) return std::nullopt;
  std::vector<double> coords(space_->dim());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    coords[i] = grid_coords_[i][cursor_[i]];
  }
  // Odometer advance.
  ++emitted_;
  for (std::size_t i = 0; i < cursor_.size(); ++i) {
    if (++cursor_[i] < grid_coords_[i].size()) break;
    cursor_[i] = 0;
    if (i + 1 == cursor_.size()) exhausted_ = true;
  }
  if (emitted_ >= plan_size_) exhausted_ = true;
  return space_->snap(coords);
}

void SystematicSampler::report(const Config& c, const EvaluationResult& r) {
  if (r.valid && r.objective < best_value_) {
    best_value_ = r.objective;
    best_ = c;
  }
}

bool SystematicSampler::converged() const { return exhausted_; }

std::optional<Config> SystematicSampler::best() const { return best_; }

double SystematicSampler::best_objective() const { return best_value_; }

}  // namespace harmony
