#pragma once

/// \file nelder_mead.hpp
/// The Active Harmony Adaptation Controller's kernel: a Nelder–Mead simplex
/// search (paper Section II, citing Nelder & Mead 1965) adapted for tuning:
///
///  * The simplex lives in the continuous coordinate embedding of the
///    parameter space; every evaluation snaps to the nearest integer lattice
///    point, "simply using the resulting values from the nearest integer
///    point in the space to approximate the performance at the selected
///    point" (paper Section II).
///  * Constraints (dependent variables, footnote 2) are honoured by
///    projecting candidate coordinates onto the feasible region before
///    snapping.
///  * Because many continuous points collapse onto one lattice point, the
///    search can stall; an optional restart re-seeds a smaller simplex
///    around the incumbent until the evaluation budget is spent.
///
/// Implemented as an ask/tell state machine so it can serve on-line tuning,
/// off-line short-run tuning and the TCP server alike.

#include <memory>
#include <optional>
#include <vector>

#include "core/constraint.hpp"
#include "core/rng.hpp"
#include "core/strategy.hpp"

namespace harmony {

struct NelderMeadOptions {
  /// Standard simplex coefficients (Lagarias et al. defaults).
  double reflection = 1.0;    ///< rho
  double expansion = 2.0;     ///< chi
  double contraction = 0.5;   ///< gamma
  double shrink = 0.5;        ///< sigma

  /// Initial simplex edge length as a fraction of each coordinate range.
  double initial_step_fraction = 0.25;

  /// Convergence: simplex diameter (in coordinate units) below which the
  /// search is considered converged.
  double diameter_tolerance = 0.5;

  /// Convergence: stop after this many consecutive proposals that failed to
  /// improve the incumbent (0 disables the stall test).
  int max_stall = 0;

  /// Re-seed a fresh, smaller simplex around the incumbent when the simplex
  /// collapses, up to this many times (0 = classic single-descent behaviour).
  int max_restarts = 0;

  /// Scale applied to initial_step_fraction on each restart.
  double restart_shrink = 0.5;

  /// Seed for restart jitter.
  std::uint64_t seed = 42;
};

class NelderMead final : public SearchStrategy {
 public:
  /// Start the search around `initial` (defaults to the space's default
  /// configuration when omitted).
  NelderMead(const ParamSpace& space, NelderMeadOptions opts = {},
             std::optional<Config> initial = std::nullopt,
             ConstraintSet constraints = {});

  [[nodiscard]] std::optional<Config> propose() override;
  void report(const Config& c, const EvaluationResult& r) override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override;
  [[nodiscard]] double best_objective() const override;
  [[nodiscard]] std::string name() const override { return "nelder-mead"; }

  /// Batch-evaluation hook for the parallel engine: every configuration the
  /// state machine may ask for before the current phase resolves, in the
  /// order a serial drive would first need them.
  ///
  ///  * BuildSimplex/Shrink: all not-yet-evaluated vertices (their coordinates
  ///    are fixed for the whole phase, so they are independent).
  ///  * Reflect: the reflection point plus the expansion and both contraction
  ///    points derived from the same centroid/worst pair — evaluating all
  ///    four speculatively and then replaying the standard acceptance rule
  ///    reproduces the serial simplex exactly on deterministic objectives.
  ///  * Expand/Contract phases: just the pending candidate.
  ///
  /// Used by harmony::engine::SpeculativeNelderMead; const, no state change.
  [[nodiscard]] std::vector<Config> speculative_candidates() const;

  /// Current simplex diameter (max pairwise L-inf distance), for tests.
  [[nodiscard]] double simplex_diameter() const;

  /// Human-readable name of the current simplex phase ("build", "reflect",
  /// "expand", "contract-out", "contract-in", "shrink", "done") — published
  /// to the live-status board by the tuning server.
  [[nodiscard]] const char* phase_name() const noexcept;

  /// Number of completed simplex transformations (reflect/expand/...).
  [[nodiscard]] int transformations() const noexcept { return transformations_; }
  [[nodiscard]] int restarts_used() const noexcept { return restarts_used_; }

 private:
  struct Vertex {
    std::vector<double> coords;
    double value = 0.0;
    bool evaluated = false;
  };

  enum class Phase {
    BuildSimplex,   // evaluating the n+1 initial vertices
    Reflect,
    Expand,
    ContractOutside,
    ContractInside,
    Shrink,
    Done,
  };

  /// Project + snap a coordinate vector into a feasible configuration.
  [[nodiscard]] Config make_config(std::vector<double> coords) const;

  void order_simplex();
  [[nodiscard]] std::vector<double> centroid_excluding_worst() const;
  void begin_iteration();
  void begin_shrink();
  void maybe_restart();
  void seed_simplex(const std::vector<double>& center, double step_fraction);

  const ParamSpace* space_;
  NelderMeadOptions opts_;
  ConstraintSet constraints_;
  Rng rng_;

  std::vector<Vertex> simplex_;
  Phase phase_ = Phase::BuildSimplex;
  std::size_t pending_index_ = 0;       // vertex being evaluated in Build/Shrink
  std::vector<double> pending_coords_;  // candidate point awaiting a report
  double reflected_value_ = 0.0;
  std::vector<double> reflected_coords_;

  std::optional<Config> best_;
  double best_value_ = 0.0;
  int stall_count_ = 0;
  int transformations_ = 0;
  int restarts_used_ = 0;
  double current_step_fraction_;
  bool awaiting_report_ = false;
};

}  // namespace harmony
