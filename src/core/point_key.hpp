#pragma once

/// \file point_key.hpp
/// Compact index-space identity of a lattice point — the allocation-free
/// replacement for ParamSpace::key(Config) on every tuner-internal hot path
/// (evaluation caches, batch dedup, pending-result tables). A PointKey is a
/// fixed small-buffer array of per-parameter lattice coordinates plus a
/// 64-bit hash precomputed once at derivation, so a cache probe costs one
/// integer compare per parameter instead of formatting and hashing a heap
/// string.
///
/// Per-parameter slot encoding (one 64-bit slot per parameter, in space
/// order):
///  * Int  — the value itself (the lattice index up to the affine lo/step
///           offset, which cancels out of equality);
///  * Enum — the label's choice index;
///  * Real — the bit pattern of the value canonicalized through the same
///           6-significant-digit "%g" rendering ParamSpace::key uses, so two
///           reals share a PointKey exactly when they share a string key.
///
/// Equality classes are therefore identical to ParamSpace::key: for any two
/// configurations a, b of the same space,
///     PointKey(space, a) == PointKey(space, b)
///       <=>  space.key(a) == space.key(b)
/// (tests/core/test_point_key.cpp sweeps this property over int/real/enum
/// spaces, including snapped reals and out-of-range repair).
///
/// ParamSpace::key() itself survives — but only for human-readable output:
/// logs, CSV exports and debugging. Nothing on the search hot path derives a
/// string key anymore.
///
/// Spaces with up to kInlineSlots parameters (every paper space, and every
/// bench space in this repo) stay entirely inline: deriving, copying and
/// hashing a PointKey performs no heap allocation. Larger spaces spill to a
/// heap block once and reuse it through assign().

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony {

class PointKey {
 public:
  /// Parameter count kept inline (no heap). Chosen to cover the paper's
  /// spaces (2-6 parameters) with the key still two cache lines total.
  static constexpr std::size_t kInlineSlots = 6;

  /// Empty key: equal only to other empty keys derived from a 0-dim space.
  PointKey() = default;

  /// Derive the key of `c` in `space`. Throws std::invalid_argument on a
  /// dimension mismatch or an enum label the parameter does not contain.
  PointKey(const ParamSpace& space, const Config& c) { assign(space, c); }

  PointKey(const PointKey& other) { copy_from(other); }
  PointKey& operator=(const PointKey& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  PointKey(PointKey&& other) noexcept { move_from(other); }
  PointKey& operator=(PointKey&& other) noexcept {
    if (this != &other) move_from(other);
    return *this;
  }

  /// Re-derive in place, reusing any heap block already owned — the scratch
  /// path hot loops use so steady-state key derivation never allocates.
  void assign(const ParamSpace& space, const Config& c);

  /// Reset to the empty key (keeps a heap block for later assign() reuse).
  void clear() noexcept {
    size_ = 0;
    hash_ = kEmptyHash;
  }

  /// Precomputed hash — also the value PointKeyHash returns, so unordered
  /// and flat tables never rehash the slots.
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Lattice coordinate of parameter `i` (no bounds check).
  [[nodiscard]] std::uint64_t slot(std::size_t i) const noexcept {
    return data()[i];
  }

  [[nodiscard]] bool operator==(const PointKey& other) const noexcept {
    if (hash_ != other.hash_ || size_ != other.size_) return false;
    const std::uint64_t* a = data();
    const std::uint64_t* b = other.data();
    for (std::uint32_t i = 0; i < size_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  // splitmix64-seeded FNV-style mix of the empty key.
  static constexpr std::uint64_t kEmptyHash = 0x9e3779b97f4a7c15ull;

  [[nodiscard]] const std::uint64_t* data() const noexcept {
    return heap_ ? heap_.get() : inline_;
  }
  [[nodiscard]] std::uint64_t* data() noexcept {
    return heap_ ? heap_.get() : inline_;
  }

  /// Ensure storage for `n` slots; returns the slot array.
  std::uint64_t* prepare(std::size_t n);

  void copy_from(const PointKey& other);

  /// Steal other's storage and leave it as a valid empty key.
  void move_from(PointKey& other) noexcept {
    for (std::size_t i = 0; i < kInlineSlots; ++i) inline_[i] = other.inline_[i];
    heap_ = std::move(other.heap_);
    size_ = other.size_;
    heap_cap_ = other.heap_cap_;
    hash_ = other.hash_;
    other.heap_cap_ = 0;
    other.clear();
  }

  std::uint64_t inline_[kInlineSlots] = {};
  std::unique_ptr<std::uint64_t[]> heap_;  ///< engaged only when dim > inline
  std::uint32_t size_ = 0;
  std::uint32_t heap_cap_ = 0;
  std::uint64_t hash_ = kEmptyHash;
};

/// Hasher adapter: the hash is already computed and stored in the key.
struct PointKeyHash {
  [[nodiscard]] std::size_t operator()(const PointKey& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};

}  // namespace harmony
