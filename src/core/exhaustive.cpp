#include "core/exhaustive.hpp"

#include <limits>
#include <stdexcept>

namespace harmony {

Exhaustive::Exhaustive(const ParamSpace& space, std::uint64_t max_points)
    : space_(&space), best_value_(std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i < space.dim(); ++i) {
    const auto& p = space.param(i);
    if (p.count() == 0) {
      throw std::invalid_argument("Exhaustive: continuous parameter '" + p.name() +
                                  "' cannot be enumerated");
    }
    if (plan_size_ > max_points / p.count() + 1) {
      throw std::invalid_argument("Exhaustive: search space exceeds max_points");
    }
    plan_size_ *= p.count();
  }
  if (plan_size_ > max_points) {
    throw std::invalid_argument("Exhaustive: search space exceeds max_points");
  }
  cursor_.assign(space.dim(), 0);
}

std::optional<Config> Exhaustive::propose() {
  if (exhausted_) return std::nullopt;
  std::vector<double> coords(space_->dim());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    coords[i] = static_cast<double>(cursor_[i]);
  }
  ++emitted_;
  for (std::size_t i = 0; i < cursor_.size(); ++i) {
    if (++cursor_[i] < space_->param(i).count()) break;
    cursor_[i] = 0;
    if (i + 1 == cursor_.size()) exhausted_ = true;
  }
  if (emitted_ >= plan_size_) exhausted_ = true;
  return space_->snap(coords);
}

void Exhaustive::report(const Config& c, const EvaluationResult& r) {
  if (r.valid && r.objective < best_value_) {
    best_value_ = r.objective;
    best_ = c;
  }
}

bool Exhaustive::converged() const { return exhausted_; }

std::optional<Config> Exhaustive::best() const { return best_; }

double Exhaustive::best_objective() const { return best_value_; }

}  // namespace harmony
