#pragma once

/// \file server_session.hpp
/// Transport-independent protocol state machine for one tuning-server
/// connection. Both server threading modes drive the same ServerConnection:
/// the legacy blocking path feeds it one line at a time off a LineReader,
/// the event-loop path feeds it every complete line found in a readable
/// burst (which is how pipelined clients get their verbs answered in order,
/// in one write). Replies are appended to a caller-owned output buffer —
/// the handler never touches a socket.
///
/// Hot-path discipline: FETCH / REPORT / REPORT+FETCH parse through the
/// zero-copy proto::MessageView tokenizer (scratch reused per connection)
/// and encode through the append-into-buffer proto::encode_config, so the
/// steady-state request path performs no heap allocations except when the
/// incumbent improves (the live-status board then reformats its config).

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#ifndef NDEBUG
#include <thread>
#endif
#include <vector>

#include "core/controller.hpp"
#include "core/param_space.hpp"
#include "core/protocol.hpp"
#include "core/server.hpp"
#include "core/strategy.hpp"
#include "core/strategy_registry.hpp"
#include "core/work_sink.hpp"
#include "obs/status.hpp"

namespace harmony {

class ServerConnection {
 public:
  /// `opts` must outlive the connection (it belongs to the TuningServer).
  ServerConnection(const ServerOptions& opts, int session_no);
  ~ServerConnection();

  ServerConnection(const ServerConnection&) = delete;
  ServerConnection& operator=(const ServerConnection&) = delete;

  /// Handle one protocol line (no terminator), appending the reply — which
  /// may span several lines for STATUS/METRICS/LOG — to `out`. Returns
  /// false when the connection should be closed once `out` is flushed
  /// (BYE). Unknown or malformed verbs answer ERR and keep the connection
  /// open, so one bad verb in a pipelined burst poisons nothing else.
  [[nodiscard]] bool handle_line(std::string_view line, std::string& out);

  /// Completed fetch/report round trips (one per evaluation).
  [[nodiscard]] int roundtrips() const noexcept { return roundtrips_; }

  [[nodiscard]] const std::string& session_id() const noexcept {
    return session_id_;
  }

  /// Transport-provided sender for server-initiated lines (WORK pushes).
  /// Must deliver the payload to this connection's peer from any thread;
  /// transports that cannot push (none today) leave it unset and ATTACH is
  /// refused. Set once, right after construction, before any handle_line.
  void set_sender(WorkSink::PushFn sender) { sender_ = std::move(sender); }

  /// Nonzero once this connection ATTACHed as a fleet worker.
  [[nodiscard]] std::uint64_t worker_id() const noexcept { return worker_id_; }

  /// Enable the batched REPORT+FETCH framing (BATCH verb). The event-loop
  /// transport turns it on at adoption; the legacy stack leaves it off, so
  /// BATCH there answers a clean ERR (the negotiation probe tells clients
  /// which stack they reached). Set before any handle_line.
  void enable_batch(bool on) noexcept { batch_enabled_ = on; }
  [[nodiscard]] bool batch_enabled() const noexcept { return batch_enabled_; }

  /// Tenant rollup slot once a TENANT line was admitted (null otherwise).
  [[nodiscard]] const obs::StatusRegistry::TenantSlot* tenant() const noexcept {
    return tenant_;
  }

 private:
  void publish(const char* phase_override = nullptr);
  /// True when a CONFIG line was appended, false for DONE.
  bool append_fetch_reply(std::string& out, bool count_fresh);
  bool handle_report_value(std::string_view field, std::string& out,
                           std::string_view verb);
  void handle_attach(std::string& out);
  void handle_result(std::string& out);
  void handle_batch(std::string& out);
  /// False when the connection must close (over-quota shed).
  [[nodiscard]] bool handle_tenant(std::string& out);

  /// Close out one request verb: record its handle time into the
  /// per-connection and process-wide latency histograms, refresh the
  /// session's published quantiles, log it when over the slow-request SLO,
  /// and emit the root span when the request is sampled.
  void finish_request(std::string_view verb,
                      std::chrono::steady_clock::time_point t0);

  /// Emit a child span of the current request (tell/ask stages) ending now
  /// and lasting `dur_us`. No-op unless the request is sampled and the
  /// server has a tracer.
  void record_stage_span(const char* name, double dur_us);

  const ServerOptions* opts_;
  std::string session_id_;
  ParamSpace space_;
  std::unique_ptr<SearchStrategy> search_;
  std::optional<SearchController> controller_;  // constructed at START
  int budget_;
  std::string strategy_name_;  // chosen via STRATEGY; empty = default
  StrategyOptions strategy_opts_;
  int roundtrips_ = 0;
  double published_best_ = std::numeric_limits<double>::infinity();
  obs::StatusRegistry::SessionHandle status_;
  proto::MessageView msg_;  // reusable tokenizer scratch

  // Fleet-worker state: the transport's push sender and, once ATTACHed, the
  // dispatcher-issued worker id (0 = plain tuning session). The destructor
  // detaches, so a dying worker's in-flight WORK re-dispatches elsewhere.
  WorkSink::PushFn sender_;
  std::uint64_t worker_id_ = 0;

  // Tracing + latency state for the request currently inside handle_line().
  // trace_ is zeroed per request; an unsampled request touches none of the
  // span machinery and allocates nothing. latency_ is the per-connection
  // HDR histogram behind the session's published p50/p95/p99 (heap-held:
  // it is ~22 KiB and most ServerConnection uses are short-lived tests).
  obs::TraceContext trace_;
  bool measure_stages_ = false;
  double stage_tell_us_ = 0.0;
  double stage_ask_us_ = 0.0;
  std::uint64_t requests_ = 0;
  std::unique_ptr<obs::HdrHistogram> latency_;

  // Multi-tenancy + batched framing. tenant_ is resolved once at TENANT
  // time (registry table lock) and only its atomics are touched from then
  // on — the request hot path stays free of shared mutexes.
  obs::StatusRegistry::TenantSlot* tenant_ = nullptr;
  bool batch_enabled_ = false;

#ifndef NDEBUG
  // Debug-build shard-affinity check: a session's verbs must all be handled
  // by the thread that first touched it (its reactor shard, or its legacy
  // worker thread). Crossing shards would mean connection state is shared
  // without locks — assert instead of racing.
  std::thread::id home_thread_{};
#endif
};

}  // namespace harmony
