#include "core/evaluation.hpp"

#include <cassert>
#include <limits>

namespace harmony {

EvaluationResult EvaluationResult::infeasible() {
  EvaluationResult r;
  r.objective = std::numeric_limits<double>::infinity();
  r.valid = false;
  return r;
}

void EvalCache::check_thread() const {
#ifndef NDEBUG
  if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
  // EvalCache is single-threaded by contract (see header); the concurrent
  // path is engine::ConcurrentEvalCache.
  assert(owner_ == std::this_thread::get_id() &&
         "EvalCache used from multiple threads");
#endif
}

std::optional<EvaluationResult> EvalCache::lookup(const Config& c) const {
  scratch_.assign(*space_, c);
  const EvaluationResult* r = lookup(scratch_);
  if (r == nullptr) return std::nullopt;
  return *r;
}

const EvaluationResult* EvalCache::lookup(const PointKey& k) const {
  check_thread();
  const EvaluationResult* r = table_.find(k);
  if (r == nullptr) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return r;
}

void EvalCache::store(const Config& c, const EvaluationResult& r) {
  scratch_.assign(*space_, c);
  store(scratch_, r);
}

void EvalCache::store(const PointKey& k, const EvaluationResult& r) {
  check_thread();
  table_.insert_or_assign(k, r);
}

void EvalCache::clear() {
  check_thread();
  table_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace harmony
