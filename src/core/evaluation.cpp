#include "core/evaluation.hpp"

#include <limits>

namespace harmony {

EvaluationResult EvaluationResult::infeasible() {
  EvaluationResult r;
  r.objective = std::numeric_limits<double>::infinity();
  r.valid = false;
  return r;
}

std::optional<EvaluationResult> EvalCache::lookup(const Config& c) const {
  const auto it = table_.find(space_->key(c));
  if (it == table_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvalCache::store(const Config& c, const EvaluationResult& r) {
  table_[space_->key(c)] = r;
}

void EvalCache::clear() {
  table_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace harmony
