#pragma once

/// \file types.hpp
/// Fundamental value/configuration types shared across the Active Harmony
/// reproduction. A tunable parameter takes one of three native value kinds:
/// a 64-bit integer, a double, or an enumeration label (stored as a string).

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace harmony {

/// Native value of one tunable parameter.
using Value = std::variant<std::int64_t, double, std::string>;

/// A configuration is one concrete assignment of every parameter in a
/// ParamSpace, stored positionally (index i holds the value of parameter i).
struct Config {
  std::vector<Value> values;

  bool operator==(const Config& other) const = default;

  [[nodiscard]] bool empty() const noexcept { return values.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
};

/// Render a single value for logs and the wire protocol.
[[nodiscard]] std::string to_string(const Value& v);

/// Append-into-buffer variant for hot paths (the wire encoder, cache-key
/// rendering): appends the same text `to_string(v)` returns — ints verbatim,
/// doubles in %g with 6 significant digits, enum labels as-is — without
/// allocating intermediate strings.
void to_string(const Value& v, std::string& out);

/// Render a configuration as "name=value name=value ..." given names; if
/// names are unavailable pass an empty vector to get positional "v0 v1 ...".
[[nodiscard]] std::string to_string(const Config& c,
                                    const std::vector<std::string>& names = {});

}  // namespace harmony
