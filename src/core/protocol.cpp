#include "core/protocol.hpp"

#include <charconv>
#include <sstream>

namespace harmony::proto {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(s);
  while (std::getline(is, field, sep)) {
    if (!field.empty()) out.push_back(field);
  }
  return out;
}

std::optional<std::int64_t> parse_i64(const std::string& s) {
  std::int64_t v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_f64(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<Message> parse_line(const std::string& line) {
  std::istringstream is(line);
  Message m;
  if (!(is >> m.verb)) return std::nullopt;
  std::string field;
  while (is >> field) m.args.push_back(std::move(field));
  return m;
}

std::string format(const Message& m) {
  std::ostringstream os;
  os << m.verb;
  for (const auto& a : m.args) os << ' ' << a;
  return os.str();
}

std::string encode_config(const ParamSpace& space, const Config& c) {
  (void)space;
  std::ostringstream os;
  for (std::size_t i = 0; i < c.values.size(); ++i) {
    if (i != 0) os << ' ';
    os << to_string(c.values[i]);
  }
  return os.str();
}

std::optional<Config> decode_config(const ParamSpace& space,
                                    const std::vector<std::string>& args) {
  if (args.size() != space.dim()) return std::nullopt;
  Config c;
  c.values.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& p = space.param(i);
    switch (p.type()) {
      case ParamType::Int: {
        const auto v = parse_i64(args[i]);
        if (!v || !p.contains(Value{*v})) return std::nullopt;
        c.values.emplace_back(*v);
        break;
      }
      case ParamType::Real: {
        const auto v = parse_f64(args[i]);
        if (!v || !p.contains(Value{*v})) return std::nullopt;
        c.values.emplace_back(*v);
        break;
      }
      case ParamType::Enum: {
        if (!p.contains(Value{args[i]})) return std::nullopt;
        c.values.emplace_back(args[i]);
        break;
      }
    }
  }
  return c;
}

std::string encode_param(const Parameter& p) {
  std::ostringstream os;
  os << "PARAM ";
  switch (p.type()) {
    case ParamType::Int:
      os << "INT " << p.name() << ' ' << p.int_lo() << ' ' << p.int_hi() << ' '
         << p.int_step();
      break;
    case ParamType::Real:
      os << "REAL " << p.name() << ' ' << p.real_lo() << ' ' << p.real_hi();
      break;
    case ParamType::Enum: {
      os << "ENUM " << p.name() << ' ';
      const auto& cs = p.choices();
      for (std::size_t i = 0; i < cs.size(); ++i) {
        if (i != 0) os << ',';
        os << cs[i];
      }
      break;
    }
  }
  return os.str();
}

std::optional<Parameter> decode_param(const std::vector<std::string>& args) {
  if (args.size() < 2) return std::nullopt;
  const std::string& kind = args[0];
  const std::string& name = args[1];
  try {
    if (kind == "INT") {
      if (args.size() != 5) return std::nullopt;
      const auto lo = parse_i64(args[2]);
      const auto hi = parse_i64(args[3]);
      const auto step = parse_i64(args[4]);
      if (!lo || !hi || !step) return std::nullopt;
      return Parameter::Integer(name, *lo, *hi, *step);
    }
    if (kind == "REAL") {
      if (args.size() != 4) return std::nullopt;
      const auto lo = parse_f64(args[2]);
      const auto hi = parse_f64(args[3]);
      if (!lo || !hi) return std::nullopt;
      return Parameter::Real(name, *lo, *hi);
    }
    if (kind == "ENUM") {
      if (args.size() != 3) return std::nullopt;
      auto choices = split(args[2], ',');
      if (choices.empty()) return std::nullopt;
      return Parameter::Enum(name, std::move(choices));
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace harmony::proto
