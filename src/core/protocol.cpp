#include "core/protocol.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace harmony::proto {

namespace {

constexpr std::string_view kSpaces = " \t";

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto pos = s.find(sep, start);
    const auto end = pos == std::string_view::npos ? s.size() : pos;
    if (end > start) out.emplace_back(s.substr(start, end - start));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

/// Append one Value without heap allocation — the shared append-into-buffer
/// renderer in core/types.cpp (same text to_string(v) returns).
void append_value(const Value& v, std::string& out) { harmony::to_string(v, out); }

template <typename Args>
std::optional<Config> decode_config_impl(const ParamSpace& space, const Args& args) {
  if (args.size() != space.dim()) return std::nullopt;
  Config c;
  c.values.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto& p = space.param(i);
    const std::string_view field = args[i];
    switch (p.type()) {
      case ParamType::Int: {
        const auto v = parse_i64(field);
        if (!v || !p.contains(Value{*v})) return std::nullopt;
        c.values.emplace_back(*v);
        break;
      }
      case ParamType::Real: {
        const auto v = parse_f64(field);
        if (!v || !p.contains(Value{*v})) return std::nullopt;
        c.values.emplace_back(*v);
        break;
      }
      case ParamType::Enum: {
        std::string label(field);
        if (!p.contains(Value{label})) return std::nullopt;
        c.values.emplace_back(std::move(label));
        break;
      }
    }
  }
  return c;
}

template <typename Args>
std::optional<Parameter> decode_param_impl(const Args& args) {
  if (args.size() < 2) return std::nullopt;
  const std::string_view kind = args[0];
  const std::string name(args[1]);
  try {
    if (kind == "INT") {
      if (args.size() != 5) return std::nullopt;
      const auto lo = parse_i64(args[2]);
      const auto hi = parse_i64(args[3]);
      const auto step = parse_i64(args[4]);
      if (!lo || !hi || !step) return std::nullopt;
      return Parameter::Integer(name, *lo, *hi, *step);
    }
    if (kind == "REAL") {
      if (args.size() != 4) return std::nullopt;
      const auto lo = parse_f64(args[2]);
      const auto hi = parse_f64(args[3]);
      if (!lo || !hi) return std::nullopt;
      return Parameter::Real(name, *lo, *hi);
    }
    if (kind == "ENUM") {
      if (args.size() != 3) return std::nullopt;
      auto choices = split(args[2], ',');
      if (choices.empty()) return std::nullopt;
      return Parameter::Enum(name, std::move(choices));
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::int64_t> parse_i64(std::string_view s) {
  std::int64_t v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_f64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is not universally available; strtod needs a
  // terminated buffer. Protocol number fields are short, so a stack copy
  // keeps this allocation-free.
  char buf[64];
  if (s.size() >= sizeof(buf)) return std::nullopt;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nullopt;
  return v;
}

bool is_trace_token(std::string_view field) noexcept {
  return field.size() > 2 && field[0] == 'T' && field[1] == '=';
}

std::optional<obs::TraceContext> parse_trace(std::string_view field) noexcept {
  if (!is_trace_token(field)) return std::nullopt;
  const std::string_view body = field.substr(2);
  const auto dash = body.find('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 1 >= body.size()) {
    return std::nullopt;
  }
  const auto parse_hex = [](std::string_view s) -> std::optional<std::uint64_t> {
    if (s.empty() || s.size() > 16) return std::nullopt;
    std::uint64_t v{};
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return v;
  };
  const auto trace = parse_hex(body.substr(0, dash));
  const auto span = parse_hex(body.substr(dash + 1));
  if (!trace || !span || *trace == 0) return std::nullopt;
  obs::TraceContext ctx;
  ctx.trace_id = *trace;
  ctx.span_id = *span;
  return ctx;
}

void append_trace(const obs::TraceContext& ctx, std::string& out) {
  if (!ctx.sampled()) return;
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), " T=%016llx-%016llx",
                              static_cast<unsigned long long>(ctx.trace_id),
                              static_cast<unsigned long long>(ctx.span_id));
  out.append(buf, static_cast<std::size_t>(n));
}

Message MessageView::to_message() const {
  Message m;
  m.verb = std::string(verb);
  m.args.reserve(args.size());
  for (const auto a : args) m.args.emplace_back(a);
  return m;
}

bool parse_line(std::string_view line, MessageView& out) {
  out.verb = {};
  out.args.clear();
  std::size_t pos = line.find_first_not_of(kSpaces);
  while (pos != std::string_view::npos) {
    auto end = line.find_first_of(kSpaces, pos);
    if (end == std::string_view::npos) end = line.size();
    const auto field = line.substr(pos, end - pos);
    if (out.verb.empty() && out.args.empty()) {
      out.verb = field;
    } else {
      out.args.push_back(field);
    }
    pos = line.find_first_not_of(kSpaces, end);
  }
  return !out.verb.empty();
}

std::optional<Message> parse_line(const std::string& line) {
  MessageView view;
  if (!parse_line(std::string_view(line), view)) return std::nullopt;
  return view.to_message();
}

std::string format(const Message& m) {
  std::string out = m.verb;
  for (const auto& a : m.args) {
    out += ' ';
    out += a;
  }
  return out;
}

std::string encode_config(const ParamSpace& space, const Config& c) {
  std::string out;
  encode_config(space, c, out);
  return out;
}

void encode_config(const ParamSpace& space, const Config& c, std::string& out) {
  (void)space;
  for (std::size_t i = 0; i < c.values.size(); ++i) {
    if (i != 0) out += ' ';
    append_value(c.values[i], out);
  }
}

std::optional<Config> decode_config(const ParamSpace& space,
                                    const std::vector<std::string>& args) {
  return decode_config_impl(space, args);
}

std::optional<Config> decode_config(const ParamSpace& space, const MessageView& m) {
  return decode_config_impl(space, m.args);
}

std::optional<Config> decode_config(const ParamSpace& space, const MessageView& m,
                                    std::size_t skip) {
  if (m.args.size() < skip) return std::nullopt;
  const std::vector<std::string_view> rest(m.args.begin() + static_cast<long>(skip),
                                           m.args.end());
  return decode_config_impl(space, rest);
}

void encode_work(const ParamSpace& space, std::uint64_t work_id, const Config& c,
                 std::string& out) {
  char buf[32];
  out.append("WORK ");
  const auto r = std::to_chars(buf, buf + sizeof(buf), work_id);
  out.append(buf, static_cast<std::size_t>(r.ptr - buf));
  out.push_back(' ');
  encode_config(space, c, out);
  out.push_back('\n');
}

std::string encode_param(const Parameter& p) {
  std::string out = "PARAM ";
  switch (p.type()) {
    case ParamType::Int:
      out += "INT ";
      out += p.name();
      out += ' ';
      append_value(Value{p.int_lo()}, out);
      out += ' ';
      append_value(Value{p.int_hi()}, out);
      out += ' ';
      append_value(Value{p.int_step()}, out);
      break;
    case ParamType::Real:
      out += "REAL ";
      out += p.name();
      out += ' ';
      append_value(Value{p.real_lo()}, out);
      out += ' ';
      append_value(Value{p.real_hi()}, out);
      break;
    case ParamType::Enum: {
      out += "ENUM ";
      out += p.name();
      out += ' ';
      const auto& cs = p.choices();
      for (std::size_t i = 0; i < cs.size(); ++i) {
        if (i != 0) out += ',';
        out += cs[i];
      }
      break;
    }
  }
  return out;
}

std::optional<Parameter> decode_param(const std::vector<std::string>& args) {
  return decode_param_impl(args);
}

std::optional<Parameter> decode_param(const MessageView& m) {
  return decode_param_impl(m.args);
}

}  // namespace harmony::proto
