#include "core/server_session.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "core/nelder_mead.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace harmony {

namespace {

void reply(std::string& out, std::string_view line) {
  out.append(line);
  out.push_back('\n');
}

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Registry name of the per-verb latency HDR histogram.
const char* verb_hdr_name(std::string_view verb) {
  if (verb == "REPORT+FETCH") return "server.verb.report_fetch_s";
  if (verb == "FETCH") return "server.verb.fetch_s";
  if (verb == "REPORT") return "server.verb.report_s";
  if (verb == "BATCH") return "server.verb.batch_s";
  return "server.verb.result_s";
}

}  // namespace

ServerConnection::ServerConnection(const ServerOptions& opts, int session_no)
    : opts_(&opts),
      session_id_("server/" + std::to_string(session_no)),
      budget_(opts.default_max_iterations),
      status_(obs::StatusRegistry::global().publish_session(session_id_)),
      latency_(std::make_unique<obs::HdrHistogram>()) {
  // Live-status slot for this session. Published unconditionally (the STATUS
  // verb is part of the protocol surface, not passive instrumentation); the
  // handle unpublishes when the connection ends.
  publish();
  obs::log_info("server", "session opened", session_id_);
}

ServerConnection::~ServerConnection() {
  if (worker_id_ != 0 && opts_->fleet != nullptr) {
    // Worker death: the dispatcher re-queues whatever this worker still had
    // in flight, so a killed worker never strands a candidate.
    opts_->fleet->detach(worker_id_);
    obs::log_warn("server", "worker detached (connection closed)", session_id_);
  }
  if (tenant_ != nullptr) {
    tenant_->sessions.fetch_sub(1, std::memory_order_relaxed);
  }
  obs::log_info("server", "session closed", session_id_);
}

void ServerConnection::publish(const char* phase_override) {
  // Reformat the incumbent only when it improved: the steady-state REPORT
  // path then updates two integers under the slot lock instead of
  // re-rendering strings every round trip.
  const bool best_moved =
      search_ && search_->best() && search_->best_objective() != published_best_;
  status_.update([&](obs::SessionStatus& s) {
    const auto* nm = dynamic_cast<const NelderMead*>(search_.get());
    s.phase = phase_override != nullptr
                  ? phase_override
                  : (search_ ? (nm != nullptr ? nm->phase_name() : "searching")
                             : "registering");
    s.iterations = static_cast<std::uint64_t>(roundtrips_);
    if (search_) {
      s.strategy = search_->name();
      if (best_moved) {
        s.best_value = search_->best_objective();
        s.best_config = space_.format(*search_->best());
      }
    }
  });
  if (best_moved) published_best_ = search_->best_objective();
}

bool ServerConnection::append_fetch_reply(std::string& out, bool count_fresh) {
  // ask() is idempotent while a candidate is outstanding (re-fetch resends
  // it) and returns nullopt once the iteration budget is spent or the
  // strategy stops proposing.
  const bool re_fetch = controller_->awaiting_tell();
  std::optional<Config> proposal;
  if (measure_stages_) {
    const auto t0 = std::chrono::steady_clock::now();
    proposal = controller_->ask(*search_);
    stage_ask_us_ = us_since(t0);
    record_stage_span("server.ask", stage_ask_us_);
  } else {
    proposal = controller_->ask(*search_);
  }
  if (!proposal) {
    reply(out, "DONE");
    return false;
  }
  if (count_fresh && !re_fetch) obs::count("server.fetches");
  out.append("CONFIG ");
  proto::encode_config(space_, *proposal, out);
  out.push_back('\n');
  return true;
}

bool ServerConnection::handle_report_value(std::string_view field,
                                           std::string& out,
                                           std::string_view verb) {
  const auto value = proto::parse_f64(field);
  if (!value) {
    reply(out, "ERR bad objective value");
    return false;
  }
  (void)verb;
  EvaluationResult r;
  r.objective = *value;
  r.valid = std::isfinite(*value);
  if (measure_stages_) {
    const auto t0 = std::chrono::steady_clock::now();
    controller_->tell(*search_, r);
    stage_tell_us_ = us_since(t0);
    record_stage_span("server.tell", stage_tell_us_);
  } else {
    controller_->tell(*search_, r);
  }
  // One completed FETCH -> REPORT pair is one tuning round trip.
  ++roundtrips_;
  obs::count("server.roundtrips");
  obs::observe("server.report_value", *value);
  if (tenant_ != nullptr) tenant_->evals.fetch_add(1, std::memory_order_relaxed);
  publish();
  return true;
}

void ServerConnection::handle_batch(std::string& out) {
  if (!batch_enabled_) {
    // Legacy (thread-per-connection) transport: the framing is not
    // negotiated there, and the probe's ERR is the negotiation signal.
    reply(out, "ERR batch unsupported on this transport");
    return;
  }
  const int max_batch = std::max(1, opts_->max_batch);
  if (msg_.args.empty()) {
    // Bare BATCH is the negotiation probe: advertise the size cap.
    reply(out, "OK batch " + std::to_string(max_batch));
    return;
  }
  const auto n = proto::parse_i64(msg_.args[0]);
  if (!n || *n < 1 || *n > max_batch) {
    reply(out, "ERR bad batch count");
    return;
  }
  if (msg_.args.size() - 1 != static_cast<std::size_t>(*n)) {
    // Truncated (or over-long) frame. One ERR for the whole line; nothing
    // was consumed, so the client can re-send the frame intact.
    reply(out, "ERR batch count mismatch");
    return;
  }
  if (!search_ || !controller_->awaiting_tell()) {
    reply(out, "ERR nothing to report");
    return;
  }
  // Validate every value before telling the search anything: a batch is
  // atomic, so a malformed field (e.g. a trace token interleaved between
  // values) rejects the whole line instead of half-applying it.
  for (std::size_t i = 1; i < msg_.args.size(); ++i) {
    if (!proto::parse_f64(msg_.args[i])) {
      reply(out, "ERR bad objective value in batch");
      return;
    }
  }
  obs::count("server.batch_lines");
  // n report/fetch pairs -> n reply lines (CONFIG or DONE), same order. Once
  // the search finishes mid-batch the remaining values are dropped and
  // answered DONE — they measured configurations of a search that is over.
  bool done = false;
  for (std::size_t i = 1; i < msg_.args.size(); ++i) {
    if (done) {
      reply(out, "DONE");
      continue;
    }
    if (!handle_report_value(msg_.args[i], out, "BATCH")) {
      done = true;  // cannot happen after the validation pass, but stay safe
      continue;
    }
    obs::count("server.report_fetches");
    done = !append_fetch_reply(out, /*count_fresh=*/true);
  }
}

bool ServerConnection::handle_tenant(std::string& out) {
  if (tenant_ != nullptr) {
    reply(out, "ERR tenant already set");
    return true;
  }
  if (search_) {
    reply(out, "ERR session already started");
    return true;
  }
  if (msg_.args.size() != 1 || msg_.args[0].size() > 64) {
    reply(out, "ERR TENANT takes one name (<= 64 chars)");
    return true;
  }
  const std::string name(msg_.args[0]);
  auto& registry = obs::StatusRegistry::global();
  obs::StatusRegistry::TenantSlot* slot = registry.tenant_slot(name);
  // Atomic admission: claim the seat first, back out if that burst the
  // quota. No lock is held across the check, and losing racers shed.
  const std::int64_t occupied =
      slot->sessions.fetch_add(1, std::memory_order_relaxed) + 1;
  if (opts_->tenant_quota > 0 && occupied > opts_->tenant_quota) {
    slot->sessions.fetch_sub(1, std::memory_order_relaxed);
    slot->shed.fetch_add(1, std::memory_order_relaxed);
    registry.backpressure().shed_total.fetch_add(1, std::memory_order_relaxed);
    obs::count("server.shed_retry_after");
    obs::log_warn("server",
                  "tenant " + name + " over quota, shedding (retry-after " +
                      std::to_string(opts_->retry_after_s) + "s)",
                  session_id_);
    reply(out, "ERR retry-after " + std::to_string(opts_->retry_after_s) +
                   " tenant quota exceeded");
    return false;  // graceful shed: close after the reply flushes
  }
  tenant_ = slot;
  status_.update([&](obs::SessionStatus& s) { s.tenant = name; });
  obs::count("server.tenant_admits");
  obs::log_info("server", "tenant " + name, session_id_);
  reply(out, "OK tenant " + name);
  return true;
}

void ServerConnection::handle_attach(std::string& out) {
  if (opts_->fleet == nullptr) {
    reply(out, "ERR no fleet dispatcher");
    return;
  }
  if (!sender_) {
    reply(out, "ERR transport cannot push");
    return;
  }
  if (worker_id_ != 0) {
    reply(out, "ERR already attached");
    return;
  }
  if (search_) {
    reply(out, "ERR session already started");
    return;
  }
  if (msg_.args.empty() || msg_.args.size() > 2) {
    reply(out, "ERR ATTACH takes <name> [capacity]");
    return;
  }
  const std::string name(msg_.args[0]);
  int capacity = 1;
  if (msg_.args.size() == 2) {
    const auto v = proto::parse_i64(msg_.args[1]);
    if (!v || *v < 1 || *v > 1024) {
      reply(out, "ERR bad capacity");
      return;
    }
    capacity = static_cast<int>(*v);
  }
  worker_id_ = opts_->fleet->attach(name, capacity, sender_);
  status_.update([&](obs::SessionStatus& s) {
    s.app = name;
    s.phase = "worker";
  });
  obs::count("server.workers_attached");
  obs::log_info("server",
                "worker " + name + " attached, capacity " +
                    std::to_string(capacity),
                session_id_);
  reply(out, "OK worker " + std::to_string(worker_id_));
}

void ServerConnection::handle_result(std::string& out) {
  // Message-passing mode: a well-formed RESULT is not acknowledged (replies
  // would interleave with pushed WORK lines for no benefit); malformed or
  // never-issued results still answer ERR so a confused worker can tell.
  if (worker_id_ == 0 || opts_->fleet == nullptr) {
    reply(out, "ERR not attached");
    return;
  }
  if (msg_.args.size() < 2 || msg_.args.size() > 3) {
    reply(out, "ERR RESULT takes <id> <objective>|FAIL [cost_s]");
    return;
  }
  const auto id = proto::parse_i64(msg_.args[0]);
  if (!id || *id <= 0) {
    reply(out, "ERR bad work id");
    return;
  }
  bool run_ok = true;
  double objective = std::numeric_limits<double>::infinity();
  if (msg_.args[1] == "FAIL") {
    run_ok = false;
  } else {
    const auto v = proto::parse_f64(msg_.args[1]);
    if (!v) {
      reply(out, "ERR bad objective value");
      return;
    }
    objective = *v;
  }
  double cost_s = 0.0;
  if (msg_.args.size() == 3) {
    const auto v = proto::parse_f64(msg_.args[2]);
    if (!v || *v < 0.0) {
      reply(out, "ERR bad cost");
      return;
    }
    cost_s = *v;
  }
  ++roundtrips_;
  obs::count("server.worker_results");
  if (!opts_->fleet->on_result(worker_id_, static_cast<std::uint64_t>(*id),
                               run_ok, objective, cost_s)) {
    reply(out, "ERR unknown work id");
  }
}

void ServerConnection::record_stage_span(const char* name, double dur_us) {
  if (!trace_.sampled() || opts_->tracer == nullptr) return;
  obs::SearchTracer* tr = opts_->tracer;
  obs::SpanEvent sp;
  sp.trace_id = trace_.trace_id;
  sp.span_id = obs::next_trace_id();
  sp.parent_span = trace_.span_id;
  sp.name = name;
  sp.t_end_us = tr->now_us();
  sp.t_start_us = sp.t_end_us - dur_us;
  tr->record_span(sp);
}

void ServerConnection::finish_request(std::string_view verb,
                                      std::chrono::steady_clock::time_point t0) {
  // End timestamp before duration: both read steady_clock, so a preemption
  // between the two reads can only lengthen dt_us, which reconstructs the
  // root's start *earlier*. The stage children read in the opposite order
  // (duration first), shifting them later — so however the scheduler
  // interleaves, children never appear to start before their root.
  const double root_end_us = trace_.sampled() && opts_->tracer != nullptr
                                 ? opts_->tracer->now_us()
                                 : 0.0;
  const double dt_us = us_since(t0);
  const double dt_s = dt_us * 1e-6;

  if (trace_.sampled() && opts_->tracer != nullptr) {
    obs::SearchTracer* tr = opts_->tracer;
    obs::SpanEvent sp;
    sp.trace_id = trace_.trace_id;
    sp.span_id = trace_.span_id;
    sp.parent_span = trace_.parent_span;
    sp.name = "server.handle";
    sp.detail = std::string(verb);
    sp.t_end_us = root_end_us;
    sp.t_start_us = root_end_us - dt_us;
    tr->record_span(sp);
  }

  latency_->record(dt_s);
  auto& board = obs::StatusRegistry::global().latency();
  board.request_s.record(dt_s);
  if (tenant_ != nullptr) tenant_->request_s.record(dt_s);

  // Refreshing the published quantiles scans the histogram, so do it on the
  // first request and then every 64th instead of every round trip.
  ++requests_;
  if ((requests_ & 63) == 1) {
    status_.update([&](obs::SessionStatus& s) {
      s.p50_us = latency_->quantile(0.50) * 1e6;
      s.p95_us = latency_->quantile(0.95) * 1e6;
      s.p99_us = latency_->quantile(0.99) * 1e6;
    });
  }
  if (obs::enabled()) {
    obs::MetricsRegistry::global().hdr(verb_hdr_name(verb)).record(dt_s);
  }

  if (opts_->slow_request_us > 0 &&
      dt_us > static_cast<double>(opts_->slow_request_us)) {
    board.slow_requests.fetch_add(1, std::memory_order_relaxed);
    obs::count("server.slow_requests");
    // The slow-request log is gated by its own option, not by obs::enabled():
    // setting a latency SLO is an explicit request to hear about misses.
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "slow request %.*s %.0fus (tell %.0fus, ask %.0fus) "
                  "trace=%016llx span=%016llx",
                  static_cast<int>(verb.size()), verb.data(), dt_us,
                  stage_tell_us_, stage_ask_us_,
                  static_cast<unsigned long long>(trace_.trace_id),
                  static_cast<unsigned long long>(trace_.span_id));
    obs::EventLog::global().record(obs::Severity::Warn, "server.slow", session_id_,
                                   buf);
  }
}

bool ServerConnection::handle_line(std::string_view line, std::string& out) {
#ifndef NDEBUG
  // Shard-affinity check (debug builds): every line of a session must be
  // handled by one thread for the no-locks-on-the-hot-path contract to be
  // sound. The first line binds the session to its shard's thread.
  if (home_thread_ == std::thread::id{}) {
    home_thread_ = std::this_thread::get_id();
  }
  assert(home_thread_ == std::this_thread::get_id() &&
         "session state crossed reactor shards");
#endif
  if (!proto::parse_line(line, msg_)) return true;  // blank line: ignore
  obs::count("server.messages");
  const auto handle_timer = obs::time_scope("server.handle_s");
  const std::string_view verb = msg_.verb;

  // Request verbs (the steady-state tuning/eval path) are latency-tracked
  // end to end; every other verb answers without touching the clock.
  const bool request_verb = verb == "REPORT+FETCH" || verb == "FETCH" ||
                            verb == "REPORT" || verb == "RESULT" ||
                            verb == "BATCH";
  trace_ = obs::TraceContext{};
  if (request_verb && !msg_.args.empty() &&
      proto::is_trace_token(msg_.args.back())) {
    // Optional trailing trace token: strip it before the per-verb arg-count
    // checks so untraced parsing below stays byte-identical. The sender's
    // span becomes the parent of this request's root span.
    if (const auto ctx = proto::parse_trace(msg_.args.back())) {
      trace_.trace_id = ctx->trace_id;
      trace_.parent_span = ctx->span_id;
      trace_.span_id = obs::next_trace_id();
    }
    msg_.args.pop_back();
  }
  measure_stages_ = request_verb && ((trace_.sampled() && opts_->tracer != nullptr) ||
                                     opts_->slow_request_us > 0);
  stage_tell_us_ = 0.0;
  stage_ask_us_ = 0.0;

  // Closes out the request on every exit path (ERR replies included).
  struct RequestScope {
    ServerConnection* conn;
    std::string_view verb;
    std::chrono::steady_clock::time_point t0;
    bool active;
    ~RequestScope() {
      if (active) conn->finish_request(verb, t0);
    }
  } scope{this, verb,
          request_verb ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{},
          request_verb};

  if (verb == "FETCH") {
    if (!search_) {
      reply(out, "ERR not started");
      return true;
    }
    append_fetch_reply(out, /*count_fresh=*/true);
  } else if (verb == "REPORT") {
    if (!search_ || !controller_->awaiting_tell()) {
      reply(out, "ERR nothing to report");
      return true;
    }
    if (msg_.args.size() != 1) {
      reply(out, "ERR REPORT takes one value");
      return true;
    }
    if (handle_report_value(msg_.args[0], out, verb)) reply(out, "OK");
  } else if (verb == "REPORT+FETCH") {
    // The pipelined steady state: report the pending candidate and fetch
    // the next one in a single exchange — one round trip per evaluation.
    if (!search_ || !controller_->awaiting_tell()) {
      reply(out, "ERR nothing to report");
      return true;
    }
    if (msg_.args.size() != 1) {
      reply(out, "ERR REPORT+FETCH takes one value");
      return true;
    }
    if (handle_report_value(msg_.args[0], out, verb)) {
      obs::count("server.report_fetches");
      (void)append_fetch_reply(out, /*count_fresh=*/true);
    }
  } else if (verb == "BATCH") {
    handle_batch(out);
  } else if (verb == "TENANT") {
    if (!handle_tenant(out)) return false;
  } else if (verb == "HELLO") {
    const std::string app = msg_.args.empty() ? "" : std::string(msg_.args[0]);
    status_.update([&](obs::SessionStatus& s) { s.app = app; });
    obs::log_info("server", "HELLO " + app, session_id_);
    reply(out, "OK harmony-server/1.0");
  } else if (verb == "PARAM") {
    if (search_) {
      reply(out, "ERR session already started");
      return true;
    }
    auto p = proto::decode_param(msg_);
    if (!p) {
      obs::log_warn("server", "malformed PARAM", session_id_);
      reply(out, "ERR malformed PARAM");
      return true;
    }
    try {
      space_.add(std::move(*p));
    } catch (const std::exception& e) {
      reply(out, std::string("ERR ") + e.what());
      return true;
    }
    reply(out, "OK");
  } else if (verb == "START") {
    if (space_.empty()) {
      reply(out, "ERR no parameters registered");
      return true;
    }
    if (search_) {
      reply(out, "ERR session already started");
      return true;
    }
    if (!msg_.args.empty()) {
      const auto v = proto::parse_i64(msg_.args[0]);
      if (!v || *v < 1 || *v > std::numeric_limits<int>::max()) {
        reply(out, "ERR bad iteration budget");
        return true;
      }
      budget_ = static_cast<int>(*v);
    }
    try {
      // One construction path for every session: the registry. A bare START
      // gets the server's default search (Nelder-Mead with opts_->search); a
      // prior STRATEGY line picks anything registered.
      search_ = strategy_name_.empty()
                    ? StrategyRegistry::make_default(space_, opts_->search)
                    : StrategyRegistry::make(strategy_name_, space_, strategy_opts_);
    } catch (const std::exception& e) {
      reply(out, std::string("ERR ") + e.what());
      return true;
    }
    controller_.emplace(space_,
                        ControllerLimits{budget_, std::numeric_limits<int>::max()});
    publish();
    obs::log_info("server", "search started, budget " + std::to_string(budget_),
                  session_id_);
    reply(out, "OK started");
  } else if (verb == "STRATEGY") {
    if (msg_.args.empty()) {
      // Bare STRATEGY lists the registry (valid any time, any session).
      std::string listing = "OK";
      for (const auto& n : StrategyRegistry::names()) {
        listing += ' ';
        listing += n;
      }
      reply(out, listing);
    } else if (search_) {
      reply(out, "ERR session already started");
    } else if (!StrategyRegistry::known(std::string(msg_.args[0]))) {
      const std::string name(msg_.args[0]);
      obs::log_warn("server", "unknown strategy " + name, session_id_);
      reply(out, "ERR unknown strategy " + name);
    } else {
      StrategyOptions sopts;
      std::string error;
      for (std::size_t i = 1; i < msg_.args.size(); ++i) {
        const std::string_view tok = msg_.args[i];
        const auto eq = tok.find('=');
        if (eq == std::string_view::npos || eq == 0) {
          error = "bad option '" + std::string(tok) + "' (expected key=value)";
          break;
        }
        sopts.emplace_back(std::string(tok.substr(0, eq)),
                           std::string(tok.substr(eq + 1)));
      }
      const std::string name(msg_.args[0]);
      if (error.empty()) (void)StrategyRegistry::validate(name, sopts, &error);
      if (!error.empty()) {
        obs::log_warn("server", "bad STRATEGY options: " + error, session_id_);
        reply(out, "ERR " + error);
      } else {
        strategy_name_ = name;
        strategy_opts_ = std::move(sopts);
        obs::log_info("server", "strategy " + strategy_name_, session_id_);
        reply(out, "OK " + strategy_name_);
      }
    }
  } else if (verb == "BEST") {
    if (!search_ || !search_->best()) {
      reply(out, "ERR no measurements yet");
      return true;
    }
    out.append("CONFIG ");
    proto::encode_config(space_, *search_->best(), out);
    out.push_back('\n');
  } else if (verb == "STATUS") {
    // One line of JSON: the whole live-status board. Any connection may ask
    // — harmony_top uses a dedicated admin connection.
    obs::count("server.status_polls");
    reply(out, obs::StatusRegistry::global().to_json());
  } else if (verb == "METRICS") {
    // Prometheus text exposition, terminated by a "# EOF" comment line ("#"
    // lines are valid exposition, so raw `echo METRICS | nc` output is
    // scrape-ready as-is).
    obs::count("server.status_polls");
    out.append(obs::MetricsRegistry::global().to_prometheus());
    out.append("# EOF\n");
  } else if (verb == "LOG") {
    // LOG [tail] [N] -> "LOG <n>" header then n JSONL event records.
    std::size_t want = opts_->log_tail_default;
    std::size_t arg_idx = 0;
    if (arg_idx < msg_.args.size() && msg_.args[arg_idx] == "tail") ++arg_idx;
    if (arg_idx < msg_.args.size()) {
      const auto v = proto::parse_i64(msg_.args[arg_idx]);
      if (!v || *v < 0) {
        reply(out, "ERR bad LOG count");
        return true;
      }
      want = static_cast<std::size_t>(*v);
    }
    const auto events = obs::EventLog::global().tail(want);
    std::ostringstream os;
    os << "LOG " << events.size() << "\n";
    for (const auto& e : events) {
      obs::EventLog::write_event_json(os, e);
      os << "\n";
    }
    out.append(os.str());
  } else if (verb == "ATTACH") {
    handle_attach(out);
  } else if (verb == "RESULT") {
    handle_result(out);
  } else if (verb == "PING") {
    if (worker_id_ != 0 && opts_->fleet != nullptr) {
      opts_->fleet->heartbeat(worker_id_);
    }
    reply(out, "PONG");
  } else if (verb == "DETACH") {
    if (worker_id_ == 0 || opts_->fleet == nullptr) {
      reply(out, "ERR not attached");
      return true;
    }
    opts_->fleet->detach(worker_id_);
    worker_id_ = 0;
    status_.update([&](obs::SessionStatus& s) { s.phase = "detached"; });
    obs::log_info("server", "worker detached", session_id_);
    reply(out, "OK detached");
  } else if (verb == "BYE") {
    reply(out, "OK bye");
    return false;
  } else {
    const std::string name(verb);
    obs::log_warn("server", "unknown verb " + name, session_id_);
    reply(out, "ERR unknown verb " + name);
  }
  return true;
}

}  // namespace harmony
