#pragma once

/// \file exhaustive.hpp
/// Full enumeration of a discrete search space. Only sensible for small
/// spaces (tests and ground-truth verification of the other strategies);
/// construction throws if the space is continuous or larger than a limit.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/strategy.hpp"

namespace harmony {

class Exhaustive final : public SearchStrategy {
 public:
  explicit Exhaustive(const ParamSpace& space,
                      std::uint64_t max_points = 1'000'000);

  [[nodiscard]] std::optional<Config> propose() override;
  void report(const Config& c, const EvaluationResult& r) override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override;
  [[nodiscard]] double best_objective() const override;
  [[nodiscard]] std::string name() const override { return "exhaustive"; }

  [[nodiscard]] std::uint64_t plan_size() const noexcept { return plan_size_; }

 private:
  const ParamSpace* space_;
  std::vector<std::size_t> cursor_;
  std::uint64_t plan_size_ = 1;
  std::uint64_t emitted_ = 0;
  bool exhausted_ = false;
  std::optional<Config> best_;
  double best_value_;
};

}  // namespace harmony
