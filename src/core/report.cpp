#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace harmony {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
  return *this;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string percent_improvement(double baseline, double tuned) {
  if (baseline <= 0.0) return "n/a";
  const double pct = 100.0 * (baseline - tuned) / baseline;
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << pct << '%';
  return os.str();
}

std::string speedup(double baseline, double tuned) {
  if (tuned <= 0.0) return "n/a";
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << baseline / tuned << 'x';
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || value < 0.0) return {};
  const int n = static_cast<int>(std::lround(width * value / max_value));
  return std::string(static_cast<std::size_t>(std::clamp(n, 0, width)), '#');
}

}  // namespace harmony
