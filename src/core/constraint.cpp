#include "core/constraint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace harmony {

MonotoneConstraint::MonotoneConstraint(std::size_t first, std::size_t n,
                                       double min_gap)
    : first_(first), n_(n), min_gap_(min_gap) {
  if (n < 1) throw std::invalid_argument("MonotoneConstraint: need n >= 1");
  if (min_gap < 0) throw std::invalid_argument("MonotoneConstraint: negative gap");
}

void MonotoneConstraint::project(const ParamSpace& space,
                                 std::vector<double>& coords) const {
  if (first_ + n_ > coords.size()) {
    throw std::invalid_argument("MonotoneConstraint: block out of range");
  }
  // Clamp into each parameter's coordinate box first.
  for (std::size_t i = first_; i < first_ + n_; ++i) {
    const auto& p = space.param(i);
    coords[i] = std::clamp(coords[i], p.coord_min(), p.coord_max());
  }
  std::sort(coords.begin() + static_cast<std::ptrdiff_t>(first_),
            coords.begin() + static_cast<std::ptrdiff_t>(first_ + n_));
  // Forward sweep: enforce the minimum gap.
  for (std::size_t i = first_ + 1; i < first_ + n_; ++i) {
    if (coords[i] < coords[i - 1] + min_gap_) coords[i] = coords[i - 1] + min_gap_;
  }
  // Backward sweep: pull overshoot back under the upper bound.
  const double hi = space.param(first_ + n_ - 1).coord_max();
  if (coords[first_ + n_ - 1] > hi) coords[first_ + n_ - 1] = hi;
  for (std::size_t i = first_ + n_ - 1; i > first_; --i) {
    if (coords[i - 1] > coords[i] - min_gap_) coords[i - 1] = coords[i] - min_gap_;
  }
}

double MonotoneConstraint::penalty(const ParamSpace& space, const Config& c) const {
  const auto coords = space.coords(c);
  double pen = 0.0;
  for (std::size_t i = first_ + 1; i < first_ + n_; ++i) {
    const double violation = (coords[i - 1] + min_gap_) - coords[i];
    if (violation > 0) pen += violation;
  }
  return pen;
}

ProductConstraint::ProductConstraint(std::size_t a, std::size_t b,
                                     std::int64_t product)
    : a_(a), b_(b), product_(product) {
  if (product < 1) throw std::invalid_argument("ProductConstraint: product < 1");
}

void ProductConstraint::project(const ParamSpace& space,
                                std::vector<double>& coords) const {
  const auto& pa = space.param(a_);
  const auto& pb = space.param(b_);
  coords[a_] = std::clamp(coords[a_], pa.coord_min(), pa.coord_max());
  // Snap a to its lattice value, then derive b = product / a. If a does not
  // divide the product, walk a towards the nearest divisor.
  auto a_val = std::get<std::int64_t>(pa.coord_to_value(coords[a_]));
  std::int64_t best_a = 0;
  for (std::int64_t delta = 0;; ++delta) {
    bool progressed = false;
    for (const std::int64_t cand : {a_val - delta, a_val + delta}) {
      if (!pa.contains(Value{cand})) continue;
      progressed = true;
      if (product_ % cand == 0 && pb.contains(Value{product_ / cand})) {
        best_a = cand;
        break;
      }
    }
    if (best_a != 0) break;
    if (!progressed && delta > 0) break;  // exhausted the range
  }
  if (best_a == 0) return;  // no feasible divisor; leave coords, penalty applies
  coords[a_] = pa.value_to_coord(Value{best_a});
  coords[b_] = pb.value_to_coord(Value{product_ / best_a});
}

double ProductConstraint::penalty(const ParamSpace& space, const Config& c) const {
  const auto av = std::get<std::int64_t>(c.values.at(a_));
  const auto bv = std::get<std::int64_t>(c.values.at(b_));
  (void)space;
  return av * bv == product_ ? 0.0
                             : static_cast<double>(std::abs(av * bv - product_));
}

FunctionConstraint::FunctionConstraint(ProjectFn project, PenaltyFn penalty)
    : project_(std::move(project)), penalty_(std::move(penalty)) {
  if (!project_) throw std::invalid_argument("FunctionConstraint: null projection");
}

void FunctionConstraint::project(const ParamSpace& space,
                                 std::vector<double>& coords) const {
  project_(space, coords);
}

double FunctionConstraint::penalty(const ParamSpace& space, const Config& c) const {
  return penalty_ ? penalty_(space, c) : 0.0;
}

ConstraintSet& ConstraintSet::add(std::shared_ptr<const Constraint> c) {
  if (!c) throw std::invalid_argument("ConstraintSet::add: null constraint");
  constraints_.push_back(std::move(c));
  return *this;
}

void ConstraintSet::project(const ParamSpace& space,
                            std::vector<double>& coords) const {
  for (const auto& c : constraints_) c->project(space, coords);
}

double ConstraintSet::penalty(const ParamSpace& space, const Config& c) const {
  double pen = 0.0;
  for (const auto& cn : constraints_) pen += cn->penalty(space, c);
  return pen;
}

}  // namespace harmony
