#pragma once

/// \file strategy.hpp
/// Search-strategy interfaces. The Adaptation Controller (paper Fig. 1) is
/// implemented once, as core::SearchController, and drives every deployment
/// — the in-process Tuner, the off-line short-run drivers, and the TCP
/// tuning server are thin facades over that one loop. Strategies plug into
/// the controller through two interfaces:
///
///  * SearchStrategy — the classic serial ask/tell contract: propose() one
///    configuration, have it evaluated, report() the observed performance.
///    propose() and report() alternate strictly.
///  * BatchSearchStrategy — the batch-native contract the controller
///    actually speaks: propose_batch() names up to n candidates at once and
///    report_batch() returns their results element-wise. On deterministic
///    substrates independent candidates can then be evaluated concurrently
///    (src/engine's thread-pool backend).
///
/// Any SearchStrategy rides the batch pathway unchanged through
/// SequentialBatchAdapter, which emits batches of exactly one configuration
/// and therefore preserves the serial contract to the letter — propose()
/// and report() still alternate strictly, in the same order a serial loop
/// would call them, so trajectories are bitwise-identical. Strategies whose
/// proposals are independent of reports (random, systematic, exhaustive)
/// additionally get native batch wrappers in src/engine, and NelderMead
/// exposes speculative_candidates() so the engine can evaluate all possible
/// next simplex points concurrently without changing the search trajectory.
///
/// Strategies are constructed by name through StrategyRegistry
/// (strategy_registry.hpp) — the single construction path used by sessions,
/// the server's STRATEGY protocol verb, benches and examples.

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluation.hpp"
#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony {

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// Next configuration the strategy wants evaluated, or nullopt when the
  /// strategy has converged / exhausted its plan.
  [[nodiscard]] virtual std::optional<Config> propose() = 0;

  /// Report the evaluation of the most recently proposed configuration.
  /// Strategies are sequential: propose() and report() alternate strictly.
  virtual void report(const Config& c, const EvaluationResult& r) = 0;

  /// True once the strategy considers the search finished.
  [[nodiscard]] virtual bool converged() const = 0;

  /// Best configuration observed so far (nullopt before any report).
  [[nodiscard]] virtual std::optional<Config> best() const = 0;
  [[nodiscard]] virtual double best_objective() const = 0;

  /// Short identifier for logs ("nelder-mead", "random", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Batched counterpart of SearchStrategy — the interface the controller is
/// native in. One batch is a set of candidates whose evaluations may run
/// concurrently; the controller reports the whole batch back in order.
class BatchSearchStrategy {
 public:
  virtual ~BatchSearchStrategy() = default;

  /// Up to `max_n` configurations to evaluate concurrently, ordered so that a
  /// prefix truncation still contains the configuration the strategy needs
  /// first. Empty means converged / plan exhausted.
  [[nodiscard]] virtual std::vector<Config> propose_batch(std::size_t max_n) = 0;

  /// Report the whole batch, element-wise aligned with what propose_batch
  /// returned (possibly truncated to a prefix by the controller's budget
  /// guard).
  virtual void report_batch(const std::vector<Config>& configs,
                            const std::vector<EvaluationResult>& results) = 0;

  [[nodiscard]] virtual bool converged() const = 0;
  [[nodiscard]] virtual std::optional<Config> best() const = 0;
  [[nodiscard]] virtual double best_objective() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Batch size 1 wrapper around any serial strategy: the controller sees
/// batches, the wrapped strategy sees exactly the serial propose/report
/// alternation.
class SequentialBatchAdapter final : public BatchSearchStrategy {
 public:
  /// Non-owning; `inner` must outlive the adapter.
  explicit SequentialBatchAdapter(SearchStrategy& inner) : inner_(&inner) {}

  [[nodiscard]] std::vector<Config> propose_batch(std::size_t max_n) override {
    if (max_n == 0) return {};
    auto c = inner_->propose();
    if (!c) return {};
    return {std::move(*c)};
  }

  void report_batch(const std::vector<Config>& configs,
                    const std::vector<EvaluationResult>& results) override {
    if (configs.size() != results.size()) {
      throw std::invalid_argument("SequentialBatchAdapter: batch size mismatch");
    }
    for (std::size_t i = 0; i < configs.size(); ++i) {
      inner_->report(configs[i], results[i]);
    }
  }

  [[nodiscard]] bool converged() const override { return inner_->converged(); }
  [[nodiscard]] std::optional<Config> best() const override { return inner_->best(); }
  [[nodiscard]] double best_objective() const override {
    return inner_->best_objective();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  SearchStrategy* inner_;
};

}  // namespace harmony
