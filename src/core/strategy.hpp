#pragma once

/// \file strategy.hpp
/// Ask/tell interface implemented by every search strategy. The Adaptation
/// Controller (paper Fig. 1) drives a strategy through this interface: it
/// asks for the next configuration to try, evaluates it (on-line via the
/// instrumented application, or off-line via one representative short run),
/// and tells the strategy the observed performance. The ask/tell split is
/// what lets the same strategy serve the in-process Tuner, the off-line
/// driver, and the TCP tuning server.
///
/// Batch pathway: the parallel evaluation engine (src/engine) drives
/// strategies through harmony::engine::BatchSearchStrategy, which proposes
/// and reports whole batches so short runs can execute concurrently on a
/// thread pool. Any SearchStrategy can ride that pathway unchanged via
/// harmony::engine::SequentialBatchAdapter, which emits batches of exactly
/// one configuration and therefore preserves this interface's contract to
/// the letter — propose() and report() still alternate strictly, in the
/// same order a serial driver would call them. Strategies whose proposals
/// are independent of reports (random, systematic, exhaustive) additionally
/// get native batch wrappers, and NelderMead exposes
/// speculative_candidates() so the engine can evaluate all possible next
/// simplex points concurrently without changing the search trajectory.

#include <optional>
#include <string>

#include "core/evaluation.hpp"
#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony {

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// Next configuration the strategy wants evaluated, or nullopt when the
  /// strategy has converged / exhausted its plan.
  [[nodiscard]] virtual std::optional<Config> propose() = 0;

  /// Report the evaluation of the most recently proposed configuration.
  /// Strategies are sequential: propose() and report() alternate strictly.
  virtual void report(const Config& c, const EvaluationResult& r) = 0;

  /// True once the strategy considers the search finished.
  [[nodiscard]] virtual bool converged() const = 0;

  /// Best configuration observed so far (nullopt before any report).
  [[nodiscard]] virtual std::optional<Config> best() const = 0;
  [[nodiscard]] virtual double best_objective() const = 0;

  /// Short identifier for logs ("nelder-mead", "random", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace harmony
