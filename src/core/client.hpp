#pragma once

/// \file client.hpp
/// Application-side stub for the Harmony tuning server. Mirrors the Session
/// API but runs the Adaptation Controller in a separate server process (or
/// thread), which is how the paper's applications were deployed: "the
/// developers can easily hook up the application with the Active Harmony
/// tuning server" (Section III).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/net.hpp"
#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony {

class TuningClient {
 public:
  TuningClient() = default;

  /// Connect to a server on loopback and perform the HELLO exchange.
  [[nodiscard]] bool connect(int port, const std::string& app_name);

  /// Connect with retry: bounded exponential backoff between attempts plus a
  /// per-attempt connect timeout (net::ConnectOptions). Lets a client or
  /// fleet worker start before the server finishes binding its port instead
  /// of dying on the first refused connect.
  [[nodiscard]] bool connect(int port, const std::string& app_name,
                             const net::ConnectOptions& retry);

  /// Register parameters (before start()). Returns false on protocol error.
  [[nodiscard]] bool add_int(const std::string& name, std::int64_t lo,
                             std::int64_t hi, std::int64_t step = 1);
  [[nodiscard]] bool add_real(const std::string& name, double lo, double hi);
  [[nodiscard]] bool add_enum(const std::string& name,
                              std::vector<std::string> choices);

  /// Select the server-side search strategy by registry name, with optional
  /// key=value options (before start()). The server validates against its
  /// StrategyRegistry and replies ERR for unknown names or bad options.
  [[nodiscard]] bool set_strategy(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& options = {});

  /// Bare STRATEGY query: the strategy names the server's registry offers.
  [[nodiscard]] std::optional<std::vector<std::string>> strategies();

  /// Begin the search with an iteration budget.
  [[nodiscard]] bool start(int max_iterations);

  /// Next candidate configuration; nullopt when the server says DONE (or on
  /// a connection error — check ok() to distinguish).
  [[nodiscard]] std::optional<Config> fetch();

  /// Report the objective for the configuration from the last fetch().
  [[nodiscard]] bool report(double objective);

  /// Combined REPORT+FETCH exchange: report the objective for the pending
  /// candidate and receive the next one in a single round trip — half the
  /// per-evaluation latency of report() followed by fetch(). nullopt when
  /// the server says DONE (or on an error — check ok()/last_error()).
  [[nodiscard]] std::optional<Config> report_and_fetch(double objective);

  /// Negotiate the batched framing: bare `BATCH` probe. Returns the server's
  /// per-line batch cap, or nullopt when the peer does not support batching
  /// (the legacy transport, or a pre-batch server) — callers fall back to
  /// report_and_fetch() per evaluation.
  [[nodiscard]] std::optional<int> batch_limit();

  /// Batched REPORT+FETCH: report `objectives` (in fetch order) in one BATCH
  /// line and collect the CONFIG replies. The returned vector holds the next
  /// candidates (fewer than objectives.size() once the budget is exhausted —
  /// the server answers DONE for the tail). nullopt on a protocol error.
  [[nodiscard]] std::optional<std::vector<Config>> report_and_fetch_batch(
      const std::vector<double>& objectives);

  /// Declare this session's tenant (before start()). The server enforces its
  /// per-tenant session quota here: false with last_error() starting
  /// "ERR retry-after" means the quota is full and the connection was shed.
  [[nodiscard]] bool set_tenant(const std::string& name);

  /// Best configuration the server has seen so far.
  [[nodiscard]] std::optional<Config> best();

  /// Polite shutdown.
  void bye();

  // ---- introspection verbs (admin clients, e.g. examples/harmony_top) ----

  /// STATUS: one JSON object describing every live session and pool worker
  /// lane (the server's obs::StatusRegistry snapshot).
  [[nodiscard]] std::optional<std::string> status_json();

  /// METRICS: the server's metrics in Prometheus text exposition format
  /// (the trailing "# EOF" terminator line is stripped).
  [[nodiscard]] std::optional<std::string> metrics_text();

  /// LOG tail n: the most recent structured log events, oldest first, one
  /// JSON object per element.
  [[nodiscard]] std::optional<std::vector<std::string>> log_tail(std::size_t n);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& last_error() const noexcept { return error_; }
  [[nodiscard]] const ParamSpace& space() const noexcept { return space_; }

 private:
  [[nodiscard]] std::optional<std::string> transact(const std::string& line);
  [[nodiscard]] bool expect_ok(const std::string& line);
  [[nodiscard]] std::optional<Config> decode_fetch_reply(const std::string& reply);

  net::Socket socket_;
  std::optional<net::LineReader> reader_;
  ParamSpace space_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace harmony
