#include "core/point_key.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace harmony {

namespace {

/// splitmix64 finalizer — cheap, well-distributed per-slot mixing.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Canonicalize a real value through the exact rendering ParamSpace::key
/// uses (`ostringstream << double` == printf "%g" in the classic locale) and
/// return the bit pattern of the re-parsed double. Two reals get the same
/// bits exactly when they render to the same string — including -0.0 vs 0.0
/// ("−0" vs "0") and values that differ only past the 6th significant digit.
/// Stack buffers only: no heap allocation.
[[nodiscard]] std::uint64_t canonical_real_bits(double v) noexcept {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  const double canon = std::strtod(buf, nullptr);
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof canon);
  std::memcpy(&bits, &canon, sizeof bits);
  return bits;
}

}  // namespace

std::uint64_t* PointKey::prepare(std::size_t n) {
  if (n <= kInlineSlots) {
    size_ = static_cast<std::uint32_t>(n);
    // A lingering heap block (from a previous larger assign) stays owned for
    // reuse but unused; data() must keep reading one consistent buffer, so
    // spill-once keys keep writing through the heap block.
    return heap_ ? heap_.get() : inline_;
  }
  if (!heap_ || heap_cap_ < n) {  // !heap_: a move-from leaves heap_cap_ stale
    heap_ = std::make_unique<std::uint64_t[]>(n);
    heap_cap_ = static_cast<std::uint32_t>(n);
  }
  size_ = static_cast<std::uint32_t>(n);
  return heap_.get();
}

void PointKey::assign(const ParamSpace& space, const Config& c) {
  const std::size_t n = c.values.size();
  if (n != space.dim()) {
    throw std::invalid_argument("PointKey: dimension mismatch");
  }
  std::uint64_t* slots = prepare(n);
  std::uint64_t h = kEmptyHash;
  for (std::size_t i = 0; i < n; ++i) {
    const Parameter& p = space.param(i);
    const Value& v = c.values[i];
    std::uint64_t slot = 0;
    switch (p.type()) {
      case ParamType::Int:
        if (!std::holds_alternative<std::int64_t>(v)) {
          throw std::invalid_argument("PointKey: expected int for " + p.name());
        }
        slot = static_cast<std::uint64_t>(std::get<std::int64_t>(v));
        break;
      case ParamType::Real:
        if (!std::holds_alternative<double>(v)) {
          throw std::invalid_argument("PointKey: expected real for " + p.name());
        }
        slot = canonical_real_bits(std::get<double>(v));
        break;
      case ParamType::Enum: {
        if (!std::holds_alternative<std::string>(v)) {
          throw std::invalid_argument("PointKey: expected enum label for " + p.name());
        }
        const auto& label = std::get<std::string>(v);
        const auto& choices = p.choices();
        const auto it = std::find(choices.begin(), choices.end(), label);
        if (it == choices.end()) {
          throw std::invalid_argument("PointKey: unknown choice '" + label + "' for " +
                                      p.name());
        }
        slot = static_cast<std::uint64_t>(std::distance(choices.begin(), it));
        break;
      }
    }
    slots[i] = slot;
    h = mix64(h ^ slot);
  }
  hash_ = mix64(h ^ static_cast<std::uint64_t>(n));
}

void PointKey::copy_from(const PointKey& other) {
  std::uint64_t* slots = prepare(other.size_);
  std::memcpy(slots, other.data(), other.size_ * sizeof(std::uint64_t));
  hash_ = other.hash_;
}

}  // namespace harmony
