#pragma once

/// \file offline_driver.hpp
/// Off-line iterative tuning with representative short runs — the mechanism
/// this paper adds to Active Harmony (Section III). One tuning iteration is
/// one short benchmarking run of the application: the driver launches the
/// run with a candidate configuration, measures it, feeds the result to the
/// strategy, and restarts the application with the next candidate. All costs
/// of a parameter change are accounted: restart overhead and warm-up time as
/// well as the measured region, exactly as the paper's experiments do.

#include <functional>
#include <optional>

#include "core/controller.hpp"
#include "core/evaluation.hpp"
#include "core/history.hpp"
#include "core/strategy.hpp"
#include "core/tuner.hpp"

namespace harmony {

// ShortRunResult / ShortRunFn live in controller.hpp (the short-run backend
// is shared with the parallel engine) and are re-exported here.

/// Inherits the shared loop knobs (`use_cache`, `tracer`) from
/// ControllerOptions.
struct OfflineOptions : ControllerOptions {
  int short_run_steps = 10;       ///< paper: "typical benchmarking run of 10 time steps"
  int max_runs = 40;              ///< tuning-iteration budget (distinct runs)
  double restart_overhead_s = 0;  ///< stop/reconfigure/restart cost per run
};

struct OfflineResult {
  std::optional<Config> best;
  double best_measured_s = 0.0;
  int runs = 0;                     ///< distinct short runs actually launched
  double total_tuning_cost_s = 0;   ///< restarts + warmups + measured regions
  bool strategy_converged = false;
};

class OfflineDriver {
 public:
  OfflineDriver(const ParamSpace& space, OfflineOptions opts = {});

  /// Run the tuning loop.
  OfflineResult tune(SearchStrategy& strategy, const ShortRunFn& run);

  [[nodiscard]] const History& history() const { return history_; }

 private:
  const ParamSpace* space_;
  OfflineOptions opts_;
  History history_;
};

}  // namespace harmony
