#pragma once

/// \file history.hpp
/// Record of a tuning run: every evaluated configuration in order, with the
/// observed objective and whether it improved the incumbent. The paper's
/// Table I ("parameter changes through iterations") is generated directly
/// from this record, as are the CSV exports behind Figures 2-6.

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony {

struct HistoryEntry {
  int iteration = 0;           ///< distinct-evaluation index (cache misses only)
  Config config;
  EvaluationResult result;
  bool improved = false;       ///< true when this run improved the incumbent
  bool cached = false;         ///< true when served from the evaluation cache
};

class History {
 public:
  explicit History(const ParamSpace& space) : space_(&space) {}

  /// Append one evaluation. Takes the config by value so hot callers (the
  /// controller's tell() path) can move theirs in instead of copying.
  void record(Config c, const EvaluationResult& r, bool cached);

  [[nodiscard]] const std::vector<HistoryEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Number of distinct (non-cached) evaluations — the paper's "iterations".
  [[nodiscard]] int iterations() const noexcept { return iterations_; }

  /// Number of entries served from an evaluation cache instead of a fresh
  /// run — including the parallel engine's in-flight coalesced evaluations,
  /// which it records with the same `cached` flag.
  [[nodiscard]] int cached_count() const noexcept {
    return static_cast<int>(entries_.size()) - iterations_;
  }

  [[nodiscard]] std::optional<Config> best_config() const;
  [[nodiscard]] double best_objective() const noexcept { return best_value_; }

  /// Best objective seen after the first k distinct iterations (for
  /// convergence curves); k past the end returns the final best.
  [[nodiscard]] double best_after(int k) const;

  /// Distinct evaluations needed before the final best objective was first
  /// reached — the convergence-speed number the benchmark regression gate
  /// compares across commits. Zero when nothing valid was recorded.
  [[nodiscard]] int evals_to_best() const;

  /// For each improving iteration, which parameters changed relative to the
  /// previous incumbent: the exact shape of the paper's Table I rows.
  struct ParamChange {
    int iteration;
    std::string param;
    std::string from;
    std::string to;
  };
  [[nodiscard]] std::vector<ParamChange> improvement_trace() const;

  /// CSV with one row per evaluation: iteration,cached,objective,valid,params...
  void write_csv(std::ostream& os) const;

 private:
  const ParamSpace* space_;
  std::vector<HistoryEntry> entries_;
  int iterations_ = 0;
  double best_value_ = 0.0;
  bool have_best_ = false;
  std::optional<Config> best_;
};

}  // namespace harmony
