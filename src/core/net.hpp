#pragma once

/// \file net.hpp
/// Minimal RAII wrappers over POSIX TCP sockets used by the tuning server
/// and client. Loopback-only by design: the Harmony server in this repo is a
/// localhost coordination service, not an internet-facing daemon.

#include <optional>
#include <string>

namespace harmony::net {

/// RAII file-descriptor owner.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Shut down both directions without releasing the fd. Unlike close(),
  /// this reliably wakes a thread blocked in accept()/recv() on this socket
  /// — required to stop the tuning server's accept loop.
  void shutdown() noexcept;

  /// Send an entire buffer; returns false on error/peer close.
  [[nodiscard]] bool send_all(const std::string& data) const;

  /// Send one protocol line (appends '\n').
  [[nodiscard]] bool send_line(const std::string& line) const;

 private:
  int fd_ = -1;
};

/// Buffered line reader over a socket.
class LineReader {
 public:
  explicit LineReader(const Socket& s) : socket_(&s) {}

  /// Blocking read of the next '\n'-terminated line (terminator stripped).
  /// nullopt on EOF or error.
  [[nodiscard]] std::optional<std::string> read_line();

 private:
  const Socket* socket_;
  std::string buffer_;
};

/// Listen on 127.0.0.1:port (port 0 picks an ephemeral port). Returns the
/// listening socket and the bound port, or an invalid socket on failure.
struct ListenResult {
  Socket socket;
  int port = 0;
};
[[nodiscard]] ListenResult listen_loopback(int port);

/// Accept one connection (blocking).
[[nodiscard]] Socket accept_connection(const Socket& listener);

/// Connect to 127.0.0.1:port.
[[nodiscard]] Socket connect_loopback(int port);

}  // namespace harmony::net
