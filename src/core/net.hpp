#pragma once

/// \file net.hpp
/// Minimal RAII wrappers over POSIX TCP sockets used by the tuning server
/// and client. Loopback-only by design: the Harmony server in this repo is a
/// localhost coordination service, not an internet-facing daemon.

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

struct iovec;  // <sys/uio.h>

namespace harmony::net {

/// RAII file-descriptor owner. The descriptor is stored atomically so one
/// thread may shutdown()/close() a socket another thread is blocked in
/// accept()/recv() on — the tuning server's stop path — without a data
/// race; ownership is still single-threaded (moves are not synchronized
/// against concurrent moves).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd() >= 0; }
  [[nodiscard]] int fd() const noexcept {
    return fd_.load(std::memory_order_relaxed);
  }
  void close() noexcept;

  /// Shut down both directions without releasing the fd. Unlike close(),
  /// this reliably wakes a thread blocked in accept()/recv() on this socket
  /// — required to stop the tuning server's accept loop.
  void shutdown() noexcept;

  /// Send an entire buffer; returns false on error/peer close.
  [[nodiscard]] bool send_all(const char* data, std::size_t size) const;
  [[nodiscard]] bool send_all(std::string_view data) const {
    return send_all(data.data(), data.size());
  }

  /// Send one protocol line (appends '\n').
  [[nodiscard]] bool send_line(const std::string& line) const;

  /// Switch the descriptor to O_NONBLOCK (event-loop connections).
  [[nodiscard]] bool set_nonblocking() const noexcept;

 private:
  std::atomic<int> fd_{-1};
};

/// Buffered line reader over a socket. Reassembles lines across partial
/// reads; `max_line_bytes` bounds a single line so a peer streaming an
/// unterminated (or overlong) line cannot grow the buffer without limit —
/// the read fails instead (see overflowed()). 0 disables the limit.
class LineReader {
 public:
  static constexpr std::size_t kDefaultMaxLine = 1 << 20;  // 1 MiB

  explicit LineReader(const Socket& s,
                      std::size_t max_line_bytes = kDefaultMaxLine)
      : socket_(&s), max_line_(max_line_bytes) {}

  /// Blocking read of the next '\n'-terminated line (terminator stripped).
  /// nullopt on EOF, error, or when the line limit is exceeded.
  [[nodiscard]] std::optional<std::string> read_line();

  /// Allocation-free variant for hot paths: writes the line into `out`,
  /// reusing its capacity. Returns false on EOF/error/overflow (out is left
  /// empty). The server's steady-state read path uses this overload.
  [[nodiscard]] bool read_line(std::string& out);

  /// True once a read failed because a line exceeded max_line_bytes. The
  /// reader is poisoned from then on: callers should drop the connection
  /// (buffered bytes past the overflow are not a trustworthy stream).
  [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

  [[nodiscard]] std::size_t max_line_bytes() const noexcept { return max_line_; }

 private:
  const Socket* socket_;
  std::size_t max_line_;
  bool overflowed_ = false;
  std::string buffer_;
  std::size_t head_ = 0;  ///< consumed prefix of buffer_ (compacted lazily)
};

/// Growable circular byte queue holding a connection's pending output.
/// Capacity grows geometrically and is then reused, so a connection in
/// steady state appends and drains without allocating. Readable data may
/// wrap around the end of the storage; drain_iov() exposes the (at most two)
/// contiguous segments for a vectored write.
class ByteRing {
 public:
  void append(const char* data, std::size_t n);
  void append(std::string_view s) { append(s.data(), s.size()); }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// Fill iov[0..1] with the readable segments; returns the segment count
  /// (0, 1, or 2 when the data wraps).
  [[nodiscard]] int drain_iov(struct iovec* iov) const;

  /// Discard the first n readable bytes (after a successful write).
  void consume(std::size_t n);

  /// Compact after a burst drain: when capacity exceeds `max_capacity` and
  /// the pending bytes still fit, re-linearize into a block of exactly
  /// max(max_capacity, size()) bytes (an empty ring with max_capacity 0
  /// frees its storage entirely). A ring holding more than `max_capacity`
  /// is left untouched — compaction never drops or moves unread data out of
  /// reach. This is how a one-time 10k-session write spike stops pinning
  /// peak memory forever (the server calls it from its idle-tick sweep).
  void shrink(std::size_t max_capacity);

 private:
  std::vector<char> buf_;
  std::size_t head_ = 0;   ///< index of the first readable byte
  std::size_t count_ = 0;  ///< readable bytes
};

/// Listen on 127.0.0.1:port (port 0 picks an ephemeral port). Returns the
/// listening socket and the bound port, or an invalid socket on failure.
struct ListenResult {
  Socket socket;
  int port = 0;
};
[[nodiscard]] ListenResult listen_loopback(int port);

/// Accept one connection (blocking).
[[nodiscard]] Socket accept_connection(const Socket& listener);

/// Connect to 127.0.0.1:port.
[[nodiscard]] Socket connect_loopback(int port);

/// Retry/timeout policy for connect_loopback. The defaults reproduce the
/// plain overload (one blocking attempt); fleet workers use several attempts
/// with bounded exponential backoff so they survive a server that starts a
/// beat later than they do.
struct ConnectOptions {
  int attempts = 1;           ///< total connect attempts (>= 1)
  int backoff_ms = 50;        ///< sleep before the 2nd attempt; doubles after
  int max_backoff_ms = 1000;  ///< ceiling on the doubled backoff
  int timeout_ms = 0;         ///< per-attempt connect timeout; 0 = OS default
};

/// Connect with retry: attempts are spaced by an exponentially growing,
/// bounded backoff, and each attempt may carry its own timeout (implemented
/// with a non-blocking connect; the returned socket is blocking again).
[[nodiscard]] Socket connect_loopback(int port, const ConnectOptions& opts);

}  // namespace harmony::net
