#include "core/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "obs/metrics.hpp"

namespace harmony::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(epoll_fd_);
    ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

bool EventLoop::add(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  callbacks_[fd] = std::make_shared<FdCallback>(std::move(cb));
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wakeup();
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  // Best-effort: EAGAIN means a wakeup is already pending.
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::defer(std::function<void()> fn) {
  Deferred item{std::move(fn), {}};
  if (obs::enabled()) item.enqueued = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(deferred_mutex_);
    deferred_.push_back(std::move(item));
  }
  wakeup();
}

void EventLoop::drain_deferred() {
  std::vector<Deferred> pending;
  {
    const std::lock_guard<std::mutex> lock(deferred_mutex_);
    pending.swap(deferred_);
  }
  if (pending.empty()) return;
  if (obs::enabled()) {
    auto& defer_wait =
        obs::MetricsRegistry::global().hdr("net.loop.defer_wait_s");
    const auto now = std::chrono::steady_clock::now();
    for (const auto& item : pending) {
      if (item.enqueued == std::chrono::steady_clock::time_point{}) continue;
      defer_wait.record(std::chrono::duration<double>(now - item.enqueued).count());
    }
  }
  for (auto& item : pending) item.fn();
}

void EventLoop::set_tick(int interval_ms, std::function<void()> fn) {
  tick_ms_ = interval_ms > 0 ? interval_ms : 0;
  tick_fn_ = tick_ms_ > 0 ? std::move(fn) : nullptr;
}

void EventLoop::run() {
  // Resolve the hot-path metric handles once; recording stays gated on
  // obs::enabled() so a disabled run costs one relaxed load per iteration.
  auto& iterations = obs::MetricsRegistry::global().counter("net.loop.iterations");
  auto& ready_depth = obs::MetricsRegistry::global().histogram("net.loop.ready");

  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  auto next_tick = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(tick_ms_ > 0 ? tick_ms_ : 0);
  while (!stop_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (tick_ms_ > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= next_tick) {
        if (tick_fn_) tick_fn_();
        // No catch-up bursts after a stall: the next deadline is measured
        // from now, so ticks are "at least interval apart", not "N per N ms".
        next_tick = now + std::chrono::milliseconds(tick_ms_);
      }
      timeout_ms = static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        next_tick - std::chrono::steady_clock::now())
                                        .count()) +
                   1;
      if (timeout_ms < 1) timeout_ms = 1;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (obs::enabled()) {
      iterations.add(1);
      ready_depth.record(static_cast<double>(n));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const auto r = ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      // Look the callback up per event and hold a reference across the call:
      // a handler may remove its own fd (or a later-ready one) mid-batch.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      const auto cb = it->second;
      (*cb)(events[i].events);
    }
    drain_deferred();
  }
  drain_deferred();
}

}  // namespace harmony::net
