#pragma once

/// \file flat_map.hpp
/// FlatPointMap<V>: an open-addressing hash map keyed by PointKey, built for
/// the evaluation caches. Compared to unordered_map<string, V> it performs
/// no per-node allocation, probes contiguous memory (linear probing over a
/// power-of-two slot array), and never rehashes a key — PointKey carries its
/// hash, computed once at derivation.
///
/// Deletion uses backward-shift (Robin-Hood style compaction) instead of
/// tombstones, so a long-lived cache that drops failed in-flight entries
/// (ConcurrentEvalCache's retry path) never degrades into tombstone scans.
///
/// V must be default-constructible and movable. Not thread-safe: callers
/// that share a map across threads hold their own lock (the concurrent cache
/// wraps one FlatPointMap per shard behind the shard mutex).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/point_key.hpp"

namespace harmony {

template <typename V>
class FlatPointMap {
 public:
  FlatPointMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pointer to the mapped value, or nullptr. Never allocates.
  [[nodiscard]] V* find(const PointKey& k) noexcept {
    const std::size_t i = find_slot(k);
    return i == npos ? nullptr : &slots_[i].value;
  }
  [[nodiscard]] const V* find(const PointKey& k) const noexcept {
    const std::size_t i = find_slot(k);
    return i == npos ? nullptr : &slots_[i].value;
  }

  /// Insert a default-constructed value under `k` unless present. Returns
  /// {value, inserted}. The key is copied only on actual insertion.
  std::pair<V*, bool> try_emplace(const PointKey& k) {
    if (std::size_t i = find_slot(k); i != npos) return {&slots_[i].value, false};
    const std::size_t i = insert_fresh(k);
    return {&slots_[i].value, true};
  }

  /// Insert or overwrite the mapping for `k`; returns the stored value.
  V& insert_or_assign(const PointKey& k, V v) {
    auto [val, inserted] = try_emplace(k);
    *val = std::move(v);
    return *val;
  }

  /// Remove `k`'s entry (backward-shift, no tombstone). Returns whether an
  /// entry was removed.
  bool erase(const PointKey& k) {
    std::size_t hole = find_slot(k);
    if (hole == npos) return false;
    std::size_t j = (hole + 1) & mask_;
    while (used_[j]) {
      const std::size_t ideal = slots_[j].key.hash() & mask_;
      // j's probe walk (ideal -> j) passes through the hole exactly when the
      // hole is at least as close to ideal (cyclically) as j is.
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole] = Slot{};  // release the key's heap (if any) and the value
    used_[hole] = 0;
    --size_;
    return true;
  }

  /// Drop every entry but keep the slot array for reuse.
  void clear() noexcept {
    if (size_ == 0) return;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) {
        slots_[i] = Slot{};
        used_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Pre-size so `n` entries insert without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Visit every (key, value) pair in unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) f(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    PointKey key;
    V value{};
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;
  // Max load factor 7/8: linear probing stays short and growth is rare.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  [[nodiscard]] std::size_t find_slot(const PointKey& k) const noexcept {
    if (slots_.empty()) return npos;
    std::size_t i = k.hash() & mask_;
    while (used_[i]) {
      if (slots_[i].key == k) return i;
      i = (i + 1) & mask_;
    }
    return npos;
  }

  /// Insert a key known to be absent; returns its slot index.
  std::size_t insert_fresh(const PointKey& k) {
    if (slots_.empty() || (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t i = place(k.hash());
    slots_[i].key = k;
    used_[i] = 1;
    ++size_;
    return i;
  }

  /// First free slot on hash's probe sequence (capacity is never full).
  [[nodiscard]] std::size_t place(std::uint64_t hash) const noexcept {
    std::size_t i = hash & mask_;
    while (used_[i]) i = (i + 1) & mask_;
    return i;
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(new_cap);
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      const std::size_t j = place(old_slots[i].key.hash());
      slots_[j] = std::move(old_slots[i]);
      used_[j] = 1;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace harmony
