#pragma once

/// \file work_sink.hpp
/// The seam between the tuning server's transport layer and a fleet
/// dispatcher (src/fleet/dispatcher.hpp). A connection that sends ATTACH
/// flips from the request/reply tuning protocol into a worker channel: the
/// server registers it here with a push function, the dispatcher then sends
/// WORK lines through that function at any time, and RESULT lines flow back
/// through on_result(). Keeping the interface in core (rather than having
/// the server depend on src/fleet/) breaks the dependency cycle: ah_core
/// only sees this ABC, ah_fleet implements it, and hosts wire the two
/// together through ServerOptions::fleet.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace harmony {

class WorkSink {
 public:
  virtual ~WorkSink() = default;

  /// Transport-provided sender for one worker connection. The payload is a
  /// complete wire blob (one or more '\n'-terminated lines). Must be safe to
  /// call from any thread; returns false when the connection is known dead
  /// (best effort — a dead worker is also reported via detach()).
  using PushFn = std::function<bool(std::string_view payload)>;

  /// A worker connection announced itself (ATTACH <name> [capacity]).
  /// `capacity` is how many WORK items it can hold in flight at once.
  /// Returns the nonzero worker id echoed back to the worker.
  [[nodiscard]] virtual std::uint64_t attach(const std::string& name,
                                             int capacity, PushFn push) = 0;

  /// The worker connection ended (DETACH verb or connection teardown). Any
  /// WORK the worker still held in flight must be re-dispatched elsewhere.
  virtual void detach(std::uint64_t worker_id) = 0;

  /// A RESULT line arrived: `ok` false means the worker reported FAIL for
  /// this configuration. Returns false when `work_id` was never issued
  /// (protocol error); duplicate results for completed work return true.
  virtual bool on_result(std::uint64_t worker_id, std::uint64_t work_id,
                         bool ok, double objective, double cost_s) = 0;

  /// Liveness signal (PING verb); also implied by every RESULT.
  virtual void heartbeat(std::uint64_t worker_id) = 0;
};

}  // namespace harmony
