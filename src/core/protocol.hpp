#pragma once

/// \file protocol.hpp
/// Line-oriented wire protocol between a tunable application and the Harmony
/// tuning server (paper Fig. 1). One message per line, space-separated
/// fields; enum labels therefore must not contain whitespace.
///
/// Client -> server:
///   HELLO <app-name>
///   PARAM INT <name> <lo> <hi> <step>
///   PARAM REAL <name> <lo> <hi>
///   PARAM ENUM <name> <choice1,choice2,...>
///   STRATEGY                  -> "OK <name1> <name2> ..." (the registry's
///                                strategy names; valid any time)
///   STRATEGY <name> [k=v ...] -> choose the search strategy and its options
///                                for this session (before START; default is
///                                nelder-mead). Bad names/options get ERR
///                                with the registry's message.
///   START <max_iterations>
///   FETCH
///   REPORT <objective>
///   REPORT+FETCH <objective>  -> REPORT the pending candidate and FETCH the
///                                next one in a single exchange; the reply is
///                                the FETCH reply (CONFIG/DONE). Halves the
///                                per-evaluation round-trip cost.
///   BEST
///   BYE
///
/// Multi-tenancy (optional):
///   TENANT <name>             -> "OK tenant <name>". Declares which tenant
///                                this session bills to (before START; at
///                                most once; name <= 64 chars). When the
///                                server enforces a per-tenant session quota
///                                and it is full, the reply is
///                                "ERR retry-after <seconds> ..." and the
///                                connection is closed — a graceful shed
///                                telling the client when to come back.
///                                Sessions that never send TENANT are
///                                unconstrained and unattributed.
///
/// Batched framing (optional, negotiated):
///   BATCH                     -> "OK batch <max>" on transports that
///                                support batching (the event-loop stack),
///                                "ERR batch unsupported on this transport"
///                                on the legacy stack. Probe once, then:
///   BATCH <n> <v1> ... <vn>   -> n REPORT+FETCH exchanges in ONE line:
///                                each vi reports the pending candidate and
///                                the reply block is exactly n lines, each
///                                CONFIG or DONE (DONE from the point the
///                                budget runs out). The line is validated
///                                atomically — a malformed count or value
///                                answers a single ERR and consumes nothing.
///                                n is capped by the advertised <max>.
///                                Collapses the per-evaluation syscall and
///                                framing overhead at high session counts
///                                without changing unbatched behaviour by a
///                                byte.
///
/// Clients may pipeline: any number of verbs can be written before reading
/// the replies, and the server answers strictly in request order (one reply
/// block per verb). The steady-state tuning loop therefore costs one round
/// trip per evaluation (REPORT+FETCH), and setup (HELLO..START) can ride in
/// a single write.
///
/// Distributed tracing (optional, fully backward compatible): FETCH, REPORT,
/// REPORT+FETCH, BATCH, WORK and RESULT accept one extra trailing token of
/// the form
///   T=<trace-hex>-<span-hex>
/// carrying a TraceContext (64-bit ids, lowercase hex). A sampled request's
/// spans on both sides of the wire share the trace id, and the receiver
/// treats the sender's span id as the parent span. An absent token means the
/// request is unsampled and every tracing call site is skipped — old clients
/// and servers interoperate unchanged, and replies never carry the token.
///
/// Worker (fleet) verbs — a connection that sends ATTACH becomes an
/// evaluation worker channel instead of a tuning session (requires the
/// server to be wired to a WorkSink dispatcher; see work_sink.hpp):
///   ATTACH <name> [capacity]  -> "OK worker <id>". The connection switches
///                                to message passing: the server may push a
///                                WORK line at any time (up to `capacity` in
///                                flight, default 1), and RESULT lines are
///                                not acknowledged.
///   RESULT <id> <objective> [cost_s]
///                             -> measurement for WORK item <id>; no reply.
///   RESULT <id> FAIL          -> the configuration failed to run; no reply.
///   PING                      -> "PONG"; refreshes the worker's heartbeat.
///   DETACH                    -> "OK detached"; in-flight work re-dispatches.
///
/// Server -> worker:
///   WORK <id> <v1> <v2> ...   (positional fields, like CONFIG, against the
///                              worker's compiled-in substrate space)
///
/// Introspection verbs (valid on any connection, any time — an admin client
/// such as examples/harmony_top polls them against a live server):
///   STATUS                    -> one line of JSON: the StatusRegistry
///                                snapshot (every active session with its
///                                current best, plus pool worker lanes)
///   METRICS                   -> the MetricsRegistry in Prometheus text
///                                exposition format, terminated by a
///                                "# EOF" comment line
///   LOG [tail] [N]            -> "LOG <n>" then n structured EventLog
///                                records as JSON lines (default N = 20)
///
/// Server -> client:
///   OK [detail]
///   CONFIG <v1> <v2> ...      (positional, matching PARAM registration order)
///   DONE                      (search converged; FETCH/BEST return incumbent)
///   ERR <message>

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/param_space.hpp"
#include "core/types.hpp"
#include "obs/trace.hpp"

namespace harmony::proto {

/// A parsed protocol line: verb plus raw argument fields.
struct Message {
  std::string verb;
  std::vector<std::string> args;
};

/// Zero-copy view of one parsed line: verb and argument fields are
/// string_views into the caller's buffer, and the args vector is reused
/// across lines, so steady-state tokenization performs no heap allocations.
/// The views are only valid while the tokenized line's storage is.
struct MessageView {
  std::string_view verb;
  std::vector<std::string_view> args;

  [[nodiscard]] Message to_message() const;
};

/// Tokenize `line` into `out`, reusing out.args' capacity. Returns false for
/// empty/whitespace-only lines (out is cleared either way).
[[nodiscard]] bool parse_line(std::string_view line, MessageView& out);

/// Split a line into verb + fields. Empty/whitespace-only lines yield nullopt.
[[nodiscard]] std::optional<Message> parse_line(const std::string& line);

/// Render a message back to one line (no trailing newline).
[[nodiscard]] std::string format(const Message& m);

/// Strict integer / floating-point field parsers: the whole field must be
/// consumed. Used by the protocol itself and by server verb handlers.
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view s);
[[nodiscard]] std::optional<double> parse_f64(std::string_view s);

/// Encode a configuration as the argument list of a CONFIG message.
[[nodiscard]] std::string encode_config(const ParamSpace& space, const Config& c);

/// Append-into-buffer variant for hot paths: appends the encoded fields to
/// `out` without intermediate strings (reuse `out`'s capacity across calls).
void encode_config(const ParamSpace& space, const Config& c, std::string& out);

/// Decode CONFIG arguments against a parameter space. Returns nullopt when
/// the field count or any field fails to parse/validate.
[[nodiscard]] std::optional<Config> decode_config(const ParamSpace& space,
                                                  const std::vector<std::string>& args);

/// Zero-copy variant: decode the args of a tokenized MessageView.
[[nodiscard]] std::optional<Config> decode_config(const ParamSpace& space,
                                                  const MessageView& m);

/// Like the MessageView overload but ignoring the first `skip` args — the
/// worker side of a WORK line decodes the fields after the work id.
[[nodiscard]] std::optional<Config> decode_config(const ParamSpace& space,
                                                  const MessageView& m,
                                                  std::size_t skip);

/// Append one complete "WORK <id> <fields>\n" line to `out` (hot-path,
/// allocation-free once `out` has capacity).
void encode_work(const ParamSpace& space, std::uint64_t work_id, const Config& c,
                 std::string& out);

/// True when a field is a trace-context token ("T=..."); the cheap test verb
/// handlers use before attempting a full parse. Allocation-free.
[[nodiscard]] bool is_trace_token(std::string_view field) noexcept;

/// Parse a "T=<trace-hex>-<span-hex>" token. Returns nullopt unless both ids
/// are valid non-empty hex and the trace id is non-zero. Allocation-free.
[[nodiscard]] std::optional<obs::TraceContext> parse_trace(std::string_view field) noexcept;

/// Append " T=<trace>-<span>" (note the leading separator) to `out` —
/// allocation-free once `out` has capacity. No-op for unsampled contexts.
void append_trace(const obs::TraceContext& ctx, std::string& out);

/// Build a PARAM registration line for a parameter.
[[nodiscard]] std::string encode_param(const Parameter& p);

/// Parse a PARAM line's arguments (everything after the verb) into a
/// Parameter. Returns nullopt on malformed input.
[[nodiscard]] std::optional<Parameter> decode_param(const std::vector<std::string>& args);

/// Zero-copy variant: decode the args of a tokenized MessageView.
[[nodiscard]] std::optional<Parameter> decode_param(const MessageView& m);

}  // namespace harmony::proto
