#pragma once

/// \file tuner.hpp
/// In-process tuning facade: a thin, API-compatible wrapper that runs a
/// SearchStrategy against an Evaluator through the one SearchController
/// (controller.hpp) with a persistent memoization table and history
/// recording. The controller is deployment-agnostic — this same loop serves
/// the off-line representative-short-run drivers and the TCP tuning server.

#include <memory>
#include <optional>

#include "core/controller.hpp"
#include "core/evaluation.hpp"
#include "core/history.hpp"
#include "core/strategy.hpp"

namespace harmony {

/// Inherits the shared loop knobs (`use_cache`, `tracer`) from
/// ControllerOptions.
struct TunerOptions : ControllerOptions {
  /// Budget of *distinct* evaluations (cache misses). The paper reports
  /// tuning cost in these units ("27 iterations", "120 tuning steps").
  int max_iterations = 100;

  /// Hard cap on strategy proposals, cached or not, as a loop guard.
  int max_proposals = 100000;
};

struct TuneResult {
  std::optional<Config> best;
  EvaluationResult best_result;
  int iterations = 0;        ///< distinct evaluations actually run
  int proposals = 0;         ///< total strategy proposals served
  std::size_t cache_hits = 0;
  bool strategy_converged = false;
};

class Tuner {
 public:
  Tuner(const ParamSpace& space, TunerOptions opts = {});

  /// Run the strategy to convergence or budget exhaustion.
  TuneResult run(SearchStrategy& strategy, const Evaluator& evaluate);

  /// Evaluation history of the last run().
  [[nodiscard]] const History& history() const { return history_; }

  /// The memoization table (persists across run() calls so a second strategy
  /// can reuse earlier measurements, as the paper's prior-runs work [12]
  /// recommends).
  [[nodiscard]] const EvalCache& cache() const { return cache_; }
  void clear_cache() { cache_.clear(); }

 private:
  const ParamSpace* space_;
  TunerOptions opts_;
  EvalCache cache_;
  History history_;
};

}  // namespace harmony
