#pragma once

/// \file tuner.hpp
/// The Adaptation Controller loop (paper Fig. 1): drives a SearchStrategy
/// against an Evaluator, with memoization, iteration budgets and history
/// recording. The Tuner is deployment-agnostic — the same loop serves
/// in-process tuning, the off-line representative-short-run driver and the
/// TCP tuning server.

#include <memory>
#include <optional>

#include "core/evaluation.hpp"
#include "core/history.hpp"
#include "core/strategy.hpp"

namespace harmony::obs {
class SearchTracer;
}  // namespace harmony::obs

namespace harmony {

struct TunerOptions {
  /// Budget of *distinct* evaluations (cache misses). The paper reports
  /// tuning cost in these units ("27 iterations", "120 tuning steps").
  int max_iterations = 100;

  /// Hard cap on strategy proposals, cached or not, as a loop guard.
  int max_proposals = 100000;

  /// Memoize evaluations per lattice point.
  bool use_cache = true;

  /// Optional per-evaluation tracer (not owned; may be null). When set, the
  /// loop records one TraceEvent per proposal — strategy, point, objective,
  /// cache hit/miss, wall-clock span — independent of obs::enabled(), which
  /// only gates the aggregate metrics. Feed the JSONL export to
  /// tools/report_gen for the HTML convergence report.
  obs::SearchTracer* tracer = nullptr;
};

struct TuneResult {
  std::optional<Config> best;
  EvaluationResult best_result;
  int iterations = 0;        ///< distinct evaluations actually run
  int proposals = 0;         ///< total strategy proposals served
  std::size_t cache_hits = 0;
  bool strategy_converged = false;
};

class Tuner {
 public:
  Tuner(const ParamSpace& space, TunerOptions opts = {});

  /// Run the strategy to convergence or budget exhaustion.
  TuneResult run(SearchStrategy& strategy, const Evaluator& evaluate);

  /// Evaluation history of the last run().
  [[nodiscard]] const History& history() const { return history_; }

  /// The memoization table (persists across run() calls so a second strategy
  /// can reuse earlier measurements, as the paper's prior-runs work [12]
  /// recommends).
  [[nodiscard]] const EvalCache& cache() const { return cache_; }
  void clear_cache() { cache_.clear(); }

 private:
  const ParamSpace* space_;
  TunerOptions opts_;
  EvalCache cache_;
  History history_;
};

}  // namespace harmony
