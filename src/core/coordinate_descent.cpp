#include "core/coordinate_descent.hpp"

#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace harmony {

CoordinateDescent::CoordinateDescent(const ParamSpace& space,
                                     std::optional<Config> initial, int max_sweeps,
                                     int line_samples)
    : space_(&space),
      incumbent_(initial.value_or(space.default_config())),
      incumbent_value_(std::numeric_limits<double>::infinity()),
      max_sweeps_(max_sweeps),
      line_samples_(line_samples),
      best_value_(std::numeric_limits<double>::infinity()) {
  if (max_sweeps < 1) throw std::invalid_argument("CoordinateDescent: max_sweeps < 1");
  if (line_samples < 0) {
    throw std::invalid_argument("CoordinateDescent: negative line_samples");
  }
}

void CoordinateDescent::refill_queue() {
  const auto timer = obs::time_scope("cd.refill_s");
  obs::count("cd.sweeps");
  queue_.clear();
  if (line_samples_ == 0) {
    for (auto& n : space_->neighbors(incumbent_)) queue_.push_back(std::move(n));
  } else {
    // Per-coordinate line search: sample each dimension across its range
    // while the others stay at the incumbent.
    const auto base = space_->coords(incumbent_);
    for (std::size_t d = 0; d < space_->dim(); ++d) {
      const auto& p = space_->param(d);
      int want = line_samples_;
      if (p.count() > 0 && static_cast<std::uint64_t>(want) > p.count()) {
        want = static_cast<int>(p.count());
      }
      for (int k = 0; k < want; ++k) {
        auto coords = base;
        coords[d] = want == 1
                        ? p.coord_min()
                        : p.coord_min() + (p.coord_max() - p.coord_min()) * k /
                              (want - 1);
        Config candidate = space_->snap(coords);
        if (!(candidate == incumbent_)) queue_.push_back(std::move(candidate));
      }
    }
  }
  improved_this_sweep_ = false;
}

std::optional<Config> CoordinateDescent::propose() {
  if (done_) return std::nullopt;
  if (pending_) return pending_;  // idempotent re-ask
  if (!incumbent_evaluated_) {
    pending_ = incumbent_;
    return pending_;
  }
  if (queue_.empty()) {
    if (!improved_this_sweep_ || ++sweeps_ >= max_sweeps_) {
      done_ = true;
      return std::nullopt;
    }
    refill_queue();
    if (queue_.empty()) {
      done_ = true;
      return std::nullopt;
    }
  }
  pending_ = queue_.front();
  queue_.pop_front();
  return pending_;
}

void CoordinateDescent::report(const Config& c, const EvaluationResult& r) {
  if (!pending_) throw std::logic_error("CoordinateDescent::report without propose");
  pending_.reset();
  obs::count("cd.evaluations");
  const double value =
      r.valid ? r.objective : std::numeric_limits<double>::infinity();
  if (r.valid && value < best_value_) {
    best_value_ = value;
    best_ = c;
  }
  if (!incumbent_evaluated_) {
    incumbent_evaluated_ = true;
    incumbent_value_ = value;
    refill_queue();
    return;
  }
  if (value < incumbent_value_) {
    incumbent_ = c;
    incumbent_value_ = value;
    obs::count("cd.improvements");
    if (line_samples_ == 0) {
      // Greedy: restart the neighbor sweep from the improved incumbent.
      refill_queue();
    }
    improved_this_sweep_ = true;
  }
}

bool CoordinateDescent::converged() const { return done_; }

std::optional<Config> CoordinateDescent::best() const { return best_; }

double CoordinateDescent::best_objective() const { return best_value_; }

}  // namespace harmony
