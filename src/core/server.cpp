#include "core/server.hpp"

#include <charconv>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "core/protocol.hpp"
#include "obs/metrics.hpp"

namespace harmony {

TuningServer::TuningServer(ServerOptions opts) : opts_(opts) {}

TuningServer::~TuningServer() { stop(); }

bool TuningServer::start() {
  auto lr = net::listen_loopback(opts_.port);
  if (!lr.socket.valid()) return false;
  listener_ = std::move(lr.socket);
  port_ = lr.port;
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void TuningServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() (not close()) is what reliably unblocks a pending accept().
  listener_.shutdown();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void TuningServer::accept_loop() {
  while (running_.load()) {
    net::Socket client = net::accept_connection(listener_);
    if (!client.valid()) break;  // listener closed by stop()
    ++sessions_;
    obs::count("server.sessions");
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back(
        [this, c = std::move(client)]() mutable { serve_client(std::move(c)); });
  }
}

void TuningServer::serve_client(net::Socket client) {
  net::LineReader reader(client);
  ParamSpace space;
  std::unique_ptr<NelderMead> search;
  std::optional<Config> pending;
  int iterations_left = opts_.default_max_iterations;

  const auto send = [&client](const std::string& line) {
    return client.send_line(line);
  };

  while (running_.load()) {
    const auto line = reader.read_line();
    if (!line) return;  // peer closed
    const auto msg = proto::parse_line(*line);
    if (!msg) continue;
    obs::count("server.messages");

    if (msg->verb == "HELLO") {
      if (!send("OK harmony-server/1.0")) return;
    } else if (msg->verb == "PARAM") {
      if (search) {
        if (!send("ERR session already started")) return;
        continue;
      }
      auto p = proto::decode_param(msg->args);
      if (!p) {
        if (!send("ERR malformed PARAM")) return;
        continue;
      }
      try {
        space.add(std::move(*p));
      } catch (const std::exception& e) {
        if (!send(std::string("ERR ") + e.what())) return;
        continue;
      }
      if (!send("OK")) return;
    } else if (msg->verb == "START") {
      if (space.empty()) {
        if (!send("ERR no parameters registered")) return;
        continue;
      }
      if (search) {
        if (!send("ERR session already started")) return;
        continue;
      }
      if (!msg->args.empty()) {
        int v{};
        const auto* s = msg->args[0].c_str();
        const auto [ptr, ec] = std::from_chars(s, s + msg->args[0].size(), v);
        if (ec != std::errc{} || ptr != s + msg->args[0].size() || v < 1) {
          if (!send("ERR bad iteration budget")) return;
          continue;
        }
        iterations_left = v;
      }
      search = std::make_unique<NelderMead>(space, opts_.search);
      if (!send("OK started")) return;
    } else if (msg->verb == "FETCH") {
      if (!search) {
        if (!send("ERR not started")) return;
        continue;
      }
      if (pending) {
        // Idempotent re-fetch of the outstanding candidate.
        if (!send("CONFIG " + proto::encode_config(space, *pending))) return;
        continue;
      }
      if (iterations_left <= 0) {
        if (!send("DONE")) return;
        continue;
      }
      auto proposal = search->propose();
      if (!proposal) {
        if (!send("DONE")) return;
        continue;
      }
      pending = std::move(*proposal);
      --iterations_left;
      obs::count("server.fetches");
      if (!send("CONFIG " + proto::encode_config(space, *pending))) return;
    } else if (msg->verb == "REPORT") {
      if (!search || !pending) {
        if (!send("ERR nothing to report")) return;
        continue;
      }
      if (msg->args.size() != 1) {
        if (!send("ERR REPORT takes one value")) return;
        continue;
      }
      double value{};
      try {
        value = std::stod(msg->args[0]);
      } catch (const std::exception&) {
        if (!send("ERR bad objective value")) return;
        continue;
      }
      EvaluationResult r;
      r.objective = value;
      r.valid = std::isfinite(value);
      search->report(*pending, r);
      pending.reset();
      // One completed FETCH -> REPORT pair is one tuning round trip.
      obs::count("server.roundtrips");
      if (!send("OK")) return;
    } else if (msg->verb == "BEST") {
      if (!search || !search->best()) {
        if (!send("ERR no measurements yet")) return;
        continue;
      }
      if (!send("CONFIG " + proto::encode_config(space, *search->best()))) return;
    } else if (msg->verb == "BYE") {
      (void)send("OK bye");
      return;
    } else {
      if (!send("ERR unknown verb " + msg->verb)) return;
    }
  }
}

}  // namespace harmony
