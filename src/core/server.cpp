#include "core/server.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/event_loop.hpp"
#include "core/server_session.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace harmony {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;
/// Per-readiness-cycle ingest cap: a firehosing pipelined client yields the
/// reactor back to its peers every 256 KiB (level-triggered epoll re-arms).
constexpr std::size_t kMaxReadPerCycle = 256 * 1024;

obs::Counter& bytes_in_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("net.bytes_in");
  return c;
}

obs::Counter& bytes_out_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("net.bytes_out");
  return c;
}

}  // namespace

/// One reactor shard: an event loop plus the connections assigned to it.
/// Everything here except `loop`'s thread-safe surface is touched only from
/// the shard's own thread (connections are handed over via loop.defer), so
/// connection state needs no locks.
struct TuningServer::LoopShard {
  explicit LoopShard(TuningServer* srv) : server(srv) {}

  struct Conn {
    Conn(const ServerOptions& opts, int session_no, net::Socket s)
        : sock(std::move(s)), gen(session_no), session(opts, session_no) {}

    net::Socket sock;
    const int gen;          ///< session number; guards pushes against fd reuse
    std::string rbuf;       ///< inbound bytes; lines are parsed in place
    std::size_t rpos = 0;   ///< consumed prefix of rbuf
    net::ByteRing wbuf;     ///< outbound bytes awaiting the socket
    std::string reply;      ///< per-burst reply scratch (capacity reused)
    ServerConnection session;
    bool closing = false;   ///< flush wbuf, then close (BYE or poisoned)
    bool want_write = false;  ///< EPOLLOUT currently armed
  };

  TuningServer* server;
  net::EventLoop loop;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;

  void adopt(net::Socket client, int session_no);
  void handle_io(int fd, std::uint32_t events);
  /// Queue a server-initiated payload (fleet WORK push) onto a connection.
  /// Thread-safe: hops onto the shard thread via defer(). Payloads for a
  /// connection that already closed are dropped — the dispatcher re-queues
  /// through detach() when a worker dies.
  void deliver(int fd, int gen, std::string payload);
  void push_payload(int fd, int gen, const std::string& payload);
  /// False when the connection died and was erased.
  [[nodiscard]] bool read_input(Conn& c);
  void process_lines(Conn& c);
  /// False on write error (connection should close).
  [[nodiscard]] bool flush(Conn& c);
  void close_conn(int fd);
};

void TuningServer::LoopShard::adopt(net::Socket client, int session_no) {
  if (!client.set_nonblocking()) return;  // dtor closes the socket
  const int fd = client.fd();
  auto conn = std::make_unique<Conn>(server->opts_, session_no, std::move(client));
  conn->session.set_sender(
      [this, fd, session_no](std::string_view payload) {
        deliver(fd, session_no, std::string(payload));
        return true;  // delivery is asynchronous; failures surface as detach
      });
  conns[fd] = std::move(conn);
  if (!loop.add(fd, EPOLLIN,
                [this, fd](std::uint32_t events) { handle_io(fd, events); })) {
    conns.erase(fd);
    server->active_connections_.fetch_sub(1);
  }
}

void TuningServer::LoopShard::handle_io(int fd, std::uint32_t events) {
  const auto it = conns.find(fd);
  if (it == conns.end()) return;  // stale event for a closed connection
  Conn& c = *it->second;

  if ((events & EPOLLIN) != 0) {
    if (!read_input(c)) {
      close_conn(fd);
      return;
    }
  } else if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(fd);
    return;
  }

  if (!flush(c) || (c.closing && c.wbuf.empty())) {
    close_conn(fd);
    return;
  }

  // Keep EPOLLOUT armed exactly while output is pending.
  const bool want_write = !c.wbuf.empty();
  if (want_write != c.want_write) {
    c.want_write = want_write;
    (void)loop.modify(fd, EPOLLIN | (want_write ? EPOLLOUT : 0u));
  }
}

void TuningServer::LoopShard::deliver(int fd, int gen, std::string payload) {
  // shared_ptr keeps the closure copyable for std::function.
  auto blob = std::make_shared<std::string>(std::move(payload));
  loop.defer([this, fd, gen, blob] { push_payload(fd, gen, *blob); });
}

void TuningServer::LoopShard::push_payload(int fd, int gen,
                                           const std::string& payload) {
  const auto it = conns.find(fd);
  // Stale pushes are dropped: the connection closed (and its worker
  // detached) since the push was queued, possibly with the fd reused.
  if (it == conns.end() || it->second->gen != gen) return;
  Conn& c = *it->second;
  c.wbuf.append(payload);
  if (!flush(c) || (c.closing && c.wbuf.empty())) {
    close_conn(fd);
    return;
  }
  const bool want_write = !c.wbuf.empty();
  if (want_write != c.want_write) {
    c.want_write = want_write;
    (void)loop.modify(fd, EPOLLIN | (want_write ? EPOLLOUT : 0u));
  }
}

bool TuningServer::LoopShard::read_input(Conn& c) {
  char chunk[kReadChunk];
  std::size_t ingested = 0;
  while (!c.closing && ingested < kMaxReadPerCycle) {
    const ssize_t n = ::recv(c.sock.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      if (obs::enabled()) bytes_in_counter().add(static_cast<std::uint64_t>(n));
      c.rbuf.append(chunk, static_cast<std::size_t>(n));
      ingested += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  process_lines(c);
  return true;
}

void TuningServer::LoopShard::process_lines(Conn& c) {
  const std::size_t max_line = server->opts_.max_line_bytes;
  c.reply.clear();
  while (!c.closing) {
    const auto pos = c.rbuf.find('\n', c.rpos);
    const bool unterminated = pos == std::string::npos;
    const std::size_t len = unterminated ? c.rbuf.size() - c.rpos : pos - c.rpos;
    if (max_line != 0 && len > max_line) {
      // Same poisoned-overflow semantics as net::LineReader on the legacy
      // path: answer once, then drop the connection — bytes past the
      // overflow are not a trustworthy stream.
      obs::log_warn("server", "line limit exceeded, disconnecting",
                    c.session.session_id());
      c.reply.append("ERR line too long\n");
      c.closing = true;
      break;
    }
    if (unterminated) break;
    std::size_t line_len = len;
    if (line_len > 0 && c.rbuf[c.rpos + line_len - 1] == '\r') --line_len;
    const std::string_view line(c.rbuf.data() + c.rpos, line_len);
    c.rpos = pos + 1;
    if (!c.session.handle_line(line, c.reply)) c.closing = true;
  }
  if (!c.reply.empty()) {
    c.wbuf.append(c.reply);
    c.reply.clear();
  }
  // Compact: drop the consumed prefix once fully drained (cheap, keeps the
  // buffer's capacity) or when the dead prefix outgrows the live tail.
  if (c.rpos == c.rbuf.size()) {
    c.rbuf.clear();
    c.rpos = 0;
  } else if (c.rpos > 64 * 1024 && c.rpos > c.rbuf.size() / 2) {
    c.rbuf.erase(0, c.rpos);
    c.rpos = 0;
  }
}

bool TuningServer::LoopShard::flush(Conn& c) {
  while (!c.wbuf.empty()) {
    iovec iov[2];
    const int segs = c.wbuf.drain_iov(iov);
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<decltype(mh.msg_iovlen)>(segs);
    const ssize_t n = ::sendmsg(c.sock.fd(), &mh,
#ifdef MSG_NOSIGNAL
                                MSG_NOSIGNAL
#else
                                0
#endif
    );
    if (n > 0) {
      if (obs::enabled()) bytes_out_counter().add(static_cast<std::uint64_t>(n));
      c.wbuf.consume(static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // EPOLLOUT re-arms
    return false;
  }
  return true;
}

void TuningServer::LoopShard::close_conn(int fd) {
  loop.remove(fd);
  conns.erase(fd);  // Conn dtor closes the socket and unpublishes status
  server->active_connections_.fetch_sub(1);
}

TuningServer::TuningServer(ServerOptions opts) : opts_(opts) {}

TuningServer::~TuningServer() { stop(); }

bool TuningServer::start() {
  auto lr = net::listen_loopback(opts_.port);
  if (!lr.socket.valid()) return false;
  listener_ = std::move(lr.socket);
  port_ = lr.port;
  if (opts_.threading == ServerThreading::kEventLoop) {
    if (!start_event_mode()) {
      listener_.close();
      return false;
    }
  } else {
    running_.store(true);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  obs::log_info("server", "listening on port " + std::to_string(port_));
  return true;
}

bool TuningServer::start_event_mode() {
  const int n = std::max(1, opts_.reactor_threads);
  shards_.clear();
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<LoopShard>(this);
    if (!shard->loop.ok()) {
      shards_.clear();
      return false;
    }
    shards_.push_back(std::move(shard));
  }
  if (!listener_.set_nonblocking()) {
    shards_.clear();
    return false;
  }
  // The listener lives on shard 0; fresh connections are spread round-robin
  // across all shards via defer().
  if (!shards_[0]->loop.add(listener_.fd(), EPOLLIN,
                            [this](std::uint32_t) { on_accept_ready(); })) {
    shards_.clear();
    return false;
  }
  running_.store(true);
  reactor_threads_.reserve(static_cast<std::size_t>(n));
  for (auto& shard : shards_) {
    reactor_threads_.emplace_back([s = shard.get()] { s->loop.run(); });
  }
  return true;
}

void TuningServer::on_accept_ready() {
  while (running_.load()) {
    net::Socket client = net::accept_connection(listener_);
    if (!client.valid()) break;  // drained (EAGAIN) or listener closed
    if (opts_.max_connections > 0 &&
        active_connections_.load() >= opts_.max_connections) {
      obs::count("server.rejected_busy");
      obs::log_warn("server", "connection limit reached, rejecting");
      (void)client.send_line("ERR server busy");
      continue;  // Socket dtor disconnects
    }
    const int session_no = ++sessions_;
    obs::count("server.sessions");
    active_connections_.fetch_add(1);
    const std::size_t idx =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    LoopShard* shard = shards_[idx].get();
    if (idx == 0) {
      shard->adopt(std::move(client), session_no);  // already on shard 0's thread
    } else {
      // shared_ptr keeps the closure copyable for std::function.
      auto handoff = std::make_shared<net::Socket>(std::move(client));
      shard->loop.defer([shard, handoff, session_no] {
        shard->adopt(std::move(*handoff), session_no);
      });
    }
  }
}

void TuningServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (!shards_.empty()) {
    for (auto& shard : shards_) shard->loop.stop();
    for (auto& t : reactor_threads_) {
      if (t.joinable()) t.join();
    }
    // Loop threads are joined: connection state is safe to tear down from
    // here. Conn destructors close sockets and unpublish live status.
    for (auto& shard : shards_) shard->conns.clear();
    shards_.clear();
    reactor_threads_.clear();
    active_connections_.store(0);
    listener_.close();
    obs::log_info("server", "stopped");
    return;
  }
  // Legacy mode: shutdown() (not close()) is what reliably unblocks a
  // pending accept().
  listener_.shutdown();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<Worker> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  // Wake workers blocked in recv() on connections whose clients are idle:
  // without this, stop() would wait for every client to hang up first.
  for (auto& w : workers) {
    if (w.socket) w.socket->shutdown();
  }
  for (auto& w : workers) {
    if (w.thread.joinable()) w.thread.join();
  }
  obs::log_info("server", "stopped");
}

void TuningServer::reap_finished_workers() {
  // Caller holds workers_mutex_. Joining a finished thread is immediate, so
  // the accept path stays O(live connections).
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->done->load() && it->thread.joinable()) {
      it->thread.join();
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void TuningServer::accept_loop() {
  while (running_.load()) {
    net::Socket client = net::accept_connection(listener_);
    if (!client.valid()) break;  // listener closed by stop()
    if (opts_.max_connections > 0 &&
        active_connections_.load() >= opts_.max_connections) {
      obs::count("server.rejected_busy");
      obs::log_warn("server", "connection limit reached, rejecting");
      (void)client.send_line("ERR server busy");
      continue;
    }
    const int session_no = ++sessions_;
    obs::count("server.sessions");
    active_connections_.fetch_add(1);
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    reap_finished_workers();
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto sock = std::make_shared<net::Socket>(std::move(client));
    Worker worker;
    worker.done = done;
    worker.socket = sock;
    worker.thread = std::thread([this, sock, session_no, done] {
      serve_client(sock, session_no);
      // Close here, not at Worker teardown: the peer should see EOF as soon
      // as its session ends, not when the worker entry is reaped.
      sock->close();
      active_connections_.fetch_sub(1);
      done->store(true);
    });
    workers_.push_back(std::move(worker));
  }
}

void TuningServer::serve_client(const std::shared_ptr<net::Socket>& client,
                                int session_no) {
  net::LineReader reader(*client, opts_.max_line_bytes);
  ServerConnection session(opts_, session_no);
  // Writes are serialized between this thread's replies and dispatcher WORK
  // pushes arriving from arbitrary threads; the mutex is shared with the
  // sender closure so it outlives this frame if a stale push races teardown.
  auto write_mutex = std::make_shared<std::mutex>();
  session.set_sender([client, write_mutex](std::string_view payload) {
    const std::lock_guard<std::mutex> lock(*write_mutex);
    return client->send_all(payload);
  });
  std::string line;
  std::string out;
  while (running_.load()) {
    if (!reader.read_line(line)) {
      if (reader.overflowed()) {
        obs::log_warn("server", "line limit exceeded, disconnecting",
                      session.session_id());
        (void)client->send_line("ERR line too long");
      }
      break;  // peer closed (or misbehaved)
    }
    out.clear();
    const bool keep_open = session.handle_line(line, out);
    if (!out.empty()) {
      const std::lock_guard<std::mutex> lock(*write_mutex);
      if (!client->send_all(out)) break;
    }
    if (!keep_open) break;
  }
}

}  // namespace harmony
