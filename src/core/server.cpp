#include "core/server.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/event_loop.hpp"
#include "core/server_session.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"

namespace harmony {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;
/// Per-readiness-cycle ingest cap: a firehosing pipelined client yields the
/// reactor back to its peers every 256 KiB (level-triggered epoll re-arms).
constexpr std::size_t kMaxReadPerCycle = 256 * 1024;

obs::Counter& bytes_in_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("net.bytes_in");
  return c;
}

obs::Counter& bytes_out_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("net.bytes_out");
  return c;
}

}  // namespace

/// One reactor shard: an event loop plus the connections assigned to it.
/// Everything here except `loop`'s thread-safe surface is touched only from
/// the shard's own thread (connections are handed over via loop.defer), so
/// connection state needs no locks.
struct TuningServer::LoopShard {
  explicit LoopShard(TuningServer* srv) : server(srv) {}

  struct Conn {
    Conn(const ServerOptions& opts, int session_no, net::Socket s)
        : sock(std::move(s)), gen(session_no), session(opts, session_no) {}

    net::Socket sock;
    const int gen;          ///< session number; guards pushes against fd reuse
    std::string rbuf;       ///< inbound bytes; lines are parsed in place
    std::size_t rpos = 0;   ///< consumed prefix of rbuf
    net::ByteRing wbuf;     ///< outbound bytes awaiting the socket
    std::string reply;      ///< per-burst reply scratch (capacity reused)
    ServerConnection session;
    bool closing = false;   ///< flush wbuf, then close (BYE or poisoned)
    bool reads_paused = false;  ///< EPOLLIN dropped (backpressure)
    std::uint32_t mask = EPOLLIN;      ///< interest mask currently armed
    std::uint64_t last_activity = 0;   ///< wheel tick of the last inbound byte
  };

  TuningServer* server;
  net::EventLoop loop;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  net::TimerWheel wheel;          ///< idle-session deadlines, keyed by fd
  std::uint64_t idle_ticks = 0;   ///< idle timeout in wheel ticks; 0 = off

  void adopt(net::Socket client, int session_no);
  void handle_io(int fd, std::uint32_t events);
  /// Queue a server-initiated payload (fleet WORK push) onto a connection.
  /// Thread-safe: hops onto the shard thread via defer(). Payloads for a
  /// connection that already closed are dropped — the dispatcher re-queues
  /// through detach() when a worker dies.
  void deliver(int fd, int gen, std::string payload);
  void push_payload(int fd, int gen, const std::string& payload);
  /// False when the connection died and was erased.
  [[nodiscard]] bool read_input(Conn& c);
  void process_lines(Conn& c);
  /// False on write error (connection should close).
  [[nodiscard]] bool flush(Conn& c);
  void close_conn(int fd);

  /// Append to the connection's write queue, keeping the server-wide
  /// pending-output accounting (and the STATUS backpressure board) in step.
  void queue_out(Conn& c, std::string_view data);
  void account(std::int64_t delta);
  /// Flip reads_paused when the connection crosses the per-conn or global
  /// pending-output caps (pause above cap, resume below half of it).
  void update_backpressure(Conn& c);
  /// Re-arm epoll to (paused ? 0 : EPOLLIN) | (pending output ? EPOLLOUT).
  void update_interest(int fd, Conn& c);
  /// Periodic shard tick: timer wheel, paused-read resume sweep, buffer
  /// compaction. Runs on the shard thread (EventLoop::set_tick).
  void on_tick();
  void on_idle_deadline(int fd);
};

void TuningServer::LoopShard::adopt(net::Socket client, int session_no) {
  if (!client.set_nonblocking()) return;  // dtor closes the socket
  const int fd = client.fd();
  auto conn = std::make_unique<Conn>(server->opts_, session_no, std::move(client));
  // Batched framing is an event-stack capability (the legacy stack leaves it
  // off and BATCH answers ERR there — that is the negotiation signal).
  conn->session.enable_batch(true);
  conn->session.set_sender(
      [this, fd, session_no](std::string_view payload) {
        deliver(fd, session_no, std::string(payload));
        return true;  // delivery is asynchronous; failures surface as detach
      });
  conn->last_activity = wheel.now();
  conns[fd] = std::move(conn);
  if (!loop.add(fd, EPOLLIN,
                [this, fd](std::uint32_t events) { handle_io(fd, events); })) {
    conns.erase(fd);
    server->active_connections_.fetch_sub(1);
    return;
  }
  if (idle_ticks != 0) wheel.schedule(fd, idle_ticks);
}

void TuningServer::LoopShard::handle_io(int fd, std::uint32_t events) {
  const auto it = conns.find(fd);
  if (it == conns.end()) return;  // stale event for a closed connection
  Conn& c = *it->second;

  if ((events & EPOLLIN) != 0 && !c.reads_paused) {
    if (!read_input(c)) {
      close_conn(fd);
      return;
    }
  } else if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(fd);
    return;
  }

  if (!flush(c) || (c.closing && c.wbuf.empty())) {
    close_conn(fd);
    return;
  }

  update_backpressure(c);
  update_interest(fd, c);
}

void TuningServer::LoopShard::queue_out(Conn& c, std::string_view data) {
  c.wbuf.append(data);
  account(static_cast<std::int64_t>(data.size()));
}

void TuningServer::LoopShard::account(std::int64_t delta) {
  server->pending_out_bytes_.fetch_add(delta, std::memory_order_relaxed);
  obs::StatusRegistry::global().backpressure().pending_out_bytes.fetch_add(
      delta, std::memory_order_relaxed);
}

void TuningServer::LoopShard::update_backpressure(Conn& c) {
  const std::size_t cap = server->opts_.max_pending_out_bytes;
  const std::size_t gcap = server->opts_.max_total_pending_out_bytes;
  if (cap == 0 && gcap == 0) return;
  const auto pending =
      server->pending_out_bytes_.load(std::memory_order_relaxed);
  auto& bp = obs::StatusRegistry::global().backpressure();
  if (!c.reads_paused) {
    const bool over_conn = cap != 0 && c.wbuf.size() > cap;
    // The global cap only pauses connections that are themselves holding
    // queued output — an idle client never pays for a hog's backlog.
    const bool over_global = gcap != 0 && !c.wbuf.empty() &&
                             pending > static_cast<std::int64_t>(gcap);
    if (over_conn || over_global) {
      c.reads_paused = true;
      bp.paused.fetch_add(1, std::memory_order_relaxed);
      bp.paused_total.fetch_add(1, std::memory_order_relaxed);
      obs::count("server.reads_paused");
      obs::log_warn("server", "pending output over cap, deferring reads",
                    c.session.session_id());
    }
    return;
  }
  // Resume with hysteresis: half the per-conn cap, and the global total back
  // under its cap, so a connection hovering at the edge does not flap.
  const bool under_conn = cap == 0 || c.wbuf.size() <= cap / 2;
  const bool under_global =
      gcap == 0 || pending <= static_cast<std::int64_t>(gcap);
  if (under_conn && under_global) {
    c.reads_paused = false;
    bp.paused.fetch_sub(1, std::memory_order_relaxed);
  }
}

void TuningServer::LoopShard::update_interest(int fd, Conn& c) {
  const std::uint32_t want = (c.reads_paused ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                             (c.wbuf.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
  if (want != c.mask) {
    c.mask = want;
    // A zero mask still delivers EPOLLHUP/EPOLLERR, so a paused, fully
    // drained connection whose peer hangs up is closed promptly.
    (void)loop.modify(fd, want);
  }
}

void TuningServer::LoopShard::on_tick() {
  if (idle_ticks != 0) {
    wheel.advance([this](int fd) { on_idle_deadline(fd); });
  }
  const std::size_t keep = server->opts_.buffer_keep_bytes;
  for (auto& [fd, cp] : conns) {
    Conn& c = *cp;
    if (keep != 0) {
      // Burst hangover: both buffers are compacted back toward the keep
      // target once the data that grew them has drained.
      c.wbuf.shrink(keep);
      if (c.rbuf.empty() && c.rbuf.capacity() > keep) c.rbuf.shrink_to_fit();
    }
    if (c.reads_paused) {
      // Global-cap pauses have no fd event to resume on (another conn's
      // drain is what frees the budget) — the sweep is their resume path.
      update_backpressure(c);
      update_interest(fd, c);
    }
  }
}

void TuningServer::LoopShard::on_idle_deadline(int fd) {
  const auto it = conns.find(fd);
  if (it == conns.end()) return;
  Conn& c = *it->second;
  // ATTACHed fleet workers are push channels and legitimately quiet.
  if (c.session.worker_id() != 0) {
    wheel.schedule(fd, idle_ticks);
    return;
  }
  const std::uint64_t idle = wheel.now() - c.last_activity;
  if (idle < idle_ticks) {
    wheel.schedule(fd, idle_ticks - idle);  // active since the deadline: snooze
    return;
  }
  obs::count("server.idle_reaped");
  obs::StatusRegistry::global().backpressure().reaped_total.fetch_add(
      1, std::memory_order_relaxed);
  obs::log_warn("server", "idle timeout, evicting session",
                c.session.session_id());
  queue_out(c, "ERR idle timeout\n");
  c.closing = true;
  if (!flush(c) || c.wbuf.empty()) {
    close_conn(fd);
    return;
  }
  update_interest(fd, c);
}

void TuningServer::LoopShard::deliver(int fd, int gen, std::string payload) {
  // shared_ptr keeps the closure copyable for std::function.
  auto blob = std::make_shared<std::string>(std::move(payload));
  loop.defer([this, fd, gen, blob] { push_payload(fd, gen, *blob); });
}

void TuningServer::LoopShard::push_payload(int fd, int gen,
                                           const std::string& payload) {
  const auto it = conns.find(fd);
  // Stale pushes are dropped: the connection closed (and its worker
  // detached) since the push was queued, possibly with the fd reused.
  if (it == conns.end() || it->second->gen != gen) return;
  Conn& c = *it->second;
  queue_out(c, payload);
  if (!flush(c) || (c.closing && c.wbuf.empty())) {
    close_conn(fd);
    return;
  }
  update_backpressure(c);
  update_interest(fd, c);
}

bool TuningServer::LoopShard::read_input(Conn& c) {
  char chunk[kReadChunk];
  std::size_t ingested = 0;
  while (!c.closing && ingested < kMaxReadPerCycle) {
    const ssize_t n = ::recv(c.sock.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      if (obs::enabled()) bytes_in_counter().add(static_cast<std::uint64_t>(n));
      c.rbuf.append(chunk, static_cast<std::size_t>(n));
      ingested += static_cast<std::size_t>(n);
      c.last_activity = wheel.now();
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  process_lines(c);
  return true;
}

void TuningServer::LoopShard::process_lines(Conn& c) {
  const std::size_t max_line = server->opts_.max_line_bytes;
  c.reply.clear();
  while (!c.closing) {
    const auto pos = c.rbuf.find('\n', c.rpos);
    const bool unterminated = pos == std::string::npos;
    const std::size_t len = unterminated ? c.rbuf.size() - c.rpos : pos - c.rpos;
    if (max_line != 0 && len > max_line) {
      // Same poisoned-overflow semantics as net::LineReader on the legacy
      // path: answer once, then drop the connection — bytes past the
      // overflow are not a trustworthy stream.
      obs::log_warn("server", "line limit exceeded, disconnecting",
                    c.session.session_id());
      c.reply.append("ERR line too long\n");
      c.closing = true;
      break;
    }
    if (unterminated) break;
    std::size_t line_len = len;
    if (line_len > 0 && c.rbuf[c.rpos + line_len - 1] == '\r') --line_len;
    const std::string_view line(c.rbuf.data() + c.rpos, line_len);
    c.rpos = pos + 1;
    if (!c.session.handle_line(line, c.reply)) c.closing = true;
  }
  if (!c.reply.empty()) {
    queue_out(c, c.reply);
    c.reply.clear();
  }
  // Compact: drop the consumed prefix once fully drained (cheap, keeps the
  // buffer's capacity) or when the dead prefix outgrows the live tail.
  if (c.rpos == c.rbuf.size()) {
    c.rbuf.clear();
    c.rpos = 0;
  } else if (c.rpos > 64 * 1024 && c.rpos > c.rbuf.size() / 2) {
    c.rbuf.erase(0, c.rpos);
    c.rpos = 0;
  }
}

bool TuningServer::LoopShard::flush(Conn& c) {
  while (!c.wbuf.empty()) {
    iovec iov[2];
    const int segs = c.wbuf.drain_iov(iov);
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<decltype(mh.msg_iovlen)>(segs);
    const ssize_t n = ::sendmsg(c.sock.fd(), &mh,
#ifdef MSG_NOSIGNAL
                                MSG_NOSIGNAL
#else
                                0
#endif
    );
    if (n > 0) {
      if (obs::enabled()) bytes_out_counter().add(static_cast<std::uint64_t>(n));
      c.wbuf.consume(static_cast<std::size_t>(n));
      account(-static_cast<std::int64_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // EPOLLOUT re-arms
    return false;
  }
  return true;
}

void TuningServer::LoopShard::close_conn(int fd) {
  const auto it = conns.find(fd);
  if (it != conns.end()) {
    Conn& c = *it->second;
    if (!c.wbuf.empty()) account(-static_cast<std::int64_t>(c.wbuf.size()));
    if (c.reads_paused) {
      obs::StatusRegistry::global().backpressure().paused.fetch_sub(
          1, std::memory_order_relaxed);
    }
  }
  wheel.cancel(fd);
  loop.remove(fd);
  conns.erase(fd);  // Conn dtor closes the socket and unpublishes status
  server->active_connections_.fetch_sub(1);
}

TuningServer::TuningServer(ServerOptions opts) : opts_(opts) {}

TuningServer::~TuningServer() { stop(); }

bool TuningServer::start() {
  auto lr = net::listen_loopback(opts_.port);
  if (!lr.socket.valid()) return false;
  listener_ = std::move(lr.socket);
  port_ = lr.port;
  if (opts_.threading == ServerThreading::kEventLoop) {
    if (!start_event_mode()) {
      listener_.close();
      return false;
    }
  } else {
    running_.store(true);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }
  obs::log_info("server", "listening on port " + std::to_string(port_));
  return true;
}

bool TuningServer::start_event_mode() {
  const int n = std::max(1, opts_.reactor_threads);
  const long long tick_ms = std::max<long long>(10, opts_.reap_tick_ms);
  const std::uint64_t idle_ticks =
      opts_.idle_timeout_ms > 0
          ? std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(opts_.idle_timeout_ms / tick_ms))
          : 0;
  shards_.clear();
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<LoopShard>(this);
    if (!shard->loop.ok()) {
      shards_.clear();
      return false;
    }
    shard->idle_ticks = idle_ticks;
    // The tick drives the timer wheel, the paused-read resume sweep and
    // buffer compaction — all shard-thread-local, set up before run().
    shard->loop.set_tick(static_cast<int>(tick_ms),
                         [s = shard.get()] { s->on_tick(); });
    shards_.push_back(std::move(shard));
  }
  if (!listener_.set_nonblocking()) {
    shards_.clear();
    return false;
  }
  // The listener lives on shard 0; fresh connections are spread round-robin
  // across all shards via defer().
  if (!shards_[0]->loop.add(listener_.fd(), EPOLLIN,
                            [this](std::uint32_t) { on_accept_ready(); })) {
    shards_.clear();
    return false;
  }
  running_.store(true);
  reactor_threads_.reserve(static_cast<std::size_t>(n));
  for (auto& shard : shards_) {
    reactor_threads_.emplace_back([s = shard.get()] { s->loop.run(); });
  }
  return true;
}

void TuningServer::on_accept_ready() {
  while (running_.load()) {
    net::Socket client = net::accept_connection(listener_);
    if (!client.valid()) break;  // drained (EAGAIN) or listener closed
    if (opts_.max_connections > 0 &&
        active_connections_.load() >= opts_.max_connections) {
      obs::count("server.rejected_busy");
      obs::log_warn("server", "connection limit reached, rejecting");
      (void)client.send_line("ERR server busy");
      continue;  // Socket dtor disconnects
    }
    const int session_no = ++sessions_;
    obs::count("server.sessions");
    active_connections_.fetch_add(1);
    const std::size_t idx =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    LoopShard* shard = shards_[idx].get();
    if (idx == 0) {
      shard->adopt(std::move(client), session_no);  // already on shard 0's thread
    } else {
      // shared_ptr keeps the closure copyable for std::function.
      auto handoff = std::make_shared<net::Socket>(std::move(client));
      shard->loop.defer([shard, handoff, session_no] {
        shard->adopt(std::move(*handoff), session_no);
      });
    }
  }
}

void TuningServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (!shards_.empty()) {
    for (auto& shard : shards_) shard->loop.stop();
    for (auto& t : reactor_threads_) {
      if (t.joinable()) t.join();
    }
    // Loop threads are joined: connection state is safe to tear down from
    // here (no tick, wheel or deferred callback can fire anymore). Conn
    // destructors close sockets and unpublish live status; settle the
    // backpressure accounting for whatever output never drained.
    auto& bp = obs::StatusRegistry::global().backpressure();
    for (auto& shard : shards_) {
      for (auto& [fd, conn] : shard->conns) {
        if (!conn->wbuf.empty()) {
          bp.pending_out_bytes.fetch_sub(
              static_cast<std::int64_t>(conn->wbuf.size()),
              std::memory_order_relaxed);
        }
        if (conn->reads_paused) bp.paused.fetch_sub(1, std::memory_order_relaxed);
      }
      shard->conns.clear();
    }
    shards_.clear();
    reactor_threads_.clear();
    active_connections_.store(0);
    listener_.close();
    obs::log_info("server", "stopped");
    return;
  }
  // Legacy mode: shutdown() (not close()) is what reliably unblocks a
  // pending accept().
  listener_.shutdown();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<Worker> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  // Wake workers blocked in recv() on connections whose clients are idle:
  // without this, stop() would wait for every client to hang up first.
  for (auto& w : workers) {
    if (w.socket) w.socket->shutdown();
  }
  for (auto& w : workers) {
    if (w.thread.joinable()) w.thread.join();
  }
  obs::log_info("server", "stopped");
}

void TuningServer::reap_finished_workers() {
  // Caller holds workers_mutex_. Joining a finished thread is immediate, so
  // the accept path stays O(live connections).
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->done->load() && it->thread.joinable()) {
      it->thread.join();
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void TuningServer::accept_loop() {
  while (running_.load()) {
    net::Socket client = net::accept_connection(listener_);
    if (!client.valid()) break;  // listener closed by stop()
    if (opts_.max_connections > 0 &&
        active_connections_.load() >= opts_.max_connections) {
      obs::count("server.rejected_busy");
      obs::log_warn("server", "connection limit reached, rejecting");
      (void)client.send_line("ERR server busy");
      continue;
    }
    const int session_no = ++sessions_;
    obs::count("server.sessions");
    active_connections_.fetch_add(1);
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    reap_finished_workers();
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto sock = std::make_shared<net::Socket>(std::move(client));
    Worker worker;
    worker.done = done;
    worker.socket = sock;
    worker.thread = std::thread([this, sock, session_no, done] {
      serve_client(sock, session_no);
      // Close here, not at Worker teardown: the peer should see EOF as soon
      // as its session ends, not when the worker entry is reaped.
      sock->close();
      active_connections_.fetch_sub(1);
      done->store(true);
    });
    workers_.push_back(std::move(worker));
  }
}

void TuningServer::serve_client(const std::shared_ptr<net::Socket>& client,
                                int session_no) {
  net::LineReader reader(*client, opts_.max_line_bytes);
  ServerConnection session(opts_, session_no);
  // Writes are serialized between this thread's replies and dispatcher WORK
  // pushes arriving from arbitrary threads; the mutex is shared with the
  // sender closure so it outlives this frame if a stale push races teardown.
  auto write_mutex = std::make_shared<std::mutex>();
  session.set_sender([client, write_mutex](std::string_view payload) {
    const std::lock_guard<std::mutex> lock(*write_mutex);
    return client->send_all(payload);
  });
  std::string line;
  std::string out;
  while (running_.load()) {
    if (!reader.read_line(line)) {
      if (reader.overflowed()) {
        obs::log_warn("server", "line limit exceeded, disconnecting",
                      session.session_id());
        (void)client->send_line("ERR line too long");
      }
      break;  // peer closed (or misbehaved)
    }
    out.clear();
    const bool keep_open = session.handle_line(line, out);
    if (!out.empty()) {
      const std::lock_guard<std::mutex> lock(*write_mutex);
      if (!client->send_all(out)) break;
    }
    if (!keep_open) break;
  }
}

}  // namespace harmony
