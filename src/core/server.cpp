#include "core/server.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "core/strategy_registry.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"

namespace harmony {

TuningServer::TuningServer(ServerOptions opts) : opts_(opts) {}

TuningServer::~TuningServer() { stop(); }

bool TuningServer::start() {
  auto lr = net::listen_loopback(opts_.port);
  if (!lr.socket.valid()) return false;
  listener_ = std::move(lr.socket);
  port_ = lr.port;
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  obs::log_info("server", "listening on port " + std::to_string(port_));
  return true;
}

void TuningServer::stop() {
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // shutdown() (not close()) is what reliably unblocks a pending accept().
  listener_.shutdown();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  obs::log_info("server", "stopped");
}

void TuningServer::accept_loop() {
  while (running_.load()) {
    net::Socket client = net::accept_connection(listener_);
    if (!client.valid()) break;  // listener closed by stop()
    const int session_no = ++sessions_;
    obs::count("server.sessions");
    const std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, c = std::move(client), session_no]() mutable {
      serve_client(std::move(c), session_no);
    });
  }
}

void TuningServer::serve_client(net::Socket client, int session_no) {
  net::LineReader reader(client, opts_.max_line_bytes);
  ParamSpace space;
  std::unique_ptr<SearchStrategy> search;
  std::optional<SearchController> controller;  // constructed at START
  int budget = opts_.default_max_iterations;
  std::string strategy_name;     // chosen via STRATEGY; empty = default
  StrategyOptions strategy_opts;
  int roundtrips = 0;

  // Live-status slot for this session. Published unconditionally (the STATUS
  // verb is part of the protocol surface, not passive instrumentation); the
  // handle unpublishes when the connection ends.
  const std::string session_id = "server/" + std::to_string(session_no);
  auto status = obs::StatusRegistry::global().publish_session(session_id);
  const auto publish = [&](const char* phase_override = nullptr) {
    status.update([&](obs::SessionStatus& s) {
      const auto* nm = dynamic_cast<const NelderMead*>(search.get());
      s.phase = phase_override != nullptr
                    ? phase_override
                    : (search ? (nm != nullptr ? nm->phase_name() : "searching")
                              : "registering");
      s.iterations = static_cast<std::uint64_t>(roundtrips);
      if (search) {
        s.strategy = search->name();
        if (const auto b = search->best()) {
          s.best_value = search->best_objective();
          s.best_config = space.format(*b);
        }
      }
    });
  };
  publish();
  obs::log_info("server", "session opened", session_id);

  const auto send = [&client](const std::string& line) {
    return client.send_line(line);
  };

  while (running_.load()) {
    const auto line = reader.read_line();
    if (!line) {
      if (reader.overflowed()) {
        obs::log_warn("server", "line limit exceeded, disconnecting",
                      session_id);
        (void)send("ERR line too long");
      }
      break;  // peer closed (or misbehaved)
    }
    const auto msg = proto::parse_line(*line);
    if (!msg) continue;
    obs::count("server.messages");
    const auto handle_timer = obs::time_scope("server.handle_s");

    if (msg->verb == "HELLO") {
      const std::string app = msg->args.empty() ? "" : msg->args[0];
      status.update([&](obs::SessionStatus& s) { s.app = app; });
      obs::log_info("server", "HELLO " + app, session_id);
      if (!send("OK harmony-server/1.0")) break;
    } else if (msg->verb == "PARAM") {
      if (search) {
        if (!send("ERR session already started")) break;
        continue;
      }
      auto p = proto::decode_param(msg->args);
      if (!p) {
        obs::log_warn("server", "malformed PARAM", session_id);
        if (!send("ERR malformed PARAM")) break;
        continue;
      }
      try {
        space.add(std::move(*p));
      } catch (const std::exception& e) {
        if (!send(std::string("ERR ") + e.what())) break;
        continue;
      }
      if (!send("OK")) break;
    } else if (msg->verb == "START") {
      if (space.empty()) {
        if (!send("ERR no parameters registered")) break;
        continue;
      }
      if (search) {
        if (!send("ERR session already started")) break;
        continue;
      }
      if (!msg->args.empty()) {
        int v{};
        const auto* s = msg->args[0].c_str();
        const auto [ptr, ec] = std::from_chars(s, s + msg->args[0].size(), v);
        if (ec != std::errc{} || ptr != s + msg->args[0].size() || v < 1) {
          if (!send("ERR bad iteration budget")) break;
          continue;
        }
        budget = v;
      }
      try {
        // One construction path for every session: the registry. A bare
        // START gets the server's default search (Nelder-Mead with
        // opts_.search); a prior STRATEGY line picks anything registered.
        search = strategy_name.empty()
                     ? StrategyRegistry::make_default(space, opts_.search)
                     : StrategyRegistry::make(strategy_name, space, strategy_opts);
      } catch (const std::exception& e) {
        if (!send(std::string("ERR ") + e.what())) break;
        continue;
      }
      controller.emplace(space,
                         ControllerLimits{budget, std::numeric_limits<int>::max()});
      publish();
      obs::log_info("server",
                    "search started, budget " + std::to_string(budget),
                    session_id);
      if (!send("OK started")) break;
    } else if (msg->verb == "STRATEGY") {
      if (msg->args.empty()) {
        // Bare STRATEGY lists the registry (valid any time, any session).
        std::string line = "OK";
        for (const auto& n : StrategyRegistry::names()) {
          line += ' ';
          line += n;
        }
        if (!send(line)) break;
      } else if (search) {
        if (!send("ERR session already started")) break;
      } else if (!StrategyRegistry::known(msg->args[0])) {
        obs::log_warn("server", "unknown strategy " + msg->args[0], session_id);
        if (!send("ERR unknown strategy " + msg->args[0])) break;
      } else {
        StrategyOptions sopts;
        std::string error;
        for (std::size_t i = 1; i < msg->args.size(); ++i) {
          const auto& tok = msg->args[i];
          const auto eq = tok.find('=');
          if (eq == std::string::npos || eq == 0) {
            error = "bad option '" + tok + "' (expected key=value)";
            break;
          }
          sopts.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
        }
        if (error.empty()) (void)StrategyRegistry::validate(msg->args[0], sopts, &error);
        if (!error.empty()) {
          obs::log_warn("server", "bad STRATEGY options: " + error, session_id);
          if (!send("ERR " + error)) break;
        } else {
          strategy_name = msg->args[0];
          strategy_opts = std::move(sopts);
          obs::log_info("server", "strategy " + strategy_name, session_id);
          if (!send("OK " + strategy_name)) break;
        }
      }
    } else if (msg->verb == "FETCH") {
      if (!search) {
        if (!send("ERR not started")) break;
        continue;
      }
      // ask() is idempotent while a candidate is outstanding (re-fetch
      // resends it) and returns nullopt once the iteration budget is spent
      // or the strategy stops proposing.
      const bool re_fetch = controller->awaiting_tell();
      auto proposal = controller->ask(*search);
      if (!proposal) {
        if (!send("DONE")) break;
        continue;
      }
      if (!re_fetch) obs::count("server.fetches");
      if (!send("CONFIG " + proto::encode_config(space, *proposal))) break;
    } else if (msg->verb == "REPORT") {
      if (!search || !controller->awaiting_tell()) {
        if (!send("ERR nothing to report")) break;
        continue;
      }
      if (msg->args.size() != 1) {
        if (!send("ERR REPORT takes one value")) break;
        continue;
      }
      double value{};
      try {
        value = std::stod(msg->args[0]);
      } catch (const std::exception&) {
        if (!send("ERR bad objective value")) break;
        continue;
      }
      EvaluationResult r;
      r.objective = value;
      r.valid = std::isfinite(value);
      controller->tell(*search, r);
      // One completed FETCH -> REPORT pair is one tuning round trip.
      ++roundtrips;
      obs::count("server.roundtrips");
      obs::observe("server.report_value", value);
      publish();
      if (!send("OK")) break;
    } else if (msg->verb == "BEST") {
      if (!search || !search->best()) {
        if (!send("ERR no measurements yet")) break;
        continue;
      }
      if (!send("CONFIG " + proto::encode_config(space, *search->best()))) break;
    } else if (msg->verb == "STATUS") {
      // One line of JSON: the whole live-status board. Any connection may
      // ask — harmony_top uses a dedicated admin connection.
      obs::count("server.status_polls");
      if (!send(obs::StatusRegistry::global().to_json())) break;
    } else if (msg->verb == "METRICS") {
      // Prometheus text exposition, terminated by a "# EOF" comment line
      // ("#" lines are valid exposition, so raw `echo METRICS | nc` output
      // is scrape-ready as-is).
      obs::count("server.status_polls");
      std::string text = obs::MetricsRegistry::global().to_prometheus();
      text += "# EOF\n";
      if (!client.send_all(text)) break;
    } else if (msg->verb == "LOG") {
      // LOG [tail] [N] -> "LOG <n>" header then n JSONL event records.
      std::size_t want = opts_.log_tail_default;
      std::size_t arg_idx = 0;
      if (arg_idx < msg->args.size() && msg->args[arg_idx] == "tail") ++arg_idx;
      if (arg_idx < msg->args.size()) {
        unsigned long long v{};
        const auto* s = msg->args[arg_idx].c_str();
        const auto [ptr, ec] =
            std::from_chars(s, s + msg->args[arg_idx].size(), v);
        if (ec != std::errc{} || ptr != s + msg->args[arg_idx].size()) {
          if (!send("ERR bad LOG count")) break;
          continue;
        }
        want = static_cast<std::size_t>(v);
      }
      const auto events = obs::EventLog::global().tail(want);
      std::ostringstream os;
      os << "LOG " << events.size() << "\n";
      for (const auto& e : events) {
        obs::EventLog::write_event_json(os, e);
        os << "\n";
      }
      if (!client.send_all(os.str())) break;
    } else if (msg->verb == "BYE") {
      (void)send("OK bye");
      break;
    } else {
      obs::log_warn("server", "unknown verb " + msg->verb, session_id);
      if (!send("ERR unknown verb " + msg->verb)) break;
    }
  }
  obs::log_info("server", "session closed", session_id);
}

}  // namespace harmony
