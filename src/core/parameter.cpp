#include "core/parameter.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace harmony {

std::string to_string(ParamType t) {
  switch (t) {
    case ParamType::Int: return "INT";
    case ParamType::Real: return "REAL";
    case ParamType::Enum: return "ENUM";
  }
  return "?";
}

Parameter Parameter::Integer(std::string name, std::int64_t lo, std::int64_t hi,
                             std::int64_t step) {
  if (lo > hi) throw std::invalid_argument("Parameter::Integer: lo > hi for " + name);
  if (step < 1) throw std::invalid_argument("Parameter::Integer: step < 1 for " + name);
  Parameter p(std::move(name), ParamType::Int);
  p.ilo_ = lo;
  p.ihi_ = lo + ((hi - lo) / step) * step;  // last reachable lattice value
  p.istep_ = step;
  return p;
}

Parameter Parameter::Real(std::string name, double lo, double hi) {
  if (!(lo <= hi)) throw std::invalid_argument("Parameter::Real: lo > hi for " + name);
  Parameter p(std::move(name), ParamType::Real);
  p.rlo_ = lo;
  p.rhi_ = hi;
  return p;
}

Parameter Parameter::Enum(std::string name, std::vector<std::string> choices) {
  if (choices.empty()) {
    throw std::invalid_argument("Parameter::Enum: no choices for " + name);
  }
  std::unordered_set<std::string> seen;
  for (const auto& c : choices) {
    if (!seen.insert(c).second) {
      throw std::invalid_argument("Parameter::Enum: duplicate choice '" + c + "'");
    }
  }
  Parameter p(std::move(name), ParamType::Enum);
  p.choices_ = std::move(choices);
  return p;
}

std::uint64_t Parameter::count() const noexcept {
  switch (type_) {
    case ParamType::Int:
      return static_cast<std::uint64_t>((ihi_ - ilo_) / istep_) + 1;
    case ParamType::Enum:
      return choices_.size();
    case ParamType::Real:
      return 0;
  }
  return 0;
}

double Parameter::coord_min() const noexcept {
  return type_ == ParamType::Real ? rlo_ : 0.0;
}

double Parameter::coord_max() const noexcept {
  if (type_ == ParamType::Real) return rhi_;
  return static_cast<double>(count() - 1);
}

Value Parameter::coord_to_value(double coord) const {
  const double c = std::clamp(coord, coord_min(), coord_max());
  switch (type_) {
    case ParamType::Real:
      return c;
    case ParamType::Int: {
      const auto idx = static_cast<std::int64_t>(std::llround(c));
      return ilo_ + idx * istep_;
    }
    case ParamType::Enum: {
      const auto idx = static_cast<std::size_t>(std::llround(c));
      return choices_[idx];
    }
  }
  throw std::logic_error("unreachable");
}

double Parameter::value_to_coord(const Value& v) const {
  switch (type_) {
    case ParamType::Real:
      if (!std::holds_alternative<double>(v)) {
        if (std::holds_alternative<std::int64_t>(v)) {
          return std::clamp(static_cast<double>(std::get<std::int64_t>(v)), rlo_, rhi_);
        }
        throw std::invalid_argument("value_to_coord: expected real for " + name_);
      }
      return std::clamp(std::get<double>(v), rlo_, rhi_);
    case ParamType::Int: {
      if (!std::holds_alternative<std::int64_t>(v)) {
        throw std::invalid_argument("value_to_coord: expected int for " + name_);
      }
      const std::int64_t raw = std::clamp(std::get<std::int64_t>(v), ilo_, ihi_);
      return static_cast<double>((raw - ilo_ + istep_ / 2) / istep_);
    }
    case ParamType::Enum: {
      if (!std::holds_alternative<std::string>(v)) {
        throw std::invalid_argument("value_to_coord: expected enum label for " + name_);
      }
      const auto& label = std::get<std::string>(v);
      const auto it = std::find(choices_.begin(), choices_.end(), label);
      if (it == choices_.end()) {
        throw std::invalid_argument("value_to_coord: unknown choice '" + label +
                                    "' for " + name_);
      }
      return static_cast<double>(std::distance(choices_.begin(), it));
    }
  }
  throw std::logic_error("unreachable");
}

Value Parameter::default_value() const {
  return coord_to_value(0.5 * (coord_min() + coord_max()));
}

bool Parameter::contains(const Value& v) const {
  switch (type_) {
    case ParamType::Real:
      return std::holds_alternative<double>(v) && std::get<double>(v) >= rlo_ &&
             std::get<double>(v) <= rhi_;
    case ParamType::Int: {
      if (!std::holds_alternative<std::int64_t>(v)) return false;
      const std::int64_t x = std::get<std::int64_t>(v);
      return x >= ilo_ && x <= ihi_ && (x - ilo_) % istep_ == 0;
    }
    case ParamType::Enum:
      return std::holds_alternative<std::string>(v) &&
             std::find(choices_.begin(), choices_.end(), std::get<std::string>(v)) !=
                 choices_.end();
  }
  return false;
}

}  // namespace harmony
