#pragma once

/// \file evaluation.hpp
/// Objective evaluation plumbing. An Evaluator maps a configuration to a
/// performance measurement (the paper always minimizes execution time, but
/// the objective is user-defined, Section II). The EvalCache memoizes results
/// per lattice point: the simplex frequently revisits configurations after
/// snapping, and re-running a "representative short run" for a configuration
/// already measured would waste tuning time (Section III counts each distinct
/// short run as one tuning iteration).

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony {

/// Result of evaluating one configuration.
struct EvaluationResult {
  /// Objective value to minimize (simulated or measured seconds in all the
  /// paper's experiments). Infinity marks an infeasible configuration.
  double objective = 0.0;

  /// False when the run failed / configuration was infeasible.
  bool valid = true;

  /// Auxiliary metrics for reporting (e.g. "comm_s", "imbalance").
  std::map<std::string, double> metrics;

  [[nodiscard]] static EvaluationResult infeasible();
};

/// User-supplied objective function.
using Evaluator = std::function<EvaluationResult(const Config&)>;

/// Memoization table keyed by the canonical lattice key of a configuration.
class EvalCache {
 public:
  explicit EvalCache(const ParamSpace& space) : space_(&space) {}

  /// Cached result, or nullopt when the configuration has not been evaluated.
  [[nodiscard]] std::optional<EvaluationResult> lookup(const Config& c) const;

  /// Record a result (overwrites any previous entry for the same point).
  void store(const Config& c, const EvaluationResult& r);

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  void clear();

 private:
  const ParamSpace* space_;
  std::unordered_map<std::string, EvaluationResult> table_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace harmony
