#pragma once

/// \file evaluation.hpp
/// Objective evaluation plumbing. An Evaluator maps a configuration to a
/// performance measurement (the paper always minimizes execution time, but
/// the objective is user-defined, Section II). The EvalCache memoizes results
/// per lattice point: the simplex frequently revisits configurations after
/// snapping, and re-running a "representative short run" for a configuration
/// already measured would waste tuning time (Section III counts each distinct
/// short run as one tuning iteration).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/flat_map.hpp"
#include "core/param_space.hpp"
#include "core/point_key.hpp"
#include "core/types.hpp"

namespace harmony {

/// Auxiliary metrics of one evaluation: a flat, sorted vector of
/// (name, value) pairs with map-like lookup. Results are copied through
/// futures, History entries and caches constantly; a flat vector is one
/// allocation per copy (zero when empty) versus one node per entry for
/// std::map, and iteration is a contiguous scan. Metric sets are tiny
/// (0-3 entries everywhere in this repo), so the O(n) insert shift is noise.
class MetricMap {
 public:
  using value_type = std::pair<std::string, double>;
  using const_iterator = std::vector<value_type>::const_iterator;

  MetricMap() = default;
  MetricMap(std::initializer_list<value_type> init) {
    for (const auto& kv : init) (*this)[kv.first] = kv.second;
  }

  /// Value for `name`, inserted as 0.0 when absent (std::map semantics).
  double& operator[](std::string_view name) {
    auto it = lower_bound(name);
    if (it != entries_.end() && it->first == name) return it->second;
    it = entries_.emplace(it, std::string(name), 0.0);
    return it->second;
  }

  [[nodiscard]] double at(std::string_view name) const {
    const auto it = find(name);
    if (it == entries_.end()) {
      throw std::out_of_range("MetricMap::at: no metric '" + std::string(name) + "'");
    }
    return it->second;
  }

  [[nodiscard]] const_iterator find(std::string_view name) const noexcept {
    const auto it = lower_bound(name);
    return (it != entries_.end() && it->first == name) ? it : entries_.end();
  }

  [[nodiscard]] std::size_t count(std::string_view name) const noexcept {
    return find(name) == entries_.end() ? 0 : 1;
  }

  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  [[nodiscard]] bool operator==(const MetricMap& other) const = default;

 private:
  // entries_ stays sorted by name; lower_bound gives O(log n) lookup.
  [[nodiscard]] const_iterator lower_bound(std::string_view name) const noexcept {
    return std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const value_type& e, std::string_view n) { return e.first < n; });
  }
  [[nodiscard]] std::vector<value_type>::iterator lower_bound(std::string_view name) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const value_type& e, std::string_view n) { return e.first < n; });
  }

  std::vector<value_type> entries_;
};

/// Result of evaluating one configuration.
struct EvaluationResult {
  /// Objective value to minimize (simulated or measured seconds in all the
  /// paper's experiments). Infinity marks an infeasible configuration.
  double objective = 0.0;

  /// False when the run failed / configuration was infeasible.
  bool valid = true;

  /// Auxiliary metrics for reporting (e.g. "comm_s", "imbalance").
  MetricMap metrics;

  [[nodiscard]] static EvaluationResult infeasible();
};

/// User-supplied objective function.
using Evaluator = std::function<EvaluationResult(const Config&)>;

/// Memoization table keyed by the index-space identity (PointKey) of a
/// configuration — an open-addressing flat table, so the steady-state
/// lookup/store cycle allocates nothing (callers that loop should use the
/// PointKey overloads with a reused scratch key).
///
/// Thread-safety contract: EvalCache is strictly single-threaded — lookup()
/// is `const` yet mutates the hit/miss counters, with no synchronization.
/// Every use must stay on one thread (Debug builds assert this); concurrent
/// callers use engine::ConcurrentEvalCache instead.
class EvalCache {
 public:
  explicit EvalCache(const ParamSpace& space) : space_(&space) {}

  /// Cached result, or nullopt when the configuration has not been evaluated.
  [[nodiscard]] std::optional<EvaluationResult> lookup(const Config& c) const;

  /// Allocation-free variant: borrow a pointer into the table (valid until
  /// the next store/clear), counting the hit or miss.
  [[nodiscard]] const EvaluationResult* lookup(const PointKey& k) const;

  /// Record a result (overwrites any previous entry for the same point).
  void store(const Config& c, const EvaluationResult& r);
  void store(const PointKey& k, const EvaluationResult& r);

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  void clear();

 private:
  /// Debug-only single-thread assertion: remembers the first thread that
  /// touches the cache and aborts if any other thread follows.
  void check_thread() const;

  const ParamSpace* space_;
  FlatPointMap<EvaluationResult> table_;
  mutable PointKey scratch_;  ///< reused by the Config overloads
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
#ifndef NDEBUG
  mutable std::thread::id owner_{};  ///< default id = not yet claimed
#endif
};

}  // namespace harmony
