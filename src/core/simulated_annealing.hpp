#pragma once

/// \file simulated_annealing.hpp
/// Simulated annealing over the lattice: a stochastic global-search baseline
/// for the ablation benches (the paper's future-work section asks for
/// "techniques to find these configurations" that the simplex misses —
/// annealing is the classic candidate).

#include <optional>

#include "core/rng.hpp"
#include "core/strategy.hpp"

namespace harmony {

struct AnnealingOptions {
  int max_evaluations = 200;
  double initial_temperature = 1.0;   ///< relative to the first observed value
  double cooling = 0.95;              ///< geometric cooling per acceptance step
  double neighbor_fraction = 0.15;    ///< move size as a fraction of each range
  std::uint64_t seed = 7;
};

class SimulatedAnnealing final : public SearchStrategy {
 public:
  SimulatedAnnealing(const ParamSpace& space, AnnealingOptions opts = {},
                     std::optional<Config> initial = std::nullopt);

  [[nodiscard]] std::optional<Config> propose() override;
  void report(const Config& c, const EvaluationResult& r) override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override;
  [[nodiscard]] double best_objective() const override;
  [[nodiscard]] std::string name() const override { return "annealing"; }

  [[nodiscard]] double temperature() const noexcept { return temperature_; }

 private:
  [[nodiscard]] Config perturb(const Config& c);

  const ParamSpace* space_;
  AnnealingOptions opts_;
  Rng rng_;
  Config current_;
  bool current_evaluated_ = false;
  double current_value_;
  double temperature_;
  bool temperature_calibrated_ = false;
  int evaluations_ = 0;
  std::optional<Config> pending_;
  std::optional<Config> best_;
  double best_value_;
};

}  // namespace harmony
