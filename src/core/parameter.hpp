#pragma once

/// \file parameter.hpp
/// Definition of one tunable parameter. The paper (Section II) treats each
/// tunable parameter as a variable in an independent dimension of the search
/// space; the simplex algorithm runs in a continuous coordinate space and
/// snaps to the nearest valid lattice point when a configuration must be
/// evaluated. Parameter provides that two-way mapping:
///
///   native value  <->  continuous coordinate
///
/// - Integer parameters have an inclusive range [lo, hi] and a stride; the
///   coordinate is the lattice index (0 .. count-1).
/// - Enum parameters are an ordered list of labels; coordinate = label index.
/// - Real parameters are continuous in [lo, hi]; coordinate = the value.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace harmony {

enum class ParamType { Int, Real, Enum };

[[nodiscard]] std::string to_string(ParamType t);

class Parameter {
 public:
  /// Integer parameter over {lo, lo+step, ..., <= hi}. Requires lo <= hi and
  /// step >= 1; throws std::invalid_argument otherwise.
  [[nodiscard]] static Parameter Integer(std::string name, std::int64_t lo,
                                         std::int64_t hi, std::int64_t step = 1);

  /// Continuous real parameter over [lo, hi]. Requires lo <= hi.
  [[nodiscard]] static Parameter Real(std::string name, double lo, double hi);

  /// Enumerated parameter over an ordered list of distinct labels.
  [[nodiscard]] static Parameter Enum(std::string name,
                                      std::vector<std::string> choices);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ParamType type() const noexcept { return type_; }

  /// Number of distinct lattice values; Real parameters report 0 (continuous).
  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Continuous coordinate bounds used by search strategies.
  [[nodiscard]] double coord_min() const noexcept;
  [[nodiscard]] double coord_max() const noexcept;

  /// Snap a continuous coordinate to the nearest valid native value
  /// (clamping to the range first).
  [[nodiscard]] Value coord_to_value(double coord) const;

  /// Inverse of coord_to_value. Throws std::invalid_argument when the value
  /// kind does not match the parameter type or an enum label is unknown.
  [[nodiscard]] double value_to_coord(const Value& v) const;

  /// Default value used to seed searches: integer/enum midpoint lattice
  /// value, real midpoint.
  [[nodiscard]] Value default_value() const;

  /// True when the value is one this parameter can take.
  [[nodiscard]] bool contains(const Value& v) const;

  // Introspection for serialization and tests.
  [[nodiscard]] std::int64_t int_lo() const { return ilo_; }
  [[nodiscard]] std::int64_t int_hi() const { return ihi_; }
  [[nodiscard]] std::int64_t int_step() const { return istep_; }
  [[nodiscard]] double real_lo() const { return rlo_; }
  [[nodiscard]] double real_hi() const { return rhi_; }
  [[nodiscard]] const std::vector<std::string>& choices() const { return choices_; }

 private:
  Parameter(std::string name, ParamType type) : name_(std::move(name)), type_(type) {}

  std::string name_;
  ParamType type_;
  std::int64_t ilo_ = 0, ihi_ = 0, istep_ = 1;
  double rlo_ = 0.0, rhi_ = 0.0;
  std::vector<std::string> choices_;
};

}  // namespace harmony
