#pragma once

/// \file systematic_sampler.hpp
/// Systematic sampling of the whole search space: configurations evenly
/// distributed along every lattice dimension. This reproduces the Fig. 6
/// methodology of the paper ("we also explore the whole search space using
/// systematic sampling ... configurations that are evenly distributed in the
/// whole search space"), used to place the Harmony result within the global
/// performance distribution.

#include <optional>
#include <vector>

#include "core/strategy.hpp"

namespace harmony {

class SystematicSampler final : public SearchStrategy {
 public:
  /// Sample `samples_per_dim[i]` evenly spaced values along dimension i
  /// (clamped to the dimension's lattice size). The full plan is the cross
  /// product; it is enumerated lazily.
  SystematicSampler(const ParamSpace& space, std::vector<int> samples_per_dim);

  /// Convenience: the same sample count along every dimension.
  SystematicSampler(const ParamSpace& space, int samples_per_dim);

  [[nodiscard]] std::optional<Config> propose() override;
  void report(const Config& c, const EvaluationResult& r) override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override;
  [[nodiscard]] double best_objective() const override;
  [[nodiscard]] std::string name() const override { return "systematic"; }

  /// Total number of configurations in the plan.
  [[nodiscard]] std::uint64_t plan_size() const noexcept { return plan_size_; }

 private:
  void init();

  const ParamSpace* space_;
  std::vector<int> samples_per_dim_;
  std::vector<std::vector<double>> grid_coords_;  // per-dim sampled coordinates
  std::vector<std::size_t> cursor_;
  std::uint64_t plan_size_ = 0;
  std::uint64_t emitted_ = 0;
  bool exhausted_ = false;
  std::optional<Config> best_;
  double best_value_;
};

}  // namespace harmony
