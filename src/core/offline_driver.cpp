#include "core/offline_driver.hpp"

#include <limits>
#include <stdexcept>

#include "core/evaluation.hpp"

namespace harmony {

OfflineDriver::OfflineDriver(const ParamSpace& space, OfflineOptions opts)
    : space_(&space), opts_(opts), history_(space) {
  if (opts.max_runs < 1) throw std::invalid_argument("OfflineDriver: max_runs < 1");
  if (opts.short_run_steps < 1) {
    throw std::invalid_argument("OfflineDriver: short_run_steps < 1");
  }
  if (opts.restart_overhead_s < 0) {
    throw std::invalid_argument("OfflineDriver: negative restart overhead");
  }
}

OfflineResult OfflineDriver::tune(SearchStrategy& strategy, const ShortRunFn& run) {
  if (!run) throw std::invalid_argument("OfflineDriver::tune: null run function");
  history_ = History(*space_);
  EvalCache cache(*space_);
  OfflineResult out;
  out.best_measured_s = std::numeric_limits<double>::infinity();

  // A generous proposal guard: the strategy may propose cached points freely.
  const int max_proposals = opts_.max_runs * 64 + 256;
  int proposals = 0;

  while (out.runs < opts_.max_runs && proposals < max_proposals) {
    auto proposal = strategy.propose();
    if (!proposal) break;
    ++proposals;

    EvaluationResult result;
    bool cached = false;
    if (opts_.use_cache) {
      if (auto hit = cache.lookup(*proposal)) {
        result = *hit;
        cached = true;
      }
    }
    if (!cached) {
      // One tuning iteration == one representative short run (Section III):
      // stop the application, apply the configuration, restart, warm up,
      // measure. Every component of that cost is charged to the tuning bill.
      const ShortRunResult r = run(*proposal, opts_.short_run_steps);
      out.total_tuning_cost_s += opts_.restart_overhead_s + r.warmup_s + r.measured_s;
      ++out.runs;
      result.valid = r.ok;
      result.objective =
          r.ok ? r.measured_s : std::numeric_limits<double>::infinity();
      result.metrics["warmup_s"] = r.warmup_s;
      if (opts_.use_cache) cache.store(*proposal, result);
    }
    history_.record(*proposal, result, cached);
    strategy.report(*proposal, result);

    if (result.valid && result.objective < out.best_measured_s) {
      out.best_measured_s = result.objective;
      out.best = *proposal;
    }
  }
  out.strategy_converged = strategy.converged();
  return out;
}

}  // namespace harmony
