#include "core/offline_driver.hpp"

#include <limits>
#include <stdexcept>

#include <atomic>
#include <cstdint>

#include "core/evaluation.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace harmony {

OfflineDriver::OfflineDriver(const ParamSpace& space, OfflineOptions opts)
    : space_(&space), opts_(opts), history_(space) {
  if (opts.max_runs < 1) throw std::invalid_argument("OfflineDriver: max_runs < 1");
  if (opts.short_run_steps < 1) {
    throw std::invalid_argument("OfflineDriver: short_run_steps < 1");
  }
  if (opts.restart_overhead_s < 0) {
    throw std::invalid_argument("OfflineDriver: negative restart overhead");
  }
}

OfflineResult OfflineDriver::tune(SearchStrategy& strategy, const ShortRunFn& run) {
  if (!run) throw std::invalid_argument("OfflineDriver::tune: null run function");
  history_ = History(*space_);
  EvalCache cache(*space_);
  OfflineResult out;
  out.best_measured_s = std::numeric_limits<double>::infinity();

  // A generous proposal guard: the strategy may propose cached points freely.
  const int max_proposals = opts_.max_runs * 64 + 256;
  int proposals = 0;

  obs::SearchTracer* const tracer = opts_.tracer;

  // Live-status slot (gated: nothing is published unless observability is
  // on, so the disabled path costs one relaxed load here).
  obs::StatusRegistry::SessionHandle status;
  std::uint64_t cache_hits = 0;
  if (obs::enabled()) {
    static std::atomic<std::uint64_t> next_id{0};
    std::string id = "offline/";
    id += std::to_string(next_id.fetch_add(1));
    status = obs::StatusRegistry::global().publish_session(id);
    status.update([&](obs::SessionStatus& s) {
      s.strategy = strategy.name();
      s.phase = "short-runs";
    });
  }

  while (out.runs < opts_.max_runs && proposals < max_proposals) {
    auto proposal = strategy.propose();
    if (!proposal) break;
    ++proposals;
    obs::count("offline.proposals");

    const double t_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
    EvaluationResult result;
    bool cached = false;
    if (opts_.use_cache) {
      if (auto hit = cache.lookup(*proposal)) {
        result = *hit;
        cached = true;
        obs::count("offline.cache_hits");
      }
    }
    if (!cached) {
      // One tuning iteration == one representative short run (Section III):
      // stop the application, apply the configuration, restart, warm up,
      // measure. Every component of that cost is charged to the tuning bill.
      const ShortRunResult r = run(*proposal, opts_.short_run_steps);
      out.total_tuning_cost_s += opts_.restart_overhead_s + r.warmup_s + r.measured_s;
      ++out.runs;
      result.valid = r.ok;
      result.objective =
          r.ok ? r.measured_s : std::numeric_limits<double>::infinity();
      result.metrics["warmup_s"] = r.warmup_s;
      if (opts_.use_cache) cache.store(*proposal, result);
      obs::count("offline.runs");
      obs::observe("offline.short_run_s", r.warmup_s + r.measured_s);
    }
    if (tracer != nullptr) {
      tracer->record({strategy.name(), space_->format(*proposal),
                      result.objective, result.valid, cached, /*thread_lane=*/0,
                      t_start_us, tracer->now_us()});
    }
    history_.record(*proposal, result, cached);
    strategy.report(*proposal, result);

    if (result.valid && result.objective < out.best_measured_s) {
      out.best_measured_s = result.objective;
      out.best = *proposal;
    }
    if (cached) ++cache_hits;
    if (status.valid()) {
      status.update([&](obs::SessionStatus& s) {
        s.iterations = static_cast<std::uint64_t>(out.runs);
        s.cache_hits = cache_hits;
        if (out.best) {
          s.best_value = out.best_measured_s;
          s.best_config = space_->format(*out.best);
        }
      });
    }
  }
  out.strategy_converged = strategy.converged();
  return out;
}

}  // namespace harmony
