#include "core/offline_driver.hpp"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/controller.hpp"
#include "core/evaluation.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"

namespace harmony {

OfflineDriver::OfflineDriver(const ParamSpace& space, OfflineOptions opts)
    : space_(&space), opts_(opts), history_(space) {
  if (opts.max_runs < 1) throw std::invalid_argument("OfflineDriver: max_runs < 1");
  if (opts.short_run_steps < 1) {
    throw std::invalid_argument("OfflineDriver: short_run_steps < 1");
  }
  if (opts.restart_overhead_s < 0) {
    throw std::invalid_argument("OfflineDriver: negative restart overhead");
  }
}

OfflineResult OfflineDriver::tune(SearchStrategy& strategy, const ShortRunFn& run) {
  if (!run) throw std::invalid_argument("OfflineDriver::tune: null run function");

  // Fresh memoization per tune(): re-running a configuration within one
  // tuning session costs nothing, across sessions it is measured again.
  EvalCache cache(*space_);

  ControllerHooks hooks;
  hooks.proposals_counter = "offline.proposals";
  hooks.cache_hits_counter = "offline.cache_hits";
  hooks.status_phase = "short-runs";
  // Live-status slot (gated: nothing is published unless observability is
  // on, so the disabled path costs one relaxed load here).
  if (obs::enabled()) {
    static std::atomic<std::uint64_t> next_id{0};
    hooks.status_id = "offline/" + std::to_string(next_id.fetch_add(1));
  }

  // A generous proposal guard: the strategy may propose cached points freely.
  SearchController controller(*space_,
                              {opts_.max_runs, opts_.max_runs * 64 + 256},
                              std::move(hooks), opts_.tracer,
                              opts_.use_cache ? &cache : nullptr);
  ShortRunEvalBackend backend(run, opts_.short_run_steps, opts_.restart_overhead_s,
                              "offline.runs", "offline.short_run_s");
  const ControllerResult r = controller.run(strategy, backend);
  history_ = controller.take_history();

  OfflineResult out;
  out.best = r.best;
  out.best_measured_s = r.best_objective;
  out.runs = r.evaluations;
  out.total_tuning_cost_s = r.total_cost_s;
  out.strategy_converged = r.strategy_converged;
  return out;
}

}  // namespace harmony
