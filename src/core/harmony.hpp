#pragma once

/// \file harmony.hpp
/// Umbrella header for the Active Harmony reproduction's tuning core.
/// Include this to get the whole public API:
///
///   harmony::ParamSpace space;
///   space.add(harmony::Parameter::Integer("block_x", 15, 1800));
///   harmony::NelderMead search(space);
///   harmony::Tuner tuner(space);
///   auto result = tuner.run(search, [&](const harmony::Config& c) { ... });

#include "core/client.hpp"
#include "core/constraint.hpp"
#include "core/controller.hpp"
#include "core/coordinate_descent.hpp"
#include "core/evaluation.hpp"
#include "core/exhaustive.hpp"
#include "core/genetic_search.hpp"
#include "core/history.hpp"
#include "core/nelder_mead.hpp"
#include "core/offline_driver.hpp"
#include "core/flat_map.hpp"
#include "core/param_space.hpp"
#include "core/parameter.hpp"
#include "core/point_key.hpp"
#include "core/protocol.hpp"
#include "core/random_search.hpp"
#include "core/report.hpp"
#include "core/rng.hpp"
#include "core/server.hpp"
#include "core/session.hpp"
#include "core/simulated_annealing.hpp"
#include "core/strategy.hpp"
#include "core/strategy_registry.hpp"
#include "core/systematic_sampler.hpp"
#include "core/tuner.hpp"
#include "core/types.hpp"
