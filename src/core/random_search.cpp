#include "core/random_search.hpp"

#include <limits>
#include <stdexcept>

namespace harmony {

RandomSearch::RandomSearch(const ParamSpace& space, int max_samples,
                           std::uint64_t seed)
    : space_(&space),
      rng_(seed),
      max_samples_(max_samples),
      best_value_(std::numeric_limits<double>::infinity()) {
  if (max_samples < 1) throw std::invalid_argument("RandomSearch: max_samples < 1");
}

std::optional<Config> RandomSearch::propose() {
  if (proposed_ >= max_samples_) return std::nullopt;
  ++proposed_;
  return space_->random_config(rng_);
}

void RandomSearch::report(const Config& c, const EvaluationResult& r) {
  if (r.valid && r.objective < best_value_) {
    best_value_ = r.objective;
    best_ = c;
  }
}

bool RandomSearch::converged() const { return proposed_ >= max_samples_; }

std::optional<Config> RandomSearch::best() const { return best_; }

double RandomSearch::best_objective() const { return best_value_; }

}  // namespace harmony
