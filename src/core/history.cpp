#include "core/history.hpp"

#include <limits>
#include <ostream>
#include <utility>

namespace harmony {

void History::record(Config c, const EvaluationResult& r, bool cached) {
  HistoryEntry e;
  e.config = std::move(c);
  e.result = r;
  e.cached = cached;
  if (!cached) ++iterations_;
  e.iteration = iterations_;
  if (r.valid && (!have_best_ || r.objective < best_value_)) {
    have_best_ = true;
    best_value_ = r.objective;
    best_ = e.config;
    e.improved = true;
  }
  entries_.push_back(std::move(e));
}

std::optional<Config> History::best_config() const { return best_; }

double History::best_after(int k) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) {
    if (e.iteration > k) break;
    if (e.result.valid) best = std::min(best, e.result.objective);
  }
  return best;
}

int History::evals_to_best() const {
  int at = 0;
  for (const auto& e : entries_) {
    if (e.improved) at = e.iteration;
  }
  return at;
}

std::vector<History::ParamChange> History::improvement_trace() const {
  std::vector<ParamChange> out;
  const Config* incumbent = nullptr;
  for (const auto& e : entries_) {
    if (!e.improved) continue;
    if (incumbent != nullptr) {
      for (std::size_t i = 0; i < e.config.size(); ++i) {
        if (!(e.config.values[i] == incumbent->values[i])) {
          out.push_back(ParamChange{e.iteration, space_->param(i).name(),
                                    to_string(incumbent->values[i]),
                                    to_string(e.config.values[i])});
        }
      }
    }
    incumbent = &e.config;
  }
  return out;
}

void History::write_csv(std::ostream& os) const {
  os << "iteration,cached,valid,objective";
  for (const auto& name : space_->names()) os << ',' << name;
  os << '\n';
  for (const auto& e : entries_) {
    os << e.iteration << ',' << (e.cached ? 1 : 0) << ',' << (e.result.valid ? 1 : 0)
       << ',' << e.result.objective;
    for (const auto& v : e.config.values) os << ',' << to_string(v);
    os << '\n';
  }
}

}  // namespace harmony
