#pragma once

/// \file session.hpp
/// The on-line tuning API (paper Sections II-III): an application registers
/// its tunable variables, then alternates fetch() / report() around its main
/// loop. fetch() writes the server's next candidate values straight into the
/// application's own variables (mirroring harmony_add_variable binding in
/// Active Harmony), report() feeds back the observed performance. "Minimal
/// changes to the application" — the paper quotes about 10 lines per PETSc
/// example — is the design goal of this surface.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/evaluation.hpp"
#include "core/nelder_mead.hpp"
#include "core/param_space.hpp"
#include "core/strategy.hpp"

namespace harmony {

class Session {
 public:
  explicit Session(std::string app_name);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Register tunable variables. `bound` may be null; when non-null, fetch()
  /// writes the candidate value into it. Returns the variable handle.
  std::size_t add_int(const std::string& name, std::int64_t lo, std::int64_t hi,
                      std::int64_t step = 1, std::int64_t* bound = nullptr);
  std::size_t add_real(const std::string& name, double lo, double hi,
                       double* bound = nullptr);
  std::size_t add_enum(const std::string& name, std::vector<std::string> choices,
                       std::string* bound = nullptr);

  /// Optionally replace the default Nelder-Mead strategy. Must be called
  /// before the first fetch(). The factory receives the finished space.
  using StrategyFactory =
      std::function<std::unique_ptr<SearchStrategy>(const ParamSpace&)>;
  void set_strategy(StrategyFactory factory);
  void set_nelder_mead_options(NelderMeadOptions opts);

  /// Pull the next candidate configuration; returns false when tuning has
  /// converged (bound variables then hold the best-known values).
  bool fetch();

  /// Report the performance (to minimize) observed under the configuration
  /// delivered by the last fetch().
  void report(double performance);

  /// report() + fetch() in one call — the in-process mirror of the wire
  /// protocol's combined REPORT+FETCH verb, so a main loop body is just
  /// `while (s.report_and_fetch(t)) { t = run_step(); }` after the first
  /// fetch(). Returns false when tuning has converged.
  bool report_and_fetch(double performance);

  [[nodiscard]] const ParamSpace& space() const noexcept { return space_; }
  [[nodiscard]] const Config& current() const;
  [[nodiscard]] std::optional<Config> best() const;
  [[nodiscard]] double best_performance() const;
  [[nodiscard]] bool converged() const;
  [[nodiscard]] int fetches() const noexcept { return fetches_; }
  [[nodiscard]] const std::string& app_name() const noexcept { return app_name_; }

  /// Evaluation history recorded by the controller (one entry per completed
  /// fetch/report round trip).
  [[nodiscard]] const History& history() const;

  // Typed accessors for the current candidate (for apps that do not bind).
  [[nodiscard]] std::int64_t get_int(std::size_t handle) const;
  [[nodiscard]] double get_real(std::size_t handle) const;
  [[nodiscard]] const std::string& get_enum(std::size_t handle) const;

 private:
  void ensure_strategy();
  void write_bound(const Config& c);

  struct Binding {
    std::int64_t* i = nullptr;
    double* r = nullptr;
    std::string* s = nullptr;
  };

  std::string app_name_;
  ParamSpace space_;
  std::vector<Binding> bindings_;
  StrategyFactory factory_;
  NelderMeadOptions nm_opts_;
  std::unique_ptr<SearchStrategy> strategy_;
  std::unique_ptr<SearchController> controller_;
  std::optional<Config> current_;
  bool awaiting_report_ = false;
  int fetches_ = 0;
};

}  // namespace harmony
