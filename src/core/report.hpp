#pragma once

/// \file report.hpp
/// Small text-report helpers shared by the benchmark harness: aligned tables
/// in the style of the paper's Tables I-IV and simple horizontal bar charts
/// for the figures.

#include <iosfwd>
#include <string>
#include <vector>

namespace harmony {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> row);

  /// Render with a rule under the header. Rows shorter than the header are
  /// padded with empty cells.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3%" style improvement of `tuned` over `baseline` (positive = faster).
[[nodiscard]] std::string percent_improvement(double baseline, double tuned);

/// "3.4x" style speedup string.
[[nodiscard]] std::string speedup(double baseline, double tuned);

/// Fixed-precision formatting helper.
[[nodiscard]] std::string fmt(double v, int precision = 2);

/// Horizontal ASCII bar scaled so `max_value` spans `width` characters.
[[nodiscard]] std::string bar(double value, double max_value, int width = 40);

}  // namespace harmony
