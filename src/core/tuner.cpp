#include "core/tuner.hpp"

#include <stdexcept>

#include "core/controller.hpp"

namespace harmony {

Tuner::Tuner(const ParamSpace& space, TunerOptions opts)
    : space_(&space), opts_(opts), cache_(space), history_(space) {
  if (opts.max_iterations < 1) throw std::invalid_argument("Tuner: max_iterations < 1");
  if (opts.max_proposals < 1) throw std::invalid_argument("Tuner: max_proposals < 1");
}

TuneResult Tuner::run(SearchStrategy& strategy, const Evaluator& evaluate) {
  if (!evaluate) throw std::invalid_argument("Tuner::run: null evaluator");

  SearchController controller(*space_,
                              {opts_.max_iterations, opts_.max_proposals},
                              /*hooks=*/{}, opts_.tracer,
                              opts_.use_cache ? &cache_ : nullptr);
  SerialEvalBackend backend(evaluate);
  const ControllerResult r = controller.run(strategy, backend);
  history_ = controller.take_history();

  TuneResult out;
  out.best = r.best;
  out.best_result = r.best_result;
  out.iterations = r.evaluations;
  out.proposals = r.proposals;
  // Cumulative across run() calls: the memoization table persists, so a
  // second strategy reusing earlier measurements shows up here.
  out.cache_hits = cache_.hits();
  out.strategy_converged = r.strategy_converged;
  return out;
}

}  // namespace harmony
