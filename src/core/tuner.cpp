#include "core/tuner.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace harmony {

Tuner::Tuner(const ParamSpace& space, TunerOptions opts)
    : space_(&space), opts_(opts), cache_(space), history_(space) {
  if (opts.max_iterations < 1) throw std::invalid_argument("Tuner: max_iterations < 1");
  if (opts.max_proposals < 1) throw std::invalid_argument("Tuner: max_proposals < 1");
}

TuneResult Tuner::run(SearchStrategy& strategy, const Evaluator& evaluate) {
  if (!evaluate) throw std::invalid_argument("Tuner::run: null evaluator");
  history_ = History(*space_);
  TuneResult out;
  int distinct = 0;

  obs::SearchTracer* const tracer = opts_.tracer;

  while (distinct < opts_.max_iterations && out.proposals < opts_.max_proposals) {
    auto proposal = strategy.propose();
    if (!proposal) break;
    ++out.proposals;

    const double t_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
    EvaluationResult result;
    bool cached = false;
    if (opts_.use_cache) {
      if (auto hit = cache_.lookup(*proposal)) {
        result = *hit;
        cached = true;
      }
    }
    if (!cached) {
      result = evaluate(*proposal);
      if (opts_.use_cache) cache_.store(*proposal, result);
      ++distinct;
    }
    if (tracer != nullptr) {
      tracer->record({strategy.name(), space_->format(*proposal),
                      result.objective, result.valid, cached, /*thread_lane=*/0,
                      t_start_us, tracer->now_us()});
    }
    history_.record(*proposal, result, cached);
    strategy.report(*proposal, result);
  }

  out.iterations = distinct;
  out.cache_hits = cache_.hits();
  out.strategy_converged = strategy.converged();
  out.best = history_.best_config();
  if (out.best) {
    // The best result is whatever the history recorded for the incumbent.
    for (const auto& e : history_.entries()) {
      if (e.improved) out.best_result = e.result;
    }
  }
  return out;
}

}  // namespace harmony
