#include "core/genetic_search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace harmony {

namespace {

[[noreturn]] void bad(const char* msg) {
  throw std::invalid_argument(std::string("GeneticSearch: ") + msg);
}

}  // namespace

GeneticSearch::GeneticSearch(const ParamSpace& space, GeneticOptions opts,
                             std::optional<Config> initial,
                             ConstraintSet constraints)
    : space_(&space),
      opts_(opts),
      constraints_(std::move(constraints)),
      rng_(opts.seed),
      best_value_(std::numeric_limits<double>::infinity()) {
  if (space.empty()) bad("empty parameter space");
  if (opts.population < 2) bad("population must be >= 2");
  if (opts.generations < 1) bad("generations must be >= 1");
  if (opts.mutation < 0.0 || opts.mutation > 1.0) bad("mutation must be in [0, 1]");
  if (opts.elite < 0) bad("elite must be >= 0");
  if (opts.elite >= opts.population) bad("elite must be < population");
  if (opts.tournament < 1) bad("tournament must be >= 1");
  if (opts.crossover < 0.0 || opts.crossover > 1.0) {
    bad("crossover must be in [0, 1]");
  }
  spawn_initial(std::move(initial));
}

Config GeneticSearch::repair(std::vector<double> coords) const {
  if (!constraints_.empty()) constraints_.project(*space_, coords);
  return space_->snap(coords);
}

void GeneticSearch::spawn_initial(std::optional<Config> initial) {
  pop_.reserve(static_cast<std::size_t>(opts_.population));
  if (initial) {
    pop_.push_back({repair(space_->coords(*initial)), 0.0, false});
  }
  while (pop_.size() < static_cast<std::size_t>(opts_.population)) {
    pop_.push_back({repair(space_->coords(space_->random_config(rng_))), 0.0, false});
  }
}

std::vector<Config> GeneticSearch::propose_batch(std::size_t max_n) {
  std::vector<Config> batch;
  if (converged_) return batch;
  const std::size_t n = std::min(max_n, pop_.size() - cursor_);
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(pop_[cursor_].config);
    in_flight_.push_back(cursor_);
    ++cursor_;
  }
  return batch;
}

void GeneticSearch::report_batch(const std::vector<Config>& configs,
                                 const std::vector<EvaluationResult>& results) {
  if (configs.size() != results.size()) {
    throw std::invalid_argument("GeneticSearch: batch size mismatch");
  }
  if (configs.size() > in_flight_.size()) {
    throw std::logic_error("GeneticSearch: report without matching proposal");
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    Member& m = pop_[in_flight_.front()];
    in_flight_.pop_front();
    const EvaluationResult& r = results[i];
    m.fitness = r.valid ? r.objective : std::numeric_limits<double>::infinity();
    m.evaluated = true;
    if (r.valid && r.objective < best_value_) {
      best_value_ = r.objective;
      best_ = m.config;
    }
  }
  if (cursor_ == pop_.size() && in_flight_.empty()) {
    ++generation_;
    if (generation_ >= opts_.generations) {
      converged_ = true;
    } else {
      breed_next();
    }
  }
}

std::size_t GeneticSearch::tournament_pick(const std::vector<std::size_t>& order) {
  // `order` maps rank -> member index; drawing ranks and keeping the lowest
  // is the classic tournament with deterministic tie handling.
  std::size_t best_rank = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(order.size()) - 1));
  for (int t = 1; t < opts_.tournament; ++t) {
    const auto rank = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(order.size()) - 1));
    best_rank = std::min(best_rank, rank);
  }
  return order[best_rank];
}

void GeneticSearch::breed_next() {
  // Rank the finished generation best-first (stable: equal fitness keeps
  // member order, so the trajectory is deterministic under ties).
  std::vector<std::size_t> order(pop_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pop_[a].fitness < pop_[b].fitness;
  });

  std::vector<Member> next;
  next.reserve(pop_.size());
  for (int e = 0; e < opts_.elite; ++e) {
    next.push_back({pop_[order[static_cast<std::size_t>(e)]].config, 0.0, false});
  }
  while (next.size() < pop_.size()) {
    const Member& a = pop_[tournament_pick(order)];
    const Member& b = pop_[tournament_pick(order)];
    std::vector<double> child = space_->coords(a.config);
    if (rng_.uniform() < opts_.crossover) {
      const std::vector<double> other = space_->coords(b.config);
      for (std::size_t d = 0; d < child.size(); ++d) {
        if (rng_.uniform() < 0.5) child[d] = other[d];
      }
    }
    for (std::size_t d = 0; d < child.size(); ++d) {
      if (rng_.uniform() >= opts_.mutation) continue;
      const Parameter& p = space_->param(d);
      // Index-space mutation, mostly local: three quarters of the mutations
      // step a few lattice indices from the parent (how narrow optima — a
      // node-count sweet spot — actually get refined), the rest re-sample
      // uniformly so the population keeps exploring globally.
      const bool jump = rng_.uniform() < 0.25;
      if (p.count() > 0) {
        const auto count = static_cast<std::int64_t>(p.count());
        if (jump || count <= 4) {
          child[d] = static_cast<double>(rng_.uniform_int(0, count - 1));
        } else {
          const std::int64_t step = rng_.uniform_int(1, 3);
          const std::int64_t sign = rng_.uniform() < 0.5 ? -1 : 1;
          const auto cur = static_cast<std::int64_t>(child[d] + 0.5);
          child[d] = static_cast<double>(
              std::clamp(cur + sign * step, std::int64_t{0}, count - 1));
        }
      } else {
        if (jump) {
          child[d] = rng_.uniform(p.coord_min(), p.coord_max());
        } else {
          const double span = 0.1 * (p.coord_max() - p.coord_min());
          child[d] = std::clamp(child[d] + rng_.uniform(-span, span),
                                p.coord_min(), p.coord_max());
        }
      }
    }
    next.push_back({repair(std::move(child)), 0.0, false});
  }
  pop_ = std::move(next);
  cursor_ = 0;
}

std::optional<Config> GeneticSearch::propose() {
  // Serial facade: a chunk of one through the batch machinery. The strict
  // propose/report alternation means at most one member is ever in flight.
  auto batch = propose_batch(1);
  if (batch.empty()) return std::nullopt;
  return std::move(batch.front());
}

void GeneticSearch::report(const Config& c, const EvaluationResult& r) {
  report_batch({c}, {r});
}

bool GeneticSearch::converged() const { return converged_; }

std::optional<Config> GeneticSearch::best() const { return best_; }

double GeneticSearch::best_objective() const { return best_value_; }

}  // namespace harmony
