#include "core/strategy_registry.hpp"

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

#include "core/coordinate_descent.hpp"
#include "core/exhaustive.hpp"
#include "core/genetic_search.hpp"
#include "core/random_search.hpp"
#include "core/simulated_annealing.hpp"
#include "core/systematic_sampler.hpp"

namespace harmony {

namespace {

[[noreturn]] void bad_option(const std::string& strategy, const std::string& msg) {
  throw std::invalid_argument(strategy + ": " + msg);
}

[[noreturn]] void unknown_key(const std::string& strategy, const std::string& key,
                              const char* known) {
  bad_option(strategy, "unknown option '" + key + "' (known: " + known + ")");
}

template <typename T>
T parse_number(const std::string& strategy, const std::string& key,
               const std::string& value) {
  T v{};
  const char* first = value.c_str();
  const char* last = first + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    bad_option(strategy, "bad value for " + key + ": '" + value + "'");
  }
  return v;
}

// std::from_chars for double is unreliable across standard libraries; go
// through strtod with a full-consumption check instead.
double parse_real(const std::string& strategy, const std::string& key,
                  const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size()) {
    bad_option(strategy, "bad value for " + key + ": '" + value + "'");
  }
  return v;
}

NelderMeadOptions parse_nelder_mead(const StrategyOptions& opts,
                                    const NelderMeadOptions& base) {
  static constexpr const char* kKnown =
      "reflection, expansion, contraction, shrink, initial_step_fraction, "
      "diameter_tolerance, max_stall, max_restarts, restart_shrink, seed";
  NelderMeadOptions o = base;
  for (const auto& [key, value] : opts) {
    if (key == "reflection") {
      o.reflection = parse_real("nelder-mead", key, value);
    } else if (key == "expansion") {
      o.expansion = parse_real("nelder-mead", key, value);
    } else if (key == "contraction") {
      o.contraction = parse_real("nelder-mead", key, value);
    } else if (key == "shrink") {
      o.shrink = parse_real("nelder-mead", key, value);
    } else if (key == "initial_step_fraction") {
      o.initial_step_fraction = parse_real("nelder-mead", key, value);
    } else if (key == "diameter_tolerance") {
      o.diameter_tolerance = parse_real("nelder-mead", key, value);
    } else if (key == "max_stall") {
      o.max_stall = parse_number<int>("nelder-mead", key, value);
    } else if (key == "max_restarts") {
      o.max_restarts = parse_number<int>("nelder-mead", key, value);
    } else if (key == "restart_shrink") {
      o.restart_shrink = parse_real("nelder-mead", key, value);
    } else if (key == "seed") {
      o.seed = parse_number<std::uint64_t>("nelder-mead", key, value);
    } else {
      unknown_key("nelder-mead", key, kKnown);
    }
  }
  return o;
}

struct RandomParams {
  int samples = 10000;
  std::uint64_t seed = 1;
};

RandomParams parse_random(const StrategyOptions& opts) {
  RandomParams p;
  for (const auto& [key, value] : opts) {
    if (key == "samples") {
      p.samples = parse_number<int>("random", key, value);
    } else if (key == "seed") {
      p.seed = parse_number<std::uint64_t>("random", key, value);
    } else {
      unknown_key("random", key, "samples, seed");
    }
  }
  if (p.samples < 1) bad_option("random", "samples must be >= 1");
  return p;
}

int parse_systematic(const StrategyOptions& opts) {
  int samples_per_dim = 8;
  for (const auto& [key, value] : opts) {
    if (key == "samples_per_dim") {
      samples_per_dim = parse_number<int>("systematic", key, value);
    } else {
      unknown_key("systematic", key, "samples_per_dim");
    }
  }
  if (samples_per_dim < 1) bad_option("systematic", "samples_per_dim must be >= 1");
  return samples_per_dim;
}

std::uint64_t parse_exhaustive(const StrategyOptions& opts) {
  std::uint64_t max_points = 1'000'000;
  for (const auto& [key, value] : opts) {
    if (key == "max_points") {
      max_points = parse_number<std::uint64_t>("exhaustive", key, value);
    } else {
      unknown_key("exhaustive", key, "max_points");
    }
  }
  return max_points;
}

AnnealingOptions parse_annealing(const StrategyOptions& opts) {
  static constexpr const char* kKnown =
      "max_evaluations, initial_temperature, cooling, neighbor_fraction, seed";
  AnnealingOptions o;
  for (const auto& [key, value] : opts) {
    if (key == "max_evaluations") {
      o.max_evaluations = parse_number<int>("annealing", key, value);
    } else if (key == "initial_temperature") {
      o.initial_temperature = parse_real("annealing", key, value);
    } else if (key == "cooling") {
      o.cooling = parse_real("annealing", key, value);
    } else if (key == "neighbor_fraction") {
      o.neighbor_fraction = parse_real("annealing", key, value);
    } else if (key == "seed") {
      o.seed = parse_number<std::uint64_t>("annealing", key, value);
    } else {
      unknown_key("annealing", key, kKnown);
    }
  }
  return o;
}

GeneticOptions parse_genetic(const StrategyOptions& opts) {
  static constexpr const char* kKnown =
      "population, generations, mutation, elite, tournament, crossover, seed";
  GeneticOptions o;
  for (const auto& [key, value] : opts) {
    if (key == "population") {
      o.population = parse_number<int>("genetic", key, value);
    } else if (key == "generations") {
      o.generations = parse_number<int>("genetic", key, value);
    } else if (key == "mutation") {
      o.mutation = parse_real("genetic", key, value);
    } else if (key == "elite") {
      o.elite = parse_number<int>("genetic", key, value);
    } else if (key == "tournament") {
      o.tournament = parse_number<int>("genetic", key, value);
    } else if (key == "crossover") {
      o.crossover = parse_real("genetic", key, value);
    } else if (key == "seed") {
      o.seed = parse_number<std::uint64_t>("genetic", key, value);
    } else {
      unknown_key("genetic", key, kKnown);
    }
  }
  // Mirror the constructor's range checks here so validate() (the server's
  // pre-START STRATEGY screen) rejects bad values without a ParamSpace.
  if (o.population < 2) bad_option("genetic", "population must be >= 2");
  if (o.generations < 1) bad_option("genetic", "generations must be >= 1");
  if (o.mutation < 0.0 || o.mutation > 1.0) {
    bad_option("genetic", "mutation must be in [0, 1]");
  }
  if (o.elite < 0) bad_option("genetic", "elite must be >= 0");
  if (o.elite >= o.population) bad_option("genetic", "elite must be < population");
  if (o.tournament < 1) bad_option("genetic", "tournament must be >= 1");
  if (o.crossover < 0.0 || o.crossover > 1.0) {
    bad_option("genetic", "crossover must be in [0, 1]");
  }
  return o;
}

struct CoordinateParams {
  int max_sweeps = 50;
  int line_samples = 0;
};

CoordinateParams parse_coordinate(const StrategyOptions& opts) {
  CoordinateParams p;
  for (const auto& [key, value] : opts) {
    if (key == "max_sweeps") {
      p.max_sweeps = parse_number<int>("coordinate-descent", key, value);
    } else if (key == "line_samples") {
      p.line_samples = parse_number<int>("coordinate-descent", key, value);
    } else {
      unknown_key("coordinate-descent", key, "max_sweeps, line_samples");
    }
  }
  if (p.max_sweeps < 1) bad_option("coordinate-descent", "max_sweeps must be >= 1");
  return p;
}

/// Owning counterpart of SequentialBatchAdapter for registry-built serial
/// strategies riding the batch pathway.
class OwningSequentialAdapter final : public BatchSearchStrategy {
 public:
  explicit OwningSequentialAdapter(std::unique_ptr<SearchStrategy> inner)
      : inner_(std::move(inner)), adapter_(*inner_) {}

  [[nodiscard]] std::vector<Config> propose_batch(std::size_t max_n) override {
    return adapter_.propose_batch(max_n);
  }
  void report_batch(const std::vector<Config>& configs,
                    const std::vector<EvaluationResult>& results) override {
    adapter_.report_batch(configs, results);
  }
  [[nodiscard]] bool converged() const override { return adapter_.converged(); }
  [[nodiscard]] std::optional<Config> best() const override {
    return adapter_.best();
  }
  [[nodiscard]] double best_objective() const override {
    return adapter_.best_objective();
  }
  [[nodiscard]] std::string name() const override { return adapter_.name(); }

 private:
  std::unique_ptr<SearchStrategy> inner_;
  SequentialBatchAdapter adapter_;
};

}  // namespace

const std::vector<std::string>& StrategyRegistry::names() {
  static const std::vector<std::string> kNames = {
      "nelder-mead", "random",    "systematic",         "exhaustive",
      "annealing",   "genetic",   "coordinate-descent"};
  return kNames;
}

bool StrategyRegistry::known(const std::string& name) {
  for (const auto& n : names()) {
    if (n == name) return true;
  }
  return false;
}

bool StrategyRegistry::validate(const std::string& name, const StrategyOptions& opts,
                                std::string* error) {
  try {
    if (name == "nelder-mead") {
      (void)parse_nelder_mead(opts, {});
    } else if (name == "random") {
      (void)parse_random(opts);
    } else if (name == "systematic") {
      (void)parse_systematic(opts);
    } else if (name == "exhaustive") {
      (void)parse_exhaustive(opts);
    } else if (name == "annealing") {
      (void)parse_annealing(opts);
    } else if (name == "genetic") {
      (void)parse_genetic(opts);
    } else if (name == "coordinate-descent") {
      (void)parse_coordinate(opts);
    } else {
      throw std::invalid_argument("unknown strategy " + name);
    }
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  if (error != nullptr) error->clear();
  return true;
}

std::unique_ptr<SearchStrategy> StrategyRegistry::make(const std::string& name,
                                                       const ParamSpace& space,
                                                       const StrategyOptions& opts,
                                                       std::optional<Config> initial) {
  if (name == "nelder-mead") {
    return std::make_unique<NelderMead>(space, parse_nelder_mead(opts, {}),
                                        std::move(initial));
  }
  if (name == "random") {
    const RandomParams p = parse_random(opts);
    return std::make_unique<RandomSearch>(space, p.samples, p.seed);
  }
  if (name == "systematic") {
    return std::make_unique<SystematicSampler>(space, parse_systematic(opts));
  }
  if (name == "exhaustive") {
    return std::make_unique<Exhaustive>(space, parse_exhaustive(opts));
  }
  if (name == "annealing") {
    return std::make_unique<SimulatedAnnealing>(space, parse_annealing(opts),
                                                std::move(initial));
  }
  if (name == "genetic") {
    return std::make_unique<GeneticSearch>(space, parse_genetic(opts),
                                           std::move(initial));
  }
  if (name == "coordinate-descent") {
    const CoordinateParams p = parse_coordinate(opts);
    return std::make_unique<CoordinateDescent>(space, std::move(initial),
                                               p.max_sweeps, p.line_samples);
  }
  throw std::invalid_argument("unknown strategy " + name);
}

std::unique_ptr<BatchSearchStrategy> StrategyRegistry::make_batch(
    const std::string& name, const ParamSpace& space, const StrategyOptions& opts,
    std::optional<Config> initial) {
  if (name == "genetic") {
    return std::make_unique<GeneticSearch>(space, parse_genetic(opts),
                                           std::move(initial));
  }
  return std::make_unique<OwningSequentialAdapter>(
      make(name, space, opts, std::move(initial)));
}

std::unique_ptr<SearchStrategy> StrategyRegistry::make_default(
    const ParamSpace& space, const NelderMeadOptions& base,
    std::optional<Config> initial) {
  return std::make_unique<NelderMead>(space, base, std::move(initial));
}

}  // namespace harmony
