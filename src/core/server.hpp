#pragma once

/// \file server.hpp
/// The Harmony tuning server (paper Fig. 1): applications connect over
/// loopback TCP, register their tunable parameters, then drive FETCH/REPORT
/// rounds while a per-client SearchController (the same Adaptation
/// Controller behind Tuner and the off-line drivers) steers the
/// configuration through its ask/tell surface. The search algorithm is
/// Nelder-Mead by default and selectable per session with the STRATEGY verb
/// (any StrategyRegistry name plus key=value options). Each connection owns
/// an independent tuning session, so several applications can be tuned
/// concurrently — the coordination role the paper contrasts against
/// per-application adapters like AppLeS (Section VIII).
///
/// The server is also live-introspectable: every session publishes its
/// state (app, phase, iteration, incumbent) to obs::StatusRegistry, and the
/// STATUS / METRICS / LOG verbs serve that board, the Prometheus metrics
/// exposition and the structured event log to any connection — see
/// protocol.hpp and examples/harmony_top.cpp.

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/nelder_mead.hpp"
#include "core/net.hpp"

namespace harmony {

struct ServerOptions {
  int port = 0;  ///< 0 = pick an ephemeral port

  /// Base options for the default search (nelder-mead); a client's STRATEGY
  /// line overrides the whole choice.
  NelderMeadOptions search;
  int default_max_iterations = 200;

  /// Per-connection cap on one protocol line; a client streaming an
  /// unterminated line beyond this is disconnected instead of growing the
  /// server's read buffer without bound (see net::LineReader).
  std::size_t max_line_bytes = 1 << 20;

  /// Default number of events a bare `LOG` / `LOG tail` serves.
  std::size_t log_tail_default = 20;
};

class TuningServer {
 public:
  explicit TuningServer(ServerOptions opts = {});
  ~TuningServer();

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Bind and start the accept loop. Returns false when the port could not
  /// be bound.
  [[nodiscard]] bool start();

  /// Stop accepting and join all session threads.
  void stop();

  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return running_.load(); }

  /// Number of sessions served since start (for tests).
  [[nodiscard]] int sessions_served() const noexcept { return sessions_.load(); }

 private:
  void accept_loop();
  void serve_client(net::Socket client, int session_no);

  ServerOptions opts_;
  net::Socket listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int> sessions_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace harmony
