#pragma once

/// \file server.hpp
/// The Harmony tuning server (paper Fig. 1): applications connect over
/// loopback TCP, register their tunable parameters, then drive FETCH/REPORT
/// rounds while the server's Adaptation Controller (a per-client Nelder-Mead
/// search) steers the configuration. Each connection owns an independent
/// tuning session, so several applications can be tuned concurrently — the
/// coordination role the paper contrasts against per-application adapters
/// like AppLeS (Section VIII).

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/nelder_mead.hpp"
#include "core/net.hpp"

namespace harmony {

struct ServerOptions {
  int port = 0;  ///< 0 = pick an ephemeral port
  NelderMeadOptions search;
  int default_max_iterations = 200;
};

class TuningServer {
 public:
  explicit TuningServer(ServerOptions opts = {});
  ~TuningServer();

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Bind and start the accept loop. Returns false when the port could not
  /// be bound.
  [[nodiscard]] bool start();

  /// Stop accepting and join all session threads.
  void stop();

  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return running_.load(); }

  /// Number of sessions served since start (for tests).
  [[nodiscard]] int sessions_served() const noexcept { return sessions_.load(); }

 private:
  void accept_loop();
  void serve_client(net::Socket client);

  ServerOptions opts_;
  net::Socket listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int> sessions_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace harmony
