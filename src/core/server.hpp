#pragma once

/// \file server.hpp
/// The Harmony tuning server (paper Fig. 1): applications connect over
/// loopback TCP, register their tunable parameters, then drive FETCH/REPORT
/// (or pipelined REPORT+FETCH) rounds while a per-client SearchController
/// (the same Adaptation Controller behind Tuner and the off-line drivers)
/// steers the configuration through its ask/tell surface. The search
/// algorithm is Nelder-Mead by default and selectable per session with the
/// STRATEGY verb (any StrategyRegistry name plus key=value options). Each
/// connection owns an independent tuning session, so several applications
/// can be tuned concurrently — the coordination role the paper contrasts
/// against per-application adapters like AppLeS (Section VIII).
///
/// Two threading modes (ServerOptions::threading):
///
///  * kEventLoop (default) — N net::EventLoop reactor threads multiplex all
///    connections over epoll: non-blocking sockets, per-connection read
///    buffers and ByteRing write queues flushed with vectored writes. Verbs
///    arriving back-to-back (pipelined clients) are answered in order from
///    one readable burst, so the steady-state cost per evaluation is one
///    round trip and a couple of syscalls regardless of client count.
///  * kLegacy — the original blocking accept loop with one thread per
///    connection, kept for comparison benchmarks and as a fallback.
///
/// Both modes share the same per-connection protocol state machine
/// (ServerConnection in server_session.hpp) and are live-introspectable via
/// the STATUS / METRICS / LOG verbs — see protocol.hpp and
/// examples/harmony_top.cpp.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/nelder_mead.hpp"
#include "core/net.hpp"
#include "obs/trace.hpp"

namespace harmony {

class WorkSink;  // work_sink.hpp — fleet dispatcher seam

/// How the server schedules connections onto threads.
enum class ServerThreading {
  kEventLoop,  ///< epoll reactors, non-blocking sockets (default)
  kLegacy,     ///< one blocking thread per connection
};

struct ServerOptions {
  int port = 0;  ///< 0 = pick an ephemeral port

  /// Base options for the default search (nelder-mead); a client's STRATEGY
  /// line overrides the whole choice.
  NelderMeadOptions search;
  int default_max_iterations = 200;

  /// Per-connection cap on one protocol line; a client streaming an
  /// unterminated line beyond this is disconnected instead of growing the
  /// server's read buffer without bound (see net::LineReader).
  std::size_t max_line_bytes = 1 << 20;

  /// Default number of events a bare `LOG` / `LOG tail` serves.
  std::size_t log_tail_default = 20;

  /// Threading mode; kEventLoop serves all connections from
  /// `reactor_threads` epoll loops, kLegacy spawns a thread per connection.
  ServerThreading threading = ServerThreading::kEventLoop;

  /// Reactor thread count in kEventLoop mode (clamped to >= 1).
  int reactor_threads = 2;

  /// Cap on concurrently served connections in either mode; connects over
  /// the limit are answered `ERR server busy` and disconnected. 0 = no cap.
  int max_connections = 0;

  // ---- backpressure (event mode) ------------------------------------------
  // A client that writes requests faster than it reads replies grows its
  // connection's ByteRing without bound. Instead of buffering forever, the
  // shard stops reading from an over-cap connection (drops EPOLLIN) until
  // its queue drains below half the cap — pipelined replies stall, the
  // client's own sends eventually block on its socket buffer, and memory
  // stays bounded without a single byte of wire behaviour changing.

  /// Per-connection pending-output cap in bytes; reads are deferred while a
  /// connection's write queue exceeds this. 0 disables the per-conn cap.
  std::size_t max_pending_out_bytes = 1 << 20;

  /// Global pending-output cap across all connections of this server;
  /// connections with queued output get their reads deferred while the
  /// total exceeds this (resumed by the drain path and the tick sweep).
  /// 0 disables the global cap.
  std::size_t max_total_pending_out_bytes = 0;

  /// Write/read buffer capacity retained per connection after a burst
  /// drains (the tick sweep shrinks larger, now-idle buffers back to this).
  std::size_t buffer_keep_bytes = 16 * 1024;

  // ---- admission / eviction (event mode) -----------------------------------

  /// Idle-session reaping: a connection with no inbound traffic for this
  /// long is answered `ERR idle timeout` and closed. Resolution is
  /// `reap_tick_ms` (coarse timer wheel). ATTACHed fleet workers are exempt
  /// (they are push channels and legitimately quiet). 0 disables reaping.
  long long idle_timeout_ms = 0;

  /// Reactor tick interval: the timer wheel, deferred-read resume sweep and
  /// buffer compaction all run on this cadence (per shard, on the shard's
  /// own thread). Clamped to >= 10.
  long long reap_tick_ms = 1000;

  /// Per-tenant live-session quota, keyed by the optional TENANT verb; a
  /// TENANT line that would exceed it is answered `ERR retry-after <s>` and
  /// the connection closed (graceful shed — the client knows when to come
  /// back). 0 = unlimited.
  int tenant_quota = 0;

  /// Seconds suggested in the `ERR retry-after` shed reply.
  int retry_after_s = 1;

  /// Upper bound on report/fetch pairs in one BATCH line (see protocol.hpp).
  /// Advertised by the bare `BATCH` negotiation probe.
  int max_batch = 512;

  /// Fleet dispatcher (not owned, may be null). When set, connections may
  /// ATTACH as evaluation workers and the dispatcher pushes WORK lines back
  /// through them; null servers answer ATTACH with ERR. The sink must
  /// outlive the server (declare the Dispatcher before the TuningServer).
  WorkSink* fleet = nullptr;

  /// Span sink for distributed tracing (not owned, may be null). Requests
  /// carrying a wire trace token (see protocol.hpp) get per-stage spans
  /// recorded here; without a tracer the token is parsed and dropped.
  obs::SearchTracer* tracer = nullptr;

  /// Slow-request SLO threshold in microseconds: a request verb whose handle
  /// time exceeds this lands in the global EventLog with its trace id and
  /// per-stage breakdown, and bumps the STATUS latency block's slow-request
  /// counter. 0 disables the slow-request log.
  long long slow_request_us = 0;
};

class TuningServer {
 public:
  explicit TuningServer(ServerOptions opts = {});
  ~TuningServer();

  TuningServer(const TuningServer&) = delete;
  TuningServer& operator=(const TuningServer&) = delete;

  /// Bind and start serving. Returns false when the port could not be bound
  /// (or, in event mode, when the reactor could not be set up).
  [[nodiscard]] bool start();

  /// Stop accepting, drop all connections and join every serving thread.
  void stop();

  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return running_.load(); }

  /// Number of sessions served since start (for tests).
  [[nodiscard]] int sessions_served() const noexcept { return sessions_.load(); }

  /// Currently open connections (for tests and load shedding).
  [[nodiscard]] int active_connections() const noexcept {
    return active_connections_.load();
  }

 private:
  struct LoopShard;  // event-mode reactor state (server.cpp)

  // ---- legacy thread-per-connection mode ----
  void accept_loop();
  void serve_client(const std::shared_ptr<net::Socket>& client, int session_no);
  void reap_finished_workers();

  // ---- event-loop mode ----
  [[nodiscard]] bool start_event_mode();
  void on_accept_ready();

  ServerOptions opts_;
  net::Socket listener_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<int> sessions_{0};
  std::atomic<int> active_connections_{0};
  /// Bytes queued in every connection's ByteRing across all shards; the
  /// global-backpressure check reads it, shards add/sub as queues move.
  std::atomic<std::int64_t> pending_out_bytes_{0};

  // Legacy mode: accept thread plus one worker per connection. Finished
  // workers are reaped on the accept path so the list stays bounded by the
  // number of *live* connections instead of growing per session served.
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    // Shared with the worker thread so stop() can shutdown() a connection
    // whose thread is blocked in recv() on an idle client.
    std::shared_ptr<net::Socket> socket;
  };
  std::list<Worker> workers_;

  // Event mode: reactor shards, one thread each.
  std::vector<std::unique_ptr<LoopShard>> shards_;
  std::vector<std::thread> reactor_threads_;
  std::atomic<std::size_t> next_shard_{0};
};

}  // namespace harmony
