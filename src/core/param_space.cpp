#include "core/param_space.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace harmony {

ParamSpace& ParamSpace::add(Parameter p) {
  if (index_of(p.name()).has_value()) {
    throw std::invalid_argument("ParamSpace::add: duplicate parameter '" + p.name() +
                                "'");
  }
  params_.push_back(std::move(p));
  return *this;
}

std::optional<std::size_t> ParamSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name() == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> ParamSpace::names() const {
  std::vector<std::string> out;
  out.reserve(params_.size());
  for (const auto& p : params_) out.push_back(p.name());
  return out;
}

Config ParamSpace::snap(const std::vector<double>& coords) const {
  if (coords.size() != params_.size()) {
    throw std::invalid_argument("ParamSpace::snap: dimension mismatch");
  }
  Config c;
  c.values.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    c.values.push_back(params_[i].coord_to_value(coords[i]));
  }
  return c;
}

std::vector<double> ParamSpace::coords(const Config& c) const {
  std::vector<double> out;
  coords(c, out);
  return out;
}

void ParamSpace::coords(const Config& c, std::vector<double>& out) const {
  if (c.size() != params_.size()) {
    throw std::invalid_argument("ParamSpace::coords: dimension mismatch");
  }
  out.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out[i] = params_[i].value_to_coord(c.values[i]);
  }
}

Config ParamSpace::default_config() const {
  Config c;
  c.values.reserve(params_.size());
  for (const auto& p : params_) c.values.push_back(p.default_value());
  return c;
}

Config ParamSpace::random_config(Rng& rng) const {
  Config c;
  c.values.reserve(params_.size());
  for (const auto& p : params_) {
    c.values.push_back(p.coord_to_value(rng.uniform(p.coord_min(), p.coord_max())));
  }
  return c;
}

double ParamSpace::total_points() const {
  double total = 1.0;
  for (const auto& p : params_) {
    if (p.type() == ParamType::Real) return std::numeric_limits<double>::infinity();
    total *= static_cast<double>(p.count());
  }
  return total;
}

std::string ParamSpace::key(const Config& c) const {
  std::string out;
  for (std::size_t i = 0; i < c.values.size(); ++i) {
    if (i != 0) out += '|';
    to_string(c.values[i], out);
  }
  return out;
}

bool ParamSpace::contains(const Config& c) const {
  if (c.size() != params_.size()) return false;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!params_[i].contains(c.values[i])) return false;
  }
  return true;
}

std::vector<Config> ParamSpace::neighbors(const Config& c,
                                          double real_step_fraction) const {
  std::vector<Config> out;
  const auto base = coords(c);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& p = params_[i];
    double step = 1.0;
    if (p.type() == ParamType::Real) {
      step = real_step_fraction * (p.coord_max() - p.coord_min());
      if (step <= 0.0) continue;
    }
    for (const double delta : {-step, step}) {
      const double moved = base[i] + delta;
      if (moved < p.coord_min() - 1e-12 || moved > p.coord_max() + 1e-12) continue;
      auto coords2 = base;
      coords2[i] = moved;
      Config n = snap(coords2);
      if (!(n == c)) out.push_back(std::move(n));
    }
  }
  return out;
}

const Value& ParamSpace::get(const Config& c, const std::string& name) const {
  const auto idx = index_of(name);
  if (!idx) throw std::out_of_range("ParamSpace::get: unknown parameter '" + name + "'");
  return c.values.at(*idx);
}

std::int64_t ParamSpace::get_int(const Config& c, const std::string& name) const {
  return std::get<std::int64_t>(get(c, name));
}

double ParamSpace::get_real(const Config& c, const std::string& name) const {
  const Value& v = get(c, name);
  if (std::holds_alternative<std::int64_t>(v)) {
    return static_cast<double>(std::get<std::int64_t>(v));
  }
  return std::get<double>(v);
}

const std::string& ParamSpace::get_enum(const Config& c,
                                        const std::string& name) const {
  return std::get<std::string>(get(c, name));
}

void ParamSpace::set(Config& c, const std::string& name, Value v) const {
  const auto idx = index_of(name);
  if (!idx) throw std::out_of_range("ParamSpace::set: unknown parameter '" + name + "'");
  if (!params_[*idx].contains(v)) {
    throw std::invalid_argument("ParamSpace::set: value out of range for '" + name +
                                "'");
  }
  c.values.at(*idx) = std::move(v);
}

std::string ParamSpace::format(const Config& c) const {
  return to_string(c, names());
}

}  // namespace harmony
