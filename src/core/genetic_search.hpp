#pragma once

/// \file genetic_search.hpp
/// Batch-native genetic search over the lattice (the Odyssey/AutoSA
/// evolutionary tuner shape: a population of configurations evolved by
/// tournament selection, per-parameter uniform crossover and index-space
/// mutation). The whole point of a population is that its members are
/// independent until the generation boundary, so GeneticSearch implements
/// BatchSearchStrategy natively: propose_batch() hands out the unevaluated
/// members of the current generation in chunks of any size, and breeding
/// only happens once every member has been reported. The proposal sequence
/// is therefore identical for every batch size — a pool-8 run evaluates the
/// exact configurations a serial run would, in the same order.
///
/// Genomes live in the ParamSpace coordinate embedding (lattice index for
/// integer/enum parameters, raw value for real ones). Mutation re-samples a
/// coordinate uniformly over its index range; crossover picks each gene from
/// either parent. Every bred genome is repaired through an optional
/// ConstraintSet projection before snapping, so constrained spaces (PETSc
/// decomposition boundaries, POP topology products) only ever see feasible
/// members. All randomness flows from one seeded rng.hpp stream consumed in
/// a fixed order, so trajectories are deterministic.
///
/// The serial SearchStrategy facade (propose/report alternation) delegates
/// to the batch interface with chunks of one, which is what the tuning
/// server's ask()/tell() surface and the STRATEGY wire verb drive.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/constraint.hpp"
#include "core/rng.hpp"
#include "core/strategy.hpp"

namespace harmony {

struct GeneticOptions {
  int population = 24;       ///< members per generation (>= 2)
  int generations = 40;      ///< generations bred before convergence (>= 1)
  double mutation = 0.15;    ///< per-gene probability of an index re-sample
  int elite = 2;             ///< best members copied unchanged (< population)
  int tournament = 3;        ///< selection tournament size (>= 1)
  double crossover = 0.9;    ///< probability of crossover (else clone parent A)
  std::uint64_t seed = 11;
};

class GeneticSearch final : public SearchStrategy, public BatchSearchStrategy {
 public:
  /// Throws std::invalid_argument on out-of-range options (population < 2,
  /// elite >= population, mutation/crossover outside [0, 1], ...). `initial`
  /// seeds the first population's first member.
  GeneticSearch(const ParamSpace& space, GeneticOptions opts = {},
                std::optional<Config> initial = std::nullopt,
                ConstraintSet constraints = {});

  // Batch-native interface (the controller's native contract).
  [[nodiscard]] std::vector<Config> propose_batch(std::size_t max_n) override;
  void report_batch(const std::vector<Config>& configs,
                    const std::vector<EvaluationResult>& results) override;

  // Serial facade: chunks of one through the same machinery.
  [[nodiscard]] std::optional<Config> propose() override;
  void report(const Config& c, const EvaluationResult& r) override;

  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override;
  [[nodiscard]] double best_objective() const override;
  [[nodiscard]] std::string name() const override { return "genetic"; }

  /// Completed generations (0 while the initial population evaluates).
  [[nodiscard]] int generation() const noexcept { return generation_; }

 private:
  struct Member {
    Config config;
    double fitness = 0.0;  ///< valid only once evaluated
    bool evaluated = false;
  };

  /// Project through the constraint set and snap to the lattice.
  [[nodiscard]] Config repair(std::vector<double> coords) const;
  void spawn_initial(std::optional<Config> initial);
  void breed_next();
  [[nodiscard]] std::size_t tournament_pick(const std::vector<std::size_t>& order);

  const ParamSpace* space_;
  GeneticOptions opts_;
  ConstraintSet constraints_;
  Rng rng_;

  std::vector<Member> pop_;
  std::size_t cursor_ = 0;            ///< next unproposed member index
  std::deque<std::size_t> in_flight_; ///< proposed members awaiting reports
  int generation_ = 0;
  bool converged_ = false;

  std::optional<Config> best_;
  double best_value_;
};

}  // namespace harmony
