#pragma once

/// \file param_space.hpp
/// An ordered collection of tunable parameters: the search space. Each
/// configuration is a point in this space (paper, Section II). The space
/// provides the continuous-coordinate embedding used by the simplex search,
/// plus utility operations (random points, lattice keys for the evaluation
/// cache, neighbor enumeration for local search).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/parameter.hpp"
#include "core/rng.hpp"
#include "core/types.hpp"

namespace harmony {

class ParamSpace {
 public:
  /// Append a parameter; names must be unique (throws std::invalid_argument).
  ParamSpace& add(Parameter p);

  [[nodiscard]] std::size_t dim() const noexcept { return params_.size(); }
  [[nodiscard]] bool empty() const noexcept { return params_.empty(); }

  [[nodiscard]] const Parameter& param(std::size_t i) const { return params_.at(i); }
  [[nodiscard]] const std::vector<Parameter>& params() const noexcept { return params_; }

  /// Index of the named parameter, or nullopt.
  [[nodiscard]] std::optional<std::size_t> index_of(const std::string& name) const;

  /// All parameter names, in order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Snap a continuous coordinate vector to the nearest valid configuration.
  /// Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Config snap(const std::vector<double>& coords) const;

  /// Continuous coordinates of a configuration.
  [[nodiscard]] std::vector<double> coords(const Config& c) const;

  /// Scratch-reuse variant: fill `out` (resized to dim()) instead of
  /// allocating — hot loops (surrogate queries) pass the same vector back.
  void coords(const Config& c, std::vector<double>& out) const;

  /// Configuration with every parameter at its default value.
  [[nodiscard]] Config default_config() const;

  /// Uniformly random configuration (real params sample the interval).
  [[nodiscard]] Config random_config(Rng& rng) const;

  /// Total number of lattice points, as a double because real scientific
  /// search spaces overflow 64 bits (the paper quotes O(10^100) for the large
  /// PETSc decomposition). Returns +inf when any parameter is continuous.
  [[nodiscard]] double total_points() const;

  /// Canonical string key for the evaluation cache. Two configurations that
  /// snap to the same lattice point share a key.
  [[nodiscard]] std::string key(const Config& c) const;

  /// True when every value is in range and of the right kind.
  [[nodiscard]] bool contains(const Config& c) const;

  /// Lattice neighbors of a configuration: for each discrete parameter, the
  /// configs one step up/down. Real parameters step by `real_step_fraction`
  /// of their range. Used by coordinate descent and local refinement.
  [[nodiscard]] std::vector<Config> neighbors(const Config& c,
                                              double real_step_fraction = 0.05) const;

  /// Look up a value by parameter name (throws std::out_of_range if absent).
  [[nodiscard]] const Value& get(const Config& c, const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const Config& c, const std::string& name) const;
  [[nodiscard]] double get_real(const Config& c, const std::string& name) const;
  [[nodiscard]] const std::string& get_enum(const Config& c,
                                            const std::string& name) const;

  /// Set a value by parameter name (throws on unknown name or invalid value).
  void set(Config& c, const std::string& name, Value v) const;

  /// Human-readable "name=value ..." rendering.
  [[nodiscard]] std::string format(const Config& c) const;

 private:
  std::vector<Parameter> params_;
};

}  // namespace harmony
