#include "core/client.hpp"

#include <sstream>

#include "core/protocol.hpp"

namespace harmony {

bool TuningClient::connect(int port, const std::string& app_name) {
  return connect(port, app_name, net::ConnectOptions{});
}

bool TuningClient::connect(int port, const std::string& app_name,
                           const net::ConnectOptions& retry) {
  socket_ = net::connect_loopback(port, retry);
  if (!socket_.valid()) {
    error_ = "connect failed";
    return false;
  }
  reader_.emplace(socket_);
  ok_ = true;
  const auto reply = transact("HELLO " + app_name);
  return reply.has_value() && expect_ok(*reply);
}

std::optional<std::string> TuningClient::transact(const std::string& line) {
  if (!ok_) return std::nullopt;
  if (!socket_.send_line(line)) {
    ok_ = false;
    error_ = "send failed";
    return std::nullopt;
  }
  auto reply = reader_->read_line();
  if (!reply) {
    ok_ = false;
    error_ = "server closed connection";
    return std::nullopt;
  }
  return reply;
}

bool TuningClient::expect_ok(const std::string& line) {
  if (line.rfind("OK", 0) == 0) return true;
  error_ = line;
  return false;
}

bool TuningClient::add_int(const std::string& name, std::int64_t lo,
                           std::int64_t hi, std::int64_t step) {
  auto p = Parameter::Integer(name, lo, hi, step);
  const auto reply = transact(proto::encode_param(p));
  if (!reply || !expect_ok(*reply)) return false;
  space_.add(std::move(p));
  return true;
}

bool TuningClient::add_real(const std::string& name, double lo, double hi) {
  auto p = Parameter::Real(name, lo, hi);
  const auto reply = transact(proto::encode_param(p));
  if (!reply || !expect_ok(*reply)) return false;
  space_.add(std::move(p));
  return true;
}

bool TuningClient::add_enum(const std::string& name,
                            std::vector<std::string> choices) {
  auto p = Parameter::Enum(name, std::move(choices));
  const auto reply = transact(proto::encode_param(p));
  if (!reply || !expect_ok(*reply)) return false;
  space_.add(std::move(p));
  return true;
}

bool TuningClient::set_strategy(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& options) {
  std::ostringstream os;
  os << "STRATEGY " << name;
  for (const auto& [key, value] : options) os << ' ' << key << '=' << value;
  const auto reply = transact(os.str());
  return reply.has_value() && expect_ok(*reply);
}

std::optional<std::vector<std::string>> TuningClient::strategies() {
  const auto reply = transact("STRATEGY");
  if (!reply) return std::nullopt;
  const auto msg = proto::parse_line(*reply);
  if (!msg || msg->verb != "OK") {
    error_ = *reply;
    return std::nullopt;
  }
  return msg->args;
}

bool TuningClient::start(int max_iterations) {
  std::ostringstream os;
  os << "START " << max_iterations;
  const auto reply = transact(os.str());
  return reply.has_value() && expect_ok(*reply);
}

std::optional<Config> TuningClient::decode_fetch_reply(const std::string& reply) {
  const auto msg = proto::parse_line(reply);
  if (!msg) {
    error_ = "unparseable reply";
    return std::nullopt;
  }
  if (msg->verb == "DONE") return std::nullopt;
  if (msg->verb != "CONFIG") {
    error_ = reply;
    return std::nullopt;
  }
  auto config = proto::decode_config(space_, msg->args);
  if (!config) error_ = "undecodable CONFIG: " + reply;
  return config;
}

std::optional<Config> TuningClient::fetch() {
  const auto reply = transact("FETCH");
  if (!reply) return std::nullopt;
  return decode_fetch_reply(*reply);
}

std::optional<Config> TuningClient::report_and_fetch(double objective) {
  std::ostringstream os;
  os << "REPORT+FETCH " << objective;
  const auto reply = transact(os.str());
  if (!reply) return std::nullopt;
  return decode_fetch_reply(*reply);
}

std::optional<int> TuningClient::batch_limit() {
  const auto reply = transact("BATCH");
  if (!reply) return std::nullopt;
  const auto msg = proto::parse_line(*reply);
  if (!msg || msg->verb != "OK" || msg->args.size() != 2 ||
      msg->args[0] != "batch") {
    error_ = *reply;
    return std::nullopt;
  }
  const auto n = proto::parse_i64(msg->args[1]);
  if (!n || *n < 1) {
    error_ = "bad batch limit: " + *reply;
    return std::nullopt;
  }
  return static_cast<int>(*n);
}

std::optional<std::vector<Config>> TuningClient::report_and_fetch_batch(
    const std::vector<double>& objectives) {
  if (objectives.empty()) return std::vector<Config>{};
  std::ostringstream os;
  os << "BATCH " << objectives.size();
  for (const double v : objectives) os << ' ' << v;
  const auto first = transact(os.str());
  if (!first) return std::nullopt;
  if (first->rfind("ERR", 0) == 0) {
    error_ = *first;
    return std::nullopt;
  }
  // The server answers exactly one line per reported value: CONFIG while
  // candidates remain, DONE from the point the budget runs out.
  std::vector<Config> configs;
  configs.reserve(objectives.size());
  std::string line = *first;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (i > 0) {
      auto next = reader_->read_line();
      if (!next) {
        ok_ = false;
        error_ = "server closed connection";
        return std::nullopt;
      }
      line = std::move(*next);
    }
    const auto msg = proto::parse_line(line);
    if (!msg) {
      error_ = "unparseable reply";
      return std::nullopt;
    }
    if (msg->verb == "DONE") continue;  // keep draining the remaining lines
    if (msg->verb != "CONFIG") {
      error_ = line;
      return std::nullopt;
    }
    auto config = proto::decode_config(space_, msg->args);
    if (!config) {
      error_ = "undecodable CONFIG: " + line;
      return std::nullopt;
    }
    configs.push_back(std::move(*config));
  }
  return configs;
}

bool TuningClient::set_tenant(const std::string& name) {
  const auto reply = transact("TENANT " + name);
  return reply.has_value() && expect_ok(*reply);
}

bool TuningClient::report(double objective) {
  std::ostringstream os;
  os << "REPORT " << objective;
  const auto reply = transact(os.str());
  return reply.has_value() && expect_ok(*reply);
}

std::optional<Config> TuningClient::best() {
  const auto reply = transact("BEST");
  if (!reply) return std::nullopt;
  const auto msg = proto::parse_line(*reply);
  if (!msg || msg->verb != "CONFIG") {
    if (reply) error_ = *reply;
    return std::nullopt;
  }
  return proto::decode_config(space_, msg->args);
}

void TuningClient::bye() {
  if (!ok_) return;
  (void)transact("BYE");
  socket_.close();
  ok_ = false;
}

std::optional<std::string> TuningClient::status_json() {
  auto reply = transact("STATUS");
  if (!reply) return std::nullopt;
  if (reply->rfind("ERR", 0) == 0) {
    error_ = *reply;
    return std::nullopt;
  }
  return reply;
}

std::optional<std::string> TuningClient::metrics_text() {
  auto first = transact("METRICS");
  if (!first) return std::nullopt;
  if (first->rfind("ERR", 0) == 0) {
    error_ = *first;
    return std::nullopt;
  }
  std::string text;
  std::string line = *first;
  // Accumulate exposition lines until the "# EOF" terminator.
  while (line != "# EOF") {
    text += line;
    text += '\n';
    auto next = reader_->read_line();
    if (!next) {
      ok_ = false;
      error_ = "server closed connection";
      return std::nullopt;
    }
    line = *next;
  }
  return text;
}

std::optional<std::vector<std::string>> TuningClient::log_tail(std::size_t n) {
  std::ostringstream os;
  os << "LOG tail " << n;
  const auto reply = transact(os.str());
  if (!reply) return std::nullopt;
  const auto msg = proto::parse_line(*reply);
  if (!msg || msg->verb != "LOG" || msg->args.size() != 1) {
    error_ = *reply;
    return std::nullopt;
  }
  std::size_t count{};
  try {
    count = static_cast<std::size_t>(std::stoull(msg->args[0]));
  } catch (const std::exception&) {
    error_ = "bad LOG count: " + *reply;
    return std::nullopt;
  }
  std::vector<std::string> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto line = reader_->read_line();
    if (!line) {
      ok_ = false;
      error_ = "server closed connection";
      return std::nullopt;
    }
    events.push_back(std::move(*line));
  }
  return events;
}

}  // namespace harmony
