#include "core/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace harmony::net {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
  }
  return *this;
}

void Socket::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

void Socket::shutdown() noexcept {
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool Socket::send_all(const std::string& data) const {
  const int fd = this->fd();
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::send_line(const std::string& line) const {
  return send_all(line + '\n');
}

std::optional<std::string> LineReader::read_line() {
  if (overflowed_) return std::nullopt;  // poisoned: stream no longer framed
  while (true) {
    const auto pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      if (max_line_ != 0 && pos > max_line_) {
        overflowed_ = true;
        buffer_.clear();
        return std::nullopt;
      }
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    // No terminator buffered yet: refuse to accumulate past the limit.
    if (max_line_ != 0 && buffer_.size() > max_line_) {
      overflowed_ = true;
      buffer_.clear();
      return std::nullopt;
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // peer closed
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

ListenResult listen_loopback(int port) {
  ListenResult out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  Socket s(fd);
  const int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return out;
  if (::listen(fd, 16) != 0) return out;

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return out;
  out.port = ntohs(addr.sin_port);
  out.socket = std::move(s);
  return out;
}

Socket accept_connection(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int yes = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket{};
  }
}

Socket connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Socket{};
  }
  const int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  return s;
}

}  // namespace harmony::net
