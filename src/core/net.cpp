#include "core/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace harmony::net {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
  }
  return *this;
}

void Socket::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

void Socket::shutdown() noexcept {
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool Socket::send_all(const char* data, std::size_t size) const {
  const int fd = this->fd();
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::send_line(const std::string& line) const {
  return send_all(line + '\n');
}

bool Socket::set_nonblocking() const noexcept {
  const int fd = this->fd();
  if (fd < 0) return false;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::optional<std::string> LineReader::read_line() {
  std::string line;
  if (!read_line(line)) return std::nullopt;
  return line;
}

bool LineReader::read_line(std::string& out) {
  out.clear();
  if (overflowed_) return false;  // poisoned: stream no longer framed
  while (true) {
    const auto pos = buffer_.find('\n', head_);
    if (pos != std::string::npos) {
      if (max_line_ != 0 && pos - head_ > max_line_) {
        overflowed_ = true;
        buffer_.clear();
        head_ = 0;
        return false;
      }
      std::size_t len = pos - head_;
      if (len > 0 && buffer_[head_ + len - 1] == '\r') --len;
      out.assign(buffer_, head_, len);
      head_ = pos + 1;
      // Compact lazily: drop the consumed prefix only once everything
      // buffered has been handed out, so pipelined bursts stay O(bytes).
      if (head_ == buffer_.size()) {
        buffer_.clear();
        head_ = 0;
      }
      return true;
    }
    if (head_ > 0) {
      buffer_.erase(0, head_);
      head_ = 0;
    }
    // No terminator buffered yet: refuse to accumulate past the limit.
    if (max_line_ != 0 && buffer_.size() > max_line_) {
      overflowed_ = true;
      buffer_.clear();
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void ByteRing::append(const char* data, std::size_t n) {
  if (n == 0) return;
  if (count_ + n > buf_.size()) {
    // Grow: re-linearize into a fresh block (rare; capacity then persists).
    std::vector<char> grown(std::max<std::size_t>(1024, (count_ + n) * 2));
    iovec iov[2];
    const int segs = drain_iov(iov);
    std::size_t at = 0;
    for (int i = 0; i < segs; ++i) {
      std::memcpy(grown.data() + at, iov[i].iov_base, iov[i].iov_len);
      at += iov[i].iov_len;
    }
    buf_ = std::move(grown);
    head_ = 0;
  }
  const std::size_t tail = (head_ + count_) % buf_.size();
  const std::size_t first = std::min(n, buf_.size() - tail);
  std::memcpy(buf_.data() + tail, data, first);
  if (first < n) std::memcpy(buf_.data(), data + first, n - first);
  count_ += n;
}

int ByteRing::drain_iov(struct iovec* iov) const {
  if (count_ == 0) return 0;
  const std::size_t first = std::min(count_, buf_.size() - head_);
  iov[0].iov_base = const_cast<char*>(buf_.data() + head_);
  iov[0].iov_len = first;
  if (first == count_) return 1;
  iov[1].iov_base = const_cast<char*>(buf_.data());
  iov[1].iov_len = count_ - first;
  return 2;
}

void ByteRing::consume(std::size_t n) {
  n = std::min(n, count_);
  count_ -= n;
  head_ = count_ == 0 ? 0 : (head_ + n) % buf_.size();
}

void ByteRing::shrink(std::size_t max_capacity) {
  if (buf_.size() <= max_capacity || count_ > max_capacity) return;
  if (count_ == 0 && max_capacity == 0) {
    std::vector<char>().swap(buf_);
    head_ = 0;
    return;
  }
  std::vector<char> packed(std::max(max_capacity, count_));
  iovec iov[2];
  const int segs = drain_iov(iov);
  std::size_t at = 0;
  for (int i = 0; i < segs; ++i) {
    std::memcpy(packed.data() + at, iov[i].iov_base, iov[i].iov_len);
    at += iov[i].iov_len;
  }
  buf_ = std::move(packed);
  head_ = 0;
}

ListenResult listen_loopback(int port) {
  ListenResult out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  Socket s(fd);
  const int yes = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return out;
  // SOMAXCONN, not a small constant: a burst of simultaneous connects past
  // the backlog gets its SYNs dropped, and the 1 s TCP retransmit timer then
  // dwarfs any amount of server-side efficiency.
  if (::listen(fd, SOMAXCONN) != 0) return out;

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return out;
  out.port = ntohs(addr.sin_port);
  out.socket = std::move(s);
  return out;
}

Socket accept_connection(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int yes = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket{};
  }
}

namespace {

/// One connect attempt. timeout_ms > 0 runs a non-blocking connect bounded
/// by poll() and restores blocking mode on success.
Socket connect_once(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));

  if (timeout_ms > 0) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      return Socket{};
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) return Socket{};
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int r;
      do {
        r = ::poll(&pfd, 1, timeout_ms);
      } while (r < 0 && errno == EINTR);
      if (r <= 0) return Socket{};  // timeout or poll error
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        return Socket{};
      }
    }
    if (::fcntl(fd, F_SETFL, flags) != 0) return Socket{};
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Socket{};
  }
  const int yes = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
  return s;
}

}  // namespace

Socket connect_loopback(int port) { return connect_once(port, 0); }

Socket connect_loopback(int port, const ConnectOptions& opts) {
  int backoff = std::max(0, opts.backoff_ms);
  const int attempts = std::max(1, opts.attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff > 0) {
      ::poll(nullptr, 0, backoff);  // interruption-tolerant sleep
      backoff = std::min(backoff * 2, std::max(backoff, opts.max_backoff_ms));
    }
    Socket s = connect_once(port, opts.timeout_ms);
    if (s.valid()) return s;
  }
  return Socket{};
}

}  // namespace harmony::net
