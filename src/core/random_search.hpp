#pragma once

/// \file random_search.hpp
/// Uniform random sampling baseline. Used in ablation benches to show what
/// the simplex search buys over naive exploration.

#include <optional>

#include "core/rng.hpp"
#include "core/strategy.hpp"

namespace harmony {

class RandomSearch final : public SearchStrategy {
 public:
  RandomSearch(const ParamSpace& space, int max_samples, std::uint64_t seed = 1);

  [[nodiscard]] std::optional<Config> propose() override;
  void report(const Config& c, const EvaluationResult& r) override;
  [[nodiscard]] bool converged() const override;
  [[nodiscard]] std::optional<Config> best() const override;
  [[nodiscard]] double best_objective() const override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  const ParamSpace* space_;
  Rng rng_;
  int max_samples_;
  int proposed_ = 0;
  std::optional<Config> best_;
  double best_value_;
};

}  // namespace harmony
