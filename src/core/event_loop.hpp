#pragma once

/// \file event_loop.hpp
/// A minimal epoll reactor for the tuning server's event-driven mode. One
/// EventLoop owns one epoll instance and runs on one thread; the server
/// starts N of them and spreads connections across the loops, so the whole
/// serving stack runs on a fixed, small thread count regardless of how many
/// clients are connected (contrast the legacy thread-per-connection mode).
///
/// Threading contract: add()/modify()/remove() and the registered callbacks
/// are loop-thread-only. The thread-safe surface is stop(), wakeup() and
/// defer(fn) — defer enqueues a closure that the loop thread runs on its
/// next iteration (an eventfd wakes the loop if it is blocked in
/// epoll_wait). That is how the acceptor hands fresh connections to another
/// loop and how stop tears everything down from outside.
///
/// Observability: when AH_OBS is on, each iteration records the ready-queue
/// depth into `net.loop.ready` and counts `net.loop.iterations`, and every
/// deferred closure's queue residency (defer() enqueue to drain) lands in
/// the `net.loop.defer_wait_s` HDR histogram; connection byte counters are
/// maintained by the server's connection handlers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace harmony::net {

class EventLoop {
 public:
  /// Callback for descriptor readiness; receives the epoll event mask.
  using FdCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd could not be created.
  [[nodiscard]] bool ok() const noexcept { return epoll_fd_ >= 0; }

  // ---- loop-thread-only surface -------------------------------------------

  /// Register `fd` for `events` (EPOLLIN | EPOLLOUT | ...). The callback is
  /// invoked from run() whenever the descriptor is ready.
  [[nodiscard]] bool add(int fd, std::uint32_t events, FdCallback cb);

  /// Change the interest mask of a registered descriptor.
  [[nodiscard]] bool modify(int fd, std::uint32_t events);

  /// Deregister; safe to call from the descriptor's own callback.
  void remove(int fd);

  /// Block in epoll_wait dispatching callbacks until stop().
  void run();

  // ---- thread-safe surface ------------------------------------------------

  /// Ask the loop to exit; wakes it if blocked. Idempotent.
  void stop();

  /// Run `fn` on the loop thread during its next iteration.
  void defer(std::function<void()> fn);

  /// Force an epoll_wait wakeup (defer/stop call this internally).
  void wakeup();

  /// Registered descriptor count (loop thread, for tests/diagnostics).
  [[nodiscard]] std::size_t watched() const noexcept { return callbacks_.size(); }

 private:
  void drain_deferred();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd used by wakeup()
  std::atomic<bool> stop_{false};
  std::unordered_map<int, std::shared_ptr<FdCallback>> callbacks_;
  std::mutex deferred_mutex_;
  // Enqueue timestamp rides along so drain can record queue residency; it is
  // only taken when observability is on (epoch otherwise, skipped at drain).
  struct Deferred {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };
  std::vector<Deferred> deferred_;
};

}  // namespace harmony::net
