#pragma once

/// \file event_loop.hpp
/// A minimal epoll reactor for the tuning server's event-driven mode. One
/// EventLoop owns one epoll instance and runs on one thread; the server
/// starts N of them and spreads connections across the loops, so the whole
/// serving stack runs on a fixed, small thread count regardless of how many
/// clients are connected (contrast the legacy thread-per-connection mode).
///
/// Threading contract: add()/modify()/remove() and the registered callbacks
/// are loop-thread-only. The thread-safe surface is stop(), wakeup() and
/// defer(fn) — defer enqueues a closure that the loop thread runs on its
/// next iteration (an eventfd wakes the loop if it is blocked in
/// epoll_wait). That is how the acceptor hands fresh connections to another
/// loop and how stop tears everything down from outside.
///
/// Observability: when AH_OBS is on, each iteration records the ready-queue
/// depth into `net.loop.ready` and counts `net.loop.iterations`, and every
/// deferred closure's queue residency (defer() enqueue to drain) lands in
/// the `net.loop.defer_wait_s` HDR histogram; connection byte counters are
/// maintained by the server's connection handlers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace harmony::net {

/// Coarse hashed timer wheel for idle-session reaping. Single-threaded (it
/// lives inside one reactor shard and is only touched from that shard's
/// thread). Time is measured in abstract ticks — the owner advances the
/// wheel from its periodic tick callback, so the resolution is whatever the
/// loop's tick interval is; deadlines land in `slots` hash buckets and an
/// entry whose bucket comes up early (deadline more than `slots` ticks out)
/// is lazily re-bucketed instead of fired. schedule() on a live key moves
/// its deadline; cancel() is O(1) (the stale bucket entry is skipped when
/// its bucket is swept).
class TimerWheel {
 public:
  explicit TimerWheel(std::size_t slots = 128)
      : buckets_(slots > 0 ? slots : 1) {}

  /// Current tick count (monotonic, starts at 0).
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  /// Live (scheduled, not yet fired or cancelled) entries.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// (Re)arm `key` to expire `delay_ticks` from now (clamped to >= 1).
  void schedule(int key, std::uint64_t delay_ticks) {
    const std::uint64_t deadline = now_ + std::max<std::uint64_t>(1, delay_ticks);
    auto [it, inserted] = entries_.insert_or_assign(key, deadline);
    (void)it;
    (void)inserted;
    buckets_[deadline % buckets_.size()].push_back(key);
  }

  /// Disarm `key`; safe when not scheduled.
  void cancel(int key) { entries_.erase(key); }

  /// Advance one tick and invoke `expired(key)` for every entry now due.
  /// The callback may schedule()/cancel() freely (including re-arming the
  /// fired key — how the server snoozes a session that was active since its
  /// deadline was set).
  template <typename Fn>
  void advance(Fn&& expired) {
    ++now_;
    auto& bucket = buckets_[now_ % buckets_.size()];
    if (bucket.empty()) return;
    std::vector<int> keys;
    keys.swap(bucket);
    for (const int key : keys) {
      const auto it = entries_.find(key);
      if (it == entries_.end()) continue;  // cancelled (or already fired)
      if (it->second <= now_) {
        entries_.erase(it);
        expired(key);
      } else {
        // Re-bucket: the deadline is in a future lap of the wheel (or the
        // entry was re-armed since this bucket entry was pushed).
        buckets_[it->second % buckets_.size()].push_back(key);
      }
    }
  }

 private:
  std::vector<std::vector<int>> buckets_;
  std::unordered_map<int, std::uint64_t> entries_;  ///< key -> deadline tick
  std::uint64_t now_ = 0;
};

class EventLoop {
 public:
  /// Callback for descriptor readiness; receives the epoll event mask.
  using FdCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd could not be created.
  [[nodiscard]] bool ok() const noexcept { return epoll_fd_ >= 0; }

  // ---- loop-thread-only surface -------------------------------------------

  /// Register `fd` for `events` (EPOLLIN | EPOLLOUT | ...). The callback is
  /// invoked from run() whenever the descriptor is ready.
  [[nodiscard]] bool add(int fd, std::uint32_t events, FdCallback cb);

  /// Change the interest mask of a registered descriptor.
  [[nodiscard]] bool modify(int fd, std::uint32_t events);

  /// Deregister; safe to call from the descriptor's own callback.
  void remove(int fd);

  /// Install a periodic tick: run() calls `fn` on the loop thread roughly
  /// every `interval_ms` (coarse — epoll_wait timeout resolution, and a
  /// busy loop checks between event batches). Call before run(); the server
  /// drives its timer wheel, backpressure resume sweep and buffer
  /// compaction off this. interval_ms <= 0 disables the tick (the loop goes
  /// back to blocking indefinitely).
  void set_tick(int interval_ms, std::function<void()> fn);

  /// Block in epoll_wait dispatching callbacks until stop().
  void run();

  // ---- thread-safe surface ------------------------------------------------

  /// Ask the loop to exit; wakes it if blocked. Idempotent.
  void stop();

  /// Run `fn` on the loop thread during its next iteration.
  void defer(std::function<void()> fn);

  /// Force an epoll_wait wakeup (defer/stop call this internally).
  void wakeup();

  /// Registered descriptor count (loop thread, for tests/diagnostics).
  [[nodiscard]] std::size_t watched() const noexcept { return callbacks_.size(); }

 private:
  void drain_deferred();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd used by wakeup()
  int tick_ms_ = 0;   ///< 0 = no tick, epoll_wait blocks indefinitely
  std::function<void()> tick_fn_;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, std::shared_ptr<FdCallback>> callbacks_;
  std::mutex deferred_mutex_;
  // Enqueue timestamp rides along so drain can record queue residency; it is
  // only taken when observability is on (epoch otherwise, skipped at drain).
  struct Deferred {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };
  std::vector<Deferred> deferred_;
};

}  // namespace harmony::net
