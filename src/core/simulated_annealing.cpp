#include "core/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace harmony {

SimulatedAnnealing::SimulatedAnnealing(const ParamSpace& space,
                                       AnnealingOptions opts,
                                       std::optional<Config> initial)
    : space_(&space),
      opts_(opts),
      rng_(opts.seed),
      current_(initial.value_or(space.default_config())),
      current_value_(std::numeric_limits<double>::infinity()),
      temperature_(opts.initial_temperature),
      best_value_(std::numeric_limits<double>::infinity()) {
  if (opts.max_evaluations < 1) {
    throw std::invalid_argument("SimulatedAnnealing: max_evaluations < 1");
  }
}

Config SimulatedAnnealing::perturb(const Config& c) {
  const auto timer = obs::time_scope("sa.perturb_s");
  auto coords = space_->coords(c);
  // Move a random subset of dimensions by a Gaussian step.
  bool moved = false;
  for (int attempt = 0; attempt < 8 && !moved; ++attempt) {
    for (std::size_t i = 0; i < coords.size(); ++i) {
      if (rng_.uniform() > 1.5 / static_cast<double>(coords.size())) continue;
      const auto& p = space_->param(i);
      const double range = p.coord_max() - p.coord_min();
      if (range <= 0) continue;
      const double step =
          std::max(opts_.neighbor_fraction * range, 1.0) * rng_.normal();
      coords[i] = std::clamp(coords[i] + step, p.coord_min(), p.coord_max());
      moved = true;
    }
  }
  return space_->snap(coords);
}

std::optional<Config> SimulatedAnnealing::propose() {
  if (evaluations_ >= opts_.max_evaluations) return std::nullopt;
  if (pending_) return pending_;
  pending_ = current_evaluated_ ? perturb(current_) : current_;
  return pending_;
}

void SimulatedAnnealing::report(const Config& c, const EvaluationResult& r) {
  if (!pending_) throw std::logic_error("SimulatedAnnealing::report without propose");
  pending_.reset();
  ++evaluations_;
  obs::count("sa.evaluations");
  const double value =
      r.valid ? r.objective : std::numeric_limits<double>::infinity();
  if (r.valid && value < best_value_) {
    best_value_ = value;
    best_ = c;
    obs::count("sa.improvements");
  }
  if (!current_evaluated_) {
    current_evaluated_ = true;
    current_value_ = value;
    if (r.valid && !temperature_calibrated_) {
      // Scale the temperature to the magnitude of the objective so the
      // acceptance rule behaves the same for seconds and milliseconds.
      temperature_ = opts_.initial_temperature * std::max(std::abs(value), 1e-12);
      temperature_calibrated_ = true;
    }
    return;
  }
  const double delta = value - current_value_;
  bool accept = delta <= 0.0;
  if (!accept && std::isfinite(delta) && temperature_ > 0.0) {
    accept = rng_.uniform() < std::exp(-delta / temperature_);
    if (accept) obs::count("sa.uphill_accepts");
  }
  if (accept) {
    current_ = c;
    current_value_ = value;
    obs::count("sa.accepts");
  } else {
    obs::count("sa.rejects");
  }
  temperature_ *= opts_.cooling;
  obs::gauge_set("sa.temperature", temperature_);
}

bool SimulatedAnnealing::converged() const {
  return evaluations_ >= opts_.max_evaluations;
}

std::optional<Config> SimulatedAnnealing::best() const { return best_; }

double SimulatedAnnealing::best_objective() const { return best_value_; }

}  // namespace harmony
