#pragma once

/// \file constraint.hpp
/// Dependent-variable handling (paper Section II footnote 2, citing the
/// authors' SC'04 techniques). Raw search spaces for data decomposition are
/// astronomically large — O(10^100) for the big PETSc matrix — because most
/// raw points violate structural relations such as "partition boundaries must
/// be strictly increasing". A Constraint projects an arbitrary coordinate
/// vector onto the feasible subspace before snapping, so the simplex only
/// ever evaluates feasible configurations, and can additionally assess a
/// penalty for soft violations.

#include <functional>
#include <memory>
#include <vector>

#include "core/param_space.hpp"
#include "core/types.hpp"

namespace harmony {

class Constraint {
 public:
  virtual ~Constraint() = default;

  /// Project continuous coordinates onto the feasible region (in place).
  virtual void project(const ParamSpace& space, std::vector<double>& coords) const = 0;

  /// Soft penalty added to the objective for a snapped configuration;
  /// 0 when fully feasible.
  [[nodiscard]] virtual double penalty(const ParamSpace& space,
                                       const Config& c) const {
    (void)space;
    (void)c;
    return 0.0;
  }
};

/// Requires a contiguous block of integer parameters [first, first+n) to be
/// strictly increasing with a minimum gap (in native units). Projection sorts
/// the block and then spreads ties/violations apart while staying in range.
/// This is exactly the shape of the PETSc row-decomposition boundaries.
class MonotoneConstraint final : public Constraint {
 public:
  MonotoneConstraint(std::size_t first, std::size_t n, double min_gap = 1.0);

  void project(const ParamSpace& space, std::vector<double>& coords) const override;
  [[nodiscard]] double penalty(const ParamSpace& space, const Config& c) const override;

 private:
  std::size_t first_;
  std::size_t n_;
  double min_gap_;
};

/// Requires the product of two integer parameters to equal a constant
/// (e.g. nodes * procs_per_node == total CPUs in the POP topology study).
/// Projection fixes the second coordinate from the first.
class ProductConstraint final : public Constraint {
 public:
  ProductConstraint(std::size_t a, std::size_t b, std::int64_t product);

  void project(const ParamSpace& space, std::vector<double>& coords) const override;
  [[nodiscard]] double penalty(const ParamSpace& space, const Config& c) const override;

 private:
  std::size_t a_;
  std::size_t b_;
  std::int64_t product_;
};

/// Wraps an arbitrary projection function.
class FunctionConstraint final : public Constraint {
 public:
  using ProjectFn = std::function<void(const ParamSpace&, std::vector<double>&)>;
  using PenaltyFn = std::function<double(const ParamSpace&, const Config&)>;

  explicit FunctionConstraint(ProjectFn project, PenaltyFn penalty = {});

  void project(const ParamSpace& space, std::vector<double>& coords) const override;
  [[nodiscard]] double penalty(const ParamSpace& space, const Config& c) const override;

 private:
  ProjectFn project_;
  PenaltyFn penalty_;
};

/// Ordered list of constraints applied in sequence.
class ConstraintSet {
 public:
  ConstraintSet& add(std::shared_ptr<const Constraint> c);

  void project(const ParamSpace& space, std::vector<double>& coords) const;
  [[nodiscard]] double penalty(const ParamSpace& space, const Config& c) const;
  [[nodiscard]] bool empty() const noexcept { return constraints_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return constraints_.size(); }

 private:
  std::vector<std::shared_ptr<const Constraint>> constraints_;
};

}  // namespace harmony
