#pragma once

/// \file pop_model.hpp
/// End-to-end simulated step time for the POP ocean model, composing the
/// grid/block decomposition, the runtime-parameter multipliers, the I/O
/// model and a Machine. One simulated "step" covers:
///
///   baroclinic 3-D update  — per-rank ocean-point work (momentum + tracer +
///                            equation-of-state shares scaled by the tuned
///                            multipliers) + per-block loop overhead
///   2-D halo exchange      — block-perimeter traffic split intra/inter node
///                            by the block->rank->node layout
///   barotropic 2-D solver  — fixed iteration count, one global reduction
///                            per iteration (this is POP's scaling bottleneck)
///   surface forcing        — interpolation work scaled by the interp params
///   history I/O            — amortized per step via IoModel
///
/// The knobs are exactly the paper's: block size (Fig. 4), node topology
/// (CPUs per node), and the namelist parameters (Tables I/II).

#include "minipop/blocks.hpp"
#include "minipop/grid.hpp"
#include "minipop/io_model.hpp"
#include "minipop/pop_params.hpp"
#include "simcluster/machine.hpp"

namespace minipop {

struct PopCostModel {
  double ref_flops_per_s = 1.5e9;
  double flops_per_point_level = 130.0;  ///< baroclinic work per 3-D point
  double momentum_share = 0.25;
  double tracer_share = 0.30;
  double state_share = 0.12;
  double other_share = 0.33;             ///< advection/metrics, untunable
  double block_overhead_flops = 3.0e4;   ///< per block per level per step
  int barotropic_iterations = 30;
  double barotropic_flops_per_point = 14.0;
  double forcing_flops_per_point = 24.0;  ///< surface points only
  double bytes_per_value = 8.0;
  int halo_exchanges_per_step = 24;       ///< momentum + tracers x substeps
  int ghost_width = 2;                    ///< halo depth in grid points
  double history_fields = 5.0;            ///< surface fields per snapshot
  int io_interval_steps = 1024;           ///< snapshots amortized over steps
};

struct PopStepReport {
  double total_s = 0.0;
  double baroclinic_s = 0.0;
  double halo_s = 0.0;
  double barotropic_s = 0.0;
  double forcing_s = 0.0;
  double io_s = 0.0;
  double imbalance = 1.0;
};

class PopModel {
 public:
  PopModel(const PopGrid& grid, PopCostModel cost = {}, IoModel io = {});

  /// Simulated time of one step on `machine` using all its CPUs as ranks.
  /// `ppn` is taken from the machine's first node group via rank layout.
  [[nodiscard]] PopStepReport step_time(
      const simcluster::Machine& machine, int ranks_per_node, BlockShape block,
      const PhaseMultipliers& mult,
      Distribution dist = Distribution::Cartesian) const;

  /// Simulated time of a run of `steps` steps.
  [[nodiscard]] double run_time(const simcluster::Machine& machine,
                                int ranks_per_node, BlockShape block,
                                const PhaseMultipliers& mult, int steps,
                                Distribution dist = Distribution::Cartesian) const;

  [[nodiscard]] const PopGrid& grid() const noexcept { return *grid_; }
  [[nodiscard]] const PopCostModel& cost() const noexcept { return cost_; }
  [[nodiscard]] const IoModel& io() const noexcept { return io_; }

 private:
  const PopGrid* grid_;
  PopCostModel cost_;
  IoModel io_;
};

}  // namespace minipop
