#include "minipop/pop_params.hpp"

#include <algorithm>
#include <stdexcept>

namespace minipop {

const std::vector<PopParamSpec>& parameter_table() {
  // Defaults follow Table II's "Default" column for the first twelve
  // parameters (num_iotasks excluded — it is the integer parameter). The
  // remaining parameters ship with their fastest value as default.
  static const std::vector<PopParamSpec> table = {
      {"hmix_momentum_choice", PopPhase::Momentum,
       {"anis", "del2", "del4"}, {1.33, 1.00, 1.13}, 0},
      {"hmix_tracer_choice", PopPhase::Tracer,
       {"gent", "del2", "del4"}, {1.26, 1.00, 1.10}, 0},
      {"kappa_choice", PopPhase::Tracer,
       {"constant", "variable"}, {1.065, 1.00}, 0},
      {"slope_control_choice", PopPhase::Tracer,
       {"notanh", "tanh", "clip"}, {1.052, 1.12, 1.00}, 0},
      {"hmix_alignment_choice", PopPhase::Momentum,
       {"east", "flow", "grid"}, {1.04, 1.08, 1.00}, 0},
      {"state_choice", PopPhase::State,
       {"jmcd", "mwjf", "polynomial", "linear"}, {1.13, 1.09, 1.04, 1.00}, 0},
      {"state_range_opt", PopPhase::State,
       {"ignore", "check", "enforce"}, {1.026, 1.08, 1.00}, 0},
      {"ws_interp_type", PopPhase::Forcing,
       {"nearest", "linear", "4point"}, {1.033, 1.016, 1.00}, 0},
      {"shf_interp_type", PopPhase::Forcing,
       {"nearest", "linear", "4point"}, {1.033, 1.016, 1.00}, 0},
      {"sfwf_interp_type", PopPhase::Forcing,
       {"nearest", "linear", "4point"}, {1.033, 1.016, 1.00}, 0},
      {"ap_interp_type", PopPhase::Forcing,
       {"nearest", "linear", "4point"}, {1.033, 1.016, 1.00}, 0},
      // Parameters already at their fastest default; tuning should not move
      // them (and moving them costs time, which the search must discover).
      {"convection_type", PopPhase::Tracer,
       {"diffusion", "adjustment"}, {1.00, 1.06}, 0},
      {"tadvect_ctype", PopPhase::Tracer,
       {"centered", "upwind3"}, {1.00, 1.12}, 0},
      {"sw_absorption_type", PopPhase::Forcing,
       {"top-layer", "jerlov"}, {1.00, 1.05}, 0},
      {"chl_option", PopPhase::Forcing,
       {"file", "model"}, {1.00, 1.10}, 0},
      {"luse_form_drag", PopPhase::Momentum,
       {"off", "on"}, {1.00, 1.12}, 0},
      {"partial_bottom_cells", PopPhase::Tracer,
       {"off", "on"}, {1.00, 1.06}, 0},
      {"topostress", PopPhase::Momentum,
       {"off", "on"}, {1.00, 1.05}, 0},
      {"lmix_surface", PopPhase::Momentum,
       {"kpp", "const"}, {1.00, 1.04}, 0},
  };
  return table;
}

harmony::ParamSpace make_param_space(int max_iotasks) {
  if (max_iotasks < 1) throw std::invalid_argument("make_param_space: bad iotasks");
  harmony::ParamSpace space;
  space.add(harmony::Parameter::Integer("num_iotasks", 1, max_iotasks));
  for (const auto& spec : parameter_table()) {
    space.add(harmony::Parameter::Enum(spec.name, spec.choices));
  }
  return space;
}

harmony::Config default_config(const harmony::ParamSpace& space) {
  harmony::Config c = space.default_config();
  space.set(c, "num_iotasks", std::int64_t{1});
  for (const auto& spec : parameter_table()) {
    space.set(c, spec.name, spec.choices[static_cast<std::size_t>(spec.default_index)]);
  }
  return c;
}

PhaseMultipliers evaluate_multipliers(const harmony::ParamSpace& space,
                                      const harmony::Config& c) {
  PhaseMultipliers m;
  m.num_iotasks = static_cast<int>(space.get_int(c, "num_iotasks"));
  for (const auto& spec : parameter_table()) {
    const std::string& choice = space.get_enum(c, spec.name);
    const auto it = std::find(spec.choices.begin(), spec.choices.end(), choice);
    if (it == spec.choices.end()) {
      throw std::invalid_argument("evaluate_multipliers: bad choice for " + spec.name);
    }
    const double mult =
        spec.multipliers[static_cast<std::size_t>(it - spec.choices.begin())];
    switch (spec.phase) {
      case PopPhase::Momentum: m.momentum *= mult; break;
      case PopPhase::Tracer: m.tracer *= mult; break;
      case PopPhase::State: m.state *= mult; break;
      case PopPhase::Forcing: m.forcing *= mult; break;
      case PopPhase::Io: break;
    }
  }
  return m;
}

PhaseMultipliers best_multipliers() {
  PhaseMultipliers m;
  m.num_iotasks = 0;  // not meaningful here
  for (const auto& spec : parameter_table()) {
    const double best = *std::min_element(spec.multipliers.begin(),
                                          spec.multipliers.end());
    switch (spec.phase) {
      case PopPhase::Momentum: m.momentum *= best; break;
      case PopPhase::Tracer: m.tracer *= best; break;
      case PopPhase::State: m.state *= best; break;
      case PopPhase::Forcing: m.forcing *= best; break;
      case PopPhase::Io: break;
    }
  }
  return m;
}

}  // namespace minipop
