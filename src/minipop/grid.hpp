#pragma once

/// \file grid.hpp
/// The POP global ocean grid: nx x ny surface points with a land mask and a
/// fixed number of depth levels. The paper's production case is the
/// 3600 x 2400 (0.1 degree) grid. We have no access to the real bathymetry
/// dataset, so the mask is a deterministic synthetic continent function with
/// a comparable ocean fraction (~70%); what the block-size experiment needs
/// from the mask is only that land is *spatially coherent* (whole blocks can
/// be all-land), which the synthetic continents preserve.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace minipop {

class PopGrid {
 public:
  PopGrid(int nx, int ny, int depth_levels = 40);

  [[nodiscard]] int nx() const noexcept { return nx_; }
  [[nodiscard]] int ny() const noexcept { return ny_; }
  [[nodiscard]] int depth_levels() const noexcept { return kz_; }

  /// True when the point is ocean (computable, deterministic).
  [[nodiscard]] bool is_ocean(int i, int j) const;

  /// Number of ocean points in the rectangle [i0,i1) x [j0,j1), computed
  /// from a precomputed coarse prefix-sum of the mask (O(1) per query; the
  /// block decomposition only needs ocean fractions, not point-exact
  /// counts).
  [[nodiscard]] std::int64_t ocean_points_in(int i0, int i1, int j0, int j1) const;

  /// Whole-grid ocean fraction estimate.
  [[nodiscard]] double ocean_fraction() const;

  /// The paper's production grid.
  [[nodiscard]] static PopGrid production() { return PopGrid(3600, 2400); }

 private:
  /// Prefix-sum lookup over the coarse mask (stride_ x stride_ cells).
  [[nodiscard]] double coarse_sum(double ci, double cj) const;

  int nx_;
  int ny_;
  int kz_;
  int stride_ = 4;
  int cnx_ = 0;
  int cny_ = 0;
  std::vector<std::int64_t> prefix_;  // (cnx_+1) x (cny_+1), row-major in j
};

}  // namespace minipop
