#pragma once

/// \file io_model.hpp
/// Parallel-I/O cost model for POP history/restart output, controlled by the
/// num_iotasks namelist parameter the paper tunes (Table I changes it 1->32
/// on the first iteration; Table II settles on 4). The model is the classic
/// convex tradeoff: more I/O tasks divide the write volume but add per-task
/// coordination cost, so an intermediate task count wins:
///
///   t(n) = coordination_s * n + volume / (n * per_task_bandwidth)
///
/// capped by the number of ranks actually available.

namespace minipop {

struct IoModel {
  double per_task_bandwidth_Bps = 60.0e6;  ///< GPFS-era per-writer stream
  double coordination_s = 0.35;            ///< per-task gather/metadata cost
  double base_overhead_s = 0.5;            ///< file open/close etc.

  /// Time to write `volume_bytes` using `num_iotasks` of `nranks` ranks.
  /// Throws std::invalid_argument on non-positive arguments.
  [[nodiscard]] double write_time(double volume_bytes, int num_iotasks,
                                  int nranks) const;

  /// Task count minimizing write_time (continuous optimum, clamped).
  [[nodiscard]] int optimal_tasks(double volume_bytes, int nranks) const;
};

}  // namespace minipop
