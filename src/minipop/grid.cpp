#include "minipop/grid.hpp"

#include <algorithm>
#include <cmath>

namespace minipop {

PopGrid::PopGrid(int nx, int ny, int depth_levels) : nx_(nx), ny_(ny), kz_(depth_levels) {
  if (nx < 1 || ny < 1 || depth_levels < 1) {
    throw std::invalid_argument("PopGrid: bad shape");
  }
  // Precompute a coarse prefix-sum of the mask so rectangle queries are O(1).
  stride_ = std::max(1, std::min(nx_, ny_) / 600);
  cnx_ = (nx_ + stride_ - 1) / stride_;
  cny_ = (ny_ + stride_ - 1) / stride_;
  prefix_.assign(static_cast<std::size_t>(cnx_ + 1) * (cny_ + 1), 0);
  for (int cj = 0; cj < cny_; ++cj) {
    for (int ci = 0; ci < cnx_; ++ci) {
      const int i = std::min(nx_ - 1, ci * stride_ + stride_ / 2);
      const int j = std::min(ny_ - 1, cj * stride_ + stride_ / 2);
      const std::int64_t cell = is_ocean(i, j) ? 1 : 0;
      const auto at = [this](int a, int b) -> std::int64_t& {
        return prefix_[static_cast<std::size_t>(b) * (cnx_ + 1) + a];
      };
      at(ci + 1, cj + 1) = cell + at(ci, cj + 1) + at(ci + 1, cj) - at(ci, cj);
    }
  }
}

double PopGrid::coarse_sum(double ci, double cj) const {
  // Bilinear interpolation of the prefix sum at fractional coarse coords.
  const double cx = std::clamp(ci, 0.0, static_cast<double>(cnx_));
  const double cy = std::clamp(cj, 0.0, static_cast<double>(cny_));
  const int i0 = static_cast<int>(cx);
  const int j0 = static_cast<int>(cy);
  const int i1 = std::min(i0 + 1, cnx_);
  const int j1 = std::min(j0 + 1, cny_);
  const double fx = cx - i0;
  const double fy = cy - j0;
  const auto at = [this](int a, int b) {
    return static_cast<double>(
        prefix_[static_cast<std::size_t>(b) * (cnx_ + 1) + a]);
  };
  const double top = at(i0, j0) * (1 - fx) + at(i1, j0) * fx;
  const double bot = at(i0, j1) * (1 - fx) + at(i1, j1) * fx;
  return top * (1 - fy) + bot * fy;
}

bool PopGrid::is_ocean(int i, int j) const {
  if (i < 0 || i >= nx_ || j < 0 || j >= ny_) {
    throw std::out_of_range("PopGrid::is_ocean");
  }
  // Smooth deterministic "continents": a few long-wavelength bumps. Land
  // where the field exceeds a threshold tuned for ~30% land.
  const double x = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(nx_);
  const double y = M_PI * (static_cast<double>(j) / static_cast<double>(ny_) - 0.5);
  const double field = 0.55 * std::sin(2.0 * x + 1.3) * std::cos(1.7 * y) +
                       0.45 * std::sin(3.0 * x - 0.7) * std::sin(2.3 * y + 0.4) +
                       0.35 * std::cos(x * 5.0 + y * 2.0) +
                       0.25 * std::cos(7.0 * x - 3.1 * y);
  // Polar caps are land (Antarctica-like band at the south).
  if (j < ny_ / 20) return false;
  return field < 0.55;
}

std::int64_t PopGrid::ocean_points_in(int i0, int i1, int j0, int j1) const {
  if (i0 < 0 || i1 > nx_ || j0 < 0 || j1 > ny_ || i0 > i1 || j0 > j1) {
    throw std::invalid_argument("ocean_points_in: bad rectangle");
  }
  const std::int64_t total =
      static_cast<std::int64_t>(i1 - i0) * static_cast<std::int64_t>(j1 - j0);
  if (total == 0) return 0;

  const double s = stride_;
  const double cells = coarse_sum(i1 / s, j1 / s) - coarse_sum(i0 / s, j1 / s) -
                       coarse_sum(i1 / s, j0 / s) + coarse_sum(i0 / s, j0 / s);
  const double points = cells * s * s;
  return std::min<std::int64_t>(total,
                                static_cast<std::int64_t>(std::llround(points)));
}

double PopGrid::ocean_fraction() const {
  return static_cast<double>(ocean_points_in(0, nx_, 0, ny_)) /
         (static_cast<double>(nx_) * static_cast<double>(ny_));
}

}  // namespace minipop
