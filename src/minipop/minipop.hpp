#pragma once

/// \file minipop.hpp
/// Umbrella header for the mini-POP substrate.

#include "minipop/blocks.hpp"
#include "minipop/grid.hpp"
#include "minipop/io_model.hpp"
#include "minipop/pop_model.hpp"
#include "minipop/pop_params.hpp"
