#include "minipop/blocks.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace minipop {

const char* to_string(Distribution d) {
  switch (d) {
    case Distribution::Cartesian: return "cartesian";
    case Distribution::RakeWork: return "rake";
    case Distribution::RoundRobin: return "roundrobin";
    case Distribution::Balanced: return "balanced";
    case Distribution::Auto: return "auto";
  }
  return "?";
}

BlockDecomposition::BlockDecomposition(const PopGrid& grid, BlockShape shape,
                                       int nranks, Distribution dist)
    : shape_(shape), dist_(dist), nranks_(nranks) {
  if (shape.bx < 1 || shape.by < 1) {
    throw std::invalid_argument("BlockDecomposition: non-positive block size");
  }
  if (nranks < 1) throw std::invalid_argument("BlockDecomposition: nranks < 1");
  nbx_ = (grid.nx() + shape.bx - 1) / shape.bx;
  nby_ = (grid.ny() + shape.by - 1) / shape.by;
  blocks_.reserve(static_cast<std::size_t>(nbx_) * static_cast<std::size_t>(nby_));

  for (int ix = 0; ix < nbx_; ++ix) {
    for (int iy = 0; iy < nby_; ++iy) {
      BlockInfo b;
      b.ix = ix;
      b.iy = iy;
      const int i0 = ix * shape.bx;
      const int j0 = iy * shape.by;
      const int i1 = std::min(grid.nx(), i0 + shape.bx);
      const int j1 = std::min(grid.ny(), j0 + shape.by);
      b.width = i1 - i0;
      b.height = j1 - j0;
      b.ocean_points = grid.ocean_points_in(i0, i1, j0, j1);
      blocks_.push_back(b);
    }
  }

  // Eliminate all-land blocks; deal the surviving ocean blocks to ranks in
  // contiguous column-major runs balanced by ocean *work* (POP's rake-style
  // distribution). Work is quantized in whole blocks, so the residual
  // imbalance is roughly one block's worth of points over the per-rank mean
  // — the mechanism that makes block size a load-balance knob.
  std::vector<std::size_t> ocean_idx;
  std::int64_t total_ocean = 0;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    if (blocks_[k].ocean_points > 0) {
      ocean_idx.push_back(k);
      total_ocean += blocks_[k].ocean_points;
    }
  }
  ocean_blocks_ = static_cast<int>(ocean_idx.size());
  if (ocean_blocks_ == 0) {
    throw std::invalid_argument("BlockDecomposition: grid is all land");
  }
  // Candidate A: equal block counts per rank (POP "cartesian").
  std::vector<int> by_count(ocean_idx.size());
  for (std::size_t pos = 0; pos < ocean_idx.size(); ++pos) {
    by_count[pos] = static_cast<int>(pos * static_cast<std::size_t>(nranks_) /
                                     ocean_idx.size());
  }
  // Candidate B: equal ocean work per rank (POP "rake"), still contiguous.
  std::vector<int> by_work(ocean_idx.size());
  const double target = static_cast<double>(total_ocean) / nranks_;
  std::int64_t cum = 0;
  int rank = 0;
  for (std::size_t pos = 0; pos < ocean_idx.size(); ++pos) {
    const auto pts = blocks_[ocean_idx[pos]].ocean_points;
    const double mid = static_cast<double>(cum) + 0.5 * static_cast<double>(pts);
    while (rank + 1 < nranks_ && mid >= target * (rank + 1)) ++rank;
    by_work[pos] = rank;
    cum += pts;
  }
  // Candidate C: round-robin deal (POP "rake across processors") —
  // decorrelates neighboring blocks' ocean content, so multiple small blocks
  // per rank average out the coastline at the cost of halo locality.
  std::vector<int> by_rake(ocean_idx.size());
  for (std::size_t pos = 0; pos < ocean_idx.size(); ++pos) {
    by_rake[pos] = static_cast<int>(pos % static_cast<std::size_t>(nranks_));
  }
  // Candidate D: least-loaded greedy (largest block to the emptiest rank) —
  // the space-filling-curve/balanced option of POP's distribution suite.
  // Balance is near-perfect once ranks hold several blocks, at the price of
  // halo locality (neighbours scatter across ranks).
  std::vector<int> by_lpt(ocean_idx.size());
  {
    std::vector<std::size_t> order(ocean_idx.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return blocks_[ocean_idx[a]].ocean_points > blocks_[ocean_idx[b]].ocean_points;
    });
    using Load = std::pair<std::int64_t, int>;  // (points, rank)
    std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
    for (int r = 0; r < nranks_; ++r) heap.emplace(0, r);
    for (const std::size_t pos : order) {
      auto [load, r] = heap.top();
      heap.pop();
      by_lpt[pos] = r;
      heap.emplace(load + blocks_[ocean_idx[pos]].ocean_points, r);
    }
  }
  // Keep whichever assignment balances better (POP lets the user pick its
  // distribution; the better one is what a tuned run would use).
  const auto imbalance_of = [&](const std::vector<int>& assign) {
    std::vector<std::int64_t> per_rank(static_cast<std::size_t>(nranks_), 0);
    for (std::size_t pos = 0; pos < ocean_idx.size(); ++pos) {
      per_rank[static_cast<std::size_t>(assign[pos])] +=
          blocks_[ocean_idx[pos]].ocean_points;
    }
    std::int64_t max_p = 0;
    for (const auto p : per_rank) max_p = std::max(max_p, p);
    return static_cast<double>(max_p) * nranks_ / static_cast<double>(total_ocean);
  };
  const auto* chosen = &by_count;
  switch (dist_) {
    case Distribution::Cartesian: chosen = &by_count; break;
    case Distribution::RakeWork: chosen = &by_work; break;
    case Distribution::RoundRobin: chosen = &by_rake; break;
    case Distribution::Balanced: chosen = &by_lpt; break;
    case Distribution::Auto: {
      double best_imb = imbalance_of(by_count);
      dist_ = Distribution::Cartesian;
      const std::pair<const std::vector<int>*, Distribution> cands[] = {
          {&by_work, Distribution::RakeWork},
          {&by_rake, Distribution::RoundRobin},
          {&by_lpt, Distribution::Balanced}};
      for (const auto& [cand, kind] : cands) {
        const double imb = imbalance_of(*cand);
        if (imb < best_imb - 1e-9) {
          best_imb = imb;
          chosen = cand;
          dist_ = kind;
        }
      }
      break;
    }
  }
  for (std::size_t pos = 0; pos < ocean_idx.size(); ++pos) {
    blocks_[ocean_idx[pos]].rank = (*chosen)[pos];
  }
}

const BlockInfo& BlockDecomposition::block(int ix, int iy) const {
  if (ix < 0 || ix >= nbx_ || iy < 0 || iy >= nby_) {
    throw std::out_of_range("BlockDecomposition::block");
  }
  return blocks_[static_cast<std::size_t>(ix) * static_cast<std::size_t>(nby_) +
                 static_cast<std::size_t>(iy)];
}

std::vector<std::int64_t> BlockDecomposition::ocean_points_per_rank() const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(nranks_), 0);
  for (const auto& b : blocks_) {
    if (b.rank >= 0) out[static_cast<std::size_t>(b.rank)] += b.ocean_points;
  }
  return out;
}

std::vector<int> BlockDecomposition::blocks_per_rank() const {
  std::vector<int> out(static_cast<std::size_t>(nranks_), 0);
  for (const auto& b : blocks_) {
    if (b.rank >= 0) ++out[static_cast<std::size_t>(b.rank)];
  }
  return out;
}

std::vector<std::int64_t> BlockDecomposition::computed_points_per_rank() const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(nranks_), 0);
  for (const auto& b : blocks_) {
    if (b.rank >= 0) {
      out[static_cast<std::size_t>(b.rank)] +=
          static_cast<std::int64_t>(b.width) * b.height;
    }
  }
  return out;
}

double BlockDecomposition::compute_inefficiency() const {
  const auto computed = computed_points_per_rank();
  std::int64_t max_c = 0;
  for (const auto c : computed) max_c = std::max(max_c, c);
  std::int64_t ocean = 0;
  for (const auto& b : blocks_) {
    if (b.rank >= 0) ocean += b.ocean_points;
  }
  const double mean_ocean = static_cast<double>(ocean) / nranks_;
  return mean_ocean > 0.0 ? static_cast<double>(max_c) / mean_ocean : 1.0;
}

double BlockDecomposition::imbalance() const {
  const auto pts = ocean_points_per_rank();
  std::int64_t max_p = 0;
  std::int64_t sum_p = 0;
  for (const auto p : pts) {
    max_p = std::max(max_p, p);
    sum_p += p;
  }
  const double mean = static_cast<double>(sum_p) / static_cast<double>(pts.size());
  return mean > 0.0 ? static_cast<double>(max_p) / mean : 1.0;
}

BlockDecomposition::HaloStats
BlockDecomposition::halo_stats(int ranks_per_node) const {
  if (ranks_per_node < 1) throw std::invalid_argument("halo_stats: bad ppn");
  HaloStats stats;
  const auto node_of = [ranks_per_node](int rank) { return rank / ranks_per_node; };
  std::vector<std::int64_t> rank_intra(static_cast<std::size_t>(nranks_), 0);
  std::vector<std::int64_t> rank_inter(static_cast<std::size_t>(nranks_), 0);

  const auto account = [&](int rank_a, int rank_b, std::int64_t points) {
    if (node_of(rank_a) == node_of(rank_b)) {
      stats.intra_node_points += 2 * points;
      rank_intra[static_cast<std::size_t>(rank_a)] += points;
      rank_intra[static_cast<std::size_t>(rank_b)] += points;
    } else {
      stats.inter_node_points += 2 * points;
      rank_inter[static_cast<std::size_t>(rank_a)] += points;
      rank_inter[static_cast<std::size_t>(rank_b)] += points;
    }
  };

  for (const auto& b : blocks_) {
    if (b.rank < 0) continue;
    // East neighbor (x direction): exchange a column of `height` points.
    if (b.ix + 1 < nbx_) {
      const auto& e = block(b.ix + 1, b.iy);
      if (e.rank >= 0 && e.rank != b.rank) account(b.rank, e.rank, b.height);
    }
    // North neighbor (y direction): exchange a row of `width` points.
    if (b.iy + 1 < nby_) {
      const auto& n = block(b.ix, b.iy + 1);
      if (n.rank >= 0 && n.rank != b.rank) account(b.rank, n.rank, b.width);
    }
  }
  for (int r = 0; r < nranks_; ++r) {
    stats.max_rank_intra_points = std::max(
        stats.max_rank_intra_points, rank_intra[static_cast<std::size_t>(r)]);
    stats.max_rank_inter_points = std::max(
        stats.max_rank_inter_points, rank_inter[static_cast<std::size_t>(r)]);
  }
  return stats;
}

}  // namespace minipop
