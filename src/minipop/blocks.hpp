#pragma once

/// \file blocks.hpp
/// POP block decomposition: the grid is carved into bx x by blocks which are
/// assigned to ranks. The block size is the tunable of the paper's Fig. 4
/// experiment (default 180x100). The decomposition determines:
///
///   * load balance — ocean work is quantized in whole blocks; all-land
///     blocks are eliminated (real POP does this), so smaller blocks track
///     coastlines better but cost more halo perimeter and loop overhead;
///   * communication locality — blocks are laid out column-major and ranks
///     node-major, so y-neighbor halos stay on-node exactly when the block
///     column height divides the node's rank count. This is the mechanism
///     behind "no single block size is good for all topologies".

#include <cstdint>
#include <vector>

#include "minipop/grid.hpp"

namespace minipop {

struct BlockShape {
  int bx = 180;
  int by = 100;
};

struct BlockInfo {
  int ix = 0;           ///< block column
  int iy = 0;           ///< block row
  int width = 0;        ///< actual width (edge blocks may be narrower)
  int height = 0;
  std::int64_t ocean_points = 0;
  int rank = -1;        ///< owning rank (-1 for eliminated land blocks)
};

/// Block-to-rank distribution policy (POP's `distribution_type` namelist).
enum class Distribution {
  Cartesian,   ///< equal block counts, contiguous column-major runs (default)
  RakeWork,    ///< contiguous runs balanced by ocean points
  RoundRobin,  ///< deal blocks cyclically (decorrelates coastline)
  Balanced,    ///< least-loaded greedy (space-filling-curve-like balance)
  Auto,        ///< whichever of the above minimizes load imbalance
};

[[nodiscard]] const char* to_string(Distribution d);

class BlockDecomposition {
 public:
  /// Carve `grid` into blocks of `shape` and distribute the ocean blocks
  /// over `nranks` ranks under the given policy. Throws
  /// std::invalid_argument for non-positive block sizes.
  BlockDecomposition(const PopGrid& grid, BlockShape shape, int nranks,
                     Distribution dist = Distribution::Cartesian);

  [[nodiscard]] int nbx() const noexcept { return nbx_; }
  [[nodiscard]] int nby() const noexcept { return nby_; }
  [[nodiscard]] int total_blocks() const noexcept { return nbx_ * nby_; }
  [[nodiscard]] int ocean_blocks() const noexcept { return ocean_blocks_; }
  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] BlockShape shape() const noexcept { return shape_; }

  [[nodiscard]] const std::vector<BlockInfo>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const BlockInfo& block(int ix, int iy) const;

  /// Ocean points assigned to each rank.
  [[nodiscard]] std::vector<std::int64_t> ocean_points_per_rank() const;

  /// *Computed* points per rank: a surviving block computes its full
  /// width x height (land points are masked, not skipped — POP's compute
  /// loops run over whole blocks). This is what the baroclinic update costs;
  /// the gap between computed and ocean points is the land waste that
  /// smaller blocks recover along coastlines.
  [[nodiscard]] std::vector<std::int64_t> computed_points_per_rank() const;

  /// max computed points per rank / mean *ocean* points per rank: combines
  /// load imbalance and land waste into the figure tuning minimizes.
  [[nodiscard]] double compute_inefficiency() const;

  /// Ocean blocks assigned to each rank.
  [[nodiscard]] std::vector<int> blocks_per_rank() const;

  /// max ocean points per rank / mean — load-balance figure of merit.
  [[nodiscard]] double imbalance() const;

  /// Chosen distribution (resolved policy when Auto was requested).
  [[nodiscard]] Distribution distribution() const noexcept { return dist_; }

  /// Halo traffic of one 2-D exchange, split by locality under a node-major
  /// rank layout with `ranks_per_node` ranks per node. Values are grid-point
  /// counts (multiply by bytes/value/level externally). The *_points totals
  /// cover the whole machine; max_rank_points is the heaviest single rank's
  /// traffic — the one that gates a bulk-synchronous exchange.
  struct HaloStats {
    std::int64_t intra_node_points = 0;
    std::int64_t inter_node_points = 0;
    std::int64_t max_rank_intra_points = 0;
    std::int64_t max_rank_inter_points = 0;
  };
  [[nodiscard]] HaloStats halo_stats(int ranks_per_node) const;

 private:
  BlockShape shape_;
  Distribution dist_ = Distribution::Cartesian;
  int nbx_ = 0;
  int nby_ = 0;
  int nranks_ = 0;
  int ocean_blocks_ = 0;
  std::vector<BlockInfo> blocks_;  // index = ix * nby + iy (column-major)
};

}  // namespace minipop
