#pragma once

/// \file pop_params.hpp
/// The POP runtime-parameter study (paper Tables I and II): about 20
/// performance-related namelist parameters with 2-4 values each. Each choice
/// carries a cost multiplier on one of the model's compute phases; defaults
/// match the "Default" column of Table II (the first twelve parameters are
/// the ones the paper's tuning changed; the rest default to their fastest
/// choice, which is why tuning leaves them alone). The multiplier values are
/// calibrated so full tuning recovers a ~16-17% step-time improvement, the
/// paper's headline for this experiment.

#include <string>
#include <vector>

#include "core/param_space.hpp"

namespace minipop {

enum class PopPhase { Momentum, Tracer, State, Forcing, Io };

struct PopParamSpec {
  std::string name;
  PopPhase phase;
  std::vector<std::string> choices;
  std::vector<double> multipliers;  ///< aligned with choices
  int default_index = 0;
};

/// The full parameter table (stable order; num_iotasks is handled separately
/// as an integer parameter and is not in this list).
[[nodiscard]] const std::vector<PopParamSpec>& parameter_table();

/// Parameter space: num_iotasks (1..max_iotasks) followed by every
/// enumerated parameter from parameter_table().
[[nodiscard]] harmony::ParamSpace make_param_space(int max_iotasks);

/// Configuration holding every parameter's default (Table II "Default").
[[nodiscard]] harmony::Config default_config(const harmony::ParamSpace& space);

/// Aggregated per-phase cost multipliers for a configuration.
struct PhaseMultipliers {
  double momentum = 1.0;
  double tracer = 1.0;
  double state = 1.0;
  double forcing = 1.0;
  int num_iotasks = 1;
};

[[nodiscard]] PhaseMultipliers evaluate_multipliers(const harmony::ParamSpace& space,
                                                    const harmony::Config& c);

/// Product of the best (minimum) multiplier of every parameter — the
/// theoretical floor the search aims for.
[[nodiscard]] PhaseMultipliers best_multipliers();

}  // namespace minipop
