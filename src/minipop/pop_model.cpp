#include "minipop/pop_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "simcluster/collectives.hpp"

namespace minipop {

PopModel::PopModel(const PopGrid& grid, PopCostModel cost, IoModel io)
    : grid_(&grid), cost_(cost), io_(io) {}

PopStepReport PopModel::step_time(const simcluster::Machine& machine,
                                  int ranks_per_node, BlockShape block,
                                  const PhaseMultipliers& mult,
                                  Distribution dist) const {
  const int nranks = machine.total_cpus();
  if (ranks_per_node < 1) throw std::invalid_argument("step_time: bad ppn");

  const BlockDecomposition decomp(*grid_, block, nranks, dist);
  PopStepReport rep;
  rep.imbalance = decomp.compute_inefficiency();

  // --- Baroclinic 3-D update: slowest rank gates the step. Blocks compute
  // their full extent (land is masked inside the loops, not skipped), so the
  // cost driver is *computed* points, not ocean points. ---
  const double phase_mult = cost_.momentum_share * mult.momentum +
                            cost_.tracer_share * mult.tracer +
                            cost_.state_share * mult.state + cost_.other_share;
  const auto pts = decomp.computed_points_per_rank();
  const auto blocks = decomp.blocks_per_rank();
  double max_t = 0.0;
  for (int r = 0; r < nranks; ++r) {
    const double flops =
        static_cast<double>(pts[static_cast<std::size_t>(r)]) *
            grid_->depth_levels() * cost_.flops_per_point_level * phase_mult +
        static_cast<double>(blocks[static_cast<std::size_t>(r)]) *
            grid_->depth_levels() * cost_.block_overhead_flops;
    max_t = std::max(max_t, flops / (cost_.ref_flops_per_s * machine.rank_speed(r)));
  }
  rep.baroclinic_s = max_t;

  // --- Halo exchange: per-rank average traffic, one exchange per level
  // bundle (POP aggregates levels into one message). ---
  const auto halo = decomp.halo_stats(ranks_per_node);
  const auto& net = machine.network();
  const double levels = grid_->depth_levels();
  const double ghost = cost_.ghost_width;
  const double to_bytes = cost_.bytes_per_value * levels * ghost;
  // The mean per-rank traffic prices fabric contention (and carries the
  // CPUs-per-node signal: halo that stays inside an SMP node is nearly
  // free); the heaviest rank adds a bulk-synchronous gating term.
  const double avg_intra_bytes =
      to_bytes * static_cast<double>(halo.intra_node_points) / nranks;
  const double avg_inter_bytes =
      to_bytes * static_cast<double>(halo.inter_node_points) / nranks;
  const double max_inter_bytes =
      to_bytes * static_cast<double>(halo.max_rank_inter_points);
  // Each exchange posts ~4 messages per owned block (N/S/E/W).
  const int exchanges = cost_.halo_exchanges_per_step;
  double max_blocks = 0.0;
  for (const int b : blocks) max_blocks = std::max(max_blocks, static_cast<double>(b));
  const double msgs = 4.0 * max_blocks;
  rep.halo_s = exchanges * (msgs * net.inter_latency_s +
                            avg_intra_bytes / net.intra_bandwidth_Bps +
                            avg_inter_bytes / net.inter_bandwidth_Bps +
                            0.5 * max_inter_bytes / net.inter_bandwidth_Bps);

  // --- Barotropic solver: fixed iterations, one allreduce each. ---
  const double surf_pts =
      static_cast<double>(grid_->nx()) * grid_->ny() * grid_->ocean_fraction();
  const double baro_compute =
      cost_.barotropic_iterations * surf_pts * cost_.barotropic_flops_per_point /
      (cost_.ref_flops_per_s * machine.min_speed() * nranks);
  const double baro_reduce =
      cost_.barotropic_iterations *
      simcluster::allreduce_time(machine, nranks, cost_.bytes_per_value);
  rep.barotropic_s = baro_compute + baro_reduce;

  // --- Surface forcing (interp parameters act here). ---
  rep.forcing_s = surf_pts * cost_.forcing_flops_per_point * mult.forcing /
                  (cost_.ref_flops_per_s * machine.min_speed() * nranks);

  // --- History I/O, amortized per step. ---
  const double volume =
      surf_pts * cost_.history_fields * cost_.bytes_per_value;
  rep.io_s = io_.write_time(volume, std::max(1, mult.num_iotasks), nranks) /
             cost_.io_interval_steps;

  rep.total_s =
      rep.baroclinic_s + rep.halo_s + rep.barotropic_s + rep.forcing_s + rep.io_s;
  return rep;
}

double PopModel::run_time(const simcluster::Machine& machine, int ranks_per_node,
                          BlockShape block, const PhaseMultipliers& mult,
                          int steps, Distribution dist) const {
  if (steps < 1) throw std::invalid_argument("run_time: steps < 1");
  return steps * step_time(machine, ranks_per_node, block, mult, dist).total_s;
}

}  // namespace minipop
