#include "minipop/io_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace minipop {

double IoModel::write_time(double volume_bytes, int num_iotasks, int nranks) const {
  if (volume_bytes < 0) throw std::invalid_argument("write_time: negative volume");
  if (num_iotasks < 1 || nranks < 1) {
    throw std::invalid_argument("write_time: bad task/rank count");
  }
  const int n = std::min(num_iotasks, nranks);
  return base_overhead_s + coordination_s * n +
         volume_bytes / (static_cast<double>(n) * per_task_bandwidth_Bps);
}

int IoModel::optimal_tasks(double volume_bytes, int nranks) const {
  if (volume_bytes <= 0) return 1;
  const double n_star = std::sqrt(volume_bytes /
                                  (coordination_s * per_task_bandwidth_Bps));
  const int n = static_cast<int>(std::lround(n_star));
  return std::clamp(n, 1, nranks);
}

}  // namespace minipop
