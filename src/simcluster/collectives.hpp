#pragma once

/// \file collectives.hpp
/// Analytic cost models for the MPI collective operations the application
/// substrates use (following the latency/bandwidth "Hockney" model taught in
/// the LLNL MPI material). All models are conservative tree/ring shapes:
///
///   point-to-point:  lat + bytes/bw           (locality-dependent link)
///   barrier:         2 ceil(log2 P) * lat     (worst link)
///   broadcast:       ceil(log2 P) * ptp
///   allreduce:       2 ceil(log2 P) * ptp     (reduce + broadcast tree)
///   alltoall:        (P-1) * ptp of per-pair bytes, pipelined across links
///
/// When ranks span several nodes the inter-node link dominates; a collective
/// over ranks on one node uses the intra-node link throughout.

#include <vector>

#include "simcluster/machine.hpp"

namespace simcluster {

/// Time for one point-to-point message between two ranks.
[[nodiscard]] double ptp_time(const Machine& m, int from, int to, double bytes);

/// A contiguous rank group [0, nranks) on machine `m`. All collectives below
/// take the participating rank count; they assume the default node-major
/// placement.
[[nodiscard]] bool spans_multiple_nodes(const Machine& m, int nranks);

[[nodiscard]] double barrier_time(const Machine& m, int nranks);

[[nodiscard]] double broadcast_time(const Machine& m, int nranks, double bytes);

[[nodiscard]] double allreduce_time(const Machine& m, int nranks, double bytes);

/// Personalized all-to-all with `bytes_per_pair` from every rank to every
/// other rank (the cost of a distributed array transpose).
[[nodiscard]] double alltoall_time(const Machine& m, int nranks,
                                   double bytes_per_pair);

}  // namespace simcluster
