#include "simcluster/machine.hpp"

#include <algorithm>

namespace simcluster {

Machine Machine::homogeneous(int nodes, int cpus_per_node, double cpu_speed,
                             NetworkSpec network) {
  Machine m(network);
  m.add_nodes(nodes, cpus_per_node, cpu_speed);
  return m;
}

Machine& Machine::add_nodes(int node_count, int cpus_per_node, double cpu_speed,
                            std::string cpu_name) {
  if (node_count < 1) throw std::invalid_argument("add_nodes: node_count < 1");
  if (cpus_per_node < 1) throw std::invalid_argument("add_nodes: cpus_per_node < 1");
  if (!(cpu_speed > 0.0)) throw std::invalid_argument("add_nodes: cpu_speed <= 0");
  groups_.push_back(NodeGroup{node_count, cpus_per_node, cpu_speed,
                              std::move(cpu_name)});
  rebuild_index();
  return *this;
}

void Machine::rebuild_index() {
  nodes_.clear();
  total_cpus_ = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (int n = 0; n < groups_[g].node_count; ++n) {
      nodes_.push_back(ResolvedNode{total_cpus_, groups_[g].cpus_per_node,
                                    groups_[g].cpu_speed, g});
      total_cpus_ += groups_[g].cpus_per_node;
    }
  }
}

int Machine::node_count() const noexcept { return static_cast<int>(nodes_.size()); }

int Machine::total_cpus() const noexcept { return total_cpus_; }

int Machine::node_of_rank(int rank) const {
  if (rank < 0 || rank >= total_cpus_) {
    throw std::out_of_range("node_of_rank: rank " + std::to_string(rank));
  }
  // Binary search over first_rank.
  int lo = 0;
  int hi = node_count() - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (nodes_[static_cast<std::size_t>(mid)].first_rank <= rank) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

double Machine::rank_speed(int rank) const {
  return nodes_[static_cast<std::size_t>(node_of_rank(rank))].speed;
}

const std::string& Machine::rank_cpu_name(int rank) const {
  const auto& node = nodes_[static_cast<std::size_t>(node_of_rank(rank))];
  return groups_[node.group].cpu_name;
}

double Machine::min_speed() const {
  double s = nodes_.empty() ? 1.0 : nodes_.front().speed;
  for (const auto& n : nodes_) s = std::min(s, n.speed);
  return s;
}

bool Machine::is_homogeneous() const {
  for (const auto& n : nodes_) {
    if (n.speed != nodes_.front().speed) return false;
  }
  return true;
}

}  // namespace simcluster
