#pragma once

/// \file presets.hpp
/// Machine presets modeled after the paper's testbeds. Relative CPU speeds
/// and network constants are calibrated, not measured: the reproduction only
/// needs the cost *ratios* (SMP link much faster than fabric, PentiumII much
/// slower than Pentium4) that shape the tuning surfaces.

#include "simcluster/machine.hpp"

namespace simcluster::presets {

/// NERSC IBM SP-3 (the POP experiments): 16-way SMP nodes, colony switch.
/// `nodes` x `cpus_per_node` selects how much of the machine a job uses.
[[nodiscard]] Machine nersc_sp3(int nodes, int cpus_per_node);

/// NERSC "Seaborg" (the GS2 experiments): SP Power3, 16 CPUs/node.
[[nodiscard]] Machine seaborg(int nodes, int cpus_per_node);

/// NERSC "Hockney" (POP parameter study): 8 nodes x 4 CPUs used.
[[nodiscard]] Machine hockney(int nodes, int cpus_per_node);

/// 64-node Linux cluster, dual Xeon 2.66 GHz + Myrinet (GS2 Fig. 5).
[[nodiscard]] Machine xeon_myrinet(int nodes, int cpus_per_node);

/// Four-node homogeneous Pentium4 cluster (PETSc Fig. 3a).
[[nodiscard]] Machine pentium4_quad();

/// Heterogeneous cluster of 2x Pentium4 + 2x PentiumII (PETSc Fig. 3b);
/// ranks 0-1 are the slow PentiumII nodes, ranks 2-3 the fast Pentium4s,
/// matching the figure's "bottom two nodes are more powerful" layout.
[[nodiscard]] Machine pentium_hetero();

/// 32-way cluster used for the larger PETSc runs.
[[nodiscard]] Machine cluster32();

/// Heterogeneous 32-way cluster (two CPU generations), for the large
/// computation-distribution study.
[[nodiscard]] Machine cluster32_hetero();

}  // namespace simcluster::presets
