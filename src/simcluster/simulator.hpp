#pragma once

/// \file simulator.hpp
/// Deterministic BSP simulator: turns a workload (sequence of Phases) into
/// simulated wall-clock seconds on a Machine. Per phase:
///
///   t_compute = max over ranks of compute_ref_s[r] / speed(r)
///   t_ptp     = max over ranks of serialized send time on its links
///   t_coll    = sum of collective costs
///   t_phase   = t_compute + t_ptp + t_coll
///
/// The report also carries the load-imbalance ratio and the compute/comm
/// split, which the benches print alongside the headline time (the paper's
/// narrative repeatedly attributes wins to "better load balance" and "less
/// communication").
///
/// Optional seeded multiplicative noise models run-to-run measurement
/// variance without breaking reproducibility.

#include <vector>

#include "core/rng.hpp"
#include "simcluster/machine.hpp"
#include "simcluster/workload.hpp"

namespace simcluster {

struct SimReport {
  double total_s = 0.0;
  double compute_s = 0.0;
  double ptp_comm_s = 0.0;
  double collective_s = 0.0;

  /// max rank compute time / mean rank compute time, across all phases.
  double imbalance = 1.0;

  int phases = 0;
};

struct SimOptions {
  /// Gaussian relative noise applied to the final time (0 = deterministic).
  double noise_stddev = 0.0;
  std::uint64_t noise_seed = 99;
};

class Simulator {
 public:
  /// Simulate a workload executed by ranks [0, nranks) of the machine.
  /// Throws std::invalid_argument when nranks exceeds the machine or a
  /// phase's compute vector does not match nranks.
  Simulator(const Machine& machine, int nranks, SimOptions opts = {});

  [[nodiscard]] SimReport run(const std::vector<Phase>& phases) const;

  /// Single-phase convenience.
  [[nodiscard]] SimReport run(const Phase& phase) const;

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const Machine& machine() const noexcept { return *machine_; }

 private:
  const Machine* machine_;
  int nranks_;
  SimOptions opts_;
};

}  // namespace simcluster
