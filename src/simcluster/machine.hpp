#pragma once

/// \file machine.hpp
/// Model of a parallel machine: a set of SMP nodes, each with some number of
/// CPUs of a given relative speed, joined by a two-level network (shared
/// memory inside a node, interconnect between nodes). This substitutes for
/// the paper's physical testbeds — the NERSC SP-3 (16-way SMP nodes),
/// Seaborg, Hockney and the dual-Xeon Myrinet Linux cluster — exposing the
/// same knobs the tuning experiments exercise: node count, CPUs used per
/// node, and per-CPU speed heterogeneity (the Pentium4/PentiumII mix of the
/// paper's Fig. 3).
///
/// Ranks are laid out node-major: rank r lives on the node whose CPU ranges
/// cover r, exactly like a default MPI round-block mapping.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace simcluster {

/// Two-level network: intra-node (shared memory) and inter-node (fabric).
/// Bandwidth is bytes/second, latency is seconds per message.
struct NetworkSpec {
  double intra_latency_s = 1.0e-6;
  double intra_bandwidth_Bps = 4.0e9;
  double inter_latency_s = 20.0e-6;
  double inter_bandwidth_Bps = 3.0e8;

  /// Time to move `bytes` across one link of the given locality.
  [[nodiscard]] double transfer_time(double bytes, bool intra_node) const {
    if (bytes < 0) throw std::invalid_argument("transfer_time: negative bytes");
    return intra_node ? intra_latency_s + bytes / intra_bandwidth_Bps
                      : inter_latency_s + bytes / inter_bandwidth_Bps;
  }
};

/// One group of identical nodes.
struct NodeGroup {
  int node_count = 0;
  int cpus_per_node = 0;
  double cpu_speed = 1.0;  ///< relative to the reference CPU (1.0)
  std::string cpu_name;    ///< for reports ("Power3", "Xeon-2.66", ...)
};

class Machine {
 public:
  explicit Machine(NetworkSpec network = {}) : network_(network) {}

  /// Convenience: `nodes` identical nodes with `cpus_per_node` CPUs each.
  [[nodiscard]] static Machine homogeneous(int nodes, int cpus_per_node,
                                           double cpu_speed = 1.0,
                                           NetworkSpec network = {});

  /// Append a group of identical nodes (heterogeneous machines are built
  /// from several groups). Throws std::invalid_argument on non-positive
  /// counts or speed.
  Machine& add_nodes(int node_count, int cpus_per_node, double cpu_speed,
                     std::string cpu_name = {});

  [[nodiscard]] int node_count() const noexcept;
  [[nodiscard]] int total_cpus() const noexcept;

  /// Node index hosting this rank (node-major layout). Throws
  /// std::out_of_range for an invalid rank.
  [[nodiscard]] int node_of_rank(int rank) const;

  /// Relative speed of the CPU hosting this rank.
  [[nodiscard]] double rank_speed(int rank) const;

  /// CPU family name for this rank (may be empty).
  [[nodiscard]] const std::string& rank_cpu_name(int rank) const;

  [[nodiscard]] bool same_node(int rank_a, int rank_b) const {
    return node_of_rank(rank_a) == node_of_rank(rank_b);
  }

  [[nodiscard]] const NetworkSpec& network() const noexcept { return network_; }

  /// Slowest relative CPU speed across the whole machine.
  [[nodiscard]] double min_speed() const;

  /// True when every CPU has the same relative speed.
  [[nodiscard]] bool is_homogeneous() const;

 private:
  struct ResolvedNode {
    int first_rank;
    int cpus;
    double speed;
    std::size_t group;
  };

  void rebuild_index();

  NetworkSpec network_;
  std::vector<NodeGroup> groups_;
  std::vector<ResolvedNode> nodes_;
  int total_cpus_ = 0;
};

}  // namespace simcluster
