#include "simcluster/collectives.hpp"

#include <cmath>
#include <stdexcept>

namespace simcluster {

namespace {

int log2_ceil(int n) {
  int bits = 0;
  int v = 1;
  while (v < n) {
    v *= 2;
    ++bits;
  }
  return bits;
}

void check_ranks(const Machine& m, int nranks) {
  if (nranks < 1 || nranks > m.total_cpus()) {
    throw std::invalid_argument("collective: bad rank count " +
                                std::to_string(nranks));
  }
}

/// Worst-case single link used by a collective over [0, nranks).
double worst_link_time(const Machine& m, int nranks, double bytes) {
  const bool multi = spans_multiple_nodes(m, nranks);
  return m.network().transfer_time(bytes, /*intra_node=*/!multi);
}

}  // namespace

double ptp_time(const Machine& m, int from, int to, double bytes) {
  if (from == to) return 0.0;
  return m.network().transfer_time(bytes, m.same_node(from, to));
}

bool spans_multiple_nodes(const Machine& m, int nranks) {
  check_ranks(m, nranks);
  return m.node_of_rank(0) != m.node_of_rank(nranks - 1);
}

double barrier_time(const Machine& m, int nranks) {
  check_ranks(m, nranks);
  if (nranks == 1) return 0.0;
  return 2.0 * log2_ceil(nranks) * worst_link_time(m, nranks, 0.0);
}

double broadcast_time(const Machine& m, int nranks, double bytes) {
  check_ranks(m, nranks);
  if (nranks == 1) return 0.0;
  return log2_ceil(nranks) * worst_link_time(m, nranks, bytes);
}

double allreduce_time(const Machine& m, int nranks, double bytes) {
  check_ranks(m, nranks);
  if (nranks == 1) return 0.0;
  return 2.0 * log2_ceil(nranks) * worst_link_time(m, nranks, bytes);
}

double alltoall_time(const Machine& m, int nranks, double bytes_per_pair) {
  check_ranks(m, nranks);
  if (nranks == 1) return 0.0;
  // Each rank exchanges with P-1 peers; messages to on-node peers ride the
  // fast link. Estimate the per-rank serialized cost using the mix of intra
  // and inter-node peers of rank 0 (placement is node-major and symmetric
  // enough for a cost model).
  int intra_peers = 0;
  for (int r = 1; r < nranks; ++r) {
    if (m.same_node(0, r)) ++intra_peers;
  }
  const int inter_peers = nranks - 1 - intra_peers;
  const auto& net = m.network();
  return intra_peers * net.transfer_time(bytes_per_pair, true) +
         inter_peers * net.transfer_time(bytes_per_pair, false);
}

}  // namespace simcluster
