#pragma once

/// \file simcluster.hpp
/// Umbrella header for the cluster-simulator substrate.

#include "simcluster/collectives.hpp"
#include "simcluster/machine.hpp"
#include "simcluster/presets.hpp"
#include "simcluster/simulator.hpp"
#include "simcluster/workload.hpp"
