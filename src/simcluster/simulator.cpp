#include "simcluster/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simcluster/collectives.hpp"

namespace simcluster {

void Phase::repeat(int n) {
  if (n < 1) throw std::invalid_argument("Phase::repeat: n < 1");
  for (auto& c : compute_ref_s) c *= n;
  for (auto& msg : messages) msg.bytes *= n;
  allreduce_count *= n;
  barrier_count *= n;
  broadcast_count *= n;
  alltoall_count *= n;
}

Simulator::Simulator(const Machine& machine, int nranks, SimOptions opts)
    : machine_(&machine), nranks_(nranks), opts_(opts) {
  if (nranks < 1 || nranks > machine.total_cpus()) {
    throw std::invalid_argument("Simulator: nranks out of range");
  }
}

SimReport Simulator::run(const Phase& phase) const {
  return run(std::vector<Phase>{phase});
}

SimReport Simulator::run(const std::vector<Phase>& phases) const {
  SimReport report;
  report.phases = static_cast<int>(phases.size());
  double worst_imbalance = 1.0;

  for (const auto& phase : phases) {
    if (phase.compute_ref_s.size() != static_cast<std::size_t>(nranks_)) {
      throw std::invalid_argument("Simulator: phase compute vector size mismatch");
    }
    // Compute: slowest rank gates the superstep.
    double max_t = 0.0;
    double sum_t = 0.0;
    for (int r = 0; r < nranks_; ++r) {
      const double t = phase.compute_ref_s[static_cast<std::size_t>(r)] /
                       machine_->rank_speed(r);
      max_t = std::max(max_t, t);
      sum_t += t;
    }
    report.compute_s += max_t;
    if (sum_t > 0.0) {
      worst_imbalance =
          std::max(worst_imbalance, max_t / (sum_t / static_cast<double>(nranks_)));
    }

    // Point-to-point: per-sender serialization, senders concurrent.
    std::vector<double> send_time(static_cast<std::size_t>(nranks_), 0.0);
    for (const auto& msg : phase.messages) {
      if (msg.from < 0 || msg.from >= nranks_ || msg.to < 0 || msg.to >= nranks_) {
        throw std::invalid_argument("Simulator: message rank out of range");
      }
      send_time[static_cast<std::size_t>(msg.from)] +=
          ptp_time(*machine_, msg.from, msg.to, msg.bytes);
    }
    report.ptp_comm_s +=
        *std::max_element(send_time.begin(), send_time.end());

    // Collectives.
    double coll = 0.0;
    if (phase.allreduce_count > 0) {
      coll += phase.allreduce_count *
              allreduce_time(*machine_, nranks_, phase.allreduce_bytes);
    }
    if (phase.barrier_count > 0) {
      coll += phase.barrier_count * barrier_time(*machine_, nranks_);
    }
    if (phase.broadcast_count > 0) {
      coll += phase.broadcast_count *
              broadcast_time(*machine_, nranks_, phase.broadcast_bytes);
    }
    if (phase.alltoall_count > 0) {
      coll += phase.alltoall_count *
              alltoall_time(*machine_, nranks_, phase.alltoall_bytes_per_pair);
    }
    report.collective_s += coll;
  }

  report.imbalance = worst_imbalance;
  report.total_s = report.compute_s + report.ptp_comm_s + report.collective_s;

  if (opts_.noise_stddev > 0.0) {
    harmony::Rng rng(opts_.noise_seed);
    const double factor = std::max(0.0, 1.0 + opts_.noise_stddev * rng.normal());
    report.total_s *= factor;
  }
  return report;
}

}  // namespace simcluster
