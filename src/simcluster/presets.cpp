#include "simcluster/presets.hpp"

namespace simcluster::presets {

namespace {

NetworkSpec sp_switch() {
  NetworkSpec n;
  n.intra_latency_s = 1.2e-6;
  n.intra_bandwidth_Bps = 2.0e9;
  n.inter_latency_s = 18.0e-6;
  n.inter_bandwidth_Bps = 3.5e8;
  return n;
}

NetworkSpec myrinet() {
  NetworkSpec n;
  n.intra_latency_s = 0.8e-6;
  n.intra_bandwidth_Bps = 3.0e9;
  n.inter_latency_s = 25.0e-6;
  n.inter_bandwidth_Bps = 2.5e8;
  return n;
}

NetworkSpec fast_ethernet() {
  NetworkSpec n;
  n.intra_latency_s = 1.0e-6;
  n.intra_bandwidth_Bps = 2.0e9;
  n.inter_latency_s = 60.0e-6;
  n.inter_bandwidth_Bps = 1.2e7;
  return n;
}

}  // namespace

Machine nersc_sp3(int nodes, int cpus_per_node) {
  Machine m(sp_switch());
  m.add_nodes(nodes, cpus_per_node, 1.0, "Power3-375");
  return m;
}

Machine seaborg(int nodes, int cpus_per_node) {
  return nersc_sp3(nodes, cpus_per_node);
}

Machine hockney(int nodes, int cpus_per_node) {
  Machine m(sp_switch());
  m.add_nodes(nodes, cpus_per_node, 1.1, "Power3+");
  return m;
}

Machine xeon_myrinet(int nodes, int cpus_per_node) {
  Machine m(myrinet());
  m.add_nodes(nodes, cpus_per_node, 1.8, "Xeon-2.66");
  return m;
}

Machine pentium4_quad() {
  Machine m(fast_ethernet());
  m.add_nodes(4, 1, 1.6, "Pentium4");
  return m;
}

Machine pentium_hetero() {
  Machine m(fast_ethernet());
  // Ranks 0-1: slow PentiumII nodes; ranks 2-3: fast Pentium4 nodes.
  m.add_nodes(2, 1, 0.35, "PentiumII");
  m.add_nodes(2, 1, 1.6, "Pentium4");
  return m;
}

Machine cluster32() {
  // Low-latency GM-mode Myrinet (the PETSc runs are latency-sensitive:
  // every CG iteration carries two global reductions).
  NetworkSpec n;
  n.intra_latency_s = 0.8e-6;
  n.intra_bandwidth_Bps = 3.0e9;
  n.inter_latency_s = 6.0e-6;
  n.inter_bandwidth_Bps = 2.5e8;
  Machine m(n);
  m.add_nodes(16, 2, 1.5, "Xeon");
  return m;
}

Machine cluster32_hetero() {
  Machine m(myrinet());
  // Older half of the cluster first (ranks 0-15), newer half after.
  m.add_nodes(8, 2, 0.9, "PentiumIII");
  m.add_nodes(8, 2, 1.6, "Xeon");
  return m;
}

}  // namespace simcluster::presets
