#pragma once

/// \file workload.hpp
/// Bulk-synchronous workload description consumed by the Simulator. The
/// application substrates (mini-PETSc, mini-POP, mini-GS2) translate a
/// configuration into a sequence of Phases; the simulator turns phases into
/// simulated seconds on a Machine. A phase is one superstep: every rank
/// computes, then communication (point-to-point + collectives) completes
/// before the next phase starts.

#include <vector>

#include "simcluster/machine.hpp"

namespace simcluster {

/// One point-to-point message within a phase.
struct Message {
  int from = 0;
  int to = 0;
  double bytes = 0.0;
};

/// One bulk-synchronous superstep.
struct Phase {
  /// Per-rank compute cost in seconds *at reference CPU speed 1.0*; the
  /// simulator divides by the hosting CPU's relative speed.
  std::vector<double> compute_ref_s;

  /// Point-to-point traffic (halo exchanges). Messages between distinct
  /// rank pairs proceed concurrently; messages sharing a sender serialize.
  std::vector<Message> messages;

  /// Collectives executed by all `nranks` participants this phase.
  int allreduce_count = 0;
  double allreduce_bytes = 8.0;
  int barrier_count = 0;
  int broadcast_count = 0;
  double broadcast_bytes = 0.0;
  int alltoall_count = 0;
  double alltoall_bytes_per_pair = 0.0;

  /// Scale phase so it repeats `n` times (cheap aggregate: multiplies
  /// compute and message byte totals; collective counts multiply).
  void repeat(int n);
};

}  // namespace simcluster
