#include "minipetsc/perf_model.hpp"

#include <gtest/gtest.h>

#include "minipetsc/mat_gen.hpp"
#include "simcluster/presets.hpp"

namespace {

using namespace minipetsc;
using simcluster::Machine;

TEST(PerfModel, SpmvPhaseShape) {
  const auto A = laplacian1d(100);
  const auto part = RowPartition::even(100, 4);
  const auto stats = analyze(A, part);
  const auto phase = spmv_phase(stats);
  EXPECT_EQ(phase.compute_ref_s.size(), 4u);
  // Tridiagonal split into 4: 3 boundaries, each with 2 messages.
  EXPECT_EQ(phase.messages.size(), 6u);
  for (const auto t : phase.compute_ref_s) EXPECT_GT(t, 0.0);
}

TEST(PerfModel, CgIterationAddsReductions) {
  const auto A = laplacian1d(100);
  const auto stats = analyze(A, RowPartition::even(100, 4));
  const auto phase = cg_iteration_phase(stats);
  EXPECT_EQ(phase.allreduce_count, 2);
  EXPECT_GT(phase.compute_ref_s[0], spmv_phase(stats).compute_ref_s[0]);
}

TEST(PerfModel, BalancedPartitionBeatsSkewed) {
  const auto A = laplacian2d(40, 40);
  const auto machine = Machine::homogeneous(4, 1);
  const auto even = analyze(A, RowPartition::even(1600, 4));
  const auto skew = analyze(A, RowPartition::from_boundaries(1600, 4, {1000, 1200, 1400}));
  EXPECT_LT(simulate_sles(machine, even, 100).total_s,
            simulate_sles(machine, skew, 100).total_s);
}

TEST(PerfModel, BlockAlignedDecompositionFaster) {
  // The Fig. 2 story end-to-end: aligned boundaries -> less halo -> faster.
  const auto A = dense_block_matrix({50, 50, 50, 50}, 0.1);
  const auto machine = simcluster::presets::pentium4_quad();
  const auto aligned = analyze(A, RowPartition::from_boundaries(200, 4, {50, 100, 150}));
  const auto cut = analyze(A, RowPartition::from_boundaries(200, 4, {25, 100, 175}));
  EXPECT_LT(simulate_sles(machine, aligned, 50).total_s,
            simulate_sles(machine, cut, 50).total_s);
}

TEST(PerfModel, TimeScalesWithIterations) {
  const auto A = laplacian1d(200);
  const auto stats = analyze(A, RowPartition::even(200, 4));
  const auto machine = Machine::homogeneous(4, 1);
  const double t10 = simulate_sles(machine, stats, 10).total_s;
  const double t100 = simulate_sles(machine, stats, 100).total_s;
  EXPECT_NEAR(t100 / t10, 10.0, 0.5);
}

TEST(PerfModel, BadIterationCountThrows) {
  const auto A = laplacian1d(10);
  const auto stats = analyze(A, RowPartition::even(10, 2));
  const auto machine = Machine::homogeneous(2, 1);
  EXPECT_THROW((void)simulate_sles(machine, stats, 0), std::invalid_argument);
}

TEST(PerfModel, ResidualPhaseStripMessages) {
  const auto da = Da2D::even_strips(50, 40, 4);
  const auto phase = residual_phase(da);
  EXPECT_EQ(phase.compute_ref_s.size(), 4u);
  EXPECT_EQ(phase.messages.size(), 6u);  // 3 neighbor pairs x 2 directions
}

TEST(PerfModel, HeterogeneousMachinePrefersSkewedStrips) {
  // Fig. 3(b): with two slow nodes (ranks 0,1) and two fast ones, giving the
  // fast nodes more grid rows beats the even default.
  const auto machine = simcluster::presets::pentium_hetero();
  SnesWork work;
  work.newton_iterations = 5;
  work.total_ksp_iterations = 100;
  work.residual_evaluations = 120;
  const auto even = Da2D::even_strips(50, 48, 4);
  const auto skewed = Da2D::from_cuts(50, 48, {6, 12, 30});  // fast ranks get more
  EXPECT_LT(simulate_snes(machine, skewed, work).total_s,
            simulate_snes(machine, even, work).total_s);
}

TEST(PerfModel, HomogeneousMachinePrefersEvenStrips) {
  // Fig. 3(a): on identical nodes the even split is (near) optimal.
  const auto machine = simcluster::presets::pentium4_quad();
  SnesWork work;
  work.newton_iterations = 5;
  work.total_ksp_iterations = 100;
  work.residual_evaluations = 120;
  const auto even = Da2D::even_strips(50, 48, 4);
  const auto skewed = Da2D::from_cuts(50, 48, {6, 12, 30});
  EXPECT_LT(simulate_snes(machine, even, work).total_s,
            simulate_snes(machine, skewed, work).total_s);
}

TEST(PerfModel, SnesWorkValidation) {
  const auto machine = simcluster::presets::pentium4_quad();
  const auto da = Da2D::even_strips(10, 8, 4);
  SnesWork none;
  EXPECT_THROW((void)simulate_snes(machine, da, none), std::invalid_argument);
}

TEST(PerfModel, ImbalanceReportedForSkewedStrips) {
  const auto machine = simcluster::presets::pentium4_quad();
  SnesWork work;
  work.residual_evaluations = 10;
  const auto skewed = Da2D::from_cuts(50, 48, {40, 44, 46});
  const auto rep = simulate_snes(machine, skewed, work);
  EXPECT_GT(rep.imbalance, 2.0);
}

}  // namespace
