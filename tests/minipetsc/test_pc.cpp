#include "minipetsc/pc.hpp"

#include <gtest/gtest.h>

#include "minipetsc/mat_gen.hpp"

namespace {

using namespace minipetsc;

TEST(DenseLuTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  DenseLu lu({2, 1, 1, 3}, 2);
  std::vector<double> b{5, 10};
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseLuTest, PivotingHandlesZeroLeadingEntry) {
  // [0 1; 1 0] requires a row swap.
  DenseLu lu({0, 1, 1, 0}, 2);
  std::vector<double> b{3, 7};
  lu.solve(b);
  EXPECT_NEAR(b[0], 7.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(DenseLuTest, SingularThrows) {
  EXPECT_THROW(DenseLu({1, 2, 2, 4}, 2), std::runtime_error);
}

TEST(DenseLuTest, BadShapeThrows) {
  EXPECT_THROW(DenseLu({1, 2, 3}, 2), std::invalid_argument);
  EXPECT_THROW(DenseLu({}, 0), std::invalid_argument);
}

TEST(DenseLuTest, SolveSizeMismatchThrows) {
  DenseLu lu({1, 0, 0, 1}, 2);
  std::vector<double> b{1};
  EXPECT_THROW(lu.solve(b), std::invalid_argument);
}

TEST(DenseLuTest, LargerRandomRoundtrip) {
  const int n = 12;
  const auto A = random_spd(n, 4, 77);
  std::vector<double> dense(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) dense[static_cast<std::size_t>(i) * n + j] = A.at(i, j);
  }
  DenseLu lu(std::move(dense), n);
  // b = A * ones -> solve should return ones.
  Vec ones(static_cast<std::size_t>(n), 1.0);
  Vec b;
  A.multiply(ones, b);
  lu.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(b[static_cast<std::size_t>(i)], 1.0, 1e-9);
}

TEST(PcNoneTest, IsIdentity) {
  PcNone pc;
  Vec z;
  pc.apply(Vec{1, 2, 3}, z);
  EXPECT_EQ(z, (Vec{1, 2, 3}));
}

TEST(PcJacobiTest, InvertsDiagonal) {
  const auto A = CsrMatrix::from_triplets(2, 2, {{0, 0, 2.0}, {1, 1, 4.0}});
  PcJacobi pc(A);
  Vec z;
  pc.apply(Vec{2, 4}, z);
  EXPECT_EQ(z, (Vec{1, 1}));
}

TEST(PcJacobiTest, ZeroDiagonalThrows) {
  const auto A = CsrMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(PcJacobi pc(A), std::invalid_argument);
}

TEST(PcBlockJacobiTest, ExactOnBlockDiagonalMatrix) {
  // With no coupling, block-Jacobi IS the inverse.
  const auto A = dense_block_matrix({4, 4}, 0.0);
  const auto part = RowPartition::even(8, 2);
  PcBlockJacobi pc(A, part);
  Vec x_true{1, -1, 2, -2, 3, -3, 4, -4};
  Vec b;
  A.multiply(x_true, b);
  Vec z;
  pc.apply(b, z);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(z[i], x_true[i], 1e-10);
}

TEST(PcBlockJacobiTest, MatchesJacobiForUnitBlocks) {
  const auto A = laplacian1d(6);
  const auto part = RowPartition::even(6, 6);  // 1 row per block
  PcBlockJacobi bj(A, part);
  PcJacobi j(A);
  Vec r{1, 2, 3, 4, 5, 6};
  Vec z1;
  Vec z2;
  bj.apply(r, z1);
  j.apply(r, z2);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-12);
}

TEST(PcBlockJacobiTest, SizeMismatchThrows) {
  const auto A = laplacian1d(6);
  const auto part = RowPartition::even(8, 2);
  EXPECT_THROW(PcBlockJacobi(A, part), std::invalid_argument);
}

}  // namespace
