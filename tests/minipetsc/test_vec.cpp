#include "minipetsc/vec.hpp"

#include <gtest/gtest.h>

namespace {

using namespace minipetsc;

TEST(Vec, Axpy) {
  Vec x{1, 2, 3};
  Vec y{10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{12, 24, 36}));
}

TEST(Vec, AxpySizeMismatchThrows) {
  Vec x{1};
  Vec y{1, 2};
  EXPECT_THROW(axpy(1.0, x, y), std::invalid_argument);
}

TEST(Vec, Aypx) {
  Vec x{1, 1};
  Vec y{2, 4};
  aypx(3.0, x, y);  // y = x + 3y
  EXPECT_EQ(y, (Vec{7, 13}));
}

TEST(Vec, Waxpy) {
  Vec x{1, 2};
  Vec y{10, 10};
  Vec w;
  waxpy(w, -1.0, x, y);
  EXPECT_EQ(w, (Vec{9, 8}));
}

TEST(Vec, Dot) {
  EXPECT_DOUBLE_EQ(dot(Vec{1, 2, 3}, Vec{4, 5, 6}), 32.0);
}

TEST(Vec, DotMismatchThrows) {
  EXPECT_THROW((void)dot(Vec{1}, Vec{1, 2}), std::invalid_argument);
}

TEST(Vec, Norm2) {
  EXPECT_DOUBLE_EQ(norm2(Vec{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm2(Vec{}), 0.0);
}

TEST(Vec, NormInf) {
  EXPECT_DOUBLE_EQ(norm_inf(Vec{1, -7, 3}), 7.0);
}

TEST(Vec, Scale) {
  Vec v{1, -2};
  scale(v, -2.0);
  EXPECT_EQ(v, (Vec{-2, 4}));
}

TEST(Vec, SetAll) {
  Vec v(3, 0.0);
  set_all(v, 1.5);
  EXPECT_EQ(v, (Vec{1.5, 1.5, 1.5}));
}

TEST(Vec, PointwiseMult) {
  Vec v{2, 3};
  pointwise_mult(v, Vec{4, 5});
  EXPECT_EQ(v, (Vec{8, 15}));
}

TEST(Vec, PointwiseMismatchThrows) {
  Vec v{1};
  EXPECT_THROW(pointwise_mult(v, Vec{1, 2}), std::invalid_argument);
}

}  // namespace
