#include "minipetsc/csr_matrix.hpp"

#include <gtest/gtest.h>

namespace {

using minipetsc::CsrMatrix;
using minipetsc::Vec;

CsrMatrix identity3() {
  return CsrMatrix::from_triplets(3, 3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
}

TEST(Csr, ShapeAndNnz) {
  const auto m = identity3();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
}

TEST(Csr, MultiplyIdentity) {
  const auto m = identity3();
  Vec y;
  m.multiply(Vec{1, 2, 3}, y);
  EXPECT_EQ(y, (Vec{1, 2, 3}));
}

TEST(Csr, MultiplyGeneral) {
  const auto m =
      CsrMatrix::from_triplets(2, 2, {{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}});
  Vec y;
  m.multiply(Vec{5, 6}, y);
  EXPECT_EQ(y, (Vec{17, 39}));
}

TEST(Csr, MultiplyTranspose) {
  const auto m = CsrMatrix::from_triplets(2, 3, {{0, 1, 2}, {1, 2, 5}});
  Vec y;
  m.multiply_transpose(Vec{1, 1}, y);
  EXPECT_EQ(y, (Vec{0, 2, 5}));
}

TEST(Csr, DuplicateTripletsSummed) {
  const auto m = CsrMatrix::from_triplets(1, 1, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(Csr, RectangularShape) {
  const auto m = CsrMatrix::from_triplets(2, 5, {{1, 4, 7.0}});
  Vec y;
  m.multiply(Vec{0, 0, 0, 0, 1}, y);
  EXPECT_EQ(y, (Vec{0, 7}));
}

TEST(Csr, AtMissingEntryIsZero) {
  const auto m = identity3();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(Csr, AtOutOfRangeThrows) {
  const auto m = identity3();
  EXPECT_THROW((void)m.at(3, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, -1), std::out_of_range);
}

TEST(Csr, TripletOutOfRangeThrows) {
  EXPECT_THROW((void)CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)CsrMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               std::invalid_argument);
}

TEST(Csr, Diagonal) {
  const auto m = CsrMatrix::from_triplets(2, 2, {{0, 0, 4}, {0, 1, 1}, {1, 1, 9}});
  EXPECT_EQ(m.diagonal(), (Vec{4, 9}));
}

TEST(Csr, DiagonalWithMissingEntries) {
  const auto m = CsrMatrix::from_triplets(2, 2, {{0, 1, 1.0}});
  EXPECT_EQ(m.diagonal(), (Vec{0, 0}));
}

TEST(Csr, NnzInRows) {
  const auto m = CsrMatrix::from_triplets(
      3, 3, {{0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {2, 0, 1}, {2, 1, 1}, {2, 2, 1}});
  EXPECT_EQ(m.nnz_in_rows(0, 1), 2);
  EXPECT_EQ(m.nnz_in_rows(1, 3), 4);
  EXPECT_EQ(m.nnz_in_rows(0, 3), 6);
  EXPECT_THROW((void)m.nnz_in_rows(2, 1), std::invalid_argument);
}

TEST(Csr, FrobeniusNorm) {
  const auto m = CsrMatrix::from_triplets(2, 2, {{0, 0, 3}, {1, 1, 4}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Csr, SymmetryDetection) {
  const auto sym =
      CsrMatrix::from_triplets(2, 2, {{0, 0, 2}, {0, 1, -1}, {1, 0, -1}, {1, 1, 2}});
  EXPECT_TRUE(sym.is_symmetric());
  const auto asym = CsrMatrix::from_triplets(2, 2, {{0, 1, 5.0}});
  EXPECT_FALSE(asym.is_symmetric());
}

TEST(Csr, MultiplySizeMismatchThrows) {
  const auto m = identity3();
  Vec y;
  EXPECT_THROW(m.multiply(Vec{1, 2}, y), std::invalid_argument);
  EXPECT_THROW(m.multiply_transpose(Vec{1, 2}, y), std::invalid_argument);
}

TEST(Csr, EmptyMatrix) {
  const auto m = CsrMatrix::from_triplets(0, 0, {});
  EXPECT_EQ(m.nnz(), 0);
  Vec y;
  m.multiply(Vec{}, y);
  EXPECT_TRUE(y.empty());
}

}  // namespace
