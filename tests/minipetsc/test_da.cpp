#include "minipetsc/da.hpp"

#include <gtest/gtest.h>
#include <cmath>

namespace {

using minipetsc::Da2D;

TEST(Da2D, EvenStripsCoverGrid) {
  const auto da = Da2D::even_strips(50, 50, 4);
  EXPECT_EQ(da.nranks(), 4);
  int rows = 0;
  for (int r = 0; r < 4; ++r) {
    const auto [lo, hi] = da.row_range(r);
    rows += hi - lo;
  }
  EXPECT_EQ(rows, 50);
}

TEST(Da2D, EvenStripsBalanced) {
  const auto da = Da2D::even_strips(10, 100, 4);
  for (int r = 0; r < 4; ++r) {
    const auto [lo, hi] = da.row_range(r);
    EXPECT_EQ(hi - lo, 25);
  }
}

TEST(Da2D, PointsPerRank) {
  const auto da = Da2D::from_cuts(10, 20, {5, 15});
  EXPECT_EQ(da.points_per_rank(), (std::vector<int>{50, 100, 50}));
}

TEST(Da2D, OwnerOfRow) {
  const auto da = Da2D::from_cuts(10, 20, {5, 15});
  EXPECT_EQ(da.owner_of_row(0), 0);
  EXPECT_EQ(da.owner_of_row(4), 0);
  EXPECT_EQ(da.owner_of_row(5), 1);
  EXPECT_EQ(da.owner_of_row(14), 1);
  EXPECT_EQ(da.owner_of_row(15), 2);
  EXPECT_EQ(da.owner_of_row(19), 2);
}

TEST(Da2D, HaloIsOneGridRow) {
  const auto da = Da2D::even_strips(37, 40, 4);
  EXPECT_EQ(da.halo_values_per_exchange(), 37);
}

TEST(Da2D, SingleRankNoCuts) {
  const auto da = Da2D::even_strips(5, 5, 1);
  EXPECT_EQ(da.nranks(), 1);
  EXPECT_EQ(da.row_range(0), (std::pair<int, int>{0, 5}));
}

TEST(Da2D, InvalidCutsThrow) {
  EXPECT_THROW((void)Da2D::from_cuts(10, 20, {15, 5}), std::invalid_argument);
  EXPECT_THROW((void)Da2D::from_cuts(10, 20, {0}), std::invalid_argument);
  EXPECT_THROW((void)Da2D::from_cuts(10, 20, {20}), std::invalid_argument);
  EXPECT_THROW((void)Da2D::from_cuts(10, 20, {5, 5}), std::invalid_argument);
}

TEST(Da2D, BadShapeThrows) {
  EXPECT_THROW((void)Da2D::from_cuts(0, 20, {}), std::invalid_argument);
  EXPECT_THROW((void)Da2D::even_strips(10, 3, 4), std::invalid_argument);
}

TEST(Da2D, RowRangeOutOfBoundsThrows) {
  const auto da = Da2D::even_strips(5, 8, 2);
  EXPECT_THROW((void)da.row_range(2), std::out_of_range);
  EXPECT_THROW((void)da.owner_of_row(8), std::out_of_range);
}

TEST(Da2D, PaperSearchSpaceSize) {
  // 40,000 points as 200x200, 32 strips: the tunables are 31 ordered cut
  // rows from 199 positions -> C(199,31) ~ O(10^36), the paper's figure.
  const auto da = Da2D::even_strips(200, 200, 32);
  EXPECT_EQ(da.cuts().size(), 31u);
  double log10_space = 0.0;
  for (int i = 0; i < 31; ++i) {
    log10_space += std::log10(199.0 - i) - std::log10(i + 1.0);
  }
  EXPECT_GT(log10_space, 34.0);
  EXPECT_LT(log10_space, 40.0);
}

}  // namespace
