#include "minipetsc/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.hpp"
#include "minipetsc/mat_gen.hpp"

namespace {

using namespace minipetsc;

TEST(RowPartition, EvenSplitsCoverAllRows) {
  const auto p = RowPartition::even(10, 3);
  EXPECT_EQ(p.nranks(), 3);
  int covered = 0;
  for (int r = 0; r < 3; ++r) covered += p.rows_of(r);
  EXPECT_EQ(covered, 10);
}

TEST(RowPartition, EvenIsBalanced) {
  const auto p = RowPartition::even(100, 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(p.rows_of(r), 25);
}

TEST(RowPartition, OwnerMatchesRanges) {
  const auto p = RowPartition::from_boundaries(10, 3, {2, 7});
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(1), 0);
  EXPECT_EQ(p.owner(2), 1);
  EXPECT_EQ(p.owner(6), 1);
  EXPECT_EQ(p.owner(7), 2);
  EXPECT_EQ(p.owner(9), 2);
}

TEST(RowPartition, RangeEndpoints) {
  const auto p = RowPartition::from_boundaries(10, 3, {2, 7});
  EXPECT_EQ(p.range(0), (std::pair<int, int>{0, 2}));
  EXPECT_EQ(p.range(1), (std::pair<int, int>{2, 7}));
  EXPECT_EQ(p.range(2), (std::pair<int, int>{7, 10}));
}

TEST(RowPartition, SingleRank) {
  const auto p = RowPartition::even(5, 1);
  EXPECT_EQ(p.rows_of(0), 5);
  EXPECT_EQ(p.owner(4), 0);
}

TEST(RowPartition, InvalidBoundariesThrow) {
  EXPECT_THROW((void)RowPartition::from_boundaries(10, 3, {7, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)RowPartition::from_boundaries(10, 3, {0, 5}),
               std::invalid_argument);
  EXPECT_THROW((void)RowPartition::from_boundaries(10, 3, {5, 10}),
               std::invalid_argument);
  EXPECT_THROW((void)RowPartition::from_boundaries(10, 3, {5}),
               std::invalid_argument);
  EXPECT_THROW((void)RowPartition::even(2, 3), std::invalid_argument);
}

TEST(RowPartition, OwnerOutOfRangeThrows) {
  const auto p = RowPartition::even(10, 2);
  EXPECT_THROW((void)p.owner(-1), std::out_of_range);
  EXPECT_THROW((void)p.owner(10), std::out_of_range);
  EXPECT_THROW((void)p.range(2), std::out_of_range);
}

TEST(Analyze, TridiagonalHaloIsOneValueEachWay) {
  const auto A = laplacian1d(10);
  const auto p = RowPartition::even(10, 2);
  const auto stats = analyze(A, p);
  EXPECT_EQ(stats.rows_per_rank, (std::vector<int>{5, 5}));
  // Each rank needs exactly one remote value from the other.
  EXPECT_EQ(stats.halo_counts.at({0, 1}), 1);
  EXPECT_EQ(stats.halo_counts.at({1, 0}), 1);
  EXPECT_EQ(stats.total_halo_values(), 2);
}

TEST(Analyze, Laplacian2dHaloIsGridRow) {
  const int nx = 8;
  const auto A = laplacian2d(nx, 8);
  const auto p = RowPartition::even(64, 2);  // split between grid rows 3|4
  const auto stats = analyze(A, p);
  EXPECT_EQ(stats.halo_counts.at({0, 1}), nx);
  EXPECT_EQ(stats.halo_counts.at({1, 0}), nx);
}

TEST(Analyze, NnzPerRankSumsToTotal) {
  const auto A = laplacian2d(10, 10);
  const auto p = RowPartition::even(100, 7);
  const auto stats = analyze(A, p);
  std::int64_t sum = 0;
  for (const auto v : stats.nnz_per_rank) sum += v;
  EXPECT_EQ(sum, A.nnz());
}

TEST(Analyze, BlockAlignedDecompositionHasLessHalo) {
  // Fig. 2 of the paper: boundaries on block edges (line A) beat boundaries
  // through dense blocks (line B).
  const auto A = dense_block_matrix({20, 20, 20, 20}, 0.1);
  const auto aligned = RowPartition::from_boundaries(80, 4, {20, 40, 60});
  const auto misaligned = RowPartition::from_boundaries(80, 4, {10, 30, 50});
  EXPECT_LT(analyze(A, aligned).total_halo_values(),
            analyze(A, misaligned).total_halo_values());
}

TEST(Analyze, ImbalanceOfUnevenPartition) {
  const auto A = laplacian1d(100);
  const auto even = RowPartition::even(100, 4);
  const auto skewed = RowPartition::from_boundaries(100, 4, {70, 80, 90});
  EXPECT_LT(analyze(A, even).nnz_imbalance(), analyze(A, skewed).nnz_imbalance());
  EXPECT_NEAR(analyze(A, even).nnz_imbalance(), 1.0, 0.05);
}

TEST(Analyze, MismatchedSizesThrow) {
  const auto A = laplacian1d(10);
  const auto p = RowPartition::even(12, 2);
  EXPECT_THROW((void)analyze(A, p), std::invalid_argument);
}

TEST(Analyze, NonSquareThrows) {
  const auto A = CsrMatrix::from_triplets(4, 5, {{0, 0, 1.0}});
  const auto p = RowPartition::even(4, 2);
  EXPECT_THROW((void)analyze(A, p), std::invalid_argument);
}

// Property: for random valid boundary sets on the 2-D Laplacian, halo counts
// are symmetric between neighbor pairs and rows always sum to n.
class PartitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionProperty, HaloSymmetricRowsComplete) {
  const int n = 144;  // 12x12 grid
  const auto A = laplacian2d(12, 12);
  harmony::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int nranks = static_cast<int>(rng.uniform_int(2, 6));
    std::set<int> cuts;
    while (static_cast<int>(cuts.size()) < nranks - 1) {
      cuts.insert(static_cast<int>(rng.uniform_int(1, n - 1)));
    }
    const auto p = RowPartition::from_boundaries(
        n, nranks, std::vector<int>(cuts.begin(), cuts.end()));
    const auto stats = analyze(A, p);
    int rows = 0;
    for (const auto r : stats.rows_per_rank) rows += r;
    EXPECT_EQ(rows, n);
    for (const auto& [pair, count] : stats.halo_counts) {
      // The Laplacian is structurally symmetric: if src sends to dst, dst
      // sends something back.
      EXPECT_TRUE(stats.halo_counts.contains({pair.second, pair.first}));
      EXPECT_GT(count, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty,
                         ::testing::Values(3u, 14u, 159u, 2653u));

}  // namespace
