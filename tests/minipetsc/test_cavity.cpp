#include "minipetsc/cavity.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace minipetsc;

TEST(Cavity, Indexing) {
  CavityProblem p;
  p.nx = 5;
  p.ny = 4;
  EXPECT_EQ(p.unknowns(), 40);
  EXPECT_EQ(p.psi_index(0, 0), 0);
  EXPECT_EQ(p.omega_index(0, 0), 1);
  EXPECT_EQ(p.psi_index(4, 3), 2 * 19);
}

TEST(Cavity, ResidualZeroStateHasLidForcing) {
  CavityProblem p;
  p.nx = 7;
  p.ny = 7;
  const auto F = p.residual();
  Vec f;
  F(p.initial_guess(), f);
  // At rest everything vanishes except the moving-lid wall vorticity rows.
  double lid_residual = 0.0;
  for (int i = 1; i < p.nx - 1; ++i) {
    lid_residual += std::abs(f[static_cast<std::size_t>(p.omega_index(i, p.ny - 1))]);
  }
  EXPECT_GT(lid_residual, 0.0);
  // Interior psi equations are satisfied by the zero state.
  EXPECT_DOUBLE_EQ(f[static_cast<std::size_t>(p.psi_index(3, 3))], 0.0);
}

TEST(Cavity, ResidualSizeMismatchThrows) {
  CavityProblem p;
  const auto F = p.residual();
  Vec f;
  Vec wrong(3, 0.0);
  EXPECT_THROW(F(wrong, f), std::invalid_argument);
}

TEST(Cavity, BadParametersThrow) {
  CavityProblem p;
  p.nx = 2;
  EXPECT_THROW((void)p.residual(), std::invalid_argument);
  p.nx = 17;
  p.reynolds = 0.0;
  EXPECT_THROW((void)p.residual(), std::invalid_argument);
}

TEST(Cavity, NewtonSolvesSmallCavity) {
  CavityProblem p;
  p.nx = 9;
  p.ny = 9;
  p.reynolds = 10.0;
  Vec x = p.initial_guess();
  SnesOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 30;
  opts.ksp.max_iterations = 2000;
  const auto res = newton_solve(p.residual(), x, opts);
  EXPECT_TRUE(res.converged) << "residual " << res.residual_norm;
}

TEST(Cavity, SolutionHasRecirculation) {
  CavityProblem p;
  p.nx = 11;
  p.ny = 11;
  p.reynolds = 10.0;
  Vec x = p.initial_guess();
  SnesOptions opts;
  opts.max_iterations = 40;
  opts.ksp.max_iterations = 3000;
  const auto res = newton_solve(p.residual(), x, opts);
  ASSERT_TRUE(res.converged);
  const Vec psi = p.psi_field(x);
  // The lid-driven cavity's primary vortex gives psi one dominant sign in
  // the interior and |psi| peaks away from walls.
  double min_psi = 0.0;
  double max_psi = 0.0;
  for (const double v : psi) {
    min_psi = std::min(min_psi, v);
    max_psi = std::max(max_psi, v);
  }
  EXPECT_GT(std::max(std::abs(min_psi), std::abs(max_psi)), 1e-4);
  // Wall psi must be ~0 (boundary condition).
  for (int i = 0; i < p.nx; ++i) {
    EXPECT_NEAR(psi[static_cast<std::size_t>(i)], 0.0, 1e-8);
  }
}

TEST(Cavity, HigherReynoldsStillSolvable) {
  CavityProblem p;
  p.nx = 9;
  p.ny = 9;
  p.reynolds = 50.0;
  Vec x = p.initial_guess();
  SnesOptions opts;
  opts.max_iterations = 60;
  opts.ksp.max_iterations = 3000;
  const auto res = newton_solve(p.residual(), x, opts);
  EXPECT_TRUE(res.converged);
}

TEST(Cavity, PsiFieldExtraction) {
  CavityProblem p;
  p.nx = 3;
  p.ny = 3;
  Vec state(static_cast<std::size_t>(p.unknowns()), 0.0);
  state[static_cast<std::size_t>(p.psi_index(1, 1))] = 7.0;
  state[static_cast<std::size_t>(p.omega_index(1, 1))] = -3.0;
  const Vec psi = p.psi_field(state);
  EXPECT_EQ(psi.size(), 9u);
  EXPECT_DOUBLE_EQ(psi[4], 7.0);
  EXPECT_DOUBLE_EQ(psi[0], 0.0);
}

}  // namespace
