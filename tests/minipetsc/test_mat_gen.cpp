#include "minipetsc/mat_gen.hpp"
#include "minipetsc/ksp.hpp"

#include <gtest/gtest.h>

namespace {

using namespace minipetsc;

TEST(MatGen, Laplacian1dStructure) {
  const auto m = laplacian1d(5);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.nnz(), 5 + 2 * 4);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(MatGen, Laplacian2dStructure) {
  const auto m = laplacian2d(3, 3);
  EXPECT_EQ(m.rows(), 9);
  EXPECT_DOUBLE_EQ(m.at(4, 4), 4.0);  // center point
  EXPECT_DOUBLE_EQ(m.at(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 8), 0.0);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(MatGen, Laplacian2dRowSumsNonNegative) {
  // Diagonally dominant: row sums >= 0 with equality only in the interior.
  const auto m = laplacian2d(4, 4);
  for (int r = 0; r < m.rows(); ++r) {
    double sum = 0;
    for (int c = 0; c < m.cols(); ++c) sum += m.at(r, c);
    EXPECT_GE(sum, 0.0);
  }
}

TEST(MatGen, LaplacianBadShapesThrow) {
  EXPECT_THROW((void)laplacian2d(0, 3), std::invalid_argument);
  EXPECT_THROW((void)laplacian1d(0), std::invalid_argument);
}

TEST(MatGen, DenseBlockMatrixShape) {
  const auto m = dense_block_matrix({3, 2, 4});
  EXPECT_EQ(m.rows(), 9);
  EXPECT_TRUE(m.is_symmetric(1e-9));
}

TEST(MatGen, DenseBlocksAreDense) {
  const auto m = dense_block_matrix({3, 3}, 0.1);
  // Inside the first block every entry is nonzero.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_NE(m.at(i, j), 0.0);
  }
  // Across blocks only the tridiagonal coupling exists.
  EXPECT_DOUBLE_EQ(m.at(0, 5), 0.0);
  EXPECT_NE(m.at(2, 3), 0.0);  // boundary coupling
}

TEST(MatGen, DenseBlockCouplingStrength) {
  const auto m = dense_block_matrix({2, 2}, 0.25);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -0.25);
}

TEST(MatGen, DenseBlockBadArgsThrow) {
  EXPECT_THROW((void)dense_block_matrix({}), std::invalid_argument);
  EXPECT_THROW((void)dense_block_matrix({3, 0}), std::invalid_argument);
}

TEST(MatGen, RandomSpdIsSymmetric) {
  const auto m = random_spd(50, 4, 123);
  EXPECT_TRUE(m.is_symmetric(1e-12));
}

TEST(MatGen, RandomSpdIsDiagonallyDominant) {
  const auto m = random_spd(40, 3, 7);
  for (int r = 0; r < m.rows(); ++r) {
    double off = 0;
    for (int c = 0; c < m.cols(); ++c) {
      if (c != r) off += std::abs(m.at(r, c));
    }
    EXPECT_GT(m.at(r, r), off);
  }
}

TEST(MatGen, RandomSpdDeterministicPerSeed) {
  const auto a = random_spd(20, 3, 5);
  const auto b = random_spd(20, 3, 5);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), b.frobenius_norm());
  const auto c = random_spd(20, 3, 6);
  EXPECT_NE(a.frobenius_norm(), c.frobenius_norm());
}

TEST(MatGen, VariableBandSymmetricSpdShape) {
  const auto m = variable_band_spd(200, 3, 40);
  EXPECT_EQ(m.rows(), 200);
  EXPECT_TRUE(m.is_symmetric(1e-12));
  // Diagonally dominant by construction.
  for (int r = 0; r < m.rows(); r += 17) {
    double off = 0;
    for (int c = 0; c < m.cols(); ++c) {
      if (c != r) off += std::abs(m.at(r, c));
    }
    EXPECT_GT(m.at(r, r), off);
  }
}

TEST(MatGen, VariableBandDensityPeaksInMiddle) {
  const auto m = variable_band_spd(400, 4, 80);
  const auto row_nnz = [&](int lo, int hi) { return m.nnz_in_rows(lo, hi); };
  // Middle rows are much denser than edge rows.
  EXPECT_GT(row_nnz(180, 220), 2 * row_nnz(0, 40));
  EXPECT_GT(row_nnz(180, 220), 2 * row_nnz(360, 400));
}

TEST(MatGen, VariableBandCgSolvable) {
  const auto m = variable_band_spd(300, 3, 30);
  Vec b(300, 1.0);
  Vec x;
  PcJacobi pc(m);
  const auto res = cg_solve(m, b, x, pc);
  EXPECT_TRUE(res.converged);
}

TEST(MatGen, VariableBandBadArgsThrow) {
  EXPECT_THROW((void)variable_band_spd(0, 1, 2), std::invalid_argument);
  EXPECT_THROW((void)variable_band_spd(10, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)variable_band_spd(10, 5, 2), std::invalid_argument);
}

TEST(MatGen, RandomSpdBadArgsThrow) {
  EXPECT_THROW((void)random_spd(0, 3, 1), std::invalid_argument);
  EXPECT_THROW((void)random_spd(5, -1, 1), std::invalid_argument);
}

}  // namespace
