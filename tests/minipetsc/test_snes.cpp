#include "minipetsc/snes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace minipetsc;

TEST(Snes, SolvesScalarQuadratic) {
  // F(x) = x^2 - 4 = 0, root at 2 (starting right of the root).
  const ResidualFn F = [](const Vec& x, Vec& f) {
    f.resize(1);
    f[0] = x[0] * x[0] - 4.0;
  };
  Vec x{5.0};
  const auto res = newton_solve(F, x);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-6);
  EXPECT_GT(res.iterations, 0);
}

TEST(Snes, SolvesCoupled2x2System) {
  // x^2 + y^2 = 2, x - y = 0 -> (1, 1) from a nearby start.
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(2);
    f[0] = v[0] * v[0] + v[1] * v[1] - 2.0;
    f[1] = v[0] - v[1];
  };
  Vec x{2.0, 0.5};
  const auto res = newton_solve(F, x);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 1.0, 1e-6);
}

TEST(Snes, LinearSystemConvergesInOneStep) {
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(2);
    f[0] = 2.0 * v[0] - 6.0;
    f[1] = 3.0 * v[1] + 9.0;
  };
  Vec x{0.0, 0.0};
  const auto res = newton_solve(F, x);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2);
  EXPECT_NEAR(x[0], 3.0, 1e-7);
  EXPECT_NEAR(x[1], -3.0, 1e-7);
}

TEST(Snes, AlreadyConvergedReturnsImmediately) {
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(1);
    f[0] = v[0];
  };
  Vec x{0.0};
  const auto res = newton_solve(F, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Snes, LineSearchDampsOvershoot) {
  // atan has a famous Newton overshoot; the backtracking line search must
  // rescue convergence from x0 = 2 (plain Newton diverges there).
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(1);
    f[0] = std::atan(v[0]);
  };
  Vec x{2.0};
  const auto res = newton_solve(F, x);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], 0.0, 1e-6);
}

TEST(Snes, ExponentialSystem) {
  // e^x - 2 = 0 -> x = ln 2.
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(1);
    f[0] = std::exp(v[0]) - 2.0;
  };
  Vec x{3.0};
  const auto res = newton_solve(F, x);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], std::log(2.0), 1e-7);
}

TEST(Snes, ReportsWorkCounters) {
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(1);
    f[0] = v[0] * v[0] * v[0] - 8.0;
  };
  Vec x{5.0};
  const auto res = newton_solve(F, x);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.total_ksp_iterations, 0);
  EXPECT_GT(res.residual_evaluations, res.iterations);
}

TEST(Snes, MaxIterationsRespected) {
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(1);
    f[0] = std::exp(v[0]) - 1e-30;  // root far away at ~-69
  };
  Vec x{10.0};
  SnesOptions opts;
  opts.max_iterations = 2;
  const auto res = newton_solve(F, x, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iterations, 2);
}

TEST(Snes, NullResidualThrows) {
  Vec x{1.0};
  EXPECT_THROW((void)newton_solve(nullptr, x), std::invalid_argument);
}

TEST(Snes, StagnationReportedHonestly) {
  // |x| has no smooth root crossing at the minimum of ||F||; Newton with
  // line search stalls and must say so.
  const ResidualFn F = [](const Vec& v, Vec& f) {
    f.resize(1);
    f[0] = std::abs(v[0]) + 1.0;  // never zero
  };
  Vec x{1.0};
  SnesOptions opts;
  opts.max_iterations = 10;
  const auto res = newton_solve(F, x, opts);
  EXPECT_FALSE(res.converged);
}

}  // namespace
