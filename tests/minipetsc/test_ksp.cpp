#include "minipetsc/ksp.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "minipetsc/mat_gen.hpp"

namespace {

using namespace minipetsc;

double residual_norm(const CsrMatrix& A, const Vec& b, const Vec& x) {
  Vec ax;
  A.multiply(x, ax);
  Vec r = b;
  axpy(-1.0, ax, r);
  return norm2(r);
}

TEST(Cg, SolvesTridiagonal) {
  const auto A = laplacian1d(50);
  Vec x_true(50);
  for (std::size_t i = 0; i < 50; ++i) x_true[i] = std::sin(0.3 * i);
  Vec b;
  A.multiply(x_true, b);
  Vec x;
  PcNone pc;
  const auto res = cg_solve(A, b, x, pc);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(A, b, x), 1e-6);
}

TEST(Cg, JacobiPreconditioningReducesIterations) {
  // Note: with b = ones, random_spd matrices have ones as an exact
  // eigenvector (diagonal = row-sum + 1), so use a non-trivial rhs.
  const auto A = random_spd(200, 5, 11);
  Vec b(200);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::sin(0.1 * i);
  Vec x1;
  Vec x2;
  PcNone none;
  PcJacobi jacobi(A);
  const auto plain = cg_solve(A, b, x1, none);
  const auto pre = cg_solve(A, b, x2, jacobi);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations);
}

TEST(Cg, BlockJacobiBeatsPointJacobiOnBlockMatrix) {
  const auto A = dense_block_matrix({25, 25, 25, 25}, 0.05);
  const auto part = RowPartition::even(100, 4);
  Vec b(100, 1.0);
  Vec x1;
  Vec x2;
  PcJacobi jacobi(A);
  PcBlockJacobi bjacobi(A, part);
  const auto pj = cg_solve(A, b, x1, jacobi);
  const auto bj = cg_solve(A, b, x2, bjacobi);
  EXPECT_TRUE(pj.converged);
  EXPECT_TRUE(bj.converged);
  EXPECT_LT(bj.iterations, pj.iterations);
}

TEST(Cg, ZeroRhsImmediateConvergence) {
  const auto A = laplacian1d(10);
  Vec b(10, 0.0);
  Vec x;
  PcNone pc;
  const auto res = cg_solve(A, b, x, pc);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(norm2(x), 0.0);
}

TEST(Cg, MaxIterationsRespected) {
  const auto A = laplacian2d(30, 30);
  Vec b(900, 1.0);
  Vec x;
  PcNone pc;
  KspOptions opts;
  opts.max_iterations = 3;
  opts.rtol = 1e-14;
  const auto res = cg_solve(A, b, x, pc, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
}

TEST(Cg, IndefiniteOperatorReportsFailure) {
  // -I is negative definite: CG must bail out, not loop or lie.
  const auto A = CsrMatrix::from_triplets(2, 2, {{0, 0, -1.0}, {1, 1, -1.0}});
  Vec b{1, 1};
  Vec x;
  PcNone pc;
  const auto res = cg_solve(A, b, x, pc);
  EXPECT_FALSE(res.converged);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  // Upwind-ish convection-diffusion (nonsymmetric).
  std::vector<std::tuple<int, int, double>> t;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    t.emplace_back(i, i, 3.0);
    if (i > 0) t.emplace_back(i, i - 1, -2.0);
    if (i < n - 1) t.emplace_back(i, i + 1, -0.5);
  }
  const auto A = CsrMatrix::from_triplets(n, n, std::move(t));
  Vec b(n, 1.0);
  Vec x;
  PcNone pc;
  const auto res = gmres_solve(A, b, x, pc);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(A, b, x), 1e-5);
}

TEST(Gmres, MatchesCgOnSpdProblem) {
  const auto A = laplacian2d(12, 12);
  Vec b(144, 1.0);
  Vec x_cg;
  Vec x_gm;
  PcNone pc;
  ASSERT_TRUE(cg_solve(A, b, x_cg, pc).converged);
  ASSERT_TRUE(gmres_solve(A, b, x_gm, pc).converged);
  Vec diff = x_cg;
  axpy(-1.0, x_gm, diff);
  EXPECT_LT(norm2(diff) / norm2(x_cg), 1e-5);
}

TEST(Gmres, RestartStillConverges) {
  const auto A = laplacian2d(15, 15);
  Vec b(225, 1.0);
  Vec x;
  PcJacobi pc(A);
  KspOptions opts;
  opts.gmres_restart = 5;  // force many restart cycles
  opts.max_iterations = 5000;
  const auto res = gmres_solve(A, b, x, pc, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(A, b, x), 1e-5);
}

TEST(Gmres, PreconditioningReducesIterations) {
  const auto A = random_spd(150, 4, 21);
  Vec b(150);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::cos(0.2 * i);
  Vec x1;
  Vec x2;
  PcNone none;
  PcJacobi jacobi(A);
  const auto plain = gmres_solve(A, b, x1, none);
  const auto pre = gmres_solve(A, b, x2, jacobi);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations);
}

TEST(Gmres, MatrixFreeOperator) {
  // Operator: diagonal scaling by (i+1), applied matrix-free.
  const int n = 20;
  const LinearOp op = [n](const Vec& v, Vec& y) {
    y.resize(v.size());
    for (int i = 0; i < n; ++i) {
      y[static_cast<std::size_t>(i)] = (i + 1.0) * v[static_cast<std::size_t>(i)];
    }
  };
  Vec b(n, 1.0);
  Vec x;
  PcNone pc;
  const auto res = gmres_solve(op, b, x, pc);
  EXPECT_TRUE(res.converged);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], 1.0 / (i + 1.0), 1e-6);
  }
}

TEST(Gmres, BadRestartThrows) {
  const auto A = laplacian1d(4);
  Vec b(4, 1.0);
  Vec x;
  PcNone pc;
  KspOptions opts;
  opts.gmres_restart = 0;
  EXPECT_THROW((void)gmres_solve(A, b, x, pc, opts), std::invalid_argument);
}

TEST(Ksp, InitialGuessIsUsed) {
  const auto A = laplacian1d(30);
  Vec x_true(30, 2.0);
  Vec b;
  A.multiply(x_true, b);
  Vec x_exact = x_true;  // start at the solution
  PcNone pc;
  const auto res = cg_solve(A, b, x_exact, pc);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

// Parameterized: CG converges on the 2-D Laplacian across grid sizes, with
// iteration counts growing roughly like the condition number (O(n)).
class CgScaling : public ::testing::TestWithParam<int> {};

TEST_P(CgScaling, ConvergesOnLaplacian) {
  const int n = GetParam();
  const auto A = laplacian2d(n, n);
  Vec b(static_cast<std::size_t>(n) * n, 1.0);
  Vec x;
  PcJacobi pc(A);
  const auto res = cg_solve(A, b, x, pc);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_norm(A, b, x), 1e-5 * norm2(b));
  EXPECT_LT(res.iterations, 12 * n);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, CgScaling, ::testing::Values(4, 8, 16, 24, 32));

}  // namespace
