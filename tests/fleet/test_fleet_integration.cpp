// End-to-end fleet tests over the real wire: a TuningServer with a fleet
// Dispatcher, in-process WorkerClient threads speaking ATTACH/WORK/RESULT
// over loopback, and a SearchController driving WorkerEvalBackend. Covers
// the identity guarantee (fleet trajectory == serial golden trajectory),
// fault injection (worker death mid-search, straggler re-dispatch with
// dedup), elastic membership, the legacy thread-per-connection transport,
// status lanes and worker connect retry.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/controller.hpp"
#include "core/server.hpp"
#include "engine/batch_strategy.hpp"
#include "fleet/dispatcher.hpp"
#include "fleet/substrates.hpp"
#include "fleet/worker_backend.hpp"
#include "fleet/worker_client.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace fleet = harmony::fleet;
using harmony::Config;
using harmony::ParamSpace;

namespace {

/// Poll until `fn` is true or ~3s elapse.
template <typename Fn>
bool eventually(Fn fn) {
  for (int i = 0; i < 600; ++i) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return fn();
}

/// Serial golden run of the synthetic substrate: the same duplicate-free
/// systematic plan the fleet runs, through ShortRunEvalBackend.
harmony::ControllerResult serial_golden(const fleet::Substrate& sub,
                                        int samples_per_dim, int max_evals) {
  harmony::ControllerLimits limits;
  limits.max_evaluations = max_evals;
  limits.max_proposals = 100000;
  harmony::engine::BatchSystematicSampler plan(sub.space, samples_per_dim);
  harmony::SearchController controller(sub.space, limits);
  harmony::ShortRunEvalBackend backend(sub.run, sub.steps, 0.0, "", "");
  return controller.run(plan, backend);
}

/// A server + dispatcher + N in-process WorkerClient threads, torn down in
/// reverse order on destruction.
struct Fleet {
  fleet::Dispatcher dispatcher;
  harmony::TuningServer server;
  std::vector<std::unique_ptr<fleet::WorkerClient>> clients;
  std::vector<std::thread> threads;
  bool up = false;

  Fleet(const ParamSpace& space, fleet::DispatcherOptions dopts,
        harmony::ServerThreading threading = harmony::ServerThreading::kEventLoop)
      : dispatcher(space, std::move(dopts)), server(make_options(threading)) {
    up = server.start();
  }

  harmony::ServerOptions make_options(harmony::ServerThreading threading) {
    harmony::ServerOptions sopts;
    sopts.threading = threading;
    sopts.fleet = &dispatcher;
    return sopts;
  }

  /// Spawn one worker thread serving `fn` over `space`; returns its index.
  std::size_t add_worker(const ParamSpace& space, const harmony::ShortRunFn& fn,
                         fleet::WorkerClientOptions wopts = {}) {
    clients.push_back(std::make_unique<fleet::WorkerClient>(wopts));
    fleet::WorkerClient* wc = clients.back().get();
    const int port = server.port();
    threads.emplace_back(
        [wc, &space, fn, port] { (void)wc->run(port, space, fn, 1); });
    return clients.size() - 1;
  }

  ~Fleet() {
    dispatcher.shutdown();
    server.stop();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
};

harmony::ControllerResult run_fleet_search(Fleet& f, const ParamSpace& space,
                                           int samples_per_dim, int max_evals) {
  harmony::ControllerLimits limits;
  limits.max_evaluations = max_evals;
  limits.max_proposals = 100000;
  harmony::engine::BatchSystematicSampler plan(space, samples_per_dim);
  harmony::SearchController controller(space, limits);
  fleet::WorkerEvalBackend backend(f.dispatcher, space);
  return controller.run(plan, backend);
}

TEST(FleetIntegration, TuningMatchesSerialGolden) {
  const auto sub = fleet::make_substrate("synthetic");
  ASSERT_TRUE(sub.has_value());
  const auto golden = serial_golden(*sub, 8, 64);
  ASSERT_TRUE(golden.best.has_value());

  Fleet f(sub->space, {});
  ASSERT_TRUE(f.up);
  for (int i = 0; i < 3; ++i) f.add_worker(sub->space, sub->run);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(3, std::chrono::seconds(5)));

  const auto result = run_fleet_search(f, sub->space, 8, 64);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(sub->space.format(*result.best), sub->space.format(*golden.best));
  EXPECT_EQ(result.best_objective, golden.best_objective);  // bit-exact wire
  EXPECT_EQ(result.evaluations, golden.evaluations);
}

TEST(FleetIntegration, WorkerDeathMidSearchStillConverges) {
  const auto sub = fleet::make_substrate("synthetic");
  const auto golden = serial_golden(*sub, 11, 121);

  Fleet f(sub->space, {});
  ASSERT_TRUE(f.up);

  // The doomed worker stalls inside its third evaluation until the test has
  // killed it — guaranteeing it dies holding in-flight work.
  auto count = std::make_shared<std::atomic<int>>(0);
  auto stalled = std::make_shared<std::atomic<bool>>(false);
  auto released = std::make_shared<std::atomic<bool>>(false);
  const auto base = sub->run;
  const harmony::ShortRunFn doomed = [count, stalled, released,
                                      base](const Config& c, int steps) {
    if (count->fetch_add(1) + 1 == 3) {
      stalled->store(true);
      while (!released->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return base(c, steps);
  };
  const std::size_t victim = f.add_worker(sub->space, doomed);
  // The healthy pair evaluates slowly enough that the search is still in
  // flight while the victim is being killed.
  const harmony::ShortRunFn slow = [base](const Config& c, int steps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return base(c, steps);
  };
  f.add_worker(sub->space, slow);
  f.add_worker(sub->space, slow);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(3, std::chrono::seconds(5)));

  std::thread killer([&] {
    EXPECT_TRUE(eventually([&] { return stalled->load(); }));
    f.clients[victim]->stop();  // connection drops while work is in flight
    released->store(true);
  });
  const auto result = run_fleet_search(f, sub->space, 11, 121);
  killer.join();

  // The fleet lost a third of its capacity mid-search and still converged to
  // the exact serial result; the victim's in-flight work was re-dispatched.
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(sub->space.format(*result.best), sub->space.format(*golden.best));
  EXPECT_EQ(result.best_objective, golden.best_objective);
  EXPECT_EQ(result.evaluations, golden.evaluations);
  EXPECT_GE(f.dispatcher.stats().requeued, 1u);
  EXPECT_TRUE(eventually([&] { return f.dispatcher.worker_count() == 2; }));
}

TEST(FleetIntegration, StragglerRedispatchAndDedup) {
  const auto sub = fleet::make_substrate("synthetic");
  fleet::DispatcherOptions dopts;
  dopts.straggler_timeout = std::chrono::milliseconds(40);
  Fleet f(sub->space, dopts);
  ASSERT_TRUE(f.up);

  // One chronically slow worker (200 ms per run, far past the 40 ms straggler
  // timeout) and one fast worker to absorb the duplicates.
  const auto base = sub->run;
  const harmony::ShortRunFn tarpit = [base](const Config& c, int steps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return base(c, steps);
  };
  fleet::WorkerClientOptions slow_opts;
  slow_opts.capacity = 1;
  f.add_worker(sub->space, tarpit, slow_opts);
  f.add_worker(sub->space, base);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(2, std::chrono::seconds(5)));

  const auto golden = serial_golden(*sub, 4, 16);
  const auto result = run_fleet_search(f, sub->space, 4, 16);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best_objective, golden.best_objective);
  EXPECT_EQ(result.evaluations, golden.evaluations);

  // Every item the tarpit held was duplicated onto the fast worker, and the
  // tarpit's late RESULTs were dropped by first-result-wins dedup.
  EXPECT_GE(f.dispatcher.stats().redispatched, 1u);
  EXPECT_TRUE(eventually([&] { return f.dispatcher.stats().deduped >= 1; }));
}

TEST(FleetIntegration, ElasticAttachAndGracefulDetachMidSearch) {
  const auto sub = fleet::make_substrate("synthetic");
  Fleet f(sub->space, {});
  ASSERT_TRUE(f.up);

  const auto base = sub->run;
  const harmony::ShortRunFn slow = [base](const Config& c, int steps) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return base(c, steps);
  };
  f.add_worker(sub->space, slow);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(1, std::chrono::seconds(5)));

  // Mid-search, a second worker joins with a 5-evaluation quota, serves it,
  // and DETACHes gracefully — the search must not notice either event.
  std::thread joiner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fleet::WorkerClientOptions wopts;
    wopts.max_evals = 5;
    f.add_worker(sub->space, slow, wopts);
  });
  const auto golden = serial_golden(*sub, 8, 64);
  const auto result = run_fleet_search(f, sub->space, 8, 64);
  joiner.join();

  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best_objective, golden.best_objective);
  EXPECT_EQ(result.evaluations, golden.evaluations);
  EXPECT_TRUE(eventually([&] { return f.dispatcher.worker_count() == 1; }));
  EXPECT_EQ(f.clients[1]->evals(), 5u);
}

TEST(FleetIntegration, LegacyTransportServesWorkers) {
  const auto sub = fleet::make_substrate("synthetic");
  Fleet f(sub->space, {}, harmony::ServerThreading::kLegacy);
  ASSERT_TRUE(f.up);
  f.add_worker(sub->space, sub->run);
  f.add_worker(sub->space, sub->run);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(2, std::chrono::seconds(5)));

  const auto golden = serial_golden(*sub, 6, 36);
  const auto result = run_fleet_search(f, sub->space, 6, 36);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best_objective, golden.best_objective);
  EXPECT_EQ(result.evaluations, golden.evaluations);
}

TEST(FleetIntegration, StatusLanesPublishWorkerState) {
  const auto sub = fleet::make_substrate("synthetic");
  fleet::DispatcherOptions dopts;
  dopts.status_pool = "fleet-test";
  Fleet f(sub->space, dopts);
  ASSERT_TRUE(f.up);
  f.add_worker(sub->space, sub->run);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(1, std::chrono::seconds(5)));

  const auto workers = harmony::obs::StatusRegistry::global().workers();
  bool found = false;
  for (const auto& w : workers) {
    if (w.pool == "fleet-test/synthetic") {
      found = true;
      EXPECT_GE(w.last_beat_s, 0.0);  // the attach published a heartbeat
    }
  }
  EXPECT_TRUE(found);

  // Lane disappears when the worker's connection drops.
  f.clients[0]->stop();
  EXPECT_TRUE(eventually([&] {
    for (const auto& w : harmony::obs::StatusRegistry::global().workers()) {
      if (w.pool == "fleet-test/synthetic") return false;
    }
    return true;
  }));
}

TEST(FleetIntegration, WorkerConnectRetryToleratesLateServer) {
  const auto sub = fleet::make_substrate("synthetic");

  // Reserve a port by briefly starting a throwaway server on it.
  int port = 0;
  {
    harmony::TuningServer probe;
    ASSERT_TRUE(probe.start());
    port = probe.port();
    probe.stop();
  }

  // The worker starts first; its bounded-backoff retry keeps knocking while
  // the server takes its time to bind.
  fleet::WorkerClient worker{fleet::WorkerClientOptions{}};
  std::thread wt([&] { (void)worker.run(port, sub->space, sub->run, 1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  fleet::Dispatcher dispatcher(sub->space);
  harmony::ServerOptions sopts;
  sopts.port = port;
  sopts.fleet = &dispatcher;
  harmony::TuningServer server(sopts);
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(dispatcher.wait_for_workers(1, std::chrono::seconds(5)));

  dispatcher.shutdown();
  server.stop();
  wt.join();
  EXPECT_NE(worker.worker_id(), 0u);
}

// End-to-end span chains across the dispatch boundary: with trace_sample=1
// every fleet item gets a fleet.item root span with fleet.queue_wait and
// fleet.eval children, and the WORK line's trace token comes back from the
// worker as a worker.eval span parented on the item's root — one connected
// tree per evaluation, recorded from two "processes" into one tracer here.
TEST(FleetIntegration, TraceContextChainsSpanDispatcherAndWorker) {
  const auto sub = fleet::make_substrate("synthetic");
  ASSERT_TRUE(sub.has_value());
  harmony::obs::SearchTracer tracer;
  fleet::DispatcherOptions dopts;
  dopts.tracer = &tracer;
  dopts.trace_sample = 1.0;
  Fleet f(sub->space, dopts);
  ASSERT_TRUE(f.up);
  fleet::WorkerClientOptions wopts;
  wopts.tracer = &tracer;
  f.add_worker(sub->space, sub->run, wopts);
  f.add_worker(sub->space, sub->run, wopts);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(2, std::chrono::seconds(5)));

  const auto result = run_fleet_search(f, sub->space, 4, 16);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.evaluations, 16);

  const auto spans = tracer.spans();
  std::size_t roots = 0;
  std::size_t queue_waits = 0;
  std::size_t fleet_evals = 0;
  std::size_t worker_evals = 0;
  for (const auto& s : spans) {
    ASSERT_NE(s.trace_id, 0u);
    if (s.name == "fleet.item") {
      ++roots;
      EXPECT_EQ(s.parent_span, 0u);  // the item is the root of its tree
      continue;
    }
    // Every non-root span must hang off a fleet.item root of its own trace.
    bool parented = false;
    for (const auto& r : spans) {
      if (r.name == "fleet.item" && r.trace_id == s.trace_id &&
          r.span_id == s.parent_span) {
        parented = true;
        break;
      }
    }
    EXPECT_TRUE(parented) << s.name << " span is orphaned";
    if (s.name == "fleet.queue_wait") ++queue_waits;
    if (s.name == "fleet.eval") ++fleet_evals;
    if (s.name == "worker.eval") ++worker_evals;
  }
  // One tree per evaluation (stragglers would add extras; none here).
  EXPECT_EQ(roots, 16u);
  EXPECT_EQ(queue_waits, 16u);
  EXPECT_EQ(fleet_evals, 16u);
  EXPECT_EQ(worker_evals, 16u);
}

// With sampling off (the default), a tracer wired into the dispatcher and
// workers must see nothing: WORK lines carry no token, workers mint no
// spans, and the fleet trajectory is untouched.
TEST(FleetIntegration, TraceContextUnsampledFleetRecordsNothing) {
  const auto sub = fleet::make_substrate("synthetic");
  harmony::obs::SearchTracer tracer;
  fleet::DispatcherOptions dopts;
  dopts.tracer = &tracer;  // trace_sample stays 0.0
  Fleet f(sub->space, dopts);
  ASSERT_TRUE(f.up);
  fleet::WorkerClientOptions wopts;
  wopts.tracer = &tracer;
  f.add_worker(sub->space, sub->run, wopts);
  ASSERT_TRUE(f.dispatcher.wait_for_workers(1, std::chrono::seconds(5)));

  const auto golden = serial_golden(*sub, 4, 16);
  const auto result = run_fleet_search(f, sub->space, 4, 16);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best_objective, golden.best_objective);
  EXPECT_EQ(tracer.span_count(), 0u);
}

}  // namespace
