// WorkerEvalBackend tests through a real Dispatcher with an in-test
// auto-responding worker (the push function evaluates the candidate and
// feeds the RESULT straight back): cross-batch caching, in-batch
// coalescing, concurrency sizing, and a full SearchController run whose
// trajectory must match an in-process serial reference exactly.

#include "fleet/worker_backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "engine/batch_strategy.hpp"
#include "fleet/dispatcher.hpp"

namespace fleet = harmony::fleet;
using harmony::Config;
using harmony::ParamSpace;
using harmony::Parameter;

namespace {

ParamSpace make_space() {
  ParamSpace space;
  space.add(Parameter::Integer("x", 0, 20));
  space.add(Parameter::Integer("y", 0, 20));
  return space;
}

/// Integer-exact objective with a unique minimum at (3, 14).
double objective_of(long long x, long long y) {
  const double dx = static_cast<double>(x - 3);
  const double dy = static_cast<double>(y - 14);
  return (dx * dx + dy * dy + 1.0) / 64.0;
}

/// Worker whose push function evaluates the candidate synchronously and
/// reports the RESULT back into the dispatcher (a zero-latency loopback).
struct EchoWorker {
  fleet::Dispatcher* d = nullptr;
  std::shared_ptr<std::uint64_t> id = std::make_shared<std::uint64_t>(0);
  std::shared_ptr<std::atomic<int>> evals = std::make_shared<std::atomic<int>>(0);

  void attach(fleet::Dispatcher& dispatcher, int capacity) {
    d = &dispatcher;
    auto wid = id;
    auto count = evals;
    fleet::Dispatcher* dp = d;
    *id = dispatcher.attach(
        "synthetic", capacity, [dp, wid, count](std::string_view payload) {
          unsigned long long work = 0;
          long long x = 0;
          long long y = 0;
          if (std::sscanf(std::string(payload).c_str(), "WORK %llu %lld %lld",
                          &work, &x, &y) != 3) {
            return false;
          }
          count->fetch_add(1);
          (void)dp->on_result(*wid, work, true, objective_of(x, y), 0.001);
          return true;
        });
  }
};

TEST(WorkerEvalBackend, ConcurrencyTracksFleetCapacity) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  fleet::WorkerEvalBackend backend(d, space);
  EXPECT_EQ(backend.concurrency(), 1u);  // empty fleet still proposes

  EchoWorker w;
  w.attach(d, 3);
  EXPECT_EQ(backend.concurrency(), 3u);

  fleet::WorkerBackendOptions opts;
  opts.max_batch = 2;
  fleet::WorkerEvalBackend capped(d, space, opts);
  EXPECT_EQ(capped.concurrency(), 2u);
}

TEST(WorkerEvalBackend, CachesAcrossBatchesAndCoalescesWithin) {
  const auto space = make_space();
  fleet::Dispatcher d(space);
  EchoWorker w;
  w.attach(d, 4);
  fleet::WorkerEvalBackend backend(d, space);

  Config a = space.default_config();
  space.set(a, "x", std::int64_t{1});
  Config b = space.default_config();
  space.set(b, "x", std::int64_t{2});

  // First batch: a, b and a duplicate of a — two remote runs, one coalesced.
  harmony::EvalBackend::Context ctx;
  ctx.space = &space;
  const auto out1 = backend.evaluate({a, b, a}, ctx);
  ASSERT_EQ(out1.size(), 3u);
  EXPECT_TRUE(out1[0].ran);
  EXPECT_TRUE(out1[1].ran);
  EXPECT_FALSE(out1[2].ran);  // in-batch duplicate shares the first run
  EXPECT_DOUBLE_EQ(out1[2].result.objective, out1[0].result.objective);
  EXPECT_EQ(w.evals->load(), 2);
  EXPECT_EQ(backend.cache_coalesced(), 1u);

  // Second batch: both served from the cache, nothing crosses the wire.
  const auto out2 = backend.evaluate({b, a}, ctx);
  EXPECT_FALSE(out2[0].ran);
  EXPECT_FALSE(out2[1].ran);
  EXPECT_DOUBLE_EQ(out2[1].result.objective, out1[0].result.objective);
  EXPECT_EQ(w.evals->load(), 2);
  EXPECT_EQ(backend.cache_hits(), 2u);
}

TEST(WorkerEvalBackend, ControllerRunMatchesSerialReference) {
  const auto space = make_space();

  // Serial reference: the same duplicate-free systematic plan evaluated
  // through ShortRunEvalBackend.
  const harmony::ShortRunFn run = [&space](const Config& c, int) {
    harmony::ShortRunResult r;
    r.measured_s = objective_of(space.get_int(c, "x"), space.get_int(c, "y"));
    return r;
  };
  harmony::ControllerLimits limits;
  limits.max_evaluations = 121;
  limits.max_proposals = 1000;

  harmony::engine::BatchSystematicSampler serial_plan(space, 11);
  harmony::SearchController serial_ctl(space, limits);
  harmony::ShortRunEvalBackend serial_backend(run, 1, 0.0, "", "");
  const auto serial = serial_ctl.run(serial_plan, serial_backend);

  // Fleet run: same plan through the dispatcher + echo worker.
  fleet::Dispatcher d(space);
  EchoWorker w;
  w.attach(d, 4);
  fleet::WorkerEvalBackend backend(d, space);
  harmony::engine::BatchSystematicSampler fleet_plan(space, 11);
  harmony::SearchController fleet_ctl(space, limits);
  const auto fleet_result = fleet_ctl.run(fleet_plan, backend);

  ASSERT_TRUE(serial.best.has_value());
  ASSERT_TRUE(fleet_result.best.has_value());
  EXPECT_EQ(space.format(*fleet_result.best), space.format(*serial.best));
  EXPECT_EQ(fleet_result.best_objective, serial.best_objective);  // bit-exact
  EXPECT_EQ(fleet_result.evaluations, serial.evaluations);
}

}  // namespace
