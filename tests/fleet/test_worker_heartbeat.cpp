// WorkerClient idle-heartbeat cadence against a raw accept loop: a fast
// heartbeat must produce several PING lines while the server stays silent,
// and heartbeat=0 must disable them entirely. The "server" here is just a
// loopback listener that answers the ATTACH handshake by hand.

#include "fleet/worker_client.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/net.hpp"
#include "core/param_space.hpp"

namespace fleet = harmony::fleet;
namespace net = harmony::net;
using harmony::ParamSpace;
using harmony::Parameter;

namespace {

ParamSpace one_param_space() {
  ParamSpace space;
  space.add(Parameter::Integer("x", 0, 10));
  return space;
}

harmony::ShortRunResult never_run(const harmony::Config& /*c*/, int /*steps*/) {
  harmony::ShortRunResult r;
  r.ok = false;
  return r;  // the server never pushes WORK in these tests
}

/// Accept the worker's connection, validate the ATTACH line, and grant it
/// worker id 1 so the client settles into its idle serve loop.
net::Socket accept_and_attach(const net::Socket& listener,
                              const std::string& expect_name) {
  net::Socket conn = net::accept_connection(listener);
  EXPECT_TRUE(conn.valid());
  net::LineReader reader(conn);
  const auto line = reader.read_line();
  EXPECT_TRUE(line.has_value());
  EXPECT_EQ(*line, "ATTACH " + expect_name + " 2");
  EXPECT_TRUE(conn.send_line("OK worker 1"));
  return conn;
}

/// Count newline-terminated PING lines arriving on `conn` until either
/// `want` are seen or `window` elapses.
int count_pings(const net::Socket& conn, int want,
                std::chrono::milliseconds window) {
  const auto deadline = std::chrono::steady_clock::now() + window;
  std::string buf;
  int pings = 0;
  while (pings < want) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) break;
    pollfd pfd{};
    pfd.fd = conn.fd();
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (r <= 0) break;
    char chunk[256];
    const ssize_t n = ::recv(conn.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl = 0;
    while ((nl = buf.find('\n')) != std::string::npos) {
      if (buf.compare(0, nl, "PING") == 0) ++pings;
      buf.erase(0, nl + 1);
    }
  }
  return pings;
}

TEST(WorkerHeartbeat, FastCadenceSendsPingsWhileIdle) {
  const auto space = one_param_space();
  auto lr = net::listen_loopback(0);
  ASSERT_TRUE(lr.socket.valid());

  fleet::WorkerClientOptions opts;
  opts.name = "synthetic";
  opts.heartbeat = std::chrono::milliseconds(25);
  fleet::WorkerClient worker(opts);
  std::thread runner([&] {
    EXPECT_TRUE(worker.run(lr.port, space, never_run, 1));
  });

  {
    net::Socket conn = accept_and_attach(lr.socket, "synthetic");
    // At 25 ms cadence three PINGs need ~75 ms; a full second of headroom
    // keeps this robust on loaded CI runners.
    EXPECT_GE(count_pings(conn, 3, std::chrono::milliseconds(1000)), 3);
    worker.stop();
  }  // closing the connection unblocks the worker's read loop
  runner.join();
  EXPECT_EQ(worker.worker_id(), 1u);
}

TEST(WorkerHeartbeat, ZeroHeartbeatDisablesPings) {
  const auto space = one_param_space();
  auto lr = net::listen_loopback(0);
  ASSERT_TRUE(lr.socket.valid());

  fleet::WorkerClientOptions opts;
  opts.name = "synthetic";
  opts.heartbeat = std::chrono::milliseconds(0);
  fleet::WorkerClient worker(opts);
  std::thread runner([&] {
    EXPECT_TRUE(worker.run(lr.port, space, never_run, 1));
  });

  {
    net::Socket conn = accept_and_attach(lr.socket, "synthetic");
    // 300 ms of silence would fit a dozen PINGs at the default 500 ms it
    // replaced — with heartbeats off, not a single byte may arrive.
    EXPECT_EQ(count_pings(conn, 1, std::chrono::milliseconds(300)), 0);
    worker.stop();
  }
  runner.join();
  EXPECT_EQ(worker.worker_id(), 1u);
}

}  // namespace
